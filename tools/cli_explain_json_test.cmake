# `indoorflow_cli explain --format json` must emit a machine-readable
# EXPLAIN profile whose per-POI verdicts partition the dataset's POI set
# (acceptance criterion for the EXPLAIN subsystem): run it for both
# algorithms, parse the JSON, and assert the verdict counts sum to the POI
# count and the phase times reconcile with the stats section.
get_filename_component(tmp_dir ${DATA} DIRECTORY)
foreach(algo iterative join)
  execute_process(
    COMMAND ${CLI} explain --data ${DATA} --t 300 --k 3 --algo ${algo}
      --format json
    OUTPUT_VARIABLE explain_out
    RESULT_VARIABLE rc)
  if(NOT rc EQUAL 0)
    message(FATAL_ERROR "indoorflow_cli explain (${algo}) failed with ${rc}")
  endif()
  set(check "
import json, sys
profile = json.load(sys.stdin)
assert profile['kind'] == 'SnapshotTopK', profile['kind']
assert profile['algorithm'] == '${algo}', profile['algorithm']
v = profile['verdicts']
total = v['evaluated'] + v['pruned_bound'] + v['pruned_mbr']
assert total == v['total'], (total, v['total'])
assert total == len(profile['pois']), (total, len(profile['pois']))
# The dataset pois.txt is id-dense, so the POI count is the file's POIs.
pois_in_dataset = sum(1 for line in open('${DATA}/pois.txt')
                      if line.strip() and not line.startswith('#'))
assert total == pois_in_dataset, (total, pois_in_dataset)
stats = profile['stats']
phase_sum = sum(stats[k] for k in
                ('retrieve_ns', 'derive_ns', 'presence_ns', 'topk_ns'))
assert 0 < phase_sum <= profile['total_ns'], (phase_sum,
                                              profile['total_ns'])
assert profile['detail'] is True
")
  set(tmp ${tmp_dir}/cli_explain_${algo}.json)
  file(WRITE ${tmp} "${explain_out}")
  execute_process(
    COMMAND ${PYTHON} -c ${check}
    INPUT_FILE ${tmp}
    RESULT_VARIABLE parse_rc
    ERROR_VARIABLE parse_err)
  if(NOT parse_rc EQUAL 0)
    message(FATAL_ERROR
      "explain (${algo}) output failed validation: ${parse_err}")
  endif()
endforeach()
