# Creates the smoke-test dataset directory and runs `generate` into it.
file(MAKE_DIRECTORY ${OUT})
execute_process(
  COMMAND ${CLI} generate --out ${OUT} --objects 20 --duration 600 --seed 5
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "indoorflow_cli generate failed with ${rc}")
endif()
