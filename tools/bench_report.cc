#include "tools/bench_report.h"

#include <cctype>
#include <cstdio>
#include <sstream>

namespace indoorflow::benchreport {

namespace {

// Parses "14.166k" / "3.5M" / "75" into a double (benchmark's
// human-readable counter formatting).
std::optional<double> ParseHumanNumber(const std::string& text) {
  if (text.empty()) return std::nullopt;
  char* end = nullptr;
  const double value = std::strtod(text.c_str(), &end);
  if (end == text.c_str()) return std::nullopt;
  std::string suffix(end);
  if (suffix.empty()) return value;
  if (suffix == "k") return value * 1e3;
  if (suffix == "M") return value * 1e6;
  if (suffix == "G") return value * 1e9;
  if (suffix == "/s") return value;  // rate counters: keep the magnitude
  return std::nullopt;
}

std::optional<double> ToMilliseconds(double value, const std::string& unit) {
  if (unit == "ns") return value * 1e-6;
  if (unit == "us") return value * 1e-3;
  if (unit == "ms") return value;
  if (unit == "s") return value * 1e3;
  return std::nullopt;
}

std::vector<std::string> Tokenize(const std::string& line) {
  std::vector<std::string> tokens;
  std::istringstream in(line);
  std::string token;
  while (in >> token) tokens.push_back(token);
  return tokens;
}

}  // namespace

std::optional<BenchRow> ParseBenchLine(const std::string& line) {
  if (line.rfind("BM_", 0) != 0) return std::nullopt;
  const std::vector<std::string> tokens = Tokenize(line);
  // Minimum: name, wall, wall-unit, cpu, cpu-unit, iterations.
  if (tokens.size() < 6) return std::nullopt;

  BenchRow row;
  // Name and path arguments.
  {
    std::istringstream name(tokens[0]);
    std::string segment;
    bool first = true;
    while (std::getline(name, segment, '/')) {
      if (first) {
        row.family = segment;
        first = false;
        continue;
      }
      const size_t colon = segment.find(':');
      if (colon == std::string::npos) {
        row.args.emplace_back("", segment);
      } else {
        row.args.emplace_back(segment.substr(0, colon),
                              segment.substr(colon + 1));
      }
    }
    if (row.family.empty()) return std::nullopt;
  }

  const auto wall = ParseHumanNumber(tokens[1]);
  const auto cpu = ParseHumanNumber(tokens[3]);
  if (!wall || !cpu) return std::nullopt;
  const auto wall_ms = ToMilliseconds(*wall, tokens[2]);
  const auto cpu_ms = ToMilliseconds(*cpu, tokens[4]);
  if (!wall_ms || !cpu_ms) return std::nullopt;
  row.wall_ms = *wall_ms;
  row.cpu_ms = *cpu_ms;
  row.iterations = std::atoll(tokens[5].c_str());

  // Remaining tokens: key=value counters; everything else joins the label.
  for (size_t i = 6; i < tokens.size(); ++i) {
    const size_t eq = tokens[i].find('=');
    std::optional<double> value;
    if (eq != std::string::npos) {
      value = ParseHumanNumber(tokens[i].substr(eq + 1));
    }
    if (eq != std::string::npos && value) {
      row.counters[tokens[i].substr(0, eq)] = *value;
    } else {
      if (!row.label.empty()) row.label += ' ';
      row.label += tokens[i];
    }
  }
  return row;
}

std::vector<BenchRow> ParseBenchOutput(const std::string& text) {
  std::vector<BenchRow> rows;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (auto row = ParseBenchLine(line)) rows.push_back(std::move(*row));
  }
  return rows;
}

namespace {

std::string FormatNumber(double value) {
  char buffer[64];
  if (value == static_cast<int64_t>(value) && std::abs(value) < 1e15) {
    std::snprintf(buffer, sizeof(buffer), "%lld",
                  static_cast<long long>(value));
  } else {
    std::snprintf(buffer, sizeof(buffer), "%.4g", value);
  }
  return buffer;
}

}  // namespace

std::string RenderMarkdown(const std::vector<BenchRow>& rows) {
  // Group by family, preserving first-seen order.
  std::vector<std::string> families;
  for (const BenchRow& row : rows) {
    bool seen = false;
    for (const std::string& f : families) seen |= f == row.family;
    if (!seen) families.push_back(row.family);
  }

  std::string out;
  for (const std::string& family : families) {
    std::vector<const BenchRow*> group;
    for (const BenchRow& row : rows) {
      if (row.family == family) group.push_back(&row);
    }
    // Column sets: args in first-seen order, counters sorted (std::map).
    std::vector<std::string> arg_keys;
    std::map<std::string, bool> counter_keys;
    bool any_label = false;
    for (const BenchRow* row : group) {
      for (const auto& [key, value] : row->args) {
        bool seen = false;
        for (const std::string& k : arg_keys) seen |= k == key;
        if (!seen) arg_keys.push_back(key);
      }
      for (const auto& [key, value] : row->counters) {
        counter_keys[key] = true;
      }
      any_label |= !row->label.empty();
    }

    out += "## " + family + "\n\n|";
    for (const std::string& key : arg_keys) {
      out += " " + (key.empty() ? std::string("arg") : key) + " |";
    }
    if (any_label) out += " variant |";
    out += " cpu (ms) | wall (ms) | iters |";
    for (const auto& [key, seen] : counter_keys) out += " " + key + " |";
    out += "\n|";
    const size_t columns = arg_keys.size() + (any_label ? 1 : 0) + 3 +
                           counter_keys.size();
    for (size_t i = 0; i < columns; ++i) out += "---|";
    out += "\n";

    for (const BenchRow* row : group) {
      out += "|";
      for (const std::string& key : arg_keys) {
        std::string value;
        for (const auto& [k, v] : row->args) {
          if (k == key) value = v;
        }
        out += " " + value + " |";
      }
      if (any_label) out += " " + row->label + " |";
      out += " " + FormatNumber(row->cpu_ms) + " | " +
             FormatNumber(row->wall_ms) + " | " +
             std::to_string(row->iterations) + " |";
      for (const auto& [key, seen] : counter_keys) {
        const auto it = row->counters.find(key);
        out += " ";
        out += it == row->counters.end() ? "" : FormatNumber(it->second);
        out += " |";
      }
      out += "\n";
    }
    out += "\n";
  }
  return out;
}

}  // namespace indoorflow::benchreport
