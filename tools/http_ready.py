#!/usr/bin/env python3
"""Block until an HTTP endpoint answers 200, or exit non-zero.

CI readiness poll for `indoorflow_cli serve`: replaces `sleep N` (which is
both too slow on fast runners and too fast on cold ones) with bounded
retries against /healthz:

  ./build/tools/indoorflow_cli serve --data D --port 9464 ... &
  python3 tools/http_ready.py http://127.0.0.1:9464/healthz --timeout 30

Exit status: 0 once the URL answers 200, 1 when --timeout elapses first,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import sys
import time
import urllib.error
import urllib.request


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("url", help="URL that must answer 200 (e.g. "
                                    "http://127.0.0.1:9464/healthz)")
    parser.add_argument("--timeout", type=float, default=30.0,
                        help="overall budget in seconds (default 30)")
    parser.add_argument("--interval", type=float, default=0.2,
                        help="pause between attempts in seconds "
                             "(default 0.2)")
    args = parser.parse_args()
    if args.timeout <= 0 or args.interval <= 0:
        parser.error("--timeout and --interval must be > 0")

    deadline = time.monotonic() + args.timeout
    attempts = 0
    last_error = "no attempt completed"
    while time.monotonic() < deadline:
        attempts += 1
        try:
            # Per-attempt timeout stays inside the overall budget so one
            # hung connect can't eat every retry.
            per_attempt = max(0.1, min(5.0,
                                       deadline - time.monotonic()))
            with urllib.request.urlopen(args.url,
                                        timeout=per_attempt) as response:
                if response.status == 200:
                    print(f"{args.url} ready after {attempts} attempt(s)")
                    return 0
                last_error = f"HTTP {response.status}"
        except (urllib.error.URLError, OSError) as error:
            last_error = str(error)
        time.sleep(args.interval)
    print(f"{args.url} not ready within {args.timeout:g}s "
          f"({attempts} attempts; last error: {last_error})",
          file=sys.stderr)
    return 1


if __name__ == "__main__":
    sys.exit(main())
