#!/usr/bin/env python3
"""Refresh bench/baseline.json by running the benchmarks and updating.

The regression gate (tools/bench_compare.py) compares CI benchmark runs
against the checked-in baseline. After an intentional perf change the
baseline must be regenerated the same way CI measures — median of N
repetitions, aggregates only — which this script wraps so the update is one
command instead of a hand-edited JSON file:

  tools/bench_baseline_refresh.py --build-dir build

runs every bench_* binary found in <build-dir>/bench, collects their JSON,
and invokes bench_compare.py --update-baseline. Use --bench to restrict to
specific binaries (repeatable), --dry-run to see the comparison without
writing.

Run it on the machine class the CI gate runs on; a laptop-made baseline
makes the 25% regression threshold meaningless.

Exit status: 0 on success, 1 when a benchmark binary fails, 2 on usage
errors.
"""

from __future__ import annotations

import argparse
import os
import subprocess
import sys
import tempfile

BENCH_FLAGS = [
    "--benchmark_format=json",
    "--benchmark_report_aggregates_only=true",
]


def find_benchmarks(bench_dir: str) -> list[str]:
    if not os.path.isdir(bench_dir):
        return []
    out = []
    for name in sorted(os.listdir(bench_dir)):
        path = os.path.join(bench_dir, name)
        if name.startswith("bench_") and os.access(path, os.X_OK) \
                and os.path.isfile(path):
            out.append(path)
    return out


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--build-dir", default="build",
                        help="CMake build directory (default: build)")
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--repetitions", type=int, default=5)
    parser.add_argument("--bench", action="append", default=[],
                        metavar="NAME",
                        help="benchmark binary name to run (repeatable; "
                             "default: all bench_* in <build-dir>/bench)")
    parser.add_argument("--benchmark-filter", default="",
                        help="passed through as --benchmark_filter")
    parser.add_argument("--dry-run", action="store_true",
                        help="compare against the baseline but do not "
                             "update it")
    args = parser.parse_args()

    bench_dir = os.path.join(args.build_dir, "bench")
    if args.bench:
        binaries = [os.path.join(bench_dir, name) for name in args.bench]
        missing = [b for b in binaries if not os.path.isfile(b)]
        if missing:
            print(f"benchmark binaries not found: {missing}",
                  file=sys.stderr)
            return 2
    else:
        binaries = find_benchmarks(bench_dir)
        if not binaries:
            print(f"no bench_* binaries in {bench_dir} — build them first "
                  f"(cmake --build {args.build_dir})", file=sys.stderr)
            return 2

    results = []
    with tempfile.TemporaryDirectory(prefix="bench_refresh_") as tmp:
        for binary in binaries:
            out_path = os.path.join(
                tmp, os.path.basename(binary) + ".json")
            cmd = [binary] + BENCH_FLAGS + [
                f"--benchmark_repetitions={args.repetitions}"]
            if args.benchmark_filter:
                cmd.append(f"--benchmark_filter={args.benchmark_filter}")
            print(f"running {os.path.basename(binary)} "
                  f"(x{args.repetitions}) ...", flush=True)
            with open(out_path, "w", encoding="utf-8") as out:
                proc = subprocess.run(cmd, stdout=out)
            if proc.returncode != 0:
                print(f"{binary} exited with {proc.returncode}",
                      file=sys.stderr)
                return 1
            results.append(out_path)

        compare = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                               "bench_compare.py")
        cmd = [sys.executable, compare, "--baseline", args.baseline]
        if not args.dry_run:
            cmd.append("--update-baseline")
        cmd += results
        proc = subprocess.run(cmd)
        return proc.returncode


if __name__ == "__main__":
    sys.exit(main())
