#!/usr/bin/env python3
"""Repo-specific lint for indoorflow: invariants clang-tidy can't express.

Checks (each can be skipped with --skip <name>):

  headers       Every public header under src/ is self-contained: it
                compiles as its own translation unit with only the repo
                root on the include path.
  threading     Threading primitives (std::thread, std::mutex, atomics,
                ...) appear only in the allowlist of files whose locking
                discipline carries Clang thread-safety annotations. New
                concurrency must be annotated before it ships.
  annotations   Any header that declares a mutex member (std::mutex or the
                annotated Mutex wrapper) also uses INDOORFLOW_GUARDED_BY,
                i.e. the lock actually guards something the compiler can
                check.
  status        Fallible public APIs (Read*/Write*/Load*/Save*/Parse*/
                Open* at namespace scope in src/ headers) return Status or
                Result<T>, never void/bool — the repo's no-exceptions
                error model (src/common/status.h).
  banned        Banned calls in library code: rand()/srand() (use
                src/common/random.h's deterministic Rng), printf/puts on
                stdout (libraries must not write to stdout; tools and
                examples may), sprintf/strcpy/gets (unbounded).
  atomics       std::atomic/std::atomic_flag appear only in the metrics
                registry (src/common/metrics.*) and the logging sink's
                level gate (src/common/log.cc). Everywhere else, shared
                state goes behind the annotated Mutex so the thread-safety
                analysis can see it; lock-free code needs a lint allowlist
                entry and a TSan-stressed test to ship.
  stderr        Library code never writes to stderr directly: diagnostics
                go through the structured logging sink (src/common/log.h)
                so every line is leveled, tagged, and machine-parseable.
                Only the sink itself (log.cc) and the abort paths in
                status.h — which must not depend on the sink being alive —
                may touch stderr.
  spans         Span recording stays inside the tracing subsystem: raw
                Chrome-sink emission (EmitTraceEvent) and the Trace
                recording entry points (StartSpan/EndSpan/RecordSpan)
                appear only in src/common/trace.* plus the sanctioned
                hooks (the sink itself in metrics.*, the executor's
                per-task events, the engine's per-query event). Everything
                else records through the RAII Span API so per-request
                trees stay well-formed.
  ranks         Every Mutex in src/ is constructed with an explicit
                LockRank (src/common/mutex.h) so the debug validator and
                the Clang acquired_before/after analysis can order it, and
                raw std::mutex never appears outside the wrapper itself.
  includes      Quote includes in src/ are repo-rooted (#include
                "src/...") and point at files that exist, the src/ header
                graph is acyclic, and — when compile_commands.json is
                available (--compile-commands, default
                <root>/build/compile_commands.json) — every src/ .cc is
                listed there, i.e. actually built and visible to
                clang-tidy and the thread-safety analysis.
  docs          Markdown under docs/ (plus README.md and ROADMAP.md) does
                not rot: intra-repo links resolve, backticked repo paths
                (src/..., docs/..., tools/..., ...) exist in the tree,
                `EngineConfig::member` citations name real EngineConfig
                fields, `--flag` citations name real CLI flags
                (indoorflow_cli or a tools/*.py argparse flag), and dotted
                metric citations (`serve.shed`, `query.snapshot.count`)
                name metrics src/ actually registers — literal
                counter/gauge/histogram names plus the EngineMetrics
                prefix cross product.
  ci            .github/workflows/ci.yml keeps its hygiene: every action
                `uses:` is version-pinned, a top-level concurrency group
                cancels superseded runs, jobs that apt-install cache
                /var/cache/apt/archives, jobs that compile carry a ccache
                cache block, and every `cmake -B` configure exports
                compile_commands.json (the includes check and clang-tidy
                depend on it).

Usage:
  tools/indoorflow_lint.py [--root DIR] [--cxx COMPILER]
                           [--compile-commands FILE] [--skip CHECK]...
                           [CHECK ...]

Naming checks positionally runs only those checks (e.g.
`tools/indoorflow_lint.py docs`). Exit status is the number of failed
checks (0 = clean).
"""

from __future__ import annotations

import argparse
import json
import os
import re
import subprocess
import sys
import tempfile

# Files allowed to use threading primitives. Every entry either defines the
# annotation macros or carries INDOORFLOW_GUARDED_BY-annotated state (and is
# stressed by tests/concurrency_test.cc under TSan).
THREADING_ALLOWLIST = {
    "src/common/deadline.h",
    "src/common/executor.h",
    "src/common/executor.cc",
    "src/common/expo_server.h",
    "src/common/expo_server.cc",
    "src/common/log.cc",
    "src/common/metrics.h",
    "src/common/metrics.cc",
    "src/common/mutex.h",
    "src/common/mutex.cc",
    "src/common/thread_annotations.h",
    "src/common/trace.h",
    "src/common/trace.cc",
    "src/core/engine.h",
    "src/core/engine.cc",
    "src/core/flow_matrix.h",
    "src/core/flow_matrix.cc",
    "src/core/query_profile.h",
    "src/core/query_profile.cc",
    "src/core/streaming.h",
    "src/core/streaming.cc",
    "src/core/ur_cache.h",
    "src/core/ur_cache.cc",
    "src/index/dynamic_rtree.h",
    "src/index/dynamic_rtree.cc",
    "src/serve/query_service.h",
    "src/serve/query_service.cc",
}

# Files allowed to hold lock-free state. Far stricter than the threading
# allowlist: atomics are invisible to the Clang thread-safety analysis, so
# each entry must earn its place with a TSan-stressed test
# (tests/metrics_test.cc, tests/flow_matrix_test.cc + concurrency_test.cc).
ATOMICS_ALLOWLIST = {
    "src/common/deadline.h",
    "src/common/log.cc",
    "src/common/metrics.h",
    "src/common/metrics.cc",
    # Stream clock (cross-shard CAS max) and track count; see the
    # thread-safety note in streaming.h.
    "src/core/streaming.h",
}

# Files allowed to write to stderr. log.cc owns the sink; status.h's abort
# helpers must work even when the sink is torn down, and mutex.cc's
# lock-rank violation path must not log (the sink holds a ranked lock of
# its own — logging from the failure path could deadlock).
STDERR_ALLOWLIST = {
    "src/common/log.h",
    "src/common/log.cc",
    "src/common/mutex.cc",
    "src/common/status.h",
}

STDERR_TOKENS = re.compile(r"\bstderr\b|std::cerr\b|std::clog\b")

# Files allowed to emit spans or Chrome-sink events directly. Everything
# else must record through the RAII Span API (src/common/trace.h) so
# per-request span trees stay well-formed and bounded.
SPANS_ALLOWLIST = {
    "src/common/trace.h",
    "src/common/trace.cc",
    "src/common/metrics.h",   # the Chrome-trace sink + ScopedTimer
    "src/common/metrics.cc",
    "src/common/executor.cc",  # per-task executor events (pre-span-tree)
    "src/core/engine.cc",      # QueryMetricsScope's per-query sink event
}

SPANS_TOKENS = re.compile(
    r"\bEmitTraceEvent\s*\(|->\s*(?:StartSpan|EndSpan|RecordSpan)\s*\(")

ATOMICS_TOKENS = re.compile(r"std::atomic(?:_flag)?\b")

THREADING_TOKENS = re.compile(
    r"std::(thread|jthread|mutex|shared_mutex|recursive_mutex|timed_mutex|"
    r"atomic|atomic_flag|condition_variable|lock_guard|unique_lock|"
    r"shared_lock|scoped_lock|future|promise|async)\b"
    r"|\b(?:indoorflow::)?(Mutex|MutexLock)\b"
)

# Namespace-scope fallible-API declarations in public headers. The name must
# continue with an uppercase letter so predicates like ReadingsFeasible()
# don't match.
FALLIBLE_DECL = re.compile(
    r"^(?P<ret>[A-Za-z_][\w:<>,&*\s]*?)\b"
    r"(?:Read|Write|Load|Save|Parse|Open)[A-Z]\w*\s*\("
)

BANNED_CALLS = [
    # (regex, message). Word boundaries keep Rng::NextDouble etc. clean.
    (re.compile(r"(?<![\w:.])rand\s*\(\s*\)"),
     "rand(): use the seeded deterministic Rng (src/common/random.h)"),
    (re.compile(r"(?<![\w:.])srand\s*\("),
     "srand(): use the seeded deterministic Rng (src/common/random.h)"),
    (re.compile(r"(?<![\w:.])(?:std::)?printf\s*\("),
     "printf(): library code must not write to stdout"),
    (re.compile(r"(?<![\w:.])(?:std::)?puts\s*\("),
     "puts(): library code must not write to stdout"),
    (re.compile(r"(?<![\w:.])(?:std::)?sprintf\s*\("),
     "sprintf(): unbounded; use snprintf or std::string formatting"),
    (re.compile(r"(?<![\w:.])(?:std::)?strcpy\s*\("),
     "strcpy(): unbounded; use std::string"),
    (re.compile(r"(?<![\w:.])(?:std::)?gets\s*\("),
     "gets(): never"),
]


def strip_comments_and_strings(text: str) -> str:
    """Blanks out comments and string/char literals, preserving line count."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            end = n if end < 0 else end
            i = end
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end < 0 else end
            out.append("\n" * text.count("\n", i, end + 2))
            i = end + 2
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote:
                    break
                j += 1
            out.append(quote + quote)
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def strip_comments(text: str) -> str:
    """Blanks comments but keeps string literals, preserving line count.

    check_includes needs this variant: the include path itself is a string
    literal, which strip_comments_and_strings would blank out.
    """
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            end = text.find("\n", i)
            end = n if end < 0 else end
            i = end
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            end = text.find("*/", i + 2)
            end = n - 2 if end < 0 else end
            out.append("\n" * text.count("\n", i, end + 2))
            i = end + 2
        else:
            out.append(c)
            i += 1
    return "".join(out)


def repo_files(root: str, subdirs: tuple[str, ...],
               exts: tuple[str, ...]) -> list[str]:
    found = []
    for subdir in subdirs:
        base = os.path.join(root, subdir)
        for dirpath, _, names in os.walk(base):
            for name in sorted(names):
                if name.endswith(exts):
                    path = os.path.join(dirpath, name)
                    found.append(os.path.relpath(path, root))
    return sorted(found)


def check_headers(root: str, cxx: str, errors: list[str]) -> None:
    headers = repo_files(root, ("src",), (".h",))
    with tempfile.TemporaryDirectory() as tmp:
        for header in headers:
            tu = os.path.join(tmp, "self_contained.cc")
            with open(tu, "w", encoding="utf-8") as f:
                f.write(f'#include "{header}"\n')
            cmd = [cxx, "-std=c++20", "-fsyntax-only", "-I", root, tu]
            try:
                proc = subprocess.run(cmd, capture_output=True, text=True)
            except FileNotFoundError:
                errors.append(f"compiler not found: {cxx} (use --cxx)")
                return
            if proc.returncode != 0:
                tail = proc.stderr.strip().splitlines()
                detail = tail[0] if tail else "compiler error"
                errors.append(f"{header}: not self-contained: {detail}")


def check_threading(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h", ".cc")):
        if path in THREADING_ALLOWLIST:
            continue
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        for lineno, line in enumerate(text.splitlines(), 1):
            match = THREADING_TOKENS.search(line)
            if match:
                errors.append(
                    f"{path}:{lineno}: {match.group(0)} outside the "
                    "threading allowlist — annotate the file with "
                    "thread_annotations.h invariants and add it to "
                    "THREADING_ALLOWLIST in tools/indoorflow_lint.py")


def check_annotations(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h",)):
        if path in ("src/common/thread_annotations.h", "src/common/mutex.h"):
            continue
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        # Ranked members look like `Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(...)
        # = Mutex(LockRank::kX);`, so match only the declaration head.
        if re.search(r"\b(?:std::mutex|Mutex)\s+\w+", text):
            if "INDOORFLOW_GUARDED_BY" not in text:
                errors.append(
                    f"{path}: declares a mutex member but no "
                    "INDOORFLOW_GUARDED_BY annotation — the lock guards "
                    "nothing the compiler can check")


def check_status(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h",)):
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        brace_depth = 0
        for lineno, line in enumerate(text.splitlines(), 1):
            stripped = line.strip()
            # Only namespace-scope free functions: skip class bodies, where
            # depth > 1 (namespace indoorflow { == depth 1).
            if brace_depth <= 1 and stripped and not stripped.startswith("#"):
                match = FALLIBLE_DECL.match(stripped)
                if match:
                    ret = match.group("ret").strip()
                    if not (ret.startswith("Status") or
                            ret.startswith("Result<") or
                            ret.startswith("::indoorflow::Status") or
                            "Result<" in ret):
                        errors.append(
                            f"{path}:{lineno}: fallible API returns "
                            f"'{ret}' — fallible public functions return "
                            "Status or Result<T> (src/common/status.h)")
            brace_depth += line.count("{") - line.count("}")


def check_banned(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h", ".cc")):
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        for lineno, line in enumerate(text.splitlines(), 1):
            for pattern, message in BANNED_CALLS:
                if pattern.search(line):
                    errors.append(f"{path}:{lineno}: {message}")


def check_atomics(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h", ".cc")):
        if path in ATOMICS_ALLOWLIST:
            continue
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        for lineno, line in enumerate(text.splitlines(), 1):
            match = ATOMICS_TOKENS.search(line)
            if match:
                errors.append(
                    f"{path}:{lineno}: {match.group(0)} outside the atomics "
                    "allowlist — put shared state behind the annotated Mutex "
                    "(src/common/mutex.h), or add a TSan-stressed test and "
                    "an ATOMICS_ALLOWLIST entry in tools/indoorflow_lint.py")


def check_stderr(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h", ".cc")):
        if path in STDERR_ALLOWLIST:
            continue
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        for lineno, line in enumerate(text.splitlines(), 1):
            match = STDERR_TOKENS.search(line)
            if match:
                errors.append(
                    f"{path}:{lineno}: {match.group(0)} outside the stderr "
                    "allowlist — emit diagnostics through the structured "
                    "logging sink (src/common/log.h) instead")


def check_spans(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h", ".cc")):
        if path in SPANS_ALLOWLIST:
            continue
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        for lineno, line in enumerate(text.splitlines(), 1):
            match = SPANS_TOKENS.search(line)
            if match:
                errors.append(
                    f"{path}:{lineno}: raw span emission "
                    f"({match.group(0).strip()}...) outside "
                    "src/common/trace.* — record through the RAII Span "
                    "API (Span children, AddEvent, RecordChild) so "
                    "request span trees stay well-formed, or add a "
                    "SPANS_ALLOWLIST entry with justification")


# --- ranks check ------------------------------------------------------------

# The wrapper and its machinery are the only places allowed to name
# std::mutex or construct a Mutex without a rank.
RANKS_EXEMPT = {
    "src/common/mutex.h",
    "src/common/mutex.cc",
    "src/common/thread_annotations.h",
}

# A Mutex variable/member declaration head. `\s+\w` keeps Mutex* / Mutex&
# parameters and MutexLock out.
MUTEX_DECL = re.compile(r"\bMutex\s+(\w+)")


def check_ranks(root: str, errors: list[str]) -> None:
    for path in repo_files(root, ("src",), (".h", ".cc")):
        if path in RANKS_EXEMPT:
            continue
        text = strip_comments_and_strings(
            open(os.path.join(root, path), encoding="utf-8").read())
        for match in re.finditer(r"\bstd::mutex\b", text):
            lineno = text.count("\n", 0, match.start()) + 1
            errors.append(
                f"{path}:{lineno}: raw std::mutex — use the rank-annotated "
                "Mutex (src/common/mutex.h) so lock ordering is checked")
        for match in MUTEX_DECL.finditer(text):
            # The declaration span runs to the terminating ';' and must
            # pick its position in the lock order explicitly.
            end = text.find(";", match.end())
            span = text[match.start():end if end >= 0 else len(text)]
            if "LockRank::" not in span:
                lineno = text.count("\n", 0, match.start()) + 1
                errors.append(
                    f"{path}:{lineno}: Mutex '{match.group(1)}' has no "
                    "LockRank — construct it as Mutex(LockRank::k...) and "
                    "add INDOORFLOW_ACQUIRED_BEFORE/AFTER fences (see "
                    "docs/STATIC_ANALYSIS.md)")


# --- includes check ---------------------------------------------------------

INCLUDE_DIRECTIVE = re.compile(r'^[ \t]*#[ \t]*include[ \t]+"([^"]+)"',
                               re.MULTILINE)


def check_includes(root: str, errors: list[str],
                   compile_commands: str | None = None) -> None:
    src_files = repo_files(root, ("src",), (".h", ".cc"))
    header_deps: dict[str, list[str]] = {}
    for path in src_files:
        text = strip_comments(
            open(os.path.join(root, path), encoding="utf-8").read())
        deps = []
        for match in INCLUDE_DIRECTIVE.finditer(text):
            target = match.group(1)
            lineno = text.count("\n", 0, match.start()) + 1
            if not target.startswith("src/"):
                errors.append(
                    f'{path}:{lineno}: #include "{target}" is not '
                    "repo-rooted — quote includes in src/ start with src/ "
                    "so every file compiles with only the repo root on the "
                    "include path")
                continue
            if not os.path.exists(os.path.join(root, target)):
                errors.append(
                    f'{path}:{lineno}: #include "{target}" does not exist '
                    "in the tree")
                continue
            deps.append(target)
        if path.endswith(".h"):
            header_deps[path] = [d for d in deps if d.endswith(".h")]

    # Cycle detection over the src/ header graph (iterative DFS with a gray
    # set; each cycle is reported once, at its first discovery).
    state: dict[str, int] = {}  # 1 = on stack, 2 = done
    for start in sorted(header_deps):
        if state.get(start):
            continue
        stack: list[tuple[str, int]] = [(start, 0)]
        path_stack = []
        while stack:
            node, child = stack.pop()
            if child == 0:
                state[node] = 1
                path_stack.append(node)
            deps = header_deps.get(node, [])
            advanced = False
            for k in range(child, len(deps)):
                dep = deps[k]
                if state.get(dep) == 1:
                    cycle = path_stack[path_stack.index(dep):] + [dep]
                    errors.append(
                        "header include cycle: " + " -> ".join(cycle))
                elif not state.get(dep):
                    stack.append((node, k + 1))
                    stack.append((dep, 0))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                path_stack.pop()

    # Coverage: every src/ .cc must be in the compilation database, or the
    # thread-safety analysis and clang-tidy silently skip it.
    cc_path = compile_commands or os.path.join(root, "build",
                                               "compile_commands.json")
    if not os.path.exists(cc_path):
        return  # nothing exported yet (fresh checkout): graph checks only
    compiled: set[str] = set()
    for entry in json.load(open(cc_path, encoding="utf-8")):
        file_path = entry.get("file", "")
        if not os.path.isabs(file_path):
            file_path = os.path.join(entry.get("directory", ""), file_path)
        try:
            rel = os.path.relpath(os.path.realpath(file_path),
                                  os.path.realpath(root))
        except ValueError:
            continue
        compiled.add(rel)
    for path in src_files:
        if path.endswith(".cc") and path not in compiled:
            errors.append(
                f"{path}: missing from {os.path.relpath(cc_path, root)} — "
                "add it to a CMake target so static analysis covers it")


# --- docs check -------------------------------------------------------------

# A backticked repo path like `src/core/engine.cc` (a ':' suffix such as
# :289 naturally falls outside the character class, so cited line numbers
# don't break existence checks).
DOC_PATH_TOKEN = re.compile(
    r"`((?:src|docs|tools|tests|bench|examples|fuzz)/[\w./\-]+)")

# Markdown inline link targets: [text](target). Anchors and web URLs are
# skipped at the call site.
DOC_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

DOC_CONFIG_TOKEN = re.compile(r"`EngineConfig::(\w+)")

# A CLI flag cited at the start of a backtick span (`--threads`,
# `--cache on|off`). Flags with underscores belong to external tools
# (google-benchmark, gtest) and are not validated.
DOC_FLAG_TOKEN = re.compile(r"`--([a-z0-9][a-z0-9_-]*)")

# Flags every tool accepts without declaring.
DOC_BUILTIN_FLAGS = {"help"}

# A backticked dotted metric citation (`serve.shed`, `query.snapshot.count`).
# Only tokens whose first segment is a family root that src/ actually
# registers are validated — other dotted backtick spans (file names, JSON
# keys) are left alone.
DOC_METRIC_TOKEN = re.compile(r"`([a-z][a-z0-9_]*(?:\.[a-z0-9_]+)+)`")

# A metric registered with a literal name:
#   metrics.counter("serve.shed"), registry->gauge("streaming.tracks"), ...
METRIC_REGISTRATION = re.compile(
    r'\b(?:counter|gauge|histogram)\(\s*"([a-z0-9_.]+)"')

# The engine's per-query-kind families are registered through a shared
# prefix: EngineMetrics("query.snapshot.") builds each instrument with
# `prefix + "count"` etc. The real name set is the cross product.
METRIC_PREFIX = re.compile(r'EngineMetrics\(\s*"([a-z0-9_.]+)"')
METRIC_PREFIX_SUFFIX = re.compile(
    r'\b(?:counter|gauge|histogram)\(\s*prefix\s*\+\s*"([a-z0-9_.]+)"')

# Dotted names attached to traces rather than the metrics registry
# (EmitTraceEvent("executor.task"), span->AddEvent(hit ? "urcache.hit" :
# "urcache.miss")) share family roots with metrics and are citable too.
TRACE_NAME_CALL = re.compile(r"\b(?:EmitTraceEvent|AddEvent)\(([^;]*)")
DOTTED_LITERAL = re.compile(r'"([a-z0-9_]+(?:\.[a-z0-9_]+)+)"')


def collect_engine_config_members(root: str) -> set[str]:
    """Member names of struct EngineConfig, parsed from engine.h."""
    path = os.path.join(root, "src", "core", "engine.h")
    members: set[str] = set()
    if not os.path.exists(path):
        return members
    text = strip_comments_and_strings(
        open(path, encoding="utf-8").read())
    block = re.search(r"struct EngineConfig \{(.*?)\n\};", text, re.S)
    if not block:
        return members
    for line in block.group(1).splitlines():
        decl = re.match(
            r"\s*[A-Za-z_][\w:<>,\s*&]*?\s(\w+)\s*(?:=[^;]*)?;", line)
        if decl:
            members.add(decl.group(1))
    return members


def collect_cli_flags(root: str) -> set[str]:
    """Flag names accepted by indoorflow_cli plus tools/*.py argparse."""
    flags: set[str] = set(DOC_BUILTIN_FLAGS)
    cli = os.path.join(root, "tools", "indoorflow_cli.cc")
    if os.path.exists(cli):
        text = open(cli, encoding="utf-8").read()
        flags.update(re.findall(
            r'Get(?:Or|Int|Double)?\(\s*"([a-z0-9-]+)"', text))
    for path in repo_files(root, ("tools",), (".py",)):
        text = open(os.path.join(root, path), encoding="utf-8").read()
        flags.update(re.findall(
            r'add_argument\(\s*"--([a-z0-9-]+)"', text))
    return flags


def collect_metric_names(root: str) -> set[str]:
    """Every instrument name src/ registers or emits: literal
    counter/gauge/histogram names, the EngineMetrics prefix x suffix
    cross product, and trace span/event names."""
    names: set[str] = set()
    prefixes: set[str] = set()
    suffixes: set[str] = set()
    for path in repo_files(root, ("src",), (".h", ".cc")):
        text = open(os.path.join(root, path), encoding="utf-8").read()
        names.update(METRIC_REGISTRATION.findall(text))
        prefixes.update(METRIC_PREFIX.findall(text))
        suffixes.update(METRIC_PREFIX_SUFFIX.findall(text))
        for call in TRACE_NAME_CALL.finditer(text):
            names.update(DOTTED_LITERAL.findall(call.group(1)))
    for prefix in prefixes:
        for suffix in suffixes:
            names.add(prefix + suffix)
    return names


def check_docs(root: str, errors: list[str]) -> None:
    doc_files = repo_files(root, ("docs",), (".md",))
    for extra in ("README.md", "ROADMAP.md"):
        if os.path.exists(os.path.join(root, extra)):
            doc_files.append(extra)
    config_members = collect_engine_config_members(root)
    cli_flags = collect_cli_flags(root)
    metric_names = collect_metric_names(root)
    metric_roots = {name.split(".", 1)[0] for name in metric_names}
    for path in doc_files:
        full = os.path.join(root, path)
        base = os.path.dirname(full)
        for lineno, line in enumerate(
                open(full, encoding="utf-8").read().splitlines(), 1):
            for match in DOC_LINK.finditer(line):
                target = match.group(1).split("#", 1)[0]
                if not target or "://" in target or \
                        target.startswith("mailto:"):
                    continue
                candidates = (os.path.normpath(os.path.join(base, target)),
                              os.path.normpath(os.path.join(root, target)))
                if not any(os.path.exists(c) for c in candidates):
                    errors.append(
                        f"{path}:{lineno}: broken link target "
                        f"'{match.group(1)}'")
            for match in DOC_PATH_TOKEN.finditer(line):
                token = match.group(1)
                # Glob/brace shorthand (`src/x.*`, `src/x.{h,cc}`) is not a
                # literal path; the `*`/`{` sits just past the match.
                if "{" in token or "*" in token or \
                        line[match.end(1):match.end(1) + 1] in ("*", "{"):
                    continue
                token = token.rstrip(".")
                # A citation may name a build target (`tools/indoorflow_cli`,
                # `examples/metrics_dump`) rather than a file; accept it when
                # the source it is built from exists.
                candidates = [token] + [
                    token + ext for ext in (".cc", ".cpp", ".py")]
                if not any(os.path.exists(os.path.join(root, c))
                           for c in candidates):
                    errors.append(
                        f"{path}:{lineno}: cited path '{token}' does not "
                        "exist in the tree")
            if config_members:
                for match in DOC_CONFIG_TOKEN.finditer(line):
                    if match.group(1) not in config_members:
                        errors.append(
                            f"{path}:{lineno}: 'EngineConfig::"
                            f"{match.group(1)}' is not a member of "
                            "EngineConfig (src/core/engine.h)")
            for match in DOC_FLAG_TOKEN.finditer(line):
                flag = match.group(1)
                if "_" in flag:
                    continue  # external tool flag (benchmark/gtest style)
                if flag not in cli_flags:
                    errors.append(
                        f"{path}:{lineno}: '--{flag}' is not a flag of "
                        "indoorflow_cli or any tools/*.py script")
            for match in DOC_METRIC_TOKEN.finditer(line):
                token = match.group(1)
                if token.split(".", 1)[0] not in metric_roots:
                    continue  # not a metric family this repo registers
                if token in metric_names:
                    continue
                # A family citation (`query.snapshot`) is fine when real
                # metrics live under it.
                if any(name.startswith(token + ".")
                       for name in metric_names):
                    continue
                errors.append(
                    f"{path}:{lineno}: metric '{token}' is not registered "
                    "anywhere under src/")


CI_WORKFLOW = os.path.join(".github", "workflows", "ci.yml")
CI_USES = re.compile(r"^\s*-?\s*uses:\s*(\S+)")
# A job header: exactly two spaces of indent under the top-level `jobs:`.
CI_JOB = re.compile(r"^  ([A-Za-z0-9_-]+):\s*(#.*)?$")


def split_ci_jobs(lines: list[str]) -> dict[str, str]:
    """Maps job name -> that job's text chunk from the workflow yaml.

    Purely indentation-based (no yaml dependency): everything from one
    two-space-indented key under ``jobs:`` to the next belongs to that job.
    """
    jobs: dict[str, list[str]] = {}
    in_jobs = False
    current = None
    for line in lines:
        if line.rstrip() == "jobs:":
            in_jobs = True
            current = None
            continue
        if not in_jobs:
            continue
        if line.strip() and not line.startswith(" "):
            in_jobs = False  # back at column 0: a new top-level key
            current = None
            continue
        match = CI_JOB.match(line)
        if match:
            current = match.group(1)
            jobs[current] = []
        elif current is not None:
            jobs[current].append(line)
    return {name: "\n".join(chunk) for name, chunk in jobs.items()}


def check_ci(root: str, errors: list[str]) -> None:
    """CI-workflow hygiene: the properties that keep CI fast, reproducible,
    and cancel-safe must survive yaml refactors.

      * every `uses:` is pinned (`@vN` / `@sha`) — unpinned actions float
      * a top-level `concurrency:` group with `cancel-in-progress: true` —
        superseded pushes must not queue full runs behind themselves
      * every job that apt-installs also caches /var/cache/apt/archives,
        and every job that compiles has a ccache cache block
      * every `cmake -B` configure passes CMAKE_EXPORT_COMPILE_COMMANDS=ON
        so the includes lint and clang-tidy always have a fresh database
    """
    path = os.path.join(root, CI_WORKFLOW)
    if not os.path.exists(path):
        errors.append(f"{CI_WORKFLOW} is missing")
        return
    lines = open(path, encoding="utf-8").read().splitlines()
    text = "\n".join(lines)

    for lineno, line in enumerate(lines, 1):
        match = CI_USES.match(line)
        if not match:
            continue
        action = match.group(1)
        if action.startswith("./") or action.startswith("docker://"):
            continue  # local composite actions / digests pin differently
        if "@" not in action:
            errors.append(
                f"{CI_WORKFLOW}:{lineno}: action '{action}' is not "
                "pinned to a version (use name@vN or name@sha)")

    if not re.search(r"^concurrency:", text, re.MULTILINE):
        errors.append(
            f"{CI_WORKFLOW}: missing top-level 'concurrency:' block "
            "(superseded pushes should cancel in-flight runs)")
    elif not re.search(r"^\s+cancel-in-progress:\s*true\s*$", text,
                       re.MULTILINE):
        errors.append(
            f"{CI_WORKFLOW}: concurrency block lacks "
            "'cancel-in-progress: true'")

    for name, chunk in split_ci_jobs(lines).items():
        if "apt-get install" in chunk and \
                "/var/cache/apt/archives" not in chunk:
            errors.append(
                f"{CI_WORKFLOW}: job '{name}' apt-installs without an "
                "apt cache block (path: /var/cache/apt/archives)")
        configures = chunk.count("cmake -B")
        if configures == 0:
            continue
        if "CCACHE_DIR" not in chunk:
            errors.append(
                f"{CI_WORKFLOW}: job '{name}' compiles without a ccache "
                "cache block (path: CCACHE_DIR)")
        exports = chunk.count("CMAKE_EXPORT_COMPILE_COMMANDS=ON")
        if exports < configures:
            errors.append(
                f"{CI_WORKFLOW}: job '{name}' has {configures} 'cmake -B' "
                f"configure(s) but only {exports} pass(es) "
                "-DCMAKE_EXPORT_COMPILE_COMMANDS=ON")


CHECKS = {
    "headers": check_headers,
    "threading": check_threading,
    "annotations": check_annotations,
    "ranks": check_ranks,
    "includes": check_includes,
    "status": check_status,
    "banned": check_banned,
    "atomics": check_atomics,
    "stderr": check_stderr,
    "spans": check_spans,
    "docs": check_docs,
    "ci": check_ci,
}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--root", default=os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    parser.add_argument("--cxx", default=os.environ.get("CXX", "c++"))
    parser.add_argument("--compile-commands", default=None,
                        help="compilation database for the includes "
                             "coverage check (default: "
                             "<root>/build/compile_commands.json)")
    parser.add_argument("--skip", action="append", default=[],
                        choices=sorted(CHECKS), help="skip one check")
    parser.add_argument("checks", nargs="*", metavar="CHECK",
                        help="run only the named checks (default: all); "
                             "one of: " + ", ".join(sorted(CHECKS)))
    args = parser.parse_args()

    unknown = sorted(set(args.checks) - set(CHECKS))
    if unknown:
        parser.error("unknown check(s): " + ", ".join(unknown))
    selected = set(args.checks) if args.checks else set(CHECKS)

    failed = 0
    for name, check in CHECKS.items():
        if name not in selected:
            continue
        if name in args.skip:
            print(f"[ SKIP ] {name}")
            continue
        errors: list[str] = []
        if name == "headers":
            check(args.root, args.cxx, errors)
        elif name == "includes":
            check(args.root, errors, args.compile_commands)
        else:
            check(args.root, errors)
        if errors:
            failed += 1
            print(f"[ FAIL ] {name}")
            for error in errors:
                print(f"         {error}")
        else:
            print(f"[  OK  ] {name}")
    return failed


if __name__ == "__main__":
    sys.exit(main())
