# `indoorflow_cli stats` must print valid JSON (acceptance criterion for the
# observability layer): run it, then feed the output to Python's JSON parser
# and assert the expected top-level sections are present.
execute_process(
  COMMAND ${CLI} stats --data ${DATA}
  OUTPUT_VARIABLE stats_out
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "indoorflow_cli stats failed with ${rc}")
endif()
set(check "
import json, sys
doc = json.load(sys.stdin)
assert 'dataset' in doc, 'missing dataset section'
assert 'metrics' in doc, 'missing metrics section'
hists = doc['metrics']['histograms']
assert 'query.snapshot.latency_us' in hists, 'missing snapshot latency'
assert hists['query.snapshot.latency_us']['count'] > 0, 'no queries recorded'
for key in ('p50', 'p90', 'p95', 'p99'):
    assert key in hists['query.snapshot.latency_us'], 'missing ' + key
assert doc['metrics']['counters']['query.snapshot.count'] > 0
")
# execute_process cannot pipe a variable to stdin; stage it in a temp file.
get_filename_component(tmp_dir ${DATA} DIRECTORY)
set(tmp ${tmp_dir}/cli_stats_out.json)
file(WRITE ${tmp} "${stats_out}")
execute_process(
  COMMAND ${PYTHON} -c ${check}
  INPUT_FILE ${tmp}
  RESULT_VARIABLE parse_rc
  ERROR_VARIABLE parse_err)
if(NOT parse_rc EQUAL 0)
  message(FATAL_ERROR "stats output is not the expected JSON: ${parse_err}")
endif()
