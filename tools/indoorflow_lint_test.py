#!/usr/bin/env python3
"""Unit tests for the docs check and check selection of indoorflow_lint.

Fixture trees are built in a temp dir so the tests are hermetic: they
validate that rotten markdown (dead paths, broken links, phantom
EngineConfig members or CLI flags) fails and healthy markdown passes,
independent of the real repo's state.
"""

import os
import subprocess
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import indoorflow_lint as lint  # noqa: E402

LINT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                    "indoorflow_lint.py")

ENGINE_H = """
namespace indoorflow {
struct EngineConfig {
  TopologyMode topology = TopologyMode::kPartition;
  double vmax = 1.7;
  UrCacheConfig ur_cache;
  int threads = 1;
  int parallel_threshold = 64;
};
}  // namespace indoorflow
"""

CLI_CC = """
int main() {
  flags.GetInt("threads", 1);
  flags.GetInt("parallel-threshold", 64);
  flags.GetOr("cache", "off");
  flags.GetDouble("vmax", 1.7);
  flags.Get("data");
}
"""

METRICS_CC = """
void Register(MetricsRegistry& reg) {
  reg.counter("serve.requests");
  reg.counter("serve.shed");
  reg.histogram("serve.latency_us");
  reg.gauge("streaming.tracks");
  EmitTraceEvent("executor.task", 0, 0);
  span->AddEvent(hit ? "urcache.hit" : "urcache.miss");
}

EngineMetrics::EngineMetrics(std::string prefix)
    : count(reg.counter(prefix + "count")),
      latency_us(reg.histogram(prefix + "latency_us")) {}

EngineMetrics& Snapshot() {
  static EngineMetrics m = EngineMetrics("query.snapshot.");
  return m;
}
"""


class DocsCheckTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        os.makedirs(os.path.join(self.root, "docs"))
        os.makedirs(os.path.join(self.root, "src", "core"))
        os.makedirs(os.path.join(self.root, "tools"))
        self.write("src/core/engine.h", ENGINE_H)
        self.write("src/core/engine.cc", "// impl\n")
        self.write("src/common/metrics.cc", METRICS_CC)
        self.write("tools/indoorflow_cli.cc", CLI_CC)

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def docs_errors(self):
        errors = []
        lint.check_docs(self.root, errors)
        return errors

    def test_healthy_docs_pass(self):
        self.write("docs/GUIDE.md", (
            "See [the engine](../src/core/engine.h) and "
            "`src/core/engine.cc`.\n"
            "Tune `EngineConfig::threads` via `--threads` or "
            "`--parallel-threshold`.\n"))
        self.assertEqual(self.docs_errors(), [])

    def test_dead_cited_path_fails(self):
        self.write("docs/GUIDE.md", "Read `src/core/missing.cc` first.\n")
        errors = self.docs_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("src/core/missing.cc", errors[0])

    def test_broken_link_fails(self):
        self.write("docs/GUIDE.md", "See [tuning](TUNING.md).\n")
        errors = self.docs_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("TUNING.md", errors[0])

    def test_link_resolves_from_repo_root_too(self):
        self.write("docs/GUIDE.md", "See [cli](tools/indoorflow_cli.cc).\n")
        self.assertEqual(self.docs_errors(), [])

    def test_web_links_and_anchors_skipped(self):
        self.write("docs/GUIDE.md", (
            "[paper](https://example.org/x) [top](#section)\n"))
        self.assertEqual(self.docs_errors(), [])

    def test_phantom_engine_config_member_fails(self):
        self.write("docs/GUIDE.md", "Set `EngineConfig::warp_speed`.\n")
        errors = self.docs_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("warp_speed", errors[0])

    def test_phantom_cli_flag_fails(self):
        self.write("docs/GUIDE.md", "Pass `--turbo` to the CLI.\n")
        errors = self.docs_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("--turbo", errors[0])

    def test_external_tool_flags_not_validated(self):
        self.write("docs/GUIDE.md",
                   "Run with `--benchmark_filter=BM_Fig12`.\n")
        self.assertEqual(self.docs_errors(), [])

    def test_build_target_citation_resolves_to_source(self):
        self.write("docs/GUIDE.md", "Run `tools/indoorflow_cli` next.\n")
        self.assertEqual(self.docs_errors(), [])

    def test_glob_and_line_suffix_citations_skipped(self):
        self.write("docs/GUIDE.md", (
            "All of `src/core/engine.{h,cc}` and `src/common/metrics.*`, "
            "see `src/core/engine.cc:42`.\n"))
        self.assertEqual(self.docs_errors(), [])

    def test_registered_metric_citations_pass(self):
        self.write("docs/GUIDE.md", (
            "Watch `serve.shed` and `streaming.tracks`; per-query cost is "
            "`query.snapshot.count` / `query.snapshot.latency_us`. Traces "
            "carry `executor.task` spans and `urcache.hit` events.\n"))
        self.assertEqual(self.docs_errors(), [])

    def test_phantom_metric_fails(self):
        self.write("docs/GUIDE.md", "Alert on `serve.turbo_boost`.\n")
        errors = self.docs_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("serve.turbo_boost", errors[0])

    def test_phantom_prefix_product_metric_fails(self):
        self.write("docs/GUIDE.md", "Graph `query.snapshot.warp`.\n")
        errors = self.docs_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("query.snapshot.warp", errors[0])

    def test_metric_family_citation_passes(self):
        self.write("docs/GUIDE.md",
                   "The `query.snapshot` family counts snapshot work.\n")
        self.assertEqual(self.docs_errors(), [])

    def test_unregistered_family_roots_not_validated(self):
        self.write("docs/GUIDE.md", (
            "Merge into `baseline.json` after setting "
            "`config.num_objects`.\n"))
        self.assertEqual(self.docs_errors(), [])

    def test_readme_and_roadmap_are_linted(self):
        self.write("README.md", "Broken: `docs/NOPE.md`.\n")
        self.write("ROADMAP.md", "Broken too: [x](docs/GONE.md)\n")
        errors = self.docs_errors()
        self.assertEqual(len(errors), 2)

    def test_collect_engine_config_members(self):
        members = lint.collect_engine_config_members(self.root)
        self.assertEqual(
            members,
            {"topology", "vmax", "ur_cache", "threads",
             "parallel_threshold"})

    def test_collect_cli_flags(self):
        self.write("tools/plot.py",
                   'parser.add_argument("--out-dir", default=".")\n')
        flags = lint.collect_cli_flags(self.root)
        for expected in ("threads", "parallel-threshold", "cache", "vmax",
                         "data", "out-dir", "help"):
            self.assertIn(expected, flags)


class RanksCheckTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        os.makedirs(os.path.join(self.root, "src", "core"))

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def ranks_errors(self):
        errors = []
        lint.check_ranks(self.root, errors)
        return errors

    def test_ranked_mutex_passes(self):
        self.write("src/core/engine.h", (
            "class Engine {\n"
            "  Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceExpo)\n"
            "      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceEngine) =\n"
            "          Mutex(LockRank::kEngine);\n"
            "};\n"))
        self.assertEqual(self.ranks_errors(), [])

    def test_unranked_mutex_fails(self):
        self.write("src/core/engine.h", "class E {\n  Mutex mu_;\n};\n")
        errors = self.ranks_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("LockRank", errors[0])
        self.assertIn("mu_", errors[0])

    def test_raw_std_mutex_fails(self):
        self.write("src/core/engine.cc", "static std::mutex g_mu;\n")
        errors = self.ranks_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("std::mutex", errors[0])

    def test_wrapper_files_exempt(self):
        self.write("src/common/mutex.h", "class Mutex {\n  std::mutex mu_;\n"
                                         "};\n")
        self.write("src/common/mutex.cc", "// impl\n")
        self.assertEqual(self.ranks_errors(), [])

    def test_pointer_and_reference_params_ignored(self):
        self.write("src/core/engine.h", (
            "void Touch(Mutex* mu);\n"
            "void Hold(Mutex& mu_ref);\n"
            "MutexLock lock_helper();\n"))
        self.assertEqual(self.ranks_errors(), [])

    def test_commented_declaration_ignored(self):
        self.write("src/core/engine.h", "// Mutex mu_; (historic)\n")
        self.assertEqual(self.ranks_errors(), [])


class SpansCheckTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        os.makedirs(os.path.join(self.root, "src", "core"))

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def spans_errors(self):
        errors = []
        lint.check_spans(self.root, errors)
        return errors

    def test_span_api_usage_passes(self):
        self.write("src/core/thing.cc", (
            "void F(const Span* parent) {\n"
            "  Span child(parent, \"work\");\n"
            "  child.AddEvent(\"cache.hit\");\n"
            "  child.RecordChild(\"phase\", 0, 10);\n"
            "}\n"))
        self.assertEqual(self.spans_errors(), [])

    def test_raw_emit_trace_event_fails(self):
        self.write("src/core/thing.cc",
                   "void F() { EmitTraceEvent(\"x\", 0, 1); }\n")
        errors = self.spans_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("EmitTraceEvent", errors[0])

    def test_raw_trace_recording_call_fails(self):
        self.write("src/core/thing.cc",
                   "void F(Trace* t) { t->StartSpan(0, 0, \"x\", 0); }\n")
        errors = self.spans_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("src/core/thing.cc", errors[0])

    def test_allowlisted_files_exempt(self):
        self.write("src/common/trace.cc",
                   "void F(Trace* t) { t->RecordSpan(0, \"x\", 0, 1); }\n")
        self.write("src/common/metrics.cc",
                   "void G() { EmitTraceEvent(\"x\", 0, 1); }\n")
        self.assertEqual(self.spans_errors(), [])

    def test_commented_emission_ignored(self):
        self.write("src/core/thing.cc",
                   "// EmitTraceEvent(\"x\", 0, 1) would be wrong here\n")
        self.assertEqual(self.spans_errors(), [])

    def test_real_tree_is_clean(self):
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        errors = []
        lint.check_spans(repo_root, errors)
        self.assertEqual(errors, [])


class IncludesCheckTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name
        os.makedirs(os.path.join(self.root, "src", "core"))

    def tearDown(self):
        self.tmp.cleanup()

    def write(self, rel, content):
        path = os.path.join(self.root, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def includes_errors(self, compile_commands=None):
        errors = []
        lint.check_includes(self.root, errors, compile_commands)
        return errors

    def test_repo_rooted_includes_pass(self):
        self.write("src/core/a.h", '#include "src/core/b.h"\n')
        self.write("src/core/b.h", "// leaf\n")
        self.assertEqual(self.includes_errors(), [])

    def test_relative_include_fails(self):
        self.write("src/core/a.h", '#include "b.h"\n')
        self.write("src/core/b.h", "// leaf\n")
        errors = self.includes_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("not repo-rooted", errors[0])

    def test_missing_include_target_fails(self):
        self.write("src/core/a.h", '#include "src/core/ghost.h"\n')
        errors = self.includes_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("does not exist", errors[0])

    def test_header_cycle_fails(self):
        self.write("src/core/a.h", '#include "src/core/b.h"\n')
        self.write("src/core/b.h", '#include "src/core/c.h"\n')
        self.write("src/core/c.h", '#include "src/core/a.h"\n')
        errors = self.includes_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("cycle", errors[0])
        for name in ("src/core/a.h", "src/core/b.h", "src/core/c.h"):
            self.assertIn(name, errors[0])

    def test_angle_includes_ignored(self):
        self.write("src/core/a.h", "#include <vector>\n#include <mutex>\n")
        self.assertEqual(self.includes_errors(), [])

    def test_compile_commands_coverage(self):
        self.write("src/core/a.cc", "// built\n")
        self.write("src/core/orphan.cc", "// never built\n")
        cc = os.path.join(self.root, "cc.json")
        with open(cc, "w", encoding="utf-8") as f:
            f.write('[{"directory": "%s", "file": "src/core/a.cc", '
                    '"command": "c++ -c src/core/a.cc"}]' % self.root)
        errors = self.includes_errors(compile_commands=cc)
        self.assertEqual(len(errors), 1)
        self.assertIn("src/core/orphan.cc", errors[0])

    def test_missing_compile_commands_skips_coverage(self):
        self.write("src/core/a.cc", "// built\n")
        self.assertEqual(self.includes_errors(), [])


HEALTHY_CI_YML = """name: CI
on:
  push:

concurrency:
  group: ${{ github.workflow }}-${{ github.ref }}
  cancel-in-progress: true

env:
  CCACHE_DIR: ${{ github.workspace }}/.ccache

jobs:
  test:
    runs-on: ubuntu-latest
    steps:
      - uses: actions/checkout@v4
      - uses: actions/cache@v4
        with:
          path: /var/cache/apt/archives
          key: apt-cache
      - name: Install dependencies
        run: sudo apt-get install -y ninja-build ccache
      - uses: actions/cache@v4
        with:
          path: ${{ env.CCACHE_DIR }}
          key: ccache-key
      - name: Configure
        run: cmake -B build -DCMAKE_EXPORT_COMPILE_COMMANDS=ON
      - name: Build
        run: cmake --build build
"""


class CiCheckTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.root = self.tmp.name

    def tearDown(self):
        self.tmp.cleanup()

    def write_ci(self, content):
        path = os.path.join(self.root, ".github", "workflows", "ci.yml")
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(content)

    def ci_errors(self):
        errors = []
        lint.check_ci(self.root, errors)
        return errors

    def test_healthy_workflow_passes(self):
        self.write_ci(HEALTHY_CI_YML)
        self.assertEqual(self.ci_errors(), [])

    def test_missing_workflow_fails(self):
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("missing", errors[0])

    def test_unpinned_action_fails(self):
        self.write_ci(HEALTHY_CI_YML.replace("actions/checkout@v4",
                                             "actions/checkout"))
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("actions/checkout", errors[0])
        self.assertIn("not pinned", errors[0])

    def test_missing_concurrency_block_fails(self):
        self.write_ci(HEALTHY_CI_YML.replace(
            "concurrency:\n"
            "  group: ${{ github.workflow }}-${{ github.ref }}\n"
            "  cancel-in-progress: true\n", ""))
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("concurrency", errors[0])

    def test_missing_cancel_in_progress_fails(self):
        self.write_ci(HEALTHY_CI_YML.replace(
            "  cancel-in-progress: true\n", ""))
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("cancel-in-progress", errors[0])

    def test_apt_install_without_apt_cache_fails(self):
        self.write_ci(HEALTHY_CI_YML.replace(
            "          path: /var/cache/apt/archives\n"
            "          key: apt-cache\n",
            "          path: /somewhere/else\n"
            "          key: apt-cache\n"))
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("'test'", errors[0])
        self.assertIn("apt cache", errors[0])

    def test_compile_without_ccache_cache_fails(self):
        self.write_ci(HEALTHY_CI_YML.replace(
            "      - uses: actions/cache@v4\n"
            "        with:\n"
            "          path: ${{ env.CCACHE_DIR }}\n"
            "          key: ccache-key\n", ""))
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("ccache", errors[0])

    def test_configure_without_compile_commands_fails(self):
        self.write_ci(HEALTHY_CI_YML.replace(
            " -DCMAKE_EXPORT_COMPILE_COMMANDS=ON", ""))
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("CMAKE_EXPORT_COMPILE_COMMANDS", errors[0])

    def test_second_unflagged_configure_fails(self):
        self.write_ci(HEALTHY_CI_YML +
                      "      - name: Reconfigure\n"
                      "        run: cmake -B build2\n")
        errors = self.ci_errors()
        self.assertEqual(len(errors), 1)
        self.assertIn("2 'cmake -B'", errors[0])

    def test_real_workflow_passes(self):
        repo_root = os.path.dirname(os.path.dirname(
            os.path.abspath(__file__)))
        errors = []
        lint.check_ci(repo_root, errors)
        self.assertEqual(errors, [])


class CheckSelectionTest(unittest.TestCase):
    """`indoorflow_lint.py docs` runs only the docs check."""

    def run_lint(self, *argv):
        return subprocess.run(
            [sys.executable, LINT, *argv], capture_output=True, text=True)

    def test_positional_selection_runs_only_that_check(self):
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "docs"))
            proc = self.run_lint("--root", root, "docs")
            self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
            self.assertIn("docs", proc.stdout)
            # No other check ran (headers would need a compiler and src/).
            self.assertNotIn("headers", proc.stdout)
            self.assertNotIn("threading", proc.stdout)

    def test_positional_selection_fails_on_rotten_docs(self):
        with tempfile.TemporaryDirectory() as root:
            os.makedirs(os.path.join(root, "docs"))
            with open(os.path.join(root, "docs", "BAD.md"), "w",
                      encoding="utf-8") as f:
                f.write("Ghost file: `src/never/was.cc`.\n")
            proc = self.run_lint("--root", root, "docs")
            self.assertEqual(proc.returncode, 1, proc.stdout + proc.stderr)
            self.assertIn("src/never/was.cc", proc.stdout)

    def test_unknown_check_rejected(self):
        proc = self.run_lint("bogus")
        self.assertNotEqual(proc.returncode, 0)
        self.assertIn("unknown check", proc.stderr)


if __name__ == "__main__":
    unittest.main()
