#!/usr/bin/env python3
"""Warn-only quality gate for the sampling benchmark.

Reads google-benchmark JSON from bench/bench_sampling.cc and checks the
RecallAtK counter at the default sample budget against a floor. The
counters are deterministic (fixed sampler seed, fixed dataset seed), so
drift means the estimator or the workload changed, not runner noise —
but approximation quality is a tuning judgment, not a correctness
invariant, so by default a miss WARNS in the CI log instead of failing
the job (tools/bench_compare.py remains the hard gate for the same
counters against bench/baseline.json). Pass --strict to turn the
warning into a failure.

Vacuous passes do fail: if no benchmark row carries RecallAtK at the
requested budget (a filter or rename slipped), the gate exits 1 rather
than silently checking nothing.

Usage:
  check_sampling_quality.py sampling.json [--budget 256]
      [--min-recall 0.9] [--strict]
"""

import argparse
import json
import sys


def quality_rows(report: dict, budget: int) -> list[dict]:
    """Benchmark entries carrying RecallAtK at the requested budget.

    With --benchmark_repetitions + aggregates-only output, each variant
    reports mean/median/stddev rows; the counters are deterministic so
    any one of them works — keep the mean and plain (non-aggregate)
    rows, drop the rest.
    """
    rows = []
    for entry in report.get("benchmarks", []):
        if entry.get("run_type") == "aggregate" and \
                entry.get("aggregate_name") != "mean":
            continue
        if "RecallAtK" not in entry:
            continue
        if int(entry.get("SampleBudget", -1)) != budget:
            continue
        rows.append(entry)
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(
        description="Warn-only recall gate for bench_sampling JSON.")
    parser.add_argument("reports", nargs="+",
                        help="google-benchmark JSON output files")
    parser.add_argument("--budget", type=int, default=256,
                        help="sample budget to gate on (default: 256, "
                        "bench_sampling.cc's default budget)")
    parser.add_argument("--min-recall", type=float, default=0.9,
                        help="minimum acceptable RecallAtK (default: 0.9)")
    parser.add_argument("--strict", action="store_true",
                        help="exit non-zero on low recall instead of "
                        "warning")
    args = parser.parse_args()

    rows = []
    for path in args.reports:
        with open(path, encoding="utf-8") as f:
            rows.extend(quality_rows(json.load(f), args.budget))
    if not rows:
        print(f"check_sampling_quality: FAIL: no benchmark rows carry "
              f"RecallAtK at budget {args.budget} — the gate would pass "
              "vacuously", file=sys.stderr)
        return 1

    low = []
    for row in rows:
        recall = float(row["RecallAtK"])
        err = float(row.get("MeanRelErr", 0.0))
        verdict = "ok" if recall >= args.min_recall else "LOW"
        print(f"check_sampling_quality: {row['name']}: "
              f"RecallAtK={recall:.3f} MeanRelErr={err:.4f} "
              f"budget={args.budget} [{verdict}]")
        if recall < args.min_recall:
            low.append(row["name"])

    if low:
        print(f"check_sampling_quality: WARNING: RecallAtK below "
              f"{args.min_recall} at budget {args.budget} for: "
              f"{', '.join(low)} — retune the budget or update "
              "docs/APPROXIMATION.md's quality table", file=sys.stderr)
        return 1 if args.strict else 0
    return 0


if __name__ == "__main__":
    sys.exit(main())
