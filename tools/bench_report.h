// Parser for google-benchmark console output and a markdown renderer —
// the machinery behind `bench_report`, which turns `bench_*` runs into the
// tables EXPERIMENTS.md publishes.
//
//   ./build/bench/bench_fig10_snapshot_synthetic | ./build/tools/bench_report
//
// The console format is line-oriented:
//   BM_Name/arg:1/arg2:5        3.21 ms   3.20 ms   218 label counter=7
// This parser extracts the name, the `key:value` path arguments, wall and
// CPU time (normalized to milliseconds), iterations, the optional label,
// and `key=value` counters (benchmark's human-readable "1.23k" suffixes
// are expanded).

#ifndef INDOORFLOW_TOOLS_BENCH_REPORT_H_
#define INDOORFLOW_TOOLS_BENCH_REPORT_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace indoorflow::benchreport {

struct BenchRow {
  /// Family name (text before the first '/'), e.g. "BM_Fig10a_EffectOfK".
  std::string family;
  /// Path arguments in order, e.g. {{"k", "5"}, {"algo", "1"}}. Unnamed
  /// numeric path segments get empty keys.
  std::vector<std::pair<std::string, std::string>> args;
  double wall_ms = 0.0;
  double cpu_ms = 0.0;
  int64_t iterations = 0;
  /// SetLabel text, if any.
  std::string label;
  /// UserCounters, e.g. {"pois_eval", 75.0}.
  std::map<std::string, double> counters;
};

/// Parses one console line. Returns nullopt for non-benchmark lines
/// (headers, separators, context banners) — feed the whole output through.
std::optional<BenchRow> ParseBenchLine(const std::string& line);

/// Parses a full console dump into rows (non-benchmark lines skipped).
std::vector<BenchRow> ParseBenchOutput(const std::string& text);

/// Renders rows grouped by family as GitHub-flavored markdown tables. Each
/// family becomes a heading plus a table with one column per argument,
/// CPU time (ms), the label, and any counters present in that family.
std::string RenderMarkdown(const std::vector<BenchRow>& rows);

}  // namespace indoorflow::benchreport

#endif  // INDOORFLOW_TOOLS_BENCH_REPORT_H_
