#!/usr/bin/env python3
"""Validate Prometheus text exposition format (as served on /metrics).

Checks the subset of the format the indoorflow exposition endpoint emits
(see MetricsRegistry::DumpText): ``# TYPE`` declarations followed by sample
lines, optional ``{quantile="..."}`` labels, and ``_sum`` / ``_count``
series for summaries. Used by the CI smoke step:

  curl -s http://127.0.0.1:PORT/metrics | tools/check_metrics_exposition.py
  tools/check_metrics_exposition.py --require indoorflow_query_snapshot_count \\
      metrics.txt

With ``--traces`` the input is instead validated as the /traces/recent
JSON document (TraceRing::ToJson): a bounded ring header plus nested span
trees with W3C-shaped hex identifiers:

  curl -s http://127.0.0.1:PORT/traces/recent | \\
      tools/check_metrics_exposition.py --traces [--min-traces N]

Exit status: 0 valid, 1 on any format violation or missing --require name,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')
VALID_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
# Series suffixes each declared type additionally owns.
TYPE_SUFFIXES = {
    "summary": ("_sum", "_count"),
    "histogram": ("_sum", "_count", "_bucket"),
}


def base_name(name: str, declared: dict[str, str]) -> str | None:
    """The declared family a sample name belongs to, or None."""
    if name in declared:
        return name
    for family, kind in declared.items():
        for suffix in TYPE_SUFFIXES.get(kind, ()):
            if name == family + suffix:
                return family
    return None


def validate(text: str, errors: list[str]) -> dict[str, str]:
    declared: dict[str, str] = {}
    seen_samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: TYPE needs name + type")
                    continue
                _, _, name, kind = parts
                if not METRIC_NAME.match(name):
                    errors.append(f"line {lineno}: bad metric name {name!r}")
                if kind not in VALID_TYPES:
                    errors.append(f"line {lineno}: bad type {kind!r}")
                if name in declared:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                declared[name] = kind
            continue
        match = SAMPLE.match(line)
        if not match:
            errors.append(f"line {lineno}: not a valid sample: {line!r}")
            continue
        seen_samples += 1
        name = match.group("name")
        family = base_name(name, declared)
        if family is None:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # TYPE")
        if match.group("labels"):
            for label in match.group("labels").split(","):
                if not LABEL.match(label):
                    errors.append(
                        f"line {lineno}: malformed label {label!r}")
        value = match.group("value")
        try:
            parsed = float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r}")
            continue
        if family and declared.get(family) == "counter" and parsed < 0:
            errors.append(f"line {lineno}: counter {name} is negative")
    if seen_samples == 0:
        errors.append("no samples found (empty exposition)")
    return declared


HEX_ID = re.compile(r"^[0-9a-f]{16}$")
HEX_TRACE_ID = re.compile(r"^[0-9a-f]{32}$")


def validate_span(span, where: str, errors: list[str]) -> None:
    if not isinstance(span, dict):
        errors.append(f"{where}: span is not an object")
        return
    if not isinstance(span.get("name"), str) or not span.get("name"):
        errors.append(f"{where}: missing/empty span name")
    if not HEX_ID.match(str(span.get("span_id", ""))):
        errors.append(f"{where}: span_id is not 16 lowercase hex chars")
    for key in ("start_us", "dur_us"):
        if not isinstance(span.get(key), int):
            errors.append(f"{where}: {key} is not an integer")
    if not isinstance(span.get("events"), list):
        errors.append(f"{where}: events is not a list")
    else:
        for i, event in enumerate(span["events"]):
            if (not isinstance(event, dict)
                    or not isinstance(event.get("name"), str)
                    or not isinstance(event.get("ts_us"), int)):
                errors.append(f"{where}.events[{i}]: malformed event")
    if not isinstance(span.get("children"), list):
        errors.append(f"{where}: children is not a list")
    else:
        for i, child in enumerate(span["children"]):
            validate_span(child, f"{where}.children[{i}]", errors)


def validate_traces(text: str, min_traces: int, errors: list[str]) -> None:
    """Shape-checks a /traces/recent document (TraceRing::ToJson)."""
    try:
        doc = json.loads(text)
    except json.JSONDecodeError as exc:
        errors.append(f"not valid JSON: {exc}")
        return
    if not isinstance(doc, dict):
        errors.append("top level is not an object")
        return
    for key in ("capacity", "total"):
        if not isinstance(doc.get(key), int) or doc.get(key, -1) < 0:
            errors.append(f"{key!r} is not a non-negative integer")
    traces = doc.get("traces")
    if not isinstance(traces, list):
        errors.append("'traces' is not a list")
        return
    if len(traces) < min_traces:
        errors.append(
            f"expected at least {min_traces} trace(s), found {len(traces)}")
    for t, trace in enumerate(traces):
        where = f"traces[{t}]"
        if not isinstance(trace, dict):
            errors.append(f"{where}: not an object")
            continue
        if not HEX_TRACE_ID.match(str(trace.get("trace_id", ""))):
            errors.append(
                f"{where}: trace_id is not 32 lowercase hex chars")
        if not HEX_ID.match(str(trace.get("root_span_id", ""))):
            errors.append(
                f"{where}: root_span_id is not 16 lowercase hex chars")
        if not isinstance(trace.get("sampled"), bool):
            errors.append(f"{where}: 'sampled' is not a bool")
        for key in ("duration_us", "dropped_spans", "dropped_events"):
            if not isinstance(trace.get(key), int):
                errors.append(f"{where}: {key} is not an integer")
        spans = trace.get("spans")
        if not isinstance(spans, list):
            errors.append(f"{where}: 'spans' is not a list")
            continue
        for s, span in enumerate(spans):
            validate_span(span, f"{where}.spans[{s}]", errors)


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", default="-",
                        help="metrics text file ('-' or omitted: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this metric family is declared "
                             "(repeatable)")
    parser.add_argument("--traces", action="store_true",
                        help="validate /traces/recent JSON instead of "
                             "Prometheus text")
    parser.add_argument("--min-traces", type=int, default=0,
                        metavar="N",
                        help="with --traces: fail unless at least N traces "
                             "are present")
    args = parser.parse_args()
    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, encoding="utf-8") as f:
            text = f.read()

    errors: list[str] = []
    if args.traces:
        validate_traces(text, args.min_traces, errors)
        if errors:
            for error in errors:
                print(f"check_metrics_exposition: {error}", file=sys.stderr)
            return 1
        print("ok: /traces/recent shape validated")
        return 0
    declared = validate(text, errors)
    for name in args.require:
        if name not in declared:
            errors.append(f"required metric {name!r} not declared")
    if errors:
        for error in errors:
            print(f"check_metrics_exposition: {error}", file=sys.stderr)
        return 1
    print(f"ok: {len(declared)} metric families validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
