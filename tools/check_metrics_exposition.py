#!/usr/bin/env python3
"""Validate Prometheus text exposition format (as served on /metrics).

Checks the subset of the format the indoorflow exposition endpoint emits
(see MetricsRegistry::DumpText): ``# TYPE`` declarations followed by sample
lines, optional ``{quantile="..."}`` labels, and ``_sum`` / ``_count``
series for summaries. Used by the CI smoke step:

  curl -s http://127.0.0.1:PORT/metrics | tools/check_metrics_exposition.py
  tools/check_metrics_exposition.py --require indoorflow_query_snapshot_count \\
      metrics.txt

Exit status: 0 valid, 1 on any format violation or missing --require name,
2 on usage errors.
"""

from __future__ import annotations

import argparse
import re
import sys

METRIC_NAME = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r" (?P<value>\S+)$")
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"\\]*"$')
VALID_TYPES = {"counter", "gauge", "summary", "histogram", "untyped"}
# Series suffixes each declared type additionally owns.
TYPE_SUFFIXES = {
    "summary": ("_sum", "_count"),
    "histogram": ("_sum", "_count", "_bucket"),
}


def base_name(name: str, declared: dict[str, str]) -> str | None:
    """The declared family a sample name belongs to, or None."""
    if name in declared:
        return name
    for family, kind in declared.items():
        for suffix in TYPE_SUFFIXES.get(kind, ()):
            if name == family + suffix:
                return family
    return None


def validate(text: str, errors: list[str]) -> dict[str, str]:
    declared: dict[str, str] = {}
    seen_samples = 0
    for lineno, line in enumerate(text.splitlines(), 1):
        if not line.strip():
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) < 2 or parts[1] not in ("TYPE", "HELP"):
                errors.append(f"line {lineno}: malformed comment: {line!r}")
                continue
            if parts[1] == "TYPE":
                if len(parts) != 4:
                    errors.append(f"line {lineno}: TYPE needs name + type")
                    continue
                _, _, name, kind = parts
                if not METRIC_NAME.match(name):
                    errors.append(f"line {lineno}: bad metric name {name!r}")
                if kind not in VALID_TYPES:
                    errors.append(f"line {lineno}: bad type {kind!r}")
                if name in declared:
                    errors.append(f"line {lineno}: duplicate TYPE for {name}")
                declared[name] = kind
            continue
        match = SAMPLE.match(line)
        if not match:
            errors.append(f"line {lineno}: not a valid sample: {line!r}")
            continue
        seen_samples += 1
        name = match.group("name")
        family = base_name(name, declared)
        if family is None:
            errors.append(
                f"line {lineno}: sample {name!r} has no preceding # TYPE")
        if match.group("labels"):
            for label in match.group("labels").split(","):
                if not LABEL.match(label):
                    errors.append(
                        f"line {lineno}: malformed label {label!r}")
        value = match.group("value")
        try:
            parsed = float(value)
        except ValueError:
            errors.append(f"line {lineno}: non-numeric value {value!r}")
            continue
        if family and declared.get(family) == "counter" and parsed < 0:
            errors.append(f"line {lineno}: counter {name} is negative")
    if seen_samples == 0:
        errors.append("no samples found (empty exposition)")
    return declared


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("path", nargs="?", default="-",
                        help="metrics text file ('-' or omitted: stdin)")
    parser.add_argument("--require", action="append", default=[],
                        metavar="NAME",
                        help="fail unless this metric family is declared "
                             "(repeatable)")
    args = parser.parse_args()
    if args.path == "-":
        text = sys.stdin.read()
    else:
        with open(args.path, encoding="utf-8") as f:
            text = f.read()

    errors: list[str] = []
    declared = validate(text, errors)
    for name in args.require:
        if name not in declared:
            errors.append(f"required metric {name!r} not declared")
    if errors:
        for error in errors:
            print(f"check_metrics_exposition: {error}", file=sys.stderr)
        return 1
    print(f"ok: {len(declared)} metric families validated")
    return 0


if __name__ == "__main__":
    sys.exit(main())
