#!/usr/bin/env python3
"""Unit test for tools/bench_compare.py with fabricated benchmark JSON.

Covers the acceptance criterion directly: a synthetic >25% median regression
must exit non-zero, small drift must pass, and --update-baseline must round-
trip. Registered in ctest as bench_compare_test (tools/CMakeLists.txt).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile
import unittest

SCRIPT = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                      "bench_compare.py")


def benchmark_json(time_ms: float, presences: float) -> dict:
    """One benchmark with repetition aggregates, as Google Benchmark emits
    them under --benchmark_repetitions=N --benchmark_report_aggregates_only.
    """
    run_name = "BM_Fig10a_EffectOfK/k:20/algo:1"
    rows = []
    for aggregate in ("mean", "median", "stddev"):
        value = time_ms if aggregate != "stddev" else 0.01
        rows.append({
            "name": f"{run_name}_{aggregate}",
            "run_name": run_name,
            "run_type": "aggregate",
            "aggregate_name": aggregate,
            "iterations": 5,
            "real_time": value,
            "cpu_time": value,
            "time_unit": "ms",
            "PresenceEvals": presences,
        })
    return {"benchmarks": rows}


class BenchCompareTest(unittest.TestCase):
    def setUp(self):
        self.tmp = tempfile.TemporaryDirectory()
        self.addCleanup(self.tmp.cleanup)

    def path(self, name: str) -> str:
        return os.path.join(self.tmp.name, name)

    def write(self, name: str, doc: dict) -> str:
        path = self.path(name)
        with open(path, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        return path

    def run_compare(self, *argv: str) -> subprocess.CompletedProcess:
        return subprocess.run([sys.executable, SCRIPT, *argv],
                              capture_output=True, text=True)

    def make_baseline(self, time_ms: float, presences: float) -> str:
        result = self.write("base_run.json",
                            benchmark_json(time_ms, presences))
        baseline = self.path("baseline.json")
        proc = self.run_compare("--update-baseline", "--baseline", baseline,
                                result)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertTrue(os.path.exists(baseline))
        return baseline

    def test_unchanged_passes(self):
        baseline = self.make_baseline(10.0, 500.0)
        result = self.write("new.json", benchmark_json(10.0, 500.0))
        proc = self.run_compare("--baseline", baseline, result)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("0 regression(s)", proc.stdout)

    def test_large_regression_fails(self):
        baseline = self.make_baseline(10.0, 500.0)
        # +40% median: over the 25% gate.
        result = self.write("new.json", benchmark_json(14.0, 500.0))
        proc = self.run_compare("--baseline", baseline, result)
        self.assertNotEqual(proc.returncode, 0, proc.stdout)
        self.assertIn("FAIL", proc.stdout)

    def test_moderate_regression_warns_but_passes(self):
        baseline = self.make_baseline(10.0, 500.0)
        # +15%: between warn (10%) and fail (25%).
        result = self.write("new.json", benchmark_json(11.5, 500.0))
        proc = self.run_compare("--baseline", baseline, result)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("WARN", proc.stdout)

    def test_improvement_passes(self):
        baseline = self.make_baseline(10.0, 500.0)
        result = self.write("new.json", benchmark_json(6.0, 500.0))
        proc = self.run_compare("--baseline", baseline, result)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)

    def test_counter_drift_warns(self):
        baseline = self.make_baseline(10.0, 500.0)
        # Same time, but the seeded workload did 10% more presence
        # evaluations: a pruning regression the clock missed.
        result = self.write("new.json", benchmark_json(10.0, 550.0))
        proc = self.run_compare("--baseline", baseline, result)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("PresenceEvals", proc.stdout)

    def test_new_and_gone_benchmarks_pass(self):
        baseline = self.make_baseline(10.0, 500.0)
        other = benchmark_json(10.0, 500.0)
        for row in other["benchmarks"]:
            row["run_name"] = "BM_Brand/new"
            row["name"] = "BM_Brand/new_" + row["aggregate_name"]
        result = self.write("new.json", other)
        proc = self.run_compare("--baseline", baseline, result)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertIn("NEW", proc.stdout)
        self.assertIn("GONE", proc.stdout)

    def test_ignore_skips_filtered_out_baseline_entries(self):
        # A baseline entry the run filters out (like the UnderPolling
        # throughput records CI excludes with --benchmark_filter) must not
        # show up as GONE when --ignore covers it.
        baseline = self.make_baseline(10.0, 500.0)
        with open(baseline, encoding="utf-8") as f:
            doc = json.load(f)
        doc["benchmarks"]["BM_IngestUnderPolling/shards:8"] = {
            "counters": {}, "time_ns": 123.0}
        with open(baseline, "w", encoding="utf-8") as f:
            json.dump(doc, f)
        result = self.write("new.json", benchmark_json(10.0, 500.0))
        proc = self.run_compare("--baseline", baseline, result)
        self.assertIn("GONE", proc.stdout)
        proc = self.run_compare("--baseline", baseline,
                                "--ignore", "UnderPolling", result)
        self.assertEqual(proc.returncode, 0, proc.stdout + proc.stderr)
        self.assertNotIn("GONE", proc.stdout)

    def test_ignore_everything_errors(self):
        baseline = self.make_baseline(10.0, 500.0)
        result = self.write("new.json", benchmark_json(10.0, 500.0))
        proc = self.run_compare("--baseline", baseline,
                                "--ignore", "BM_", result)
        self.assertEqual(proc.returncode, 2)

    def test_update_baseline_merges_keeping_other_suites(self):
        # Refreshing from one suite's results must not drop the entries
        # another suite contributed (the gate for those would silently
        # vanish — every compare would report them as warn-only NEW).
        baseline = self.make_baseline(10.0, 500.0)
        other = benchmark_json(20.0, 100.0)
        for row in other["benchmarks"]:
            row["run_name"] = "BM_OtherSuite/k:1"
            row["name"] = "BM_OtherSuite/k:1_" + row["aggregate_name"]
        result = self.write("other.json", other)
        proc = self.run_compare("--update-baseline", "--baseline", baseline,
                                result)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        self.assertIn("kept 1 existing", proc.stdout)
        with open(baseline, encoding="utf-8") as f:
            names = set(json.load(f)["benchmarks"])
        self.assertEqual(
            names, {"BM_Fig10a_EffectOfK/k:20/algo:1", "BM_OtherSuite/k:1"})

    def test_update_baseline_replace_drops_absent_entries(self):
        baseline = self.make_baseline(10.0, 500.0)
        other = benchmark_json(20.0, 100.0)
        for row in other["benchmarks"]:
            row["run_name"] = "BM_OtherSuite/k:1"
            row["name"] = "BM_OtherSuite/k:1_" + row["aggregate_name"]
        result = self.write("other.json", other)
        proc = self.run_compare("--update-baseline", "--replace",
                                "--baseline", baseline, result)
        self.assertEqual(proc.returncode, 0, proc.stderr)
        with open(baseline, encoding="utf-8") as f:
            names = set(json.load(f)["benchmarks"])
        self.assertEqual(names, {"BM_OtherSuite/k:1"})

    def test_missing_results_file_errors(self):
        baseline = self.make_baseline(10.0, 500.0)
        proc = self.run_compare("--baseline", baseline,
                                self.path("nope.json"))
        self.assertEqual(proc.returncode, 2)


if __name__ == "__main__":
    unittest.main()
