// bench_report — turn google-benchmark console output into markdown.
//
//   ./build/bench/bench_fig13_snapshot_cph | ./build/tools/bench_report
//   ./build/tools/bench_report bench_output.txt > report.md
//
// Reads the files given as arguments (or stdin when none), parses every
// BM_ line, and prints one markdown table per benchmark family.

#include <cstdio>
#include <fstream>
#include <iostream>
#include <iterator>
#include <sstream>
#include <string>

#include "tools/bench_report.h"

int main(int argc, char** argv) {
  std::string text;
  if (argc <= 1) {
    text.assign(std::istreambuf_iterator<char>(std::cin),
                std::istreambuf_iterator<char>());
  } else {
    for (int i = 1; i < argc; ++i) {
      std::ifstream in(argv[i]);
      if (!in) {
        std::fprintf(stderr, "error: cannot open %s\n", argv[i]);
        return 1;
      }
      text.append(std::istreambuf_iterator<char>(in),
                  std::istreambuf_iterator<char>());
      text.push_back('\n');
    }
  }
  const auto rows = indoorflow::benchreport::ParseBenchOutput(text);
  if (rows.empty()) {
    std::fprintf(stderr, "warning: no BM_ lines found in input\n");
  }
  std::fputs(indoorflow::benchreport::RenderMarkdown(rows).c_str(), stdout);
  return 0;
}
