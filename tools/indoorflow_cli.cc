// indoorflow_cli — run the library end-to-end from the command line over
// flat files (see src/indoor/plan_io.h and src/tracking/io.h for formats).
//
// Subcommands:
//   generate  --out DIR [--dataset office|cph|mall] [--objects N]
//             [--duration S] [--range R] [--seed S] [--pois N]
//             Writes plan.txt, pois.txt, deployment.csv, ott.csv.
//   snapshot  --data DIR --t T [--k K] [--algo iterative|join]
//             [--topology off|partition|exact] [--metric flow|density]
//   interval  --data DIR --ts T --te T [--k K] [--algo ...] [--topology ...]
//   threshold --data DIR --tau F (--t T | --ts T --te T) [--algo ...]
//             All POIs with flow >= tau (extension over the paper's top-k).
//   itinerary --data DIR --object ID [--t0 T] [--t1 T] [--step S]
//             [--min-presence P] [--min-duration S] [--max-area A]
//             Per-object visit reconstruction (CSV on stdout).
//   timeline  --data DIR --poi ID [--t0 T] [--t1 T] [--step S]
//   report    --data DIR [--k K] [--slots N]   (markdown occupancy report)
//   stats     --data DIR
//   explain   --data DIR (--t T | --ts T --te T) [--k K] [--tau F]
//             [--algo ...] [--metric flow|density] [--format text|json]
//             EXPLAIN profile of one query: per-POI prune/evaluate
//             verdicts, phase times, object costs, and the join trace.
//   serve     --data DIR [--port P] [--duration S] [--interval S]
//             Live exposition endpoint: /metrics, /healthz,
//             /profiles/recent over a rolling probe workload.
//   cleanse   --readings FILE.csv --deployment FILE.csv --out FILE.csv
//             [--vmax V] [--slack S]    (speed-constraint outlier removal)
//   render    --data DIR --out FILE.svg [--heatmap-t T]
//
// Every command that builds a query engine additionally takes
// --cache on|off [--cache-mb N] [--cache-shards N] — the cross-query
// uncertainty-region cache (src/core/ur_cache.h, docs/TUNING.md) —
// --threads N [--parallel-threshold N] — intra-query fan-out across the
// shared executor (src/common/executor.h, docs/TUNING.md) — and
// --approx exact|sampled|adaptive [--sample-budget N] — sampling-based
// approximate evaluation for iterative top-k queries (src/core/approx.h,
// docs/APPROXIMATION.md); the join algorithm always evaluates exactly.
//
// Exit code 0 on success; errors go to the structured log (stderr by
// default; see src/common/log.h for INDOORFLOW_LOG_* configuration).

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "src/common/expo_server.h"
#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/core/engine.h"
#include "src/core/query_profile.h"
#include "src/core/streaming.h"
#include "src/serve/query_service.h"
#include "src/core/flow_matrix.h"
#include "src/core/itinerary.h"
#include "src/core/timeline.h"
#include "src/indoor/plan_io.h"
#include "src/tracking/cleansing.h"
#include "src/tracking/io.h"
#include "src/viz/svg.h"

namespace indoorflow {
namespace {

// ---------------------------------------------------------------------------
// Minimal --flag value parsing.

class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string key = argv[i];
      if (key.rfind("--", 0) != 0 || i + 1 >= argc) {
        ok_ = false;
        bad_ = key;
        return;
      }
      values_[key.substr(2)] = argv[++i];
    }
  }

  bool ok() const { return ok_; }
  const std::string& bad() const { return bad_; }

  std::optional<std::string> Get(const std::string& key) {
    auto it = values_.find(key);
    if (it == values_.end()) return std::nullopt;
    consumed_.insert(it->first);
    return it->second;
  }

  std::string GetOr(const std::string& key, const std::string& fallback) {
    return Get(key).value_or(fallback);
  }

  double GetDouble(const std::string& key, double fallback) {
    const auto value = Get(key);
    return value ? std::atof(value->c_str()) : fallback;
  }

  int GetInt(const std::string& key, int fallback) {
    const auto value = Get(key);
    return value ? std::atoi(value->c_str()) : fallback;
  }

  /// Any flags that no subcommand consumed (typos).
  std::vector<std::string> Unconsumed() const {
    std::vector<std::string> out;
    for (const auto& [key, value] : values_) {
      if (!consumed_.contains(key)) out.push_back("--" + key);
    }
    return out;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> consumed_;
  bool ok_ = true;
  std::string bad_;
};

int Fail(const std::string& message) {
  Log(LogLevel::kError, "cli", message);
  return 1;
}

// ---------------------------------------------------------------------------
// Dataset directory I/O.

struct LoadedDataset {
  FloorPlan plan;
  std::unique_ptr<DoorGraph> graph;
  Deployment deployment;
  ObjectTrackingTable ott;
  PoiSet pois;
};

// Cross-file consistency checks. The readers validate each file in
// isolation, but a truncated deployment.csv or a non-id-dense pois.txt
// would otherwise surface as out-of-bounds indexing deep inside the query
// engine (the engine requires pois[i].id == i and indexes devices by id).
Status ValidateDataset(const LoadedDataset& data) {
  for (size_t i = 0; i < data.pois.size(); ++i) {
    if (data.pois[i].id != static_cast<PoiId>(i)) {
      return Status::InvalidArgument(
          "pois.txt is not id-dense: entry " + std::to_string(i) +
          " has id " + std::to_string(data.pois[i].id));
    }
  }
  for (size_t i = 0; i < data.ott.size(); ++i) {
    const TrackingRecord& r = data.ott.record(static_cast<RecordIndex>(i));
    if (r.device_id < 0 ||
        static_cast<size_t>(r.device_id) >= data.deployment.size()) {
      return Status::InvalidArgument(
          "ott.csv record " + std::to_string(i) + " references device " +
          std::to_string(r.device_id) + " but deployment.csv defines " +
          std::to_string(data.deployment.size()) + " devices");
    }
  }
  return Status::OK();
}

Result<LoadedDataset> LoadDataDir(const std::string& dir) {
  LoadedDataset data;
  auto plan = ReadPlanFile(dir + "/plan.txt");
  if (!plan.ok()) return plan.status();
  data.plan = std::move(*plan);
  auto pois = ReadPoisFile(dir + "/pois.txt");
  if (!pois.ok()) return pois.status();
  data.pois = std::move(*pois);
  auto deployment = ReadDeploymentCsv(dir + "/deployment.csv");
  if (!deployment.ok()) return deployment.status();
  data.deployment = std::move(*deployment);
  auto ott = ReadOttCsv(dir + "/ott.csv");
  if (!ott.ok()) return ott.status();
  data.ott = std::move(*ott);
  INDOORFLOW_RETURN_IF_ERROR(ValidateDataset(data));
  data.graph = std::make_unique<DoorGraph>(data.plan);
  return data;
}

Status SaveDataDir(const Dataset& ds, const std::string& dir) {
  INDOORFLOW_RETURN_IF_ERROR(WritePlanFile(ds.built.plan, dir + "/plan.txt"));
  INDOORFLOW_RETURN_IF_ERROR(WritePoisFile(ds.pois, dir + "/pois.txt"));
  INDOORFLOW_RETURN_IF_ERROR(
      WriteDeploymentCsv(ds.deployment, dir + "/deployment.csv"));
  INDOORFLOW_RETURN_IF_ERROR(WriteOttCsv(ds.ott, dir + "/ott.csv"));
  return Status::OK();
}

Result<TopologyMode> ParseTopology(const std::string& name) {
  if (name == "off") return TopologyMode::kOff;
  if (name == "partition") return TopologyMode::kPartition;
  if (name == "exact") return TopologyMode::kExact;
  return Status::InvalidArgument("unknown topology mode '" + name + "'");
}

Result<Algorithm> ParseAlgorithm(const std::string& name) {
  if (name == "iterative") return Algorithm::kIterative;
  if (name == "join") return Algorithm::kJoin;
  return Status::InvalidArgument("unknown algorithm '" + name + "'");
}

int CheckUnconsumed(const Flags& flags) {
  for (const std::string& flag : flags.Unconsumed()) {
    return Fail("unknown flag " + flag);
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Subcommands.

int CmdGenerate(Flags& flags) {
  const auto out = flags.Get("out");
  if (!out) return Fail("generate requires --out DIR");
  const std::string dataset = flags.GetOr("dataset", "office");
  const int objects = flags.GetInt("objects", 300);
  const double duration = flags.GetDouble("duration", 3600.0);
  const double range = flags.GetDouble("range", 1.5);
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const int pois = flags.GetInt("pois", 75);
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;

  Dataset ds;
  if (dataset == "office") {
    OfficeDatasetConfig config;
    config.num_objects = objects;
    config.duration = duration;
    config.detection_range = range;
    config.seed = seed;
    config.num_pois = pois;
    ds = GenerateOfficeDataset(config);
  } else if (dataset == "cph") {
    CphDatasetConfig config;
    config.num_passengers = objects;
    config.window = duration;
    config.detection_range = range > 2.6 ? range : 5.0;
    config.seed = seed;
    config.num_pois = pois;
    ds = GenerateCphLikeDataset(config);
  } else if (dataset == "mall") {
    MallDatasetConfig config;
    config.num_shoppers = objects;
    config.window = duration;
    config.detection_range = range;
    config.seed = seed;
    config.num_pois = pois;
    ds = GenerateMallDataset(config);
  } else {
    return Fail("unknown dataset '" + dataset + "' (office|cph|mall)");
  }
  const Status status = SaveDataDir(ds, *out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf(
      "wrote %s/{plan.txt,pois.txt,deployment.csv,ott.csv}: %zu devices, "
      "%zu records, %zu objects, %zu POIs\n",
      out->c_str(), ds.deployment.size(), ds.ott.size(),
      ds.ott.objects().size(), ds.pois.size());
  return 0;
}

struct EngineBundle {
  // Behind a unique_ptr so the QueryEngine's references into it stay valid
  // when the bundle is moved out of MakeEngine.
  std::unique_ptr<LoadedDataset> data;
  std::unique_ptr<QueryEngine> engine;
  // The config the engine was built with, kept so subcommands can reuse
  // pieces of it (serve mirrors approx into its StreamingOptions).
  EngineConfig config;

  const LoadedDataset& dataset() const { return *data; }
};

Result<EngineBundle> MakeEngine(Flags& flags) {
  const auto dir = flags.Get("data");
  if (!dir) return Status::InvalidArgument("missing --data DIR");
  auto topology = ParseTopology(flags.GetOr("topology", "partition"));
  if (!topology.ok()) return topology.status();
  const double vmax = flags.GetDouble("vmax", 1.1);
  const std::string cache = flags.GetOr("cache", "off");
  if (cache != "on" && cache != "off") {
    return Status::InvalidArgument("--cache must be on or off");
  }
  const int cache_mb = flags.GetInt("cache-mb", 64);
  const int cache_shards = flags.GetInt("cache-shards", 8);
  if (cache_mb <= 0) return Status::InvalidArgument("--cache-mb must be > 0");
  if (cache_shards <= 0) {
    return Status::InvalidArgument("--cache-shards must be > 0");
  }
  const int threads = flags.GetInt("threads", 1);
  const int parallel_threshold = flags.GetInt("parallel-threshold", 64);
  if (parallel_threshold <= 0) {
    return Status::InvalidArgument("--parallel-threshold must be > 0");
  }
  ApproxConfig approx;
  const std::string approx_name = flags.GetOr("approx", "exact");
  if (!ApproxModeFromName(approx_name, &approx.mode)) {
    return Status::InvalidArgument("--approx must be exact|sampled|adaptive");
  }
  approx.sample_budget = flags.GetInt(
      "sample-budget", static_cast<int>(approx.sample_budget));
  if (approx.sample_budget < 2) {
    // One draw has no within-sample variance, so its error bounds would
    // be undefined; see docs/APPROXIMATION.md.
    return Status::InvalidArgument("--sample-budget must be >= 2");
  }

  auto data = LoadDataDir(*dir);
  if (!data.ok()) return data.status();
  EngineBundle bundle;
  bundle.data = std::make_unique<LoadedDataset>(std::move(*data));
  EngineConfig config;
  config.topology = *topology;
  config.vmax = vmax;
  // Cross-query UR cache (docs/TUNING.md): pays off for repeated
  // timestamps — `serve` pollers, `timeline`/`report` slot scans, reruns.
  config.ur_cache.enabled = cache == "on";
  config.ur_cache.max_bytes = static_cast<size_t>(cache_mb) << 20;
  config.ur_cache.shards = cache_shards;
  // Intra-query fan-out (docs/TUNING.md): --threads N (> 1 or <= 0 for
  // hardware concurrency) spreads per-object work across the shared
  // executor once a query sees --parallel-threshold candidates. Results
  // are bit-identical to --threads 1.
  config.threads = threads;
  config.parallel_threshold = parallel_threshold;
  // Approximate evaluation (docs/APPROXIMATION.md): iterative top-k queries
  // sample candidates under --approx sampled|adaptive; everything else
  // (join, threshold, density) stays exact.
  config.approx = approx;
  bundle.config = config;
  bundle.engine = std::make_unique<QueryEngine>(
      bundle.data->plan, *bundle.data->graph, bundle.data->deployment,
      bundle.data->ott, bundle.data->pois, config);
  return bundle;
}

void PrintTopK(const LoadedDataset& data, const std::vector<PoiFlow>& top,
               const QueryStats& stats) {
  std::printf("%-6s %-24s %s\n", "poi", "name", "flow");
  for (const PoiFlow& f : top) {
    std::printf("%-6d %-24s %.4f\n", f.poi,
                data.pois[static_cast<size_t>(f.poi)].name.c_str(), f.flow);
  }
  std::printf("# stats %s\n", stats.ToJson().c_str());
}

// Estimate variant: adds the standard error and 95% interval columns so an
// approximate answer is never mistaken for an exact one.
void PrintTopKEstimates(const LoadedDataset& data,
                        const std::vector<FlowEstimate>& top,
                        const QueryStats& stats) {
  std::printf("%-6s %-24s %-10s %-9s %s\n", "poi", "name", "flow", "stderr",
              "ci95");
  for (const FlowEstimate& e : top) {
    if (e.exact) {
      std::printf("%-6d %-24s %-10.4f %-9s exact\n", e.poi,
                  data.pois[static_cast<size_t>(e.poi)].name.c_str(),
                  e.value, "-");
    } else if (!std::isfinite(e.std_err)) {
      // Degenerate (< 2 evaluated draws) estimate: the error is
      // undefined, not zero.
      std::printf("%-6d %-24s %-10.4f %-9s undefined\n", e.poi,
                  data.pois[static_cast<size_t>(e.poi)].name.c_str(),
                  e.value, "-");
    } else {
      std::printf("%-6d %-24s %-10.4f %-9.4f [%.4f, %.4f]\n", e.poi,
                  data.pois[static_cast<size_t>(e.poi)].name.c_str(),
                  e.value, e.std_err, e.ci_low, e.ci_high);
    }
  }
  std::printf("# stats %s\n", stats.ToJson().c_str());
}

int CmdSnapshot(Flags& flags) {
  const auto t_flag = flags.Get("t");
  if (!t_flag) return Fail("snapshot requires --t T");
  const double t = std::atof(t_flag->c_str());
  const int k = flags.GetInt("k", 10);
  auto algo = ParseAlgorithm(flags.GetOr("algo", "join"));
  if (!algo.ok()) return Fail(algo.status().ToString());
  const std::string metric = flags.GetOr("metric", "flow");
  if (metric != "flow" && metric != "density") {
    return Fail("--metric must be flow or density");
  }
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  QueryStats stats;
  if (metric == "flow" && *algo == Algorithm::kIterative &&
      bundle->config.approx.mode != ApproxMode::kExact) {
    const auto top = bundle->engine->SnapshotTopKEstimate(
        t, k, bundle->config.approx, nullptr, &stats);
    PrintTopKEstimates(bundle->dataset(), top, stats);
    return 0;
  }
  const auto top =
      metric == "density"
          ? bundle->engine->SnapshotDensityTopK(t, k, *algo, nullptr, &stats)
          : bundle->engine->SnapshotTopK(t, k, *algo, nullptr, &stats);
  PrintTopK(bundle->dataset(), top, stats);
  return 0;
}

int CmdInterval(Flags& flags) {
  const auto ts_flag = flags.Get("ts");
  const auto te_flag = flags.Get("te");
  if (!ts_flag || !te_flag) return Fail("interval requires --ts T --te T");
  const double ts = std::atof(ts_flag->c_str());
  const double te = std::atof(te_flag->c_str());
  const int k = flags.GetInt("k", 10);
  auto algo = ParseAlgorithm(flags.GetOr("algo", "join"));
  if (!algo.ok()) return Fail(algo.status().ToString());
  const std::string metric = flags.GetOr("metric", "flow");
  if (metric != "flow" && metric != "density") {
    return Fail("--metric must be flow or density");
  }
  if (te < ts) return Fail("--te must be >= --ts");
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  QueryStats stats;
  if (metric == "flow" && *algo == Algorithm::kIterative &&
      bundle->config.approx.mode != ApproxMode::kExact) {
    const auto top = bundle->engine->IntervalTopKEstimate(
        ts, te, k, bundle->config.approx, nullptr, &stats);
    PrintTopKEstimates(bundle->dataset(), top, stats);
    return 0;
  }
  const auto top =
      metric == "density"
          ? bundle->engine->IntervalDensityTopK(ts, te, k, *algo, nullptr,
                                                &stats)
          : bundle->engine->IntervalTopK(ts, te, k, *algo, nullptr, &stats);
  PrintTopK(bundle->dataset(), top, stats);
  return 0;
}

int CmdThreshold(Flags& flags) {
  const auto tau_flag = flags.Get("tau");
  if (!tau_flag) return Fail("threshold requires --tau TAU (> 0)");
  const double tau = std::atof(tau_flag->c_str());
  if (tau <= 0.0) return Fail("--tau must be > 0");
  auto algo = ParseAlgorithm(flags.GetOr("algo", "join"));
  if (!algo.ok()) return Fail(algo.status().ToString());
  const auto t_flag = flags.Get("t");
  const auto ts_flag = flags.Get("ts");
  const auto te_flag = flags.Get("te");
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  QueryStats stats;
  std::vector<PoiFlow> hot;
  if (t_flag) {
    hot = bundle->engine->SnapshotThreshold(std::atof(t_flag->c_str()), tau,
                                            *algo, nullptr, &stats);
  } else if (ts_flag && te_flag) {
    const double ts = std::atof(ts_flag->c_str());
    const double te = std::atof(te_flag->c_str());
    if (te < ts) return Fail("--te must be >= --ts");
    hot = bundle->engine->IntervalThreshold(ts, te, tau, *algo, nullptr,
                                            &stats);
  } else {
    return Fail("threshold requires --t T (snapshot) or --ts/--te (interval)");
  }
  PrintTopK(bundle->dataset(), hot, stats);
  return 0;
}

int CmdItinerary(Flags& flags) {
  const int object = flags.GetInt("object", -1);
  if (object < 0) return Fail("itinerary requires --object ID");
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  const double t0 = flags.GetDouble("t0", bundle->data->ott.min_time());
  const double t1 = flags.GetDouble("t1", bundle->data->ott.max_time());
  ItineraryOptions options;
  options.step = flags.GetDouble("step", 10.0);
  options.min_presence = flags.GetDouble("min-presence", 0.2);
  options.min_duration = flags.GetDouble("min-duration", 0.0);
  options.max_region_bounds_area =
      flags.GetDouble("max-area", options.max_region_bounds_area);
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  if (options.step <= 0.0 || t1 < t0) return Fail("bad itinerary window");
  const Itinerary it = BuildItinerary(*bundle->engine,
                                      static_cast<ObjectId>(object), t0, t1,
                                      options);
  std::printf("start,end,poi,name,mean_presence,peak_presence\n");
  for (const ItineraryVisit& v : it.visits) {
    std::printf("%.1f,%.1f,%d,%s,%.4f,%.4f\n", v.start, v.end, v.poi,
                bundle->data->pois[static_cast<size_t>(v.poi)].name.c_str(),
                v.mean_presence, v.peak_presence);
  }
  return 0;
}

int CmdTimeline(Flags& flags) {
  const int poi = flags.GetInt("poi", -1);
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (poi < 0 || static_cast<size_t>(poi) >= bundle->data->pois.size()) {
    return Fail("--poi must name a POI id in the dataset");
  }
  const double t0 = flags.GetDouble("t0", bundle->data->ott.min_time());
  const double t1 = flags.GetDouble("t1", bundle->data->ott.max_time());
  const double step = flags.GetDouble("step", (t1 - t0) / 20.0);
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  if (step <= 0.0 || t1 < t0) return Fail("bad timeline window");
  const auto timeline =
      FlowTimeline(*bundle->engine, static_cast<PoiId>(poi), t0, t1, step);
  std::printf("t,flow\n");
  for (const TimelinePoint& p : timeline) {
    std::printf("%.1f,%.4f\n", p.t, p.flow);
  }
  const TimelinePoint peak = PeakFlow(timeline);
  std::printf("# peak %.4f at t=%.1f, average %.4f\n", peak.flow, peak.t,
              AverageFlow(timeline));
  return 0;
}

// Machine-readable dataset summary plus the process metrics registry as one
// JSON object. A small warm-up workload (snapshot + interval top-k with both
// algorithms, spread over the observation span) populates the per-phase
// latency histograms and QueryStats counters before the dump, so the output
// always carries real percentiles. --warmup N controls the probe count.
int CmdStats(Flags& flags) {
  const int warmup = flags.GetInt("warmup", 8);
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  const LoadedDataset& data = bundle->dataset();

  double span_total = 0.0;
  for (size_t i = 0; i < data.ott.size(); ++i) {
    const TrackingRecord& r = data.ott.record(static_cast<RecordIndex>(i));
    span_total += r.te - r.ts;
  }
  const double avg_record =
      data.ott.empty()
          ? 0.0
          : span_total / static_cast<double>(data.ott.size());

  if (!data.ott.empty() && warmup > 0) {
    const double t0 = data.ott.min_time();
    const double t1 = data.ott.max_time();
    for (int i = 0; i < warmup; ++i) {
      const double t =
          t0 + (t1 - t0) * (static_cast<double>(i) + 0.5) / warmup;
      for (const Algorithm algo :
           {Algorithm::kIterative, Algorithm::kJoin}) {
        bundle->engine->SnapshotTopK(t, 10, algo);
        bundle->engine->IntervalTopK(std::max(t0, t - 60.0),
                                     std::min(t1, t + 60.0), 10, algo);
      }
    }
  }

  std::printf(
      "{\"dataset\":{\"partitions\":%zu,\"doors\":%zu,\"devices\":%zu,"
      "\"devices_disjoint\":%s,\"pois\":%zu,\"objects\":%zu,"
      "\"records\":%zu,\"records_overlapping\":%s,\"time_min\":%.1f,"
      "\"time_max\":%.1f,\"avg_record_seconds\":%.3f},\n\"metrics\":%s}\n",
      data.plan.partitions().size(), data.plan.doors().size(),
      data.deployment.size(),
      data.deployment.RangesDisjoint() ? "true" : "false",
      data.pois.size(), data.ott.objects().size(), data.ott.size(),
      data.ott.has_overlaps() ? "true" : "false", data.ott.min_time(),
      data.ott.max_time(), avg_record,
      MetricsRegistry::Default().DumpJson().c_str());
  return 0;
}

// EXPLAIN: run one query with a QueryProfile attached and render the
// pruning/evaluation profile instead of the result rows. The full POI set
// is always queried, so the per-POI verdict counts partition the dataset's
// POI count. --tau switches from top-k to the threshold variant.
int CmdExplain(Flags& flags) {
  const auto t_flag = flags.Get("t");
  const auto ts_flag = flags.Get("ts");
  const auto te_flag = flags.Get("te");
  const int k = flags.GetInt("k", 10);
  const double tau = flags.GetDouble("tau", 0.0);
  const std::string format = flags.GetOr("format", "text");
  if (format != "text" && format != "json") {
    return Fail("--format must be text or json");
  }
  auto algo = ParseAlgorithm(flags.GetOr("algo", "join"));
  if (!algo.ok()) return Fail(algo.status().ToString());
  const std::string metric = flags.GetOr("metric", "flow");
  if (metric != "flow" && metric != "density") {
    return Fail("--metric must be flow or density");
  }
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;

  QueryStats stats;
  QueryProfile profile;  // detail stays true: full EXPLAIN
  if (t_flag) {
    const double t = std::atof(t_flag->c_str());
    if (tau > 0.0) {
      bundle->engine->SnapshotThreshold(t, tau, *algo, nullptr, &stats,
                                        &profile);
    } else if (metric == "density") {
      bundle->engine->SnapshotDensityTopK(t, k, *algo, nullptr, &stats,
                                          &profile);
    } else if (*algo == Algorithm::kIterative &&
               bundle->config.approx.mode != ApproxMode::kExact) {
      bundle->engine->SnapshotTopKEstimate(t, k, bundle->config.approx,
                                           nullptr, &stats, &profile);
    } else {
      bundle->engine->SnapshotTopK(t, k, *algo, nullptr, &stats, &profile);
    }
  } else if (ts_flag && te_flag) {
    const double ts = std::atof(ts_flag->c_str());
    const double te = std::atof(te_flag->c_str());
    if (te < ts) return Fail("--te must be >= --ts");
    if (tau > 0.0) {
      bundle->engine->IntervalThreshold(ts, te, tau, *algo, nullptr, &stats,
                                        &profile);
    } else if (metric == "density") {
      bundle->engine->IntervalDensityTopK(ts, te, k, *algo, nullptr, &stats,
                                          &profile);
    } else if (*algo == Algorithm::kIterative &&
               bundle->config.approx.mode != ApproxMode::kExact) {
      bundle->engine->IntervalTopKEstimate(ts, te, k, bundle->config.approx,
                                           nullptr, &stats, &profile);
    } else {
      bundle->engine->IntervalTopK(ts, te, k, *algo, nullptr, &stats,
                                   &profile);
    }
  } else {
    return Fail("explain requires --t T (snapshot) or --ts/--te (interval)");
  }
  if (format == "json") {
    std::printf("%s\n", profile.ToJson().c_str());
  } else {
    std::fputs(profile.ToText().c_str(), stdout);
  }
  return 0;
}

// A one-shot markdown occupancy report for a dataset directory: summary
// stats, the busiest moment, per-slot top POIs from a materialized flow
// matrix, and the average-occupancy ranking over the whole span.
int CmdReport(Flags& flags) {
  const int k = flags.GetInt("k", 5);
  const int slots = flags.GetInt("slots", 6);
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  const LoadedDataset& data = bundle->dataset();
  if (data.ott.empty()) return Fail("dataset has no tracking records");
  if (slots <= 0 || k <= 0) return Fail("--k and --slots must be positive");

  const double t0 = data.ott.min_time();
  const double t1 = data.ott.max_time();
  FlowMatrixOptions matrix_options;
  matrix_options.bucket_seconds =
      std::max(1.0, (t1 - t0) / std::max(24, 4 * slots));
  const FlowMatrix matrix =
      FlowMatrix::Build(*bundle->engine, t0, t1, matrix_options);

  const auto poi_name = [&](PoiId id) {
    return data.pois[static_cast<size_t>(id)].name.c_str();
  };

  std::printf("# Occupancy report\n\n");
  std::printf("- objects: %zu, records: %zu, devices: %zu, POIs: %zu\n",
              data.ott.objects().size(), data.ott.size(),
              data.deployment.size(), data.pois.size());
  std::printf("- observation span: [%.0f s, %.0f s] (%.1f min)\n", t0, t1,
              (t1 - t0) / 60.0);

  // Busiest moment on the bucket grid.
  double peak_flow = -1.0;
  Timestamp peak_time = t0;
  PoiId peak_poi = -1;
  for (size_t b = 0; b < matrix.num_buckets(); ++b) {
    for (const Poi& poi : data.pois) {
      const double flow = matrix.FlowAt(b, poi.id);
      if (flow > peak_flow) {
        peak_flow = flow;
        peak_time = matrix.bucket_time(b);
        peak_poi = poi.id;
      }
    }
  }
  std::printf("- busiest moment: **%s** at t=%.0f s (flow %.2f)\n\n",
              poi_name(peak_poi), peak_time, peak_flow);

  std::printf(
      "## Top POIs per time slot\n\n| slot | top-%d (flow) |\n|---|---|\n",
      k);
  const double slot_len = (t1 - t0) / slots;
  for (int s = 0; s < slots; ++s) {
    const double mid = t0 + (s + 0.5) * slot_len;
    std::printf("| %.0f-%.0f s |", t0 + s * slot_len,
                t0 + (s + 1) * slot_len);
    for (const PoiFlow& f : matrix.ApproxSnapshotTopK(mid, k)) {
      std::printf(" %s (%.1f)", poi_name(f.poi), f.flow);
    }
    std::printf(" |\n");
  }

  std::printf("\n## Average occupancy over the whole span\n\n");
  std::printf("| rank | POI | avg flow |\n|---|---|---|\n");
  int rank = 1;
  for (const PoiFlow& f : matrix.AverageOccupancyTopK(t0, t1, k)) {
    std::printf("| %d | %s | %.2f |\n", rank++, poi_name(f.poi), f.flow);
  }
  return 0;
}

int CmdCleanse(Flags& flags) {
  const auto readings_path = flags.Get("readings");
  const auto deployment_path = flags.Get("deployment");
  const auto out = flags.Get("out");
  if (!readings_path || !deployment_path || !out) {
    return Fail(
        "cleanse requires --readings FILE --deployment FILE --out FILE");
  }
  CleansingOptions options;
  options.vmax = flags.GetDouble("vmax", 1.1);
  options.slack_seconds = flags.GetDouble("slack", 2.0);
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;

  auto readings = ReadReadingsCsv(*readings_path);
  if (!readings.ok()) return Fail(readings.status().ToString());
  auto deployment = ReadDeploymentCsv(*deployment_path);
  if (!deployment.ok()) return Fail(deployment.status().ToString());
  const size_t before = readings->size();
  const auto cleansed =
      CleanseReadings(std::move(*readings), *deployment, options);
  const Status status = WriteReadingsCsv(cleansed, *out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("kept %zu of %zu readings (dropped %zu outliers) -> %s\n",
              cleansed.size(), before, before - cleansed.size(),
              out->c_str());
  return 0;
}

int CmdRender(Flags& flags) {
  const auto dir = flags.Get("data");
  const auto out = flags.Get("out");
  if (!dir || !out) return Fail("render requires --data DIR --out FILE");
  const double heatmap_t = flags.GetDouble("heatmap-t", -1.0);
  auto data = LoadDataDir(*dir);
  if (!data.ok()) return Fail(data.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;

  SvgCanvas canvas(data->plan.Bounds().Expanded(2.0));
  canvas.DrawFloorPlan(data->plan);
  canvas.DrawDeployment(data->deployment);
  if (heatmap_t >= 0.0) {
    EngineConfig config;
    const QueryEngine engine(data->plan, *data->graph, data->deployment,
                             data->ott, data->pois, config);
    const auto flows = engine.SnapshotTopK(
        heatmap_t, static_cast<int>(data->pois.size()), Algorithm::kJoin);
    canvas.DrawFlowHeatmap(data->pois, flows);
  }
  const Status status = canvas.WriteFile(*out);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("wrote %s\n", out->c_str());
  return 0;
}

// Long-running query-serving process over one dataset: starts the HTTP
// server with the /query/* endpoints (QueryService: deadlines, admission
// control) plus the exposition routes, with a profile flight recorder
// attached, and by default replays a rolling probe workload over the
// observation span so /metrics and /profiles/recent stay live even with
// no clients. --duration 0 serves until killed; CI passes a bounded
// duration and exercises the endpoints meanwhile. docs/SERVING.md covers
// the endpoint schema and the admission-control knobs.
int CmdServe(Flags& flags) {
  const int port = flags.GetInt("port", 0);
  const double duration = flags.GetDouble("duration", 0.0);
  const double interval = flags.GetDouble("interval", 0.25);
  const int k = flags.GetInt("k", 10);
  QueryServiceOptions service_options;
  service_options.queue_limit =
      flags.GetInt("queue-limit", service_options.queue_limit);
  service_options.max_queue_wait_ms = flags.GetInt(
      "max-queue-wait-ms",
      static_cast<int>(service_options.max_queue_wait_ms));
  service_options.default_deadline_ms = flags.GetInt(
      "deadline-ms", static_cast<int>(service_options.default_deadline_ms));
  service_options.trace_sample =
      flags.GetDouble("trace-sample", service_options.trace_sample);
  service_options.degrade_depth =
      flags.GetInt("degrade-depth", service_options.degrade_depth);
  const std::string probe = flags.GetOr("probe", "on");
  const std::string live = flags.GetOr("live", "on");
  const int stream_shards = flags.GetInt("stream-shards", 8);
  auto bundle = MakeEngine(flags);
  if (!bundle.ok()) return Fail(bundle.status().ToString());
  if (const int rc = CheckUnconsumed(flags); rc != 0) return rc;
  if (interval <= 0.0) return Fail("--interval must be > 0");
  if (probe != "on" && probe != "off") {
    return Fail("--probe must be on|off");
  }
  if (live != "on" && live != "off") {
    return Fail("--live must be on|off");
  }
  if (stream_shards <= 0) return Fail("--stream-shards must be > 0");
  if (service_options.queue_limit < 0) {
    return Fail("--queue-limit must be >= 0");
  }
  if (service_options.default_deadline_ms <= 0) {
    return Fail("--deadline-ms must be > 0");
  }
  if (service_options.trace_sample < 0.0 ||
      service_options.trace_sample > 1.0) {
    return Fail("--trace-sample must be in [0, 1]");
  }
  if (service_options.degrade_depth < 0) {
    return Fail("--degrade-depth must be >= 0 (0 disables)");
  }
  // The service shares the engine-wide default evaluation mode; requests
  // may still override it per query with approx= / sample_budget=.
  service_options.approx = bundle->config.approx;
  const LoadedDataset& data = bundle->dataset();
  if (data.ott.empty()) return Fail("dataset has no tracking records");

  ProfileRecorder recorder;
  bundle->engine->AttachProfileRecorder(&recorder);

  // Live monitor (--live on): replay the dataset's tracking records as a
  // reading stream so /query/live answers continuous top-k against the
  // same deployment. Each record becomes two readings (its endpoints);
  // per-object replay keeps every object's readings time-ordered, which
  // is all Ingest requires (cross-object interleaving is free).
  std::unique_ptr<StreamingMonitor> monitor;
  if (live == "on") {
    StreamingOptions stream_options;
    stream_options.vmax = flags.GetDouble("vmax", 1.1);
    stream_options.shards = stream_shards;
    // /query/live inherits the engine-wide approximation config, so
    // --approx sampled|adaptive also samples continuous top-k polls.
    stream_options.approx = bundle->config.approx;
    // Never expire the replayed history: the probe and clients may query
    // any timestamp in the observation span.
    stream_options.expiry_seconds =
        std::max(600.0, data.ott.max_time() - data.ott.min_time() + 1.0);
    monitor = std::make_unique<StreamingMonitor>(data.deployment, data.pois,
                                                 stream_options);
    std::vector<RawReading> replay;
    replay.reserve(data.ott.size() * 2);
    for (ObjectId object : data.ott.objects()) {
      for (RecordIndex index : data.ott.ChainOf(object)) {
        const TrackingRecord& record = data.ott.record(index);
        replay.push_back({object, record.device_id, record.ts});
        replay.push_back({object, record.device_id, record.te});
      }
    }
    const Status ingest_status = monitor->IngestBatch(replay);
    if (!ingest_status.ok()) return Fail(ingest_status.ToString());
  }

  QueryService service(bundle->engine.get(), service_options,
                       monitor.get());

  ExpoServer server;
  service.RegisterRoutes(&server);
  server.Handle("/metrics", "text/plain; version=0.0.4", [] {
    return MetricsRegistry::Default().DumpText();
  });
  server.Handle("/healthz", "application/json", [&data] {
    char buf[160];
    std::snprintf(buf, sizeof(buf),
                  "{\"status\":\"ok\",\"pois\":%zu,\"objects\":%zu,"
                  "\"records\":%zu}",
                  data.pois.size(), data.ott.objects().size(),
                  data.ott.size());
    return std::string(buf);
  });
  server.Handle("/profiles/recent", "application/json",
                [&recorder] { return recorder.ToJson(); });
  const Status status = server.Start(port);
  if (!status.ok()) return Fail(status.ToString());
  std::printf("serving on http://127.0.0.1:%d\n", server.port());
  std::fflush(stdout);

  // Probe workload (--probe on): sweep the observation span, alternating
  // algorithms, so the latency histograms and the flight recorder keep
  // turning over even with no clients. Benchmarks measuring pure serving
  // latency pass --probe off to keep the engine quiet between requests.
  const double t0 = data.ott.min_time();
  const double t1 = data.ott.max_time();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration<double>(duration);
  int rounds = 0;
  while (duration <= 0.0 || std::chrono::steady_clock::now() < deadline) {
    if (probe == "on") {
      const double t = t0 + (t1 - t0) * ((rounds % 16) + 0.5) / 16.0;
      const Algorithm algo =
          rounds % 2 == 0 ? Algorithm::kJoin : Algorithm::kIterative;
      bundle->engine->SnapshotTopK(t, k, algo);
      bundle->engine->IntervalTopK(std::max(t0, t - 60.0),
                                   std::min(t1, t + 60.0), k, algo);
      // Keep the streaming.* metrics turning over too (the first poll at
      // an unchanged stream clock recomputes; later ones reuse tallies).
      if (monitor != nullptr) monitor->CurrentTopK(monitor->now(), k);
      ++rounds;
    }
    std::this_thread::sleep_for(std::chrono::duration<double>(interval));
  }
  // Shutdown order matters: stop accepting first, then drain the requests
  // already admitted (the service responds to each), and only then detach
  // the recorder the in-flight queries may still be writing through.
  server.Stop();
  service.Stop();
  bundle->engine->AttachProfileRecorder(nullptr);
  std::printf("served %d probe rounds\n", rounds);
  return 0;
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: indoorflow_cli <generate|snapshot|interval|threshold|"
      "itinerary|timeline|stats|explain|serve|cleanse|render> "
      "[--flag value ...]\n"
      "  generate --out DIR [--dataset office|cph|mall] [--objects N]\n"
      "           [--duration S] [--range R] [--seed S] [--pois N]\n"
      "  snapshot --data DIR --t T [--k K] [--algo iterative|join]\n"
      "           [--topology off|partition|exact] [--vmax V]\n"
      "           [--metric flow|density]\n"
      "  (engine commands also take --cache on|off [--cache-mb N]\n"
      "           [--cache-shards N] — cross-query UR cache —\n"
      "           --threads N [--parallel-threshold N] — intra-query\n"
      "           fan-out; see docs/TUNING.md — and\n"
      "           --approx exact|sampled|adaptive [--sample-budget N] —\n"
      "           sampling-based approximate iterative top-k with error\n"
      "           bounds; see docs/APPROXIMATION.md)\n"
      "  interval --data DIR --ts T --te T [--k K] [--algo ...]\n"
      "  threshold --data DIR --tau F (--t T | --ts T --te T) [--algo ...]\n"
      "  itinerary --data DIR --object ID [--t0 T] [--t1 T] [--step S]\n"
      "           [--min-presence P] [--min-duration S] [--max-area A]\n"
      "  timeline --data DIR --poi ID [--t0 T] [--t1 T] [--step S]\n"
      "  report   --data DIR [--k K] [--slots N]\n"
      "  stats    --data DIR [--warmup N] (JSON; INDOORFLOW_TRACE=FILE\n"
      "           additionally writes a chrome://tracing span file)\n"
      "  explain  --data DIR (--t T | --ts T --te T) [--k K] [--tau F]\n"
      "           [--algo iterative|join] [--metric flow|density]\n"
      "           [--format text|json]   (query EXPLAIN profile)\n"
      "  serve    --data DIR [--port P] [--duration S] [--interval S]\n"
      "           [--queue-limit N] [--max-queue-wait-ms MS]\n"
      "           [--deadline-ms MS] [--probe on|off]\n"
      "           [--degrade-depth N]   (downgrade exact queries to\n"
      "           sampled evaluation at queue depth N instead of\n"
      "           shedding; see docs/APPROXIMATION.md)\n"
      "           [--live on|off] [--stream-shards N]   (live monitor\n"
      "           replayed from the dataset; /query/live)\n"
      "           [--trace-sample F]   (request-trace head sampling)\n"
      "           (query endpoints /query/snapshot, /query/interval,\n"
      "           /query/join, /query/live plus /metrics, /healthz,\n"
      "           /profiles/recent, /traces/recent on 127.0.0.1; see\n"
      "           docs/SERVING.md)\n"
      "  cleanse  --readings F.csv --deployment F.csv --out F.csv\n"
      "  render   --data DIR --out FILE.svg [--heatmap-t T]\n");
  return 2;
}

int Dispatch(const std::string& command, Flags& flags) {
  if (command == "generate") return CmdGenerate(flags);
  if (command == "snapshot") return CmdSnapshot(flags);
  if (command == "interval") return CmdInterval(flags);
  if (command == "threshold") return CmdThreshold(flags);
  if (command == "itinerary") return CmdItinerary(flags);
  if (command == "timeline") return CmdTimeline(flags);
  if (command == "stats") return CmdStats(flags);
  if (command == "explain") return CmdExplain(flags);
  if (command == "serve") return CmdServe(flags);
  if (command == "report") return CmdReport(flags);
  if (command == "cleanse") return CmdCleanse(flags);
  if (command == "render") return CmdRender(flags);
  return Usage();
}

int Run(int argc, char** argv) {
  if (argc < 2) return Usage();
  Flags flags(argc, argv, 2);
  if (!flags.ok()) {
    return Fail("bad argument '" + flags.bad() + "' (flags take values)");
  }
  // INDOORFLOW_LOG_* configures the structured log sink (level, format,
  // file); INDOORFLOW_TRACE=FILE turns on the Chrome-trace span sink for
  // any subcommand; StopTracing finalizes the JSON array on the way out.
  InitLoggingFromEnv();
  InitTracingFromEnv();
  const int rc = Dispatch(argv[1], flags);
  StopTracing();
  return rc;
}

}  // namespace
}  // namespace indoorflow

int main(int argc, char** argv) { return indoorflow::Run(argc, argv); }
