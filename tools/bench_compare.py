#!/usr/bin/env python3
"""Benchmark-regression gate: compare Google Benchmark JSON against a baseline.

Reads one or more ``--benchmark_format=json`` result files (run with
``--benchmark_repetitions=N --benchmark_report_aggregates_only=true`` so the
median aggregate is present; plain single runs also work) and compares each
benchmark's median time against the checked-in baseline:

  * time regression  > --fail-pct (default 25%)  ->  FAIL, exit non-zero
  * time regression  > --warn-pct (default 10%)  ->  WARN
  * deterministic work counters (ObjectsRetrieved, PresenceEvals, ...)
    drifting by more than 1%                     ->  WARN (the workload is
    seeded, so drift means the algorithm did different work)
  * benchmarks only in one side                  ->  NEW / GONE, warn only

Baseline entries that are deliberately excluded from a run (e.g. the
load-shape-sensitive UnderPolling throughput records, which CI filters
out with --benchmark_filter) can be skipped with ``--ignore REGEX``:
matching benchmarks are dropped from both sides before comparing, so
they neither gate nor show up as NEW/GONE noise.

A comparison table is printed either way.

Regenerate the baseline (after an intentional perf change, on the CI runner
class the gate runs on):

  ./bench_fig10_snapshot_synthetic --benchmark_format=json \\
      --benchmark_repetitions=5 --benchmark_report_aggregates_only=true \\
      > fig10.json
  ./bench_ablation --benchmark_format=json --benchmark_repetitions=5 \\
      --benchmark_report_aggregates_only=true > ablation.json
  tools/bench_compare.py --update-baseline --baseline bench/baseline.json \\
      fig10.json ablation.json

``--update-baseline`` MERGES: entries present in the results are updated,
every other baseline entry is kept, so refreshing from one suite's results
cannot silently drop the other suites' gates. Pass ``--replace`` with it to
rewrite the file from the results alone (intentional benchmark removal).

Exit status: 0 clean (or after --update-baseline), 1 on any FAIL, 2 on usage
or parse errors.
"""

from __future__ import annotations

import argparse
import json
import re
import sys

TIME_UNIT_NS = {"ns": 1.0, "us": 1e3, "ms": 1e6, "s": 1e9}

# Per-iteration averages of seeded deterministic work; drift is meaningful
# at much finer granularity than wall time.
COUNTER_WARN_PCT = 1.0


def load_results(paths: list[str]) -> dict[str, dict]:
    """Maps run_name -> {time_ns, counters} from benchmark JSON files.

    Prefers the median aggregate when repetitions were used; falls back to
    the plain iteration entry otherwise.
    """
    out: dict[str, dict] = {}
    preferred: dict[str, bool] = {}  # run_name -> came from a median row
    for path in paths:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        for row in doc.get("benchmarks", []):
            aggregate = row.get("aggregate_name", "")
            if aggregate and aggregate != "median":
                continue
            name = row.get("run_name", row.get("name", ""))
            if not name:
                continue
            is_median = aggregate == "median"
            if name in out and preferred[name] and not is_median:
                continue
            unit = TIME_UNIT_NS.get(row.get("time_unit", "ns"), 1.0)
            counters = {
                key: value
                for key, value in row.items()
                if key[:1].isupper() and isinstance(value, (int, float))
            }
            out[name] = {
                "time_ns": float(row.get("cpu_time", 0.0)) * unit,
                "counters": counters,
            }
            preferred[name] = is_median
    return out


def load_baseline(path: str) -> dict[str, dict]:
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    return doc.get("benchmarks", {})


def save_baseline(path: str, results: dict[str, dict]) -> None:
    doc = {
        "comment": "Benchmark medians for tools/bench_compare.py. "
                   "Regenerate with --update-baseline (see that script's "
                   "docstring); commit only runs from the CI runner class.",
        "benchmarks": results,
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(doc, f, indent=2, sort_keys=True)
        f.write("\n")


def format_ns(ns: float) -> str:
    for unit, scale in (("s", 1e9), ("ms", 1e6), ("us", 1e3)):
        if ns >= scale:
            return f"{ns / scale:.3g} {unit}"
    return f"{ns:.3g} ns"


def compare(baseline: dict[str, dict], results: dict[str, dict],
            warn_pct: float, fail_pct: float) -> int:
    rows = []
    failures = 0
    for name in sorted(set(baseline) | set(results)):
        if name not in results:
            rows.append((name, "-", "-", "GONE", "not in new results"))
            continue
        new = results[name]
        if name not in baseline:
            rows.append((name, "-", format_ns(new["time_ns"]), "NEW",
                         "not in baseline"))
            continue
        old = baseline[name]
        notes = []
        status = "ok"
        old_ns = old.get("time_ns", 0.0)
        new_ns = new["time_ns"]
        delta_pct = ((new_ns - old_ns) / old_ns * 100.0) if old_ns > 0 else 0.0
        if delta_pct > fail_pct:
            status = "FAIL"
            failures += 1
            notes.append(f"time +{delta_pct:.1f}% > {fail_pct:g}%")
        elif delta_pct > warn_pct:
            status = "WARN"
            notes.append(f"time +{delta_pct:.1f}% > {warn_pct:g}%")
        for key, old_value in sorted(old.get("counters", {}).items()):
            new_value = new["counters"].get(key)
            if new_value is None or old_value == 0:
                continue
            drift = abs(new_value - old_value) / abs(old_value) * 100.0
            if drift > COUNTER_WARN_PCT:
                if status == "ok":
                    status = "WARN"
                notes.append(f"{key} {old_value:g} -> {new_value:g}")
        rows.append((name, format_ns(old_ns), format_ns(new_ns),
                     f"{delta_pct:+.1f}%" if status == "ok" else status,
                     "; ".join(notes)))

    widths = [max(len(str(row[col])) for row in
                  rows + [("benchmark", "baseline", "new", "delta", "notes")])
              for col in range(5)]
    header = ("benchmark", "baseline", "new", "delta", "notes")
    for row in [header] + rows:
        print("  ".join(str(cell).ljust(width)
                        for cell, width in zip(row, widths)).rstrip())
    print(f"\n{len(rows)} benchmarks compared, {failures} regression(s) over "
          f"{fail_pct:g}%")
    return 1 if failures else 0


def main() -> int:
    parser = argparse.ArgumentParser(
        description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    parser.add_argument("results", nargs="+",
                        help="benchmark JSON result files")
    parser.add_argument("--baseline", default="bench/baseline.json")
    parser.add_argument("--update-baseline", action="store_true",
                        help="merge the results into the baseline and exit "
                             "(entries absent from the results are kept)")
    parser.add_argument("--replace", action="store_true",
                        help="with --update-baseline: rewrite the baseline "
                             "from the results alone, dropping entries "
                             "absent from them")
    parser.add_argument("--warn-pct", type=float, default=10.0)
    parser.add_argument("--fail-pct", type=float, default=25.0)
    parser.add_argument("--ignore", metavar="REGEX", default=None,
                        help="drop benchmarks matching this regex from both "
                             "sides before comparing (for baseline entries "
                             "the run deliberately filters out)")
    args = parser.parse_args()

    try:
        results = load_results(args.results)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error reading results: {error}", file=sys.stderr)
        return 2
    if not results:
        print("error: no benchmarks found in the result files",
              file=sys.stderr)
        return 2

    if args.update_baseline:
        merged = results
        kept = 0
        if not args.replace:
            try:
                previous = load_baseline(args.baseline)
            except FileNotFoundError:
                previous = {}
            except (OSError, json.JSONDecodeError) as error:
                print(f"error reading baseline to merge into: {error} "
                      f"(pass --replace to overwrite)", file=sys.stderr)
                return 2
            kept = len([name for name in previous if name not in results])
            merged = {**previous, **results}
        save_baseline(args.baseline, merged)
        print(f"wrote {len(results)} benchmark medians to {args.baseline}"
              + (f" (kept {kept} existing entries)" if kept else ""))
        return 0

    try:
        baseline = load_baseline(args.baseline)
    except (OSError, json.JSONDecodeError) as error:
        print(f"error reading baseline: {error}", file=sys.stderr)
        return 2
    if args.ignore:
        try:
            ignore = re.compile(args.ignore)
        except re.error as error:
            print(f"error: bad --ignore regex: {error}", file=sys.stderr)
            return 2
        baseline = {name: entry for name, entry in baseline.items()
                    if not ignore.search(name)}
        results = {name: entry for name, entry in results.items()
                   if not ignore.search(name)}
        if not results:
            print("error: --ignore filtered out every benchmark",
                  file=sys.stderr)
            return 2
    return compare(baseline, results, args.warn_pct, args.fail_pct)


if __name__ == "__main__":
    sys.exit(main())
