// Metrics dump: run a mixed query workload against a generated dataset and
// print the process-wide metrics registry in Prometheus "/metrics" text
// format — what a sidecar exporter would scrape from a serving deployment.
//
//   $ ./metrics_dump
//   $ INDOORFLOW_TRACE=trace.json ./metrics_dump   # + chrome://tracing file
//
// Shows the observability layer end to end: per-phase query latency
// histograms (retrieve / derive / presence / top-k), QueryStats counters,
// streaming ingest gauges, and flow-matrix worker throughput, all fed by the
// engine automatically. See docs/OBSERVABILITY.md.

#include <cstdio>

#include "src/common/metrics.h"
#include "src/core/engine.h"
#include "src/core/flow_matrix.h"
#include "src/core/streaming.h"

int main() {
  using namespace indoorflow;

  if (InitTracingFromEnv()) {
    std::fprintf(stderr, "trace sink active (INDOORFLOW_TRACE)\n");
  }

  // A small office dataset keeps the example fast while still exercising
  // every instrumented subsystem.
  OfficeDatasetConfig data_config;
  data_config.num_objects = 120;
  data_config.duration = 1800.0;
  data_config.detection_range = 1.5;
  data_config.seed = 7;
  const Dataset dataset = GenerateOfficeDataset(data_config);

  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  const QueryEngine engine(dataset, engine_config);

  // Query workload: snapshot + interval top-k, both algorithms, spread
  // across the observation window. Every call lands in the registry's
  // query.snapshot.* / query.interval.* metrics.
  for (int i = 0; i < 10; ++i) {
    const Timestamp t = 90.0 + 170.0 * i;
    engine.SnapshotTopK(t, 5, Algorithm::kJoin);
    engine.SnapshotTopK(t, 5, Algorithm::kIterative);
    engine.IntervalTopK(t, t + 120.0, 5, Algorithm::kJoin);
  }

  // Streaming ingest: replay the tracking records as raw readings to feed
  // streaming.readings_ingested and streaming.track_table_size.
  StreamingOptions streaming_options;
  streaming_options.vmax = dataset.vmax;
  StreamingMonitor monitor(dataset.deployment, dataset.pois,
                           streaming_options);
  for (size_t i = 0; i < dataset.ott.size() && i < 500; ++i) {
    const TrackingRecord& r =
        dataset.ott.record(static_cast<RecordIndex>(i));
    RawReading reading;
    reading.object_id = r.object_id;
    reading.device_id = r.device_id;
    reading.t = r.ts;
    const Status status = monitor.Ingest(reading);
    (void)status;  // replayed records can arrive out of order; fine here
  }

  // Flow matrix: populates flow_matrix.worker_rows_per_sec.
  FlowMatrixOptions matrix_options;
  matrix_options.bucket_seconds = 300.0;
  matrix_options.threads = 2;
  FlowMatrix::Build(engine, 0.0, data_config.duration, matrix_options);

  std::printf("%s", MetricsRegistry::Default().DumpText().c_str());
  StopTracing();
  return 0;
}
