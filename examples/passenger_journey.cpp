// Object-centric analytics (indoorflow extensions on top of the paper's
// aggregate queries):
//
//   1. BuildItinerary — reconstruct where one tracked passenger likely
//      was, POI by POI, from nothing but their symbolic tracking records.
//   2. SnapshotThreshold — "every POI with flow >= tau right now", the
//      alerting companion to the paper's top-k (the join algorithm stops
//      as soon as its flow upper bound drops below tau).
//
// Both queries run on the same office dataset the synthetic experiments
// use, so this doubles as a small tour of the per-object API surface
// (ObjectRegionAt / ActiveObjects).

#include <cstdio>
#include <vector>

#include "src/core/itinerary.h"

int main() {
  using namespace indoorflow;

  OfficeDatasetConfig data_config;
  data_config.num_objects = 60;
  data_config.duration = 3600.0;
  data_config.seed = 77;
  // Beacons inside rooms (not just at doors): the deployment density is
  // what makes symbolic tracking informative — door-only deployments leave
  // room stays undetected and the uncertainty regions balloon.
  data_config.devices_in_rooms = true;
  const Dataset office = GenerateOfficeDataset(data_config);
  std::printf("Office dataset: %d people, 1 hour, %zu tracking records\n\n",
              data_config.num_objects, office.ott.size());

  EngineConfig config;
  config.topology = TopologyMode::kPartition;
  const QueryEngine engine(office, config);

  // --- 1. One person's reconstructed day --------------------------------
  // Pick the person with the most tracking records: the reconstruction is
  // only as good as the symbolic observations behind it.
  ObjectId person = office.ott.objects().front();
  size_t best_records = 0;
  for (ObjectId o : office.ott.objects()) {
    const size_t n = office.ott.ChainOf(o).size();
    if (n > best_records) {
      best_records = n;
      person = o;
    }
  }
  std::printf("Reconstructing person %d's hour (%zu detections):\n", person,
              best_records);

  ItineraryOptions options;
  options.step = 10.0;
  // Presence is a coverage ratio (Definition 1): a 1.5m beacon disk covers
  // ~15% of a room, so even a certain stay rarely scores above ~0.2.
  options.min_presence = 0.1;
  // Keep only samples where the person is localized to roughly a device
  // range: during detection gaps the uncertainty region spans much of the
  // floor and presence saturates in every POI it covers. What remains are
  // the moments symbolic tracking can actually vouch for — mostly brief
  // sightings as the person passes a device, occasionally a longer pinned
  // stay. That sparsity is the technology's honest resolution.
  options.max_region_bounds_area = 40.0;
  const Itinerary itinerary =
      BuildItinerary(engine, person, 0.0, data_config.duration, options);
  std::printf("%10s %10s   %-18s %12s %6s\n", "from", "to", "POI",
              "mean presence", "peak");
  for (const ItineraryVisit& visit : itinerary.visits) {
    std::printf("%9.0fs %9.0fs   %-18s %13.2f %6.2f%s\n", visit.start,
                visit.end,
                office.pois[static_cast<size_t>(visit.poi)].name.c_str(),
                visit.mean_presence, visit.peak_presence,
                visit.end == visit.start ? "  (pass-by)" : "");
  }
  if (itinerary.visits.empty()) {
    std::printf("  (no visit cleared the presence threshold)\n");
  }

  // --- 2. Threshold alerting --------------------------------------------
  // Detection gaps make every room carry a baseline of diffuse presence,
  // so a useful alert threshold is relative: flag POIs within 95% of the
  // building's mid-window peak flow. SnapshotThreshold's join traversal
  // stops as soon as its flow upper bound drops below tau, so the alert is
  // much cheaper than ranking everything.
  const auto peak = engine.SnapshotTopK(data_config.duration / 2.0, 1,
                                        Algorithm::kJoin);
  const double tau = peak.empty() ? 1.0 : 0.95 * peak[0].flow;
  std::printf("\nPOIs with flow >= %.1f (95%% of the midday peak):\n", tau);
  std::printf("%8s   %-60s\n", "time", "POIs over threshold (flow)");
  for (Timestamp t = 600.0; t < data_config.duration; t += 600.0) {
    const auto hot = engine.SnapshotThreshold(t, tau, Algorithm::kJoin);
    std::printf("%7.0fs   ", t);
    if (hot.empty()) {
      std::printf("-\n");
      continue;
    }
    size_t shown = 0;
    for (const PoiFlow& f : hot) {
      if (++shown > 6) break;
      std::printf("%s(%.1f) ",
                  office.pois[static_cast<size_t>(f.poi)].name.c_str(),
                  f.flow);
    }
    if (hot.size() > 6) std::printf("… +%zu more", hot.size() - 6);
    std::printf("\n");
  }

  // --- 3. Tracking coverage ---------------------------------------------
  // How many objects the index can place at all, over time.
  std::printf("\nTracked objects over time: ");
  for (Timestamp t = 600.0; t < data_config.duration; t += 600.0) {
    std::printf("%zu ", engine.ActiveObjects(t).size());
  }
  std::printf("(of %d)\n", data_config.num_objects);
  return 0;
}
