// Live dashboard: replay a day of raw RFID readings through the streaming
// monitor and print the "busiest POIs right now" every few minutes — the
// operational counterpart of the paper's historical queries.
//
//   $ ./live_dashboard
//
// Set INDOORFLOW_EXPO_PORT=9464 (or any port; 0 picks one) to additionally
// serve the process metrics registry on http://127.0.0.1:PORT/metrics and
// a liveness probe on /healthz while the replay runs — the same exposition
// endpoint `indoorflow_cli serve` provides (docs/OBSERVABILITY.md).

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/common/expo_server.h"
#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/core/streaming.h"
#include "src/sim/detector.h"

int main() {
  using namespace indoorflow;

  InitLoggingFromEnv();
  // Opt-in exposition endpoint: scrape while the replay is running.
  ExpoServer expo;
  const char* expo_port = std::getenv("INDOORFLOW_EXPO_PORT");
  if (expo_port != nullptr && expo_port[0] != '\0') {
    expo.Handle("/metrics", "text/plain; version=0.0.4",
                [] { return MetricsRegistry::Default().DumpText(); });
    expo.Handle("/healthz", "application/json",
                [] { return std::string("{\"status\":\"ok\"}"); });
    const Status status = expo.Start(std::atoi(expo_port));
    if (!status.ok()) {
      Log(LogLevel::kWarn, "live_dashboard", "exposition disabled")
          .Field("reason", status.ToString());
    } else {
      std::printf("metrics on http://127.0.0.1:%d/metrics\n", expo.port());
    }
  }

  // Simulate the raw reading stream of a tracked office building.
  const BuiltPlan built = BuildOfficePlan({});
  const DoorGraph graph(built.plan);
  Deployment deployment;
  for (const Door& door : built.plan.doors()) {
    deployment.AddDevice(Circle{door.position, 1.5});
  }
  deployment.BuildIndex();
  Rng poi_rng(21);
  const PoiSet pois = GeneratePois(built, 30, poi_rng);

  const RandomWaypointModel model(built, graph);
  const ProximityDetector detector(deployment);
  std::vector<RawReading> stream;
  const double duration = 1800.0;
  for (ObjectId o = 0; o < 80; ++o) {
    Rng rng(500 + static_cast<uint64_t>(o));
    WaypointOptions options;
    options.duration = duration;
    options.max_pause = 120.0;
    const Trajectory traj = model.Generate(o, options, rng);
    detector.DetectReadings(traj, DetectionOptions{}, &stream);
  }
  std::sort(stream.begin(), stream.end(),
            [](const RawReading& a, const RawReading& b) {
              return a.t < b.t;
            });
  std::printf("replaying %zu readings from %zu readers...\n\n",
              stream.size(), deployment.size());

  // The monitor with topology-aware pruning for undetected objects.
  const TopologyChecker checker(built.plan, graph, deployment);
  StreamingOptions options;
  options.vmax = 1.1;
  options.expiry_seconds = 300.0;
  StreamingMonitor monitor(deployment, pois, options, &checker);

  // Replay, reporting every 5 minutes of stream time.
  double next_report = 300.0;
  for (const RawReading& r : stream) {
    if (!monitor.Ingest(r).ok()) return 1;
    if (r.t >= next_report) {
      const auto top = monitor.CurrentTopK(r.t, 3);
      std::printf("t=%5.0fs  tracking %2zu objects | top:", r.t,
                  monitor.ActiveObjects(r.t));
      for (const PoiFlow& f : top) {
        std::printf("  %s=%.2f",
                    pois[static_cast<size_t>(f.poi)].name.c_str(), f.flow);
      }
      std::printf("\n");
      next_report += 300.0;
    }
  }
  std::printf("\nstream ended at t=%.0fs\n", monitor.now());
  return 0;
}
