// Museum scenario (paper, Introduction): "information on the behavior of
// past visitors to a museum with multiple exhibitions may be used for
// making recommendations to new visitors and for planning."
//
// We treat rooms as exhibitions, rank them by interval flow across the day,
// and build a simple visit-order recommendation: popular exhibitions early
// (before they crowd), combined with a per-hour crowding forecast from
// snapshot flows.

#include <algorithm>
#include <cstdio>
#include <vector>

#include "src/core/engine.h"
#include "src/core/timeline.h"

int main() {
  using namespace indoorflow;

  OfficeDatasetConfig data_config;
  data_config.plan.num_rows = 1;
  data_config.plan.rooms_per_side = 5;  // 10 exhibition halls
  data_config.num_objects = 250;        // visitors
  data_config.duration = 3.0 * 3600.0;
  data_config.detection_range = 2.5;
  data_config.devices_in_rooms = true;  // one reader per exhibition
  data_config.min_pause = 60.0;
  data_config.max_pause = 420.0;        // visitors linger at exhibits
  data_config.seed = 5;
  std::printf("Simulating a museum: 10 exhibitions, %d visitors, 3 hours\n",
              data_config.num_objects);
  const Dataset museum = GenerateOfficeDataset(data_config);

  EngineConfig config;
  config.topology = TopologyMode::kPartition;
  const QueryEngine engine(museum, config);

  // Overall popularity across the whole day: time-averaged occupancy
  // (interval flow saturates over day-long windows; see EXPERIMENTS.md).
  std::vector<PoiFlow> overall;
  for (const Poi& poi : museum.pois) {
    const auto series =
        FlowTimeline(engine, poi.id, 300.0, data_config.duration - 300.0,
                     600.0, Algorithm::kJoin);
    overall.push_back(PoiFlow{poi.id, AverageFlow(series)});
  }
  std::sort(overall.begin(), overall.end(),
            [](const PoiFlow& a, const PoiFlow& b) {
              if (a.flow != b.flow) return a.flow > b.flow;
              return a.poi < b.poi;
            });

  std::printf("\nBusiest POIs (average occupancy, whole day):\n");
  for (size_t i = 0; i < 5 && i < overall.size(); ++i) {
    std::printf("  %zu. %-18s avg occupancy = %.3f\n", i + 1,
                museum.pois[static_cast<size_t>(overall[i].poi)]
                    .name.c_str(),
                overall[i].flow);
  }

  // Hourly crowding forecast for the single most popular POI.
  const PoiId star = overall.front().poi;
  std::printf("\nCrowding by hour for %s:\n",
              museum.pois[static_cast<size_t>(star)].name.c_str());
  const std::vector<PoiId> just_star = {star};
  double best_hour_flow = 1e18;
  int best_hour = 0;
  for (int hour = 0; hour < 3; ++hour) {
    const auto series =
        FlowTimeline(engine, star, hour * 3600.0 + 300.0,
                     (hour + 1) * 3600.0 - 300.0, 600.0, Algorithm::kJoin);
    const double flow = AverageFlow(series);
    std::printf("  hour %d: avg occupancy = %.3f\n", hour + 1, flow);
    if (flow < best_hour_flow) {
      best_hour_flow = flow;
      best_hour = hour;
    }
  }
  std::printf(
      "\nRecommendation: visit %s during hour %d (least crowded), then\n"
      "follow the overall ranking above for the rest of your route.\n",
      museum.pois[static_cast<size_t>(star)].name.c_str(), best_hour + 1);
  return 0;
}
