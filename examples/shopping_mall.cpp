// Shopping-mall scenario (paper, Introduction): "the lease prices of
// different shop locations in a large shopping mall may be set according to
// the numbers of people passing by the location."
//
// We build the dedicated mall plan (a cyclic corridor loop with shops on
// the outside and anchor stores flanking a central food court), track
// shoppers over a business day slice, and rank shop POIs by average
// occupancy to derive a lease-price tier per shop.

#include <algorithm>
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.h"
#include "src/core/timeline.h"

int main() {
  using namespace indoorflow;

  MallDatasetConfig data_config;
  data_config.num_shoppers = 300;
  data_config.window = 2.0 * 3600.0;  // two hours
  data_config.detection_range = 2.0;
  data_config.min_stay = 600.0;
  data_config.max_stay = 3600.0;
  data_config.seed = 7;
  std::printf("Simulating a mall: %d shops + 2 anchors + food court, "
              "%d shoppers, 2 hours...\n",
              2 * data_config.plan.shops_per_row +
                  2 * data_config.plan.shops_per_side,
              data_config.num_shoppers);
  const Dataset mall = GenerateMallDataset(data_config);
  std::printf("  readers: %zu, tracking records: %zu\n",
              mall.deployment.size(), mall.ott.size());

  EngineConfig config;
  config.topology = TopologyMode::kPartition;
  const QueryEngine engine(mall, config);

  // Rank every POI by *average occupancy* over the two hours: the
  // time-averaged snapshot flow. (The paper's interval flow counts every
  // shopper whose uncertainty region ever touches the shop — over two
  // hours that saturates toward |O| for all shops; the occupancy average
  // discriminates.)
  std::vector<PoiFlow> ranking;
  for (const Poi& poi : mall.pois) {
    // Lease pricing concerns the shops; skip the hallway slices.
    if (poi.name.starts_with("hallway_poi_")) continue;
    const auto series = FlowTimeline(engine, poi.id, 300.0,
                                     data_config.window - 300.0, 300.0,
                                     Algorithm::kJoin);
    ranking.push_back(PoiFlow{poi.id, AverageFlow(series)});
  }
  std::sort(ranking.begin(), ranking.end(),
            [](const PoiFlow& a, const PoiFlow& b) {
              if (a.flow != b.flow) return a.flow > b.flow;
              return a.poi < b.poi;
            });

  // Lease tiers: top quartile premium, next standard, rest economy.
  std::printf("\n%-20s %10s   %s\n", "POI", "avg occ.", "lease tier");
  const size_t quartile = ranking.size() / 4;
  for (size_t i = 0; i < std::min<size_t>(ranking.size(), 15); ++i) {
    const PoiFlow& f = ranking[i];
    const char* tier = i < quartile              ? "premium"
                       : i < 2 * quartile        ? "standard"
                                                 : "economy";
    std::printf("%-20s %10.3f   %s\n",
                mall.pois[static_cast<size_t>(f.poi)].name.c_str(), f.flow,
                tier);
  }

  // Also show instantaneous crowding at the middle of the second hour.
  std::printf("\nSnapshot top-5 at t = 5400 s:\n");
  for (const PoiFlow& f : engine.SnapshotTopK(5400.0, 5, Algorithm::kJoin)) {
    std::printf("  %-20s flow = %.3f\n",
                mall.pois[static_cast<size_t>(f.poi)].name.c_str(), f.flow);
  }

  // Flow counts people; density normalizes by POI size — the ranking the
  // safety office wants ("which spot is most *crowded* per square meter?").
  // The join answers it with density bounds directly and prunes far more
  // aggressively than with flow bounds (small POIs dominate).
  std::printf("\nDensity top-5 at t = 5400 s (people per m^2):\n");
  for (const PoiFlow& f :
       engine.SnapshotDensityTopK(5400.0, 5, Algorithm::kJoin)) {
    std::printf("  %-20s density = %.4f\n",
                mall.pois[static_cast<size_t>(f.poi)].name.c_str(), f.flow);
  }
  return 0;
}
