// Quickstart: generate a small symbolic-tracking dataset, build a query
// engine, and answer both of the paper's query types.
//
//   $ ./quickstart
//
// Walks through the full pipeline: floor plan -> RFID deployment -> random
// waypoint movement -> object tracking table -> snapshot & interval top-k.

#include <cstdio>

#include "src/core/engine.h"

int main() {
  using namespace indoorflow;

  // 1. Generate an office building dataset: ~32 rooms off hallways, RFID
  //    readers by doors and along hallways, 200 objects walking for an
  //    hour at 1.1 m/s (which is also Vmax).
  OfficeDatasetConfig data_config;
  data_config.num_objects = 200;
  data_config.duration = 3600.0;
  data_config.detection_range = 1.5;
  data_config.seed = 42;
  std::printf("Generating office dataset (%d objects, %.0f s)...\n",
              data_config.num_objects, data_config.duration);
  const Dataset dataset = GenerateOfficeDataset(data_config);
  std::printf("  devices: %zu   tracking records: %zu   POIs: %zu\n",
              dataset.deployment.size(), dataset.ott.size(),
              dataset.pois.size());

  // 2. Build the query engine (AR-tree over the OTT, topology checker,
  //    uncertainty model).
  EngineConfig engine_config;
  engine_config.topology = TopologyMode::kPartition;
  const QueryEngine engine(dataset, engine_config);

  // 3. Snapshot query: which POIs were most visited at t = 30 min?
  const Timestamp t = 1800.0;
  std::printf("\nSnapshot top-5 POIs at t = %.0f s (join algorithm):\n", t);
  for (const PoiFlow& f : engine.SnapshotTopK(t, 5, Algorithm::kJoin)) {
    std::printf("  %-16s flow = %.3f\n",
                dataset.pois[static_cast<size_t>(f.poi)].name.c_str(),
                f.flow);
  }

  // 4. Interval query: the busiest POIs between minute 20 and minute 40.
  std::printf("\nInterval top-5 POIs over [1200 s, 2400 s]:\n");
  for (const PoiFlow& f :
       engine.IntervalTopK(1200.0, 2400.0, 5, Algorithm::kJoin)) {
    std::printf("  %-16s flow = %.3f\n",
                dataset.pois[static_cast<size_t>(f.poi)].name.c_str(),
                f.flow);
  }

  // 5. Cross-check with the iterative baseline (Algorithm 1).
  const auto top_iter = engine.SnapshotTopK(t, 5, Algorithm::kIterative);
  const auto top_join = engine.SnapshotTopK(t, 5, Algorithm::kJoin);
  bool match = top_iter.size() == top_join.size();
  for (size_t i = 0; match && i < top_iter.size(); ++i) {
    match = std::abs(top_iter[i].flow - top_join[i].flow) < 1e-9;
  }
  std::printf("\nIterative and join algorithms agree: %s\n",
              match ? "yes" : "NO (bug!)");
  return match ? 0 : 1;
}
