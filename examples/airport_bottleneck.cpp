// Airport scenario (paper, Introduction & Section 5.3): using Bluetooth
// tracking of passengers in an airport to "identify possible bottlenecks
// that slow down movement".
//
// We generate the CPH-like dataset (long concourse, sparse Bluetooth
// radios, passengers arriving in waves) and probe snapshot flows of the
// hallway POIs across the observation window to find when and where the
// concourse congests.

#include <cstdio>
#include <string>
#include <vector>

#include "src/core/engine.h"

int main() {
  using namespace indoorflow;

  CphDatasetConfig data_config;
  data_config.num_passengers = 400;
  data_config.window = 2.0 * 3600.0;
  data_config.seed = 11;
  std::printf("Simulating an airport concourse: %d passengers, 2 hours\n",
              data_config.num_passengers);
  const Dataset airport = GenerateCphLikeDataset(data_config);
  std::printf("  Bluetooth radios: %zu, tracking records: %zu\n",
              airport.deployment.size(), airport.ott.size());

  EngineConfig config;
  config.topology = TopologyMode::kPartition;
  const QueryEngine engine(airport, config);

  // Query only the hallway (concourse) POIs: those are the bottleneck
  // candidates.
  std::vector<PoiId> hallway_pois;
  for (const Poi& poi : airport.pois) {
    if (poi.name.starts_with("hallway_poi_")) {
      hallway_pois.push_back(poi.id);
    }
  }
  std::printf("  concourse POIs under watch: %zu\n\n", hallway_pois.size());

  // Probe snapshot flows every 15 minutes.
  std::printf("%8s   %-20s %8s\n", "time", "busiest concourse POI", "flow");
  Timestamp peak_time = 0.0;
  double peak_flow = -1.0;
  for (Timestamp t = 900.0; t < data_config.window; t += 900.0) {
    const auto top =
        engine.SnapshotTopK(t, 1, Algorithm::kJoin, &hallway_pois);
    if (top.empty()) continue;
    std::printf("%7.0fs   %-20s %8.3f\n", t,
                airport.pois[static_cast<size_t>(top[0].poi)].name.c_str(),
                top[0].flow);
    if (top[0].flow > peak_flow) {
      peak_flow = top[0].flow;
      peak_time = t;
    }
  }

  // Drill into the peak: interval query around the worst 15 minutes.
  std::printf("\nPeak congestion around t = %.0f s; top-3 over [%.0f, %.0f]:\n",
              peak_time, peak_time - 450.0, peak_time + 450.0);
  for (const PoiFlow& f :
       engine.IntervalTopK(peak_time - 450.0, peak_time + 450.0, 3,
                           Algorithm::kJoin, &hallway_pois)) {
    std::printf("  %-20s flow = %.3f\n",
                airport.pois[static_cast<size_t>(f.poi)].name.c_str(),
                f.flow);
  }
  return 0;
}
