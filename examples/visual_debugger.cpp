// Visual debugger: renders the core concepts of the paper to SVG files —
// the floor plan with its RFID deployment, a snapshot and an interval
// uncertainty region (with and without the indoor topology check), and a
// flow heatmap over the POIs. Open the generated files in any browser.
//
//   $ ./visual_debugger [output_dir]

#include <cstdio>
#include <string>

#include "src/core/engine.h"
#include "src/core/tracking_state.h"
#include "src/viz/svg.h"

int main(int argc, char** argv) {
  using namespace indoorflow;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  // A small office dataset.
  OfficeDatasetConfig data_config;
  data_config.num_objects = 120;
  data_config.duration = 1800.0;
  data_config.seed = 9;
  const Dataset ds = GenerateOfficeDataset(data_config);
  const Box world = ds.built.plan.Bounds().Expanded(2.0);

  // 1. The floor plan and deployment.
  {
    SvgCanvas canvas(world);
    canvas.DrawFloorPlan(ds.built.plan);
    canvas.DrawDeployment(ds.deployment);
    const std::string path = out_dir + "/plan.svg";
    if (!canvas.WriteFile(path).ok()) return 1;
    std::printf("wrote %s (floor plan + %zu readers)\n", path.c_str(),
                ds.deployment.size());
  }

  // 2. Uncertainty regions of one object, Euclidean vs topology-checked.
  {
    const DoorGraph& graph = *ds.door_graph;
    const TopologyChecker checker(ds.built.plan, graph, ds.deployment);
    const UncertaintyModel euclid(ds.ott, ds.deployment, ds.vmax);
    const UncertaintyModel indoor(ds.ott, ds.deployment, ds.vmax, &checker,
                                  TopologyMode::kExact);
    // Find an object that is inactive mid-window (interesting regions).
    const Timestamp t = 900.0;
    for (ObjectId object : ds.ott.objects()) {
      const SnapshotState state = ResolveSnapshotStateAt(ds.ott, object, t);
      if (state.active() || state.pre == kInvalidRecord ||
          state.suc == kInvalidRecord) {
        continue;
      }
      SvgCanvas canvas(world);
      canvas.DrawFloorPlan(ds.built.plan);
      canvas.DrawRegion(euclid.Snapshot(state, t), "#e08020", 0.35);
      canvas.DrawRegion(indoor.Snapshot(state, t), "#2060c0", 0.55);
      canvas.DrawText({world.min_x + 1, world.max_y - 1},
                      "orange: Euclidean UR; blue: after topology check");
      const std::string path = out_dir + "/uncertainty_snapshot.svg";
      if (!canvas.WriteFile(path).ok()) return 1;
      std::printf("wrote %s (object %d at t=%.0f)\n", path.c_str(), object,
                  t);

      // Interval UR for the same object over +-3 minutes.
      const IntervalChain chain =
          RelevantChain(ds.ott, object, t - 180.0, t + 180.0);
      if (!chain.records.empty()) {
        SvgCanvas interval_canvas(world);
        interval_canvas.DrawFloorPlan(ds.built.plan);
        interval_canvas.DrawRegion(
            indoor.Interval(chain, t - 180.0, t + 180.0), "#208040", 0.5);
        const std::string interval_path =
            out_dir + "/uncertainty_interval.svg";
        if (!interval_canvas.WriteFile(interval_path).ok()) return 1;
        std::printf("wrote %s\n", interval_path.c_str());
      }
      break;
    }
  }

  // 3. Flow heatmap over all POIs at mid-window.
  {
    EngineConfig config;
    config.topology = TopologyMode::kPartition;
    const QueryEngine engine(ds, config);
    const auto flows = engine.SnapshotTopK(
        900.0, static_cast<int>(ds.pois.size()), Algorithm::kJoin);
    SvgCanvas canvas(world);
    canvas.DrawFloorPlan(ds.built.plan);
    canvas.DrawFlowHeatmap(ds.pois, flows);
    const std::string path = out_dir + "/flow_heatmap.svg";
    if (!canvas.WriteFile(path).ok()) return 1;
    std::printf("wrote %s (snapshot flows at t=900)\n", path.c_str());
  }

  // 4. A two-floor plan, for good measure.
  {
    const BuiltPlan two_floors = BuildMultiFloorOfficePlan({});
    SvgCanvas canvas(two_floors.plan.Bounds().Expanded(2.0), 8.0);
    canvas.DrawFloorPlan(two_floors.plan);
    const std::string path = out_dir + "/two_floors.svg";
    if (!canvas.WriteFile(path).ok()) return 1;
    std::printf("wrote %s\n", path.c_str());
  }

  // 5. The mall plan with its corridor loop and a shopper's uncertainty
  // trail: the object's region sampled every 2 minutes, later samples
  // drawn hotter. Uncertainty visibly breathes — tight while detected,
  // blooming through gaps.
  {
    MallDatasetConfig mall_config;
    mall_config.num_shoppers = 40;
    mall_config.window = 1800.0;
    mall_config.seed = 21;
    const Dataset mall = GenerateMallDataset(mall_config);
    EngineConfig engine_config;
    engine_config.topology = TopologyMode::kPartition;
    const QueryEngine engine(mall, engine_config);

    SvgCanvas canvas(mall.built.plan.Bounds().Expanded(2.0));
    canvas.DrawFloorPlan(mall.built.plan);
    canvas.DrawDeployment(mall.deployment);
    const ObjectId shopper = mall.ott.objects().front();
    int sample = 0;
    const int total = 14;
    for (Timestamp t = 120.0; t <= 1680.0 && sample < total; t += 120.0) {
      const Region ur = engine.ObjectRegionAt(shopper, t);
      if (!ur.IsEmpty() && ur.Bounds().Area() < 600.0) {
        canvas.DrawRegion(ur,
                          HeatColor(static_cast<double>(sample) / total),
                          0.45, 0.6);
      }
      ++sample;
    }
    const std::string path = out_dir + "/mall_trail.svg";
    if (!canvas.WriteFile(path).ok()) return 1;
    std::printf("wrote %s (shopper %d's uncertainty trail)\n", path.c_str(),
                shopper);
  }
  return 0;
}
