// Streaming-monitor benchmarks: ingest throughput, incremental vs full
// continuous top-k, and the headline contention scenario the sharding
// exists for — ingest racing live top-k pollers.
//
//   BM_StreamingIngest/shards:N        serial replay of the office
//                                      dataset's reading stream
//   BM_StreamingIngestBatch/shards:N   same stream through IngestBatch
//   BM_CurrentTopK_Incremental         one dirty shard per query (the
//                                      steady-state dashboard shape)
//   BM_CurrentTopK_FullRecompute       every shard dirty per query
//   BM_StreamingIngestUnderPolling/shards:N
//       ingest throughput with a dashboard polling CurrentTopK every few
//       readings, on the closed loop a single-core gateway actually runs
//       (on one CPU, "concurrent" polling IS this interleaving — a poller
//       thread would just timeslice against ingest and its lock waits
//       would hide inside the scheduler's noise). The dashboard polls at
//       a quantized clock, so only shards the ingest dirtied since the
//       last poll are re-derived: shards:1 is the pre-sharding monitor,
//       where every poll recomputes the whole table between two ingests;
//       the sharded monitor recomputes just the one shard the hot
//       objects live in. Its ingest throughput is the acceptance number
//       (>= 5x the shards:1 baseline; compare the items_per_second
//       counters in bench/baseline.json). Poll-pressure benchmarks are
//       load-shape sensitive, so the CI gate excludes the UnderPolling
//       entries (--benchmark_filter=-UnderPolling in the bench job); they
//       are for local/baseline runs.

#include <vector>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/streaming.h"

namespace indoorflow {
namespace {

const Dataset& Data() {
  return bench::OfficeData(bench::kPaperObjectsDefault,
                           bench::kDetectionRangeDefault);
}

// The dataset's tracking history replayed as its boundary readings (each
// record contributes its open and close), time-sorted across objects.
const std::vector<RawReading>& Readings() {
  static const std::vector<RawReading>* readings = [] {
    const Dataset& data = Data();
    auto* out = new std::vector<RawReading>();
    for (const ObjectId o : data.ott.objects()) {
      for (const auto index : data.ott.ChainOf(o)) {
        const TrackingRecord& record = data.ott.record(index);
        out->push_back({o, record.device_id, record.ts});
        out->push_back({o, record.device_id, record.te});
      }
    }
    std::stable_sort(out->begin(), out->end(),
                     [](const RawReading& a, const RawReading& b) {
                       return a.t < b.t;
                     });
    return out;
  }();
  return *readings;
}

StreamingOptions MonitorOptions(int shards) {
  const Dataset& data = Data();
  StreamingOptions options;
  options.vmax = data.vmax;
  options.shards = shards;
  // Replayed history must not expire mid-benchmark.
  options.expiry_seconds = 1e9;
  return options;
}

std::unique_ptr<StreamingMonitor> WarmMonitor(int shards) {
  const Dataset& data = Data();
  auto monitor = std::make_unique<StreamingMonitor>(
      data.deployment, data.pois, MonitorOptions(shards));
  if (!monitor->IngestBatch(Readings()).ok()) std::abort();
  return monitor;
}

// --- Ingest throughput ------------------------------------------------------

void BM_StreamingIngest(benchmark::State& state) {
  const Dataset& data = Data();
  const std::vector<RawReading>& readings = Readings();
  for (auto _ : state) {
    StreamingMonitor monitor(data.deployment, data.pois,
                             MonitorOptions(static_cast<int>(state.range(0))));
    for (const RawReading& r : readings) {
      benchmark::DoNotOptimize(monitor.Ingest(r));
    }
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(readings.size()));
}
BENCHMARK(BM_StreamingIngest)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_StreamingIngestBatch(benchmark::State& state) {
  const Dataset& data = Data();
  const std::vector<RawReading>& readings = Readings();
  for (auto _ : state) {
    StreamingMonitor monitor(data.deployment, data.pois,
                             MonitorOptions(static_cast<int>(state.range(0))));
    benchmark::DoNotOptimize(monitor.IngestBatch(readings));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(readings.size()));
}
BENCHMARK(BM_StreamingIngestBatch)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- Continuous top-k -------------------------------------------------------

// Steady state of a live dashboard polling a quantized clock: between two
// polls at the same t, a reading lands in one shard; the query re-derives
// that shard only and reuses the other seven published tallies. (Polling
// a fresh t each time would legitimately invalidate every shard — an
// undetected track's ring grows with t — so the reuse machinery is only
// reachable at a stable poll time.)
void BM_CurrentTopK_Incremental(benchmark::State& state) {
  auto monitor = WarmMonitor(8);
  const double poll_t = monitor->now() + 1.0;
  (void)monitor->CurrentTopK(poll_t, bench::kKDefault);
  ObjectId object = 0;
  const int objects = static_cast<int>(Data().ott.objects().size());
  double t = monitor->now() + 2.0;
  for (auto _ : state) {
    state.PauseTiming();
    t += 1e-3;
    if (!monitor->Ingest({object, 0, t}).ok()) std::abort();
    object = (object + 1) % objects;
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        monitor->CurrentTopK(poll_t, bench::kKDefault));
  }
}
BENCHMARK(BM_CurrentTopK_Incremental)->Unit(benchmark::kMillisecond);

// Worst case at the same poll time: every shard took a reading since the
// last poll, so the "incremental" query re-derives the whole table.
void BM_CurrentTopK_FullRecompute(benchmark::State& state) {
  auto monitor = WarmMonitor(8);
  const double poll_t = monitor->now() + 1.0;
  (void)monitor->CurrentTopK(poll_t, bench::kKDefault);
  const int objects = static_cast<int>(Data().ott.objects().size());
  double t = monitor->now() + 2.0;
  std::vector<RawReading> batch;
  for (auto _ : state) {
    state.PauseTiming();
    t += 1e-3;
    batch.clear();
    for (ObjectId o = 0; o < objects; ++o) batch.push_back({o, 0, t});
    if (!monitor->IngestBatch(batch).ok()) std::abort();
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        monitor->CurrentTopK(poll_t, bench::kKDefault));
  }
}
BENCHMARK(BM_CurrentTopK_FullRecompute)->Unit(benchmark::kMillisecond);

// --- Ingest under polling ---------------------------------------------------

// The scenario the sharding unblocks: a live dashboard polling CurrentTopK
// while readings stream in. The dashboard polls at a quantized clock (a
// dashboard refresh does not chase microsecond freshness; re-deriving at a
// new t legitimately invalidates every shard, because an undetected
// track's ring grows with t). At a stable poll time, ingest dirties only
// the shard it touched, so the sharded monitor re-derives that one shard
// and reuses the other tallies — the single-shard monitor re-walks the
// whole table on every poll.
void BM_StreamingIngestUnderPolling(benchmark::State& state) {
  const Dataset& data = Data();
  StreamingOptions options = MonitorOptions(static_cast<int>(state.range(0)));
  // A tighter presence tolerance makes each tally recompute — the work a
  // poll repeats for every track in a stale shard — expensive, so the
  // metric under test (how much table the polls re-walk between readings)
  // dominates the raw ingest cost instead of drowning in it.
  options.flow.presence_tolerance = 1e-5;
  StreamingMonitor monitor(data.deployment, data.pois, options);
  // Synthetic steady state: every idle track was last seen ~20 s before
  // the live clock, so each derives a vmax ring whose *boundary* crosses
  // the nearby POIs — the integrator-bound shape that makes a tally walk
  // expensive. (Budgets much larger than the floor cover every POI whole
  // and classify trivially; a still-detected track is a cheap disk.)
  constexpr int kTracks = 800;
  const double t0 = 10000.0;
  {
    std::vector<RawReading> seed;
    seed.reserve(kTracks);
    for (ObjectId o = 0; o < kTracks; ++o) {
      seed.push_back(
          {o, static_cast<DeviceId>(o % data.deployment.size()),
           t0 - 20.0 - static_cast<double>(o % 7)});
    }
    if (!monitor.IngestBatch(seed).ok()) std::abort();
  }

  // All hot objects live in shard 0 (ids are multiples of the shard
  // count): each poll finds exactly one dirty shard, re-derives its
  // kTracks / shards tracks, and reuses the rest — the pre-sharding
  // monitor re-derives all kTracks.
  constexpr int kHotObjects = 8;
  constexpr int kPollEvery = 64;  // readings per dashboard refresh
  const double poll_t = t0;       // quantized dashboard clock
  const int devices = static_cast<int>(data.deployment.size());
  double t = monitor.now();
  int64_t ingested = 0;
  int64_t polls = 0;
  for (auto _ : state) {
    t += 1e-7;
    const ObjectId object =
        static_cast<ObjectId>((ingested % kHotObjects) * 8);
    const DeviceId device = static_cast<DeviceId>(
        (ingested / kHotObjects) % devices);
    if (!monitor.Ingest({object, device, t}).ok()) std::abort();
    ++ingested;
    if (ingested % kPollEvery == 0) {
      benchmark::DoNotOptimize(
          monitor.CurrentTopK(poll_t, bench::kKDefault));
      ++polls;
    }
  }
  state.SetItemsProcessed(ingested);
  state.counters["polls"] = benchmark::Counter(
      static_cast<double>(polls), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_StreamingIngestUnderPolling)
    ->ArgName("shards")
    ->Arg(1)
    ->Arg(8)
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace indoorflow
