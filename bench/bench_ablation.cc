// Ablation benchmarks for the design choices DESIGN.md calls out:
//   1. joinInterval with vs without the finer per-ellipse sub-MBRs
//      (paper Section 4.3.2 / Figure 9);
//   2. query cost with vs without the indoor topology check (Section 3.3);
//   3. AR-tree retrieval vs a full OTT scan;
//   4. area-integrator tolerance vs presence-computation cost.

#include <memory>
#include <string>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/common/deadline.h"
#include "src/common/trace.h"
#include "src/core/flow_matrix.h"
#include "src/core/naive.h"
#include "src/core/tracking_state.h"
#include "src/core/uncertainty.h"
#include "src/index/dynamic_rtree.h"
#include "src/geometry/area_integrator.h"

namespace indoorflow {
namespace {

const Dataset& Data() {
  return bench::OfficeData(bench::kPaperObjectsDefault,
                           bench::kDetectionRangeDefault);
}

// --- 1. Sub-MBR improvement -------------------------------------------------

void BM_Ablation_SubMbrs(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  const Dataset& data = Data();
  EngineConfig config;
  config.topology = TopologyMode::kOff;
  config.interval_sub_mbrs = enabled;
  const QueryEngine engine(data, config);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result = engine.IntervalTopK(ts, te, bench::kKDefault,
                                      Algorithm::kJoin, &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(enabled ? "sub_mbrs_on" : "sub_mbrs_off");
}
BENCHMARK(BM_Ablation_SubMbrs)->Arg(0)->Arg(1)->Unit(
    benchmark::kMillisecond);

// --- 2. Topology check cost --------------------------------------------------

void BM_Ablation_TopologyCheck(benchmark::State& state) {
  const auto mode = static_cast<TopologyMode>(state.range(0));
  const bool interval = state.range(1) != 0;
  const Dataset& data = Data();
  const QueryEngine& engine = bench::EngineFor(data, mode);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result =
        interval ? engine.IntervalTopK(ts, te, bench::kKDefault,
                                       Algorithm::kJoin, &subset)
                 : engine.SnapshotTopK(t, bench::kKDefault, Algorithm::kJoin,
                                       &subset);
    benchmark::DoNotOptimize(result);
  }
  const char* mode_name = mode == TopologyMode::kOff        ? "topo_off"
                          : mode == TopologyMode::kPartition ? "topo_partition"
                                                             : "topo_exact";
  state.SetLabel(std::string(mode_name) +
                 (interval ? "/interval" : "/snapshot"));
}
BENCHMARK(BM_Ablation_TopologyCheck)
    ->Args({0, 0})
    ->Args({1, 0})
    ->Args({2, 0})
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({2, 1})
    ->ArgNames({"topo_mode", "interval"})
    ->Unit(benchmark::kMillisecond);

// --- 2b. Pruning effectiveness (operation counts, not time) ------------------
// The join's advantage in the paper is work avoided; these counters expose
// how many uncertainty regions / presence evaluations each algorithm does.

void BM_Ablation_PruningCounters(benchmark::State& state) {
  const bool join = state.range(0) != 0;
  const int k = static_cast<int>(state.range(1));
  const Dataset& data = Data();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.IntervalTopK(
        ts, te, k, join ? Algorithm::kJoin : Algorithm::kIterative, &subset,
        &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel(join ? "join" : "iterative");
  bench::RecordQueryStats(state, stats, queries);
}
BENCHMARK(BM_Ablation_PruningCounters)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 20})
    ->Args({1, 20})
    ->ArgNames({"join", "k"})
    ->Unit(benchmark::kMillisecond);

// --- 2b1b. Threshold queries (indoorflow extension) --------------------------
// The join's bound cutoff stops the traversal once no POI can reach tau;
// the iterative variant always computes every flow. `pct` positions tau
// relative to the snapshot's peak flow (99 = just under the peak, only the
// hottest POI qualifies; 50 = half the peak, a broad alert).

void BM_Ablation_ThresholdQuery(benchmark::State& state) {
  const bool join = state.range(0) != 0;
  const int pct = static_cast<int>(state.range(1));
  const bool area_bounds = state.range(2) != 0;
  const Dataset& data = Data();
  EngineConfig config;
  config.join_area_bounds = area_bounds;
  const QueryEngine engine(data, config);
  const Timestamp t = bench::SnapshotTime(data);
  const auto top = engine.SnapshotTopK(t, 1, Algorithm::kIterative);
  const double tau =
      top.empty() || top[0].flow <= 0.0
          ? 1.0
          : top[0].flow * static_cast<double>(pct) / 100.0;
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotThreshold(
        t, tau, join ? Algorithm::kJoin : Algorithm::kIterative, nullptr,
        &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel(std::string(join ? "join" : "iterative") +
                 (area_bounds ? "+area_bounds" : ""));
  bench::RecordQueryStats(state, stats, queries);
}
BENCHMARK(BM_Ablation_ThresholdQuery)
    ->Args({0, 99, 0})
    ->Args({1, 99, 0})
    ->Args({1, 99, 1})
    ->Args({0, 50, 0})
    ->Args({1, 50, 0})
    ->Args({1, 50, 1})
    ->ArgNames({"join", "tau_pct", "area"})
    ->Unit(benchmark::kMillisecond);

// --- 2b1c. Density top-k (indoorflow extension) ------------------------------
// Density bounds (flow bound / min POI area) prune better than raw flow
// bounds because the ranking is dominated by small POIs whose subtrees
// carry small min-areas — the counters make that visible.

void BM_Ablation_DensityQuery(benchmark::State& state) {
  const bool join = state.range(0) != 0;
  const int k = static_cast<int>(state.range(1));
  const Dataset& data = Data();
  const QueryEngine& engine = bench::EngineFor(data);
  const Timestamp t = bench::SnapshotTime(data);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotDensityTopK(
        t, k, join ? Algorithm::kJoin : Algorithm::kIterative, nullptr,
        &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel(join ? "join" : "iterative");
  bench::RecordQueryStats(state, stats, queries);
}
BENCHMARK(BM_Ablation_DensityQuery)
    ->Args({0, 1})
    ->Args({1, 1})
    ->Args({0, 10})
    ->Args({1, 10})
    ->ArgNames({"join", "k"})
    ->Unit(benchmark::kMillisecond);

// --- 2b2. Area-aware join bounds (indoorflow extension) -----------------------

void BM_Ablation_AreaBounds(benchmark::State& state) {
  const bool enabled = state.range(0) != 0;
  const int k = static_cast<int>(state.range(1));
  const Dataset& data = Data();
  EngineConfig config;
  config.join_area_bounds = enabled;
  const QueryEngine engine(data, config);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, k, Algorithm::kJoin, &subset, &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel(enabled ? "area_bounds" : "count_bounds");
  bench::RecordQueryStats(state, stats, queries);
}
BENCHMARK(BM_Ablation_AreaBounds)
    ->Args({0, 5})
    ->Args({1, 5})
    ->Args({0, 20})
    ->Args({1, 20})
    ->ArgNames({"area", "k"})
    ->Unit(benchmark::kMillisecond);

// --- 2c. R_I construction: STR bulk load vs classical insertion ---------------

void BM_Ablation_RTreeConstruction(benchmark::State& state) {
  const bool dynamic = state.range(0) != 0;
  const Dataset& data = Data();
  // Object MBRs as the join algorithms would build them.
  std::vector<Box> boxes;
  Rng rng(bench::kBoxSeed);
  const Box bounds = data.built.plan.Bounds();
  for (int i = 0; i < 2000; ++i) {
    const double x = rng.Uniform(bounds.min_x, bounds.max_x);
    const double y = rng.Uniform(bounds.min_y, bounds.max_y);
    boxes.push_back(Box{x, y, x + rng.Uniform(1, 15), y + rng.Uniform(1, 15)});
  }
  for (auto _ : state) {
    if (dynamic) {
      DynamicRTree tree(8);
      for (size_t i = 0; i < boxes.size(); ++i) {
        tree.Insert(static_cast<int32_t>(i), boxes[i]);
      }
      benchmark::DoNotOptimize(tree);
    } else {
      std::vector<RTree::Item> items;
      items.reserve(boxes.size());
      for (size_t i = 0; i < boxes.size(); ++i) {
        items.push_back(RTree::Item{static_cast<int32_t>(i), boxes[i]});
      }
      auto tree = RTree::BulkLoad(std::move(items), 8);
      benchmark::DoNotOptimize(tree);
    }
  }
  state.SetLabel(dynamic ? "guttman_insert" : "str_bulk_load");
}
BENCHMARK(BM_Ablation_RTreeConstruction)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// --- 2d. No-index baseline vs the engine ---------------------------------------

void BM_Ablation_NaiveVsEngine(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));  // 0 naive, 1 iter, 2 join
  const Dataset& data = Data();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);

  const TopologyChecker checker(data.built.plan, *data.door_graph,
                                data.deployment);
  const UncertaintyModel model(data.ott, data.deployment, data.vmax,
                               &checker, TopologyMode::kPartition);
  NaiveContext naive;
  naive.table = &data.ott;
  naive.model = &model;
  naive.pois = &data.pois;

  for (auto _ : state) {
    std::vector<PoiFlow> result;
    switch (mode) {
      case 0:
        result = NaiveSnapshotTopK(naive, subset, t, bench::kKDefault);
        break;
      case 1:
        result = engine.SnapshotTopK(t, bench::kKDefault,
                                     Algorithm::kIterative, &subset);
        break;
      default:
        result = engine.SnapshotTopK(t, bench::kKDefault, Algorithm::kJoin,
                                     &subset);
        break;
    }
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(mode == 0 ? "naive" : (mode == 1 ? "iterative" : "join"));
}
BENCHMARK(BM_Ablation_NaiveVsEngine)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

// --- 2e. Materialized flows vs live queries ------------------------------------

void BM_Ablation_FlowMatrixQuery(benchmark::State& state) {
  const bool materialized = state.range(0) != 0;
  const Dataset& data = Data();
  const QueryEngine& engine = bench::EngineFor(data);
  static const FlowMatrix* matrix = [&] {
    FlowMatrixOptions options;
    options.bucket_seconds = 300.0;
    options.threads = 1;
    return new FlowMatrix(FlowMatrix::Build(
        engine, data.window_start, data.window_end, options));
  }();
  Rng rng(bench::kProbeSeed);
  for (auto _ : state) {
    const Timestamp t =
        rng.Uniform(data.window_start + 400.0, data.window_end - 400.0);
    auto result = materialized
                      ? matrix->ApproxSnapshotTopK(t, bench::kKDefault)
                      : engine.SnapshotTopK(t, bench::kKDefault,
                                            Algorithm::kJoin);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(materialized ? "flow_matrix" : "live_query");
}
BENCHMARK(BM_Ablation_FlowMatrixQuery)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMicrosecond);

// --- 3. AR-tree vs full scan -------------------------------------------------

void BM_Ablation_ARTreePointQuery(benchmark::State& state) {
  const Dataset& data = Data();
  const ARTree tree = ARTree::Build(data.ott);
  const Timestamp t = bench::SnapshotTime(data);
  std::vector<ARTreeEntry> out;
  for (auto _ : state) {
    tree.PointQuery(t, &out);
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("artree");
  state.counters["hits"] = static_cast<double>(out.size());
}
BENCHMARK(BM_Ablation_ARTreePointQuery)->Unit(benchmark::kMicrosecond);

void BM_Ablation_OttScanPointQuery(benchmark::State& state) {
  const Dataset& data = Data();
  const ObjectTrackingTable& table = data.ott;
  const Timestamp t = bench::SnapshotTime(data);
  std::vector<ARTreeEntry> out;
  for (auto _ : state) {
    out.clear();
    // Equivalent retrieval without the index: walk every chain.
    for (ObjectId object : table.objects()) {
      for (RecordIndex idx : table.ChainOf(object)) {
        const TrackingRecord& cur = table.record(idx);
        const RecordIndex pre = table.PrevOf(idx);
        const Timestamp t1 =
            pre == kInvalidRecord ? cur.ts : table.record(pre).te;
        const bool covers = pre == kInvalidRecord
                                ? (t >= t1 && t <= cur.te)
                                : (t > t1 && t <= cur.te);
        if (covers) {
          out.push_back(ARTreeEntry{t1, cur.te, pre, idx,
                                    pre == kInvalidRecord});
        }
      }
    }
    benchmark::DoNotOptimize(out);
  }
  state.SetLabel("full_scan");
  state.counters["hits"] = static_cast<double>(out.size());
}
BENCHMARK(BM_Ablation_OttScanPointQuery)->Unit(benchmark::kMicrosecond);

// --- 3b. Request-trace overhead (sampling off vs 100%) ---------------------
// Arg(0) is the unsampled request shape: identifiers are minted (the
// response join key) but no Trace is allocated, so every Span operation in
// the engine is a null-pointer compare. Arg(1) is a fully sampled request:
// a heap Trace, a root span, the per-query span tree, and Finish(). The
// bench gate holds the delta between the two to the tracing budget
// documented in docs/OBSERVABILITY.md.

void BM_TraceOverhead(benchmark::State& state) {
  const bool sampled = state.range(0) != 0;
  const Dataset& data = Data();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  for (auto _ : state) {
    const TraceContext context = NewTraceContext(sampled ? 1.0 : 0.0);
    std::shared_ptr<Trace> trace;
    if (context.sampled) trace = std::make_shared<Trace>(context);
    Span root(trace.get(), "request");
    QueryControl control(Deadline::Infinite(), nullptr);
    control.set_span(&root);
    auto result = engine.SnapshotTopK(t, bench::kKDefault, Algorithm::kJoin,
                                      &subset, nullptr, nullptr, &control);
    benchmark::DoNotOptimize(result);
    root.End();
    if (trace != nullptr) trace->Finish();
  }
  state.SetLabel(sampled ? "sampled" : "unsampled");
}
BENCHMARK(BM_TraceOverhead)->Arg(0)->Arg(1)->Unit(benchmark::kMillisecond);

// --- 4. Area-integrator precision sweep ---------------------------------------

void BM_Ablation_AreaTolerance(benchmark::State& state) {
  // Presence-style integration of a ring ∩ ellipse region against a POI
  // that the region only partially covers (so the boundary must actually
  // be refined down to the requested tolerance).
  const double tolerance = 1.0 / state.range(0);
  const Region ur = Region::Intersect(
      Region::Make(ExtendedEllipse(Circle{{0, 0}, 1.5}, Circle{{12, 2}, 1.5},
                                   14.0)),
      Region::Make(Ring{{12, 2}, 1.5, 9.0}));
  const Polygon poi = Polygon::Rectangle(2, -8, 22, 12);
  const Region poi_region = Region::Make(poi);
  AreaOptions options;
  options.abs_tolerance = tolerance * poi.Area();
  options.max_depth = 20;
  double area = 0.0;
  for (auto _ : state) {
    area = AreaOfIntersection(ur, poi_region, options).area;
    benchmark::DoNotOptimize(area);
  }
  state.counters["presence"] = area / poi.Area();
}
BENCHMARK(BM_Ablation_AreaTolerance)
    ->Arg(10)      // 10% tolerance
    ->Arg(100)     // 1%
    ->Arg(1000)    // 0.1%
    ->Arg(10000)   // 0.01%
    ->ArgName("inv_tol")
    ->Unit(benchmark::kMicrosecond);

}  // namespace
}  // namespace indoorflow
