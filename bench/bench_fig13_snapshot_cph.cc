// Figure 13: snapshot top-k query on the CPH-like (airport Bluetooth)
// dataset.
//   (a) vs k   — both algorithms stable, join faster;
//   (b) vs |P| — moderate, near-linear growth for both.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace indoorflow {
namespace {

using bench::AlgoOf;

void BM_Fig13a_EffectOfK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = bench::CphData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  for (auto _ : state) {
    auto result = engine.SnapshotTopK(t, k, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void BM_Fig13b_EffectOfP(benchmark::State& state) {
  const int percent = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = bench::CphData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset = bench::PoiSubset(data, percent);
  const Timestamp t = bench::SnapshotTime(data);
  for (auto _ : state) {
    auto result =
        engine.SnapshotTopK(t, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void KArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int k : bench::kKValues) b->Args({k, algo});
  }
}
void PArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int p : bench::kPoiPercents) b->Args({p, algo});
  }
}

BENCHMARK(BM_Fig13a_EffectOfK)
    ->Apply(KArgs)
    ->ArgNames({"k", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig13b_EffectOfP)
    ->Apply(PArgs)
    ->ArgNames({"P_pct", "algo"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace indoorflow
