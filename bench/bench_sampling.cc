// Quality-vs-speedup for sampling-based approximate top-k
// (docs/APPROXIMATION.md): the Fig10 snapshot workload evaluated exactly
// and under increasing sample budgets.
//
// Each sampled variant publishes deterministic quality counters alongside
// its running time:
//   RecallAtK   — |top-k(exact) ∩ top-k(sampled)| / k at the paper's
//                 default k, fixed sampler seed;
//   MeanRelErr  — mean |estimate - exact| / exact over the exact top-k;
//   SamplePopulation / SampleBudget — the n-of-N the estimator saw.
// tools/bench_compare.py diffs the counters against bench/baseline.json
// (quality regressions fail loudly even when timings hold), and CI's
// warn-only gate (tools/check_sampling_quality.py) checks RecallAtK at the
// default budget.
//
// The dataset is the Fig10 office synthetic with the object count floored
// at 2000: sampling pays off in the population-bound regime, and the
// default INDOORFLOW_BENCH_SCALE=0.01 would leave only 300 objects —
// too few for the budget sweep to separate from exact evaluation.

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"
#include "src/core/approx.h"

namespace indoorflow {
namespace {

constexpr int kBudgets[] = {64, 128, 256};
constexpr int kDefaultBudget = 256;

const Dataset& SamplingData() {
  static const Dataset* data = [] {
    OfficeDatasetConfig config;
    config.num_objects =
        std::max(2000, bench::ScaledObjects(bench::kPaperObjectsDefault));
    config.detection_range = bench::kDetectionRangeDefault;
    config.duration = bench::kObservationSeconds;
    config.seed = bench::kOfficeSeed;
    return new Dataset(GenerateOfficeDataset(config));
  }();
  return *data;
}

ApproxConfig SampledConfig(int budget) {
  ApproxConfig config;
  config.mode = ApproxMode::kSampled;
  config.sample_budget = budget;
  return config;
}

/// Recall@k and mean relative error of one sampled run against the exact
/// flows, computed once per benchmark (fixed seed, so the counters are
/// bit-stable across runs and baseline comparisons).
struct Quality {
  double recall = 0.0;
  double mean_rel_err = 0.0;
  double population = 0.0;
  double sample_size = 0.0;
};

Quality MeasureQuality(const QueryEngine& engine,
                       const std::vector<PoiId>& subset, Timestamp t,
                       int k, const ApproxConfig& approx) {
  const auto exact =
      engine.SnapshotTopK(t, static_cast<int>(subset.size()),
                          Algorithm::kIterative, &subset);
  QueryStats stats;
  const auto estimates = engine.SnapshotTopKEstimate(
      t, static_cast<int>(subset.size()), approx, &subset, &stats);

  std::set<PoiId> exact_top;
  for (int i = 0; i < k && i < static_cast<int>(exact.size()); ++i) {
    exact_top.insert(exact[static_cast<size_t>(i)].poi);
  }
  int hits = 0;
  for (int i = 0; i < k && i < static_cast<int>(estimates.size()); ++i) {
    hits += exact_top.count(estimates[static_cast<size_t>(i)].poi) ? 1 : 0;
  }

  std::map<PoiId, double> estimate_of;
  for (const FlowEstimate& est : estimates) {
    estimate_of[est.poi] = est.value;
  }
  double err_sum = 0.0;
  int err_count = 0;
  for (const PoiId poi : exact_top) {
    double exact_flow = 0.0;
    for (const PoiFlow& f : exact) {
      if (f.poi == poi) exact_flow = f.flow;
    }
    if (exact_flow <= 0.0) continue;
    const auto it = estimate_of.find(poi);
    const double estimate = it == estimate_of.end() ? 0.0 : it->second;
    err_sum += std::abs(estimate - exact_flow) / exact_flow;
    ++err_count;
  }

  Quality quality;
  quality.recall = exact_top.empty()
                       ? 1.0
                       : static_cast<double>(hits) /
                             static_cast<double>(exact_top.size());
  quality.mean_rel_err =
      err_count == 0 ? 0.0 : err_sum / static_cast<double>(err_count);
  quality.population = static_cast<double>(stats.sample_population);
  quality.sample_size = static_cast<double>(stats.sample_size);
  return quality;
}

/// The exact reference: the same workload every sampled variant divides
/// its running time by.
void BM_Sampling_Exact(benchmark::State& state) {
  const Dataset& data = SamplingData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotTopK(t, bench::kKDefault,
                                      Algorithm::kIterative, &subset,
                                      &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel("exact");
  bench::RecordQueryStats(state, stats, queries);
}

void BM_Sampling_Budget(benchmark::State& state) {
  const int budget = static_cast<int>(state.range(0));
  const Dataset& data = SamplingData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  const ApproxConfig approx = SampledConfig(budget);
  const Quality quality =
      MeasureQuality(engine, subset, t, bench::kKDefault, approx);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotTopKEstimate(t, bench::kKDefault, approx,
                                              &subset, &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel("sampled");
  state.counters["RecallAtK"] = quality.recall;
  state.counters["MeanRelErr"] = quality.mean_rel_err;
  state.counters["SamplePopulation"] = quality.population;
  state.counters["SampleBudget"] = static_cast<double>(budget);
  bench::RecordQueryStats(state, stats, queries);
}

/// Adaptive mode on the same workload: the population exceeds the switch
/// threshold, so this measures the sampled path plus the decision
/// overhead.
void BM_Sampling_Adaptive(benchmark::State& state) {
  const Dataset& data = SamplingData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  ApproxConfig approx = SampledConfig(kDefaultBudget);
  approx.mode = ApproxMode::kAdaptive;
  approx.adaptive_min_population = 512;
  const Quality quality =
      MeasureQuality(engine, subset, t, bench::kKDefault, approx);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotTopKEstimate(t, bench::kKDefault, approx,
                                              &subset, &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel("adaptive");
  state.counters["RecallAtK"] = quality.recall;
  state.counters["MeanRelErr"] = quality.mean_rel_err;
  state.counters["SamplePopulation"] = quality.population;
  state.counters["SampleBudget"] =
      static_cast<double>(approx.sample_budget);
  bench::RecordQueryStats(state, stats, queries);
}

void BudgetArgs(benchmark::internal::Benchmark* b) {
  for (const int budget : kBudgets) b->Args({budget});
}

BENCHMARK(BM_Sampling_Exact)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sampling_Budget)
    ->Apply(BudgetArgs)
    ->ArgNames({"budget"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Sampling_Adaptive)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace indoorflow
