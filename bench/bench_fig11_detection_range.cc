// Figure 11: effect of the RFID detection range (the OTT is regenerated for
// each range, like in the paper).
//   (a) snapshot queries — running time *increases* with the range (larger
//       uncertainty regions cost more area estimation);
//   (b) interval queries — running time *decreases* with the range (the
//       inter-device ellipses shrink as ranges grow).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace indoorflow {
namespace {

using bench::AlgoOf;

void BM_Fig11a_Snapshot(benchmark::State& state) {
  const double range = state.range(0) / 100.0;
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data =
      bench::OfficeData(bench::kPaperObjectsDefault, range);
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  for (auto _ : state) {
    auto result =
        engine.SnapshotTopK(t, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void BM_Fig11b_Interval(benchmark::State& state) {
  const double range = state.range(0) / 100.0;
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data =
      bench::OfficeData(bench::kPaperObjectsDefault, range);
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void RangeArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (double r : bench::kDetectionRanges) {
      b->Args({static_cast<int>(r * 100), algo});
    }
  }
}

BENCHMARK(BM_Fig11a_Snapshot)
    ->Apply(RangeArgs)
    ->ArgNames({"range_cm", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig11b_Interval)
    ->Apply(RangeArgs)
    ->ArgNames({"range_cm", "algo"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace indoorflow
