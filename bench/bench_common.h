// Shared infrastructure for the paper-reproduction benchmarks.
//
// Parameters follow Table 4 of the paper (defaults in bold there):
//   |O|: 10K..50K (default 30K)   detection range: 1..2.5m (default 1.5)
//   |P|: 20..100% of 75 POIs (default 60)   k: 1..50 (default 20)
//   t_e - t_s: 10..60 min (default 20)
//
// Paper-scale datasets do not fit a 1-core CI budget, so object counts are
// multiplied by INDOORFLOW_BENCH_SCALE (default 0.01, i.e. 300 objects for
// the paper's 30K). Relative algorithm behaviour — the shapes the paper's
// figures show — is preserved; set INDOORFLOW_BENCH_SCALE=1 for full scale.

#ifndef INDOORFLOW_BENCH_BENCH_COMMON_H_
#define INDOORFLOW_BENCH_BENCH_COMMON_H_

#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <benchmark/benchmark.h>

#include "src/core/engine.h"

namespace indoorflow {
namespace bench {

// ---- Deterministic seeds ---------------------------------------------------
// Every fixture RNG is seeded from these constants so repeated runs (and the
// CI regression gate's baseline comparison) measure identical workloads.

inline constexpr uint64_t kOfficeSeed = 42;
inline constexpr uint64_t kCphSeed = 7;
inline constexpr uint64_t kPoiSubsetSeed = 99;
inline constexpr uint64_t kBoxSeed = 5;
inline constexpr uint64_t kProbeSeed = 3;

// ---- Table 4 -------------------------------------------------------------

inline constexpr int kPaperObjects[] = {10000, 20000, 30000, 40000, 50000};
inline constexpr int kPaperObjectsDefault = 30000;
inline constexpr double kDetectionRanges[] = {1.0, 1.5, 2.0, 2.5};
inline constexpr double kDetectionRangeDefault = 1.5;
inline constexpr int kPoiPercents[] = {20, 40, 60, 80, 100};
inline constexpr int kPoiPercentDefault = 60;
inline constexpr int kKValues[] = {1, 5, 10, 20, 30, 40, 50};
inline constexpr int kKDefault = 20;
inline constexpr int kIntervalMinutes[] = {10, 20, 30, 40, 50, 60};
inline constexpr int kIntervalMinutesDefault = 20;

/// Observation window for the synthetic dataset (covers the longest query
/// interval with slack).
inline constexpr double kObservationSeconds = 2.0 * 3600.0;

inline double Scale() {
  static const double scale = [] {
    const char* env = std::getenv("INDOORFLOW_BENCH_SCALE");
    if (env == nullptr) return 0.01;
    const double v = std::atof(env);
    return v > 0.0 ? v : 0.01;
  }();
  return scale;
}

inline int ScaledObjects(int paper_objects) {
  const int scaled = static_cast<int>(paper_objects * Scale());
  return scaled < 10 ? 10 : scaled;
}

// ---- Cached datasets and engines ------------------------------------------

/// Office dataset for (paper-scale |O|, detection range), generated once
/// per process.
inline const Dataset& OfficeData(int paper_objects, double detection_range) {
  static auto* cache = new std::map<std::pair<int, int>, Dataset>();
  const std::pair<int, int> key{paper_objects,
                                static_cast<int>(detection_range * 100)};
  auto it = cache->find(key);
  if (it == cache->end()) {
    OfficeDatasetConfig config;
    config.num_objects = ScaledObjects(paper_objects);
    config.detection_range = detection_range;
    config.duration = kObservationSeconds;
    config.seed = kOfficeSeed;
    it = cache->emplace(key, GenerateOfficeDataset(config)).first;
  }
  return it->second;
}

inline const Dataset& CphData() {
  static const Dataset* data = [] {
    CphDatasetConfig config;
    // The CPH extract tracks ~10K passengers; scale like the synthetic
    // datasets but keep at least a few hundred for meaningful queries.
    config.num_passengers = std::max(200, ScaledObjects(10000) * 2);
    config.window = kObservationSeconds;
    config.seed = kCphSeed;
    return new Dataset(GenerateCphLikeDataset(config));
  }();
  return *data;
}

/// Engine cache keyed by dataset pointer (datasets above are stable). The
/// default topology mode is the paper's partition-level check.
inline const QueryEngine& EngineFor(
    const Dataset& dataset, TopologyMode mode = TopologyMode::kPartition) {
  static auto* cache =
      new std::map<std::pair<const Dataset*, int>,
                   std::unique_ptr<QueryEngine>>();
  const auto key = std::make_pair(&dataset, static_cast<int>(mode));
  auto it = cache->find(key);
  if (it == cache->end()) {
    EngineConfig config;
    config.topology = mode;
    it = cache
             ->emplace(key,
                       std::make_unique<QueryEngine>(dataset, config))
             .first;
  }
  return *it->second;
}

/// Engine with intra-query parallelism enabled (EngineConfig::threads =
/// `threads`, parallel_threshold = 1 so the fan-out engages even at small
/// INDOORFLOW_BENCH_SCALE object counts). Cached separately from EngineFor
/// — the serial baselines must keep measuring a serial engine.
inline const QueryEngine& ParallelEngineFor(const Dataset& dataset,
                                            int threads) {
  static auto* cache = new std::map<std::pair<const Dataset*, int>,
                                    std::unique_ptr<QueryEngine>>();
  const auto key = std::make_pair(&dataset, threads);
  auto it = cache->find(key);
  if (it == cache->end()) {
    EngineConfig config;
    config.threads = threads;
    config.parallel_threshold = 1;
    it = cache
             ->emplace(key,
                       std::make_unique<QueryEngine>(dataset, config))
             .first;
  }
  return *it->second;
}

/// Deterministic random POI subset of the given percentage (paper: "the
/// query POI set is determined as a random subset of the total 75 POIs").
inline std::vector<PoiId> PoiSubset(const Dataset& dataset, int percent,
                                    uint64_t seed = kPoiSubsetSeed) {
  std::vector<PoiId> all;
  for (const Poi& poi : dataset.pois) all.push_back(poi.id);
  Rng rng(seed);
  // Fisher-Yates prefix shuffle.
  const size_t want =
      std::max<size_t>(1, all.size() * static_cast<size_t>(percent) / 100);
  for (size_t i = 0; i < want; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng.UniformInt(
                static_cast<uint64_t>(all.size() - i)));
    std::swap(all[i], all[j]);
  }
  all.resize(want);
  return all;
}

/// Query anchors: mid-window snapshot time / centered interval.
inline Timestamp SnapshotTime(const Dataset& dataset) {
  return (dataset.window_start + dataset.window_end) / 2.0;
}

inline std::pair<Timestamp, Timestamp> IntervalWindow(const Dataset& dataset,
                                                      int minutes) {
  const Timestamp mid = SnapshotTime(dataset);
  const double half = minutes * 60.0 / 2.0;
  return {mid - half, mid + half};
}

inline const char* AlgoName(int algo) {
  return algo == 0 ? "iterative" : "join";
}

inline Algorithm AlgoOf(int algo) {
  return algo == 0 ? Algorithm::kIterative : Algorithm::kJoin;
}

/// Publishes per-query QueryStats averages as benchmark user counters, so
/// --benchmark_format=json carries the ablation's work-avoided data
/// machine-readably (tools/bench_compare.py also diffs these, catching
/// pruning regressions that happen not to move the median time).
inline void RecordQueryStats(benchmark::State& state, const QueryStats& stats,
                             int64_t queries) {
  if (queries <= 0) return;
  const double n = static_cast<double>(queries);
  // Counter names come from kQueryStatsFields (fields without a bench name
  // are the phase timers, which the benchmark itself already measures) —
  // bench/baseline.json keys on these names.
  for (const QueryStatsField& field : kQueryStatsFields) {
    if (field.bench_name == nullptr) continue;
    state.counters[field.bench_name] =
        static_cast<double>(stats.*field.member) / n;
  }
}

}  // namespace bench
}  // namespace indoorflow

#endif  // INDOORFLOW_BENCH_BENCH_COMMON_H_
