// Figure 14: interval top-k query on the CPH-like (airport Bluetooth)
// dataset.
//   (a) vs k               — join more efficient and more stable;
//   (b) vs |P|             — join stable thanks to the finer sub-MBRs;
//   (c) vs interval length — both grow, join stays faster.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace indoorflow {
namespace {

using bench::AlgoOf;

void BM_Fig14a_EffectOfK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = bench::CphData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result = engine.IntervalTopK(ts, te, k, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void BM_Fig14b_EffectOfP(benchmark::State& state) {
  const int percent = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = bench::CphData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset = bench::PoiSubset(data, percent);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void BM_Fig14c_EffectOfInterval(benchmark::State& state) {
  const int minutes = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = bench::CphData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] = bench::IntervalWindow(data, minutes);
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void KArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int k : bench::kKValues) b->Args({k, algo});
  }
}
void PArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int p : bench::kPoiPercents) b->Args({p, algo});
  }
}
void LenArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int m : bench::kIntervalMinutes) b->Args({m, algo});
  }
}

BENCHMARK(BM_Fig14a_EffectOfK)
    ->Apply(KArgs)
    ->ArgNames({"k", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig14b_EffectOfP)
    ->Apply(PArgs)
    ->ArgNames({"P_pct", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig14c_EffectOfInterval)
    ->Apply(LenArgs)
    ->ArgNames({"minutes", "algo"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace indoorflow
