// Closed-loop multi-client latency driver for `indoorflow_cli serve`.
//
// Spawns N client threads, each issuing HTTP query requests back-to-back
// (closed loop: the next request starts when the previous response lands),
// classifies every response (200 ok / 503 shed / 504 deadline / other),
// and reports client-observed latency percentiles of the successful
// requests. Two CI modes share this binary (.github/workflows/ci.yml):
//
//   healthy:  offered load fits the queue; assert a minimum ok-count and
//             gate p50/p99 against bench/baseline.json via
//             tools/bench_compare.py (--json-out emits Google-Benchmark-
//             style JSON rows BM_ServeLatency_p50 / _p99 for it).
//   overload: offered load exceeds --queue-limit; assert the server sheds
//             with structured 503s (--expect-shed) and still answers the
//             requests it admits — never crashes or wedges.
//
// `--slowest-traces N` additionally prints the trace ids of the slowest
// decile of ok responses (capped at N, slowest first) — every response
// body carries one, so each id can be looked up on the server's
// /traces/recent ring or grepped in the canonical query log.
//
// Deliberately dependency-free (plain POSIX sockets + std::thread, no
// benchmark library): the driver must put pressure on the server, not on
// its own harness, and it must keep building if the benchmark dependency
// is unavailable.
//
// Exit status: 0 on success, 1 when an assertion (--expect-shed,
// --min-ok) fails or responses are malformed, 2 on usage errors.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

namespace {

struct Options {
  std::string host = "127.0.0.1";
  int port = 0;
  int clients = 4;
  int requests = 50;  // per client
  std::string endpoint = "/query/snapshot";
  double t = 300.0;
  int k = 5;
  std::string algo = "join";
  int deadline_ms = 1000;
  std::string json_out;
  bool expect_shed = false;
  int min_ok = 0;
  // > 0: print up to this many trace ids from the slowest decile of ok
  // responses, slowest first, for pasting into /traces/recent triage.
  int slowest_traces = 0;
};

struct HttpReply {
  int code = 0;  // 0 = transport failure
  std::string body;
};

// One request over a fresh connection (the server is Connection: close).
HttpReply SendRequest(const Options& options, const std::string& body) {
  HttpReply reply;
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return reply;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (inet_pton(AF_INET, options.host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return reply;
  }
  if (connect(fd, reinterpret_cast<const sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    close(fd);
    return reply;
  }
  std::string request = "POST " + options.endpoint +
                        " HTTP/1.1\r\nHost: " + options.host +
                        "\r\nContent-Type: application/json\r\n"
                        "Content-Length: " +
                        std::to_string(body.size()) +
                        "\r\nConnection: close\r\n\r\n" + body;
  size_t sent = 0;
  while (sent < request.size()) {
    const ssize_t n = send(fd, request.data() + sent,
                           request.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close(fd);
      return reply;
    }
    sent += static_cast<size_t>(n);
  }
  std::string data;
  char buf[4096];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  // "HTTP/1.1 200 OK\r\n..." — the code sits after the first space.
  if (data.size() < 12 || data.compare(0, 5, "HTTP/") != 0) return reply;
  reply.code = std::atoi(data.c_str() + data.find(' ') + 1);
  const size_t header_end = data.find("\r\n\r\n");
  if (header_end != std::string::npos) {
    reply.body = data.substr(header_end + 4);
  }
  return reply;
}

// The `trace_id` every response body carries (sampled or not), "" when
// absent. Plain string search: the driver stays JSON-parser-free.
std::string ExtractTraceId(const std::string& body) {
  static const char kKey[] = "\"trace_id\":\"";
  const size_t at = body.find(kKey);
  if (at == std::string::npos) return "";
  const size_t start = at + sizeof(kKey) - 1;
  const size_t end = body.find('"', start);
  if (end == std::string::npos) return "";
  return body.substr(start, end - start);
}

int64_t NowNs() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<int64_t>(ts.tv_sec) * 1'000'000'000 + ts.tv_nsec;
}

double PercentileNs(std::vector<int64_t>& sorted_ns, double q) {
  if (sorted_ns.empty()) return 0.0;
  const size_t index = static_cast<size_t>(
      q / 100.0 * static_cast<double>(sorted_ns.size() - 1) + 0.5);
  return static_cast<double>(
      sorted_ns[std::min(index, sorted_ns.size() - 1)]);
}

int Usage() {
  std::fprintf(
      stderr,
      "usage: bench_serve_latency --port P [--host H] [--clients N]\n"
      "  [--requests N] [--endpoint /query/...] [--t T] [--k K]\n"
      "  [--algo join|iterative] [--deadline-ms MS] [--json-out FILE]\n"
      "  [--expect-shed 0|1] [--min-ok N] [--slowest-traces N]\n"
      "Closed-loop latency/overload driver for 'indoorflow_cli serve';\n"
      "--requests is per client. See docs/SERVING.md.\n");
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; i += 2) {
    if (i + 1 >= argc) return Usage();
    const std::string key = argv[i];
    const std::string value = argv[i + 1];
    if (key == "--host") {
      options.host = value;
    } else if (key == "--port") {
      options.port = std::atoi(value.c_str());
    } else if (key == "--clients") {
      options.clients = std::atoi(value.c_str());
    } else if (key == "--requests") {
      options.requests = std::atoi(value.c_str());
    } else if (key == "--endpoint") {
      options.endpoint = value;
    } else if (key == "--t") {
      options.t = std::atof(value.c_str());
    } else if (key == "--k") {
      options.k = std::atoi(value.c_str());
    } else if (key == "--algo") {
      options.algo = value;
    } else if (key == "--deadline-ms") {
      options.deadline_ms = std::atoi(value.c_str());
    } else if (key == "--json-out") {
      options.json_out = value;
    } else if (key == "--expect-shed") {
      options.expect_shed = value == "1" || value == "true";
    } else if (key == "--min-ok") {
      options.min_ok = std::atoi(value.c_str());
    } else if (key == "--slowest-traces") {
      options.slowest_traces = std::atoi(value.c_str());
    } else {
      return Usage();
    }
  }
  if (options.port <= 0 || options.clients <= 0 || options.requests <= 0) {
    return Usage();
  }

  char body_buf[256];
  std::snprintf(body_buf, sizeof(body_buf),
                "{\"t\": %g, \"k\": %d, \"algo\": \"%s\", "
                "\"deadline_ms\": %d}",
                options.t, options.k, options.algo.c_str(),
                options.deadline_ms);
  const std::string body = body_buf;

  std::atomic<int64_t> ok{0};
  std::atomic<int64_t> shed{0};
  std::atomic<int64_t> deadline{0};
  std::atomic<int64_t> failed{0};
  struct OkSample {
    int64_t elapsed_ns = 0;
    std::string trace_id;  // captured only under --slowest-traces
  };
  std::vector<std::vector<OkSample>> samples(
      static_cast<size_t>(options.clients));
  std::vector<std::thread> clients;
  clients.reserve(static_cast<size_t>(options.clients));
  for (int c = 0; c < options.clients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<OkSample>& mine = samples[static_cast<size_t>(c)];
      mine.reserve(static_cast<size_t>(options.requests));
      for (int r = 0; r < options.requests; ++r) {
        const int64_t start_ns = NowNs();
        const HttpReply reply = SendRequest(options, body);
        const int64_t elapsed_ns = NowNs() - start_ns;
        if (reply.code == 200) {
          ok.fetch_add(1, std::memory_order_relaxed);
          OkSample sample;
          sample.elapsed_ns = elapsed_ns;
          if (options.slowest_traces > 0) {
            sample.trace_id = ExtractTraceId(reply.body);
          }
          mine.push_back(std::move(sample));
        } else if (reply.code == 503 &&
                   reply.body.find("\"status\":\"shed\"") !=
                       std::string::npos) {
          shed.fetch_add(1, std::memory_order_relaxed);
        } else if (reply.code == 504 &&
                   reply.body.find("\"status\":\"deadline_exceeded\"") !=
                       std::string::npos) {
          deadline.fetch_add(1, std::memory_order_relaxed);
        } else {
          // Transport failures, unexpected codes, and 503/504s without
          // the structured body all count as hard failures: under
          // overload the server must shed *cleanly*.
          failed.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& thread : clients) thread.join();

  std::vector<int64_t> all;
  std::vector<OkSample> flat;
  for (auto& mine : samples) {
    for (OkSample& sample : mine) {
      all.push_back(sample.elapsed_ns);
      if (options.slowest_traces > 0) flat.push_back(std::move(sample));
    }
  }
  std::sort(all.begin(), all.end());
  const double p50 = PercentileNs(all, 50.0);
  const double p99 = PercentileNs(all, 99.0);
  const int64_t total =
      static_cast<int64_t>(options.clients) * options.requests;

  std::printf(
      "bench_serve_latency: %lld requests (%d clients x %d): "
      "ok=%lld shed=%lld deadline=%lld failed=%lld\n",
      static_cast<long long>(total), options.clients, options.requests,
      static_cast<long long>(ok.load()),
      static_cast<long long>(shed.load()),
      static_cast<long long>(deadline.load()),
      static_cast<long long>(failed.load()));
  std::printf("latency p50=%.3f ms p99=%.3f ms (over %zu ok responses)\n",
              p50 / 1e6, p99 / 1e6, all.size());

  if (options.slowest_traces > 0 && !flat.empty()) {
    // The slowest decile's trace ids (capped at --slowest-traces),
    // slowest first: paste one into /traces/recent (or grep the canonical
    // query log) to see where that request's time went.
    std::sort(flat.begin(), flat.end(),
              [](const OkSample& a, const OkSample& b) {
                return a.elapsed_ns > b.elapsed_ns;
              });
    const size_t decile = std::max<size_t>(1, flat.size() / 10);
    const size_t show = std::min(
        decile, static_cast<size_t>(options.slowest_traces));
    std::printf("slowest decile traces (%zu of %zu shown):\n", show,
                decile);
    for (size_t i = 0; i < show; ++i) {
      std::printf("  %9.3f ms  %s\n",
                  static_cast<double>(flat[i].elapsed_ns) / 1e6,
                  flat[i].trace_id.empty() ? "(no trace_id in body)"
                                           : flat[i].trace_id.c_str());
    }
  }

  if (!options.json_out.empty()) {
    FILE* f = std::fopen(options.json_out.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", options.json_out.c_str());
      return 2;
    }
    // Google-Benchmark-shaped rows so tools/bench_compare.py can gate the
    // percentiles; Uppercase keys become drift-checked counters there,
    // so outcome counts use lowercase (load-dependent, not deterministic).
    std::fprintf(
        f,
        "{\n  \"context\": {\"executable\": \"bench_serve_latency\"},\n"
        "  \"benchmarks\": [\n"
        "    {\"name\": \"BM_ServeLatency_p50\", \"run_name\": "
        "\"BM_ServeLatency_p50\",\n"
        "     \"run_type\": \"iteration\", \"iterations\": %zu,\n"
        "     \"real_time\": %.1f, \"cpu_time\": %.1f, \"time_unit\": "
        "\"ns\",\n"
        "     \"ok\": %lld, \"shed\": %lld, \"deadline\": %lld},\n"
        "    {\"name\": \"BM_ServeLatency_p99\", \"run_name\": "
        "\"BM_ServeLatency_p99\",\n"
        "     \"run_type\": \"iteration\", \"iterations\": %zu,\n"
        "     \"real_time\": %.1f, \"cpu_time\": %.1f, \"time_unit\": "
        "\"ns\",\n"
        "     \"ok\": %lld, \"shed\": %lld, \"deadline\": %lld}\n"
        "  ]\n}\n",
        all.size(), p50, p50, static_cast<long long>(ok.load()),
        static_cast<long long>(shed.load()),
        static_cast<long long>(deadline.load()), all.size(), p99, p99,
        static_cast<long long>(ok.load()),
        static_cast<long long>(shed.load()),
        static_cast<long long>(deadline.load()));
    std::fclose(f);
  }

  int rc = 0;
  if (failed.load() > 0) {
    std::fprintf(stderr, "FAIL: %lld unstructured/transport failures\n",
                 static_cast<long long>(failed.load()));
    rc = 1;
  }
  if (options.expect_shed && shed.load() == 0) {
    std::fprintf(stderr,
                 "FAIL: --expect-shed but no structured 503 arrived\n");
    rc = 1;
  }
  if (ok.load() < options.min_ok) {
    std::fprintf(stderr, "FAIL: only %lld ok responses, need %d\n",
                 static_cast<long long>(ok.load()), options.min_ok);
    rc = 1;
  }
  return rc;
}
