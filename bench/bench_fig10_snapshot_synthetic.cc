// Figure 10: snapshot top-k query on the synthetic (office) dataset.
//   (a) running time vs k         — both algorithms ~stable in k;
//   (b) running time vs |P|       — slight growth with more query POIs;
// with the join algorithm outperforming the iterative one (paper §5.2.1).

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace indoorflow {
namespace {

using bench::AlgoOf;

void BM_Fig10a_EffectOfK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data =
      bench::OfficeData(bench::kPaperObjectsDefault,
                        bench::kDetectionRangeDefault);
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotTopK(t, k, AlgoOf(algo), &subset, &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel(bench::AlgoName(algo));
  bench::RecordQueryStats(state, stats, queries);
}

void BM_Fig10b_EffectOfP(benchmark::State& state) {
  const int percent = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data =
      bench::OfficeData(bench::kPaperObjectsDefault,
                        bench::kDetectionRangeDefault);
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset = bench::PoiSubset(data, percent);
  const Timestamp t = bench::SnapshotTime(data);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotTopK(t, bench::kKDefault, AlgoOf(algo),
                                      &subset, &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel(bench::AlgoName(algo));
  bench::RecordQueryStats(state, stats, queries);
}

/// Engine with the cross-query UR cache enabled, one per dataset. Kept
/// separate from bench::EngineFor so the cold-path benchmarks above keep
/// measuring (and gating) uncached derivation.
const QueryEngine& CachedEngineFor(const Dataset& data) {
  static auto* cache =
      new std::map<const Dataset*, std::unique_ptr<QueryEngine>>();
  auto it = cache->find(&data);
  if (it == cache->end()) {
    EngineConfig config;
    config.topology = TopologyMode::kPartition;
    config.ur_cache.enabled = true;
    it = cache->emplace(&data, std::make_unique<QueryEngine>(data, config))
             .first;
  }
  return *it->second;
}

void BM_Fig10a_CachedRerun(benchmark::State& state) {
  // Rerunning the same snapshot workload against a cache-enabled engine:
  // one untimed priming query fills the cache, so the loop measures the
  // steady-state hit path. tools/bench_compare.py gates this against
  // baseline.json alongside the cold variant above.
  const int k = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data =
      bench::OfficeData(bench::kPaperObjectsDefault,
                        bench::kDetectionRangeDefault);
  const QueryEngine& engine = CachedEngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const Timestamp t = bench::SnapshotTime(data);
  benchmark::DoNotOptimize(engine.SnapshotTopK(t, k, AlgoOf(algo), &subset));
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.SnapshotTopK(t, k, AlgoOf(algo), &subset, &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  state.SetLabel(bench::AlgoName(algo));
  bench::RecordQueryStats(state, stats, queries);
}

void KArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int k : bench::kKValues) b->Args({k, algo});
  }
}

void PArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int p : bench::kPoiPercents) b->Args({p, algo});
  }
}

BENCHMARK(BM_Fig10a_EffectOfK)
    ->Apply(KArgs)
    ->ArgNames({"k", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig10a_CachedRerun)
    ->Args({bench::kKDefault, 0})
    ->Args({bench::kKDefault, 1})
    ->ArgNames({"k", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig10b_EffectOfP)
    ->Apply(PArgs)
    ->ArgNames({"P_pct", "algo"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace indoorflow
