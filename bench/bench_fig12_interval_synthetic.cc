// Figure 12: interval top-k query on the synthetic (office) dataset.
//   (a) vs k            — stable except extra relative cost at k = 1;
//   (b) vs |P|          — iterative grows, join stays stable;
//   (c) vs |O|          — both grow, join stays faster (scalability);
//   (d) vs t_e - t_s    — both grow with longer query intervals.

#include <benchmark/benchmark.h>

#include "bench/bench_common.h"

namespace indoorflow {
namespace {

using bench::AlgoOf;

const Dataset& DefaultData() {
  return bench::OfficeData(bench::kPaperObjectsDefault,
                           bench::kDetectionRangeDefault);
}

void BM_Fig12a_EffectOfK(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = DefaultData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result = engine.IntervalTopK(ts, te, k, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void BM_Fig12b_EffectOfP(benchmark::State& state) {
  const int percent = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = DefaultData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset = bench::PoiSubset(data, percent);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

void BM_Fig12c_EffectOfO(benchmark::State& state) {
  const int paper_objects = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data =
      bench::OfficeData(paper_objects, bench::kDetectionRangeDefault);
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
  state.counters["objects"] = bench::ScaledObjects(paper_objects);
}

void BM_Fig12d_EffectOfInterval(benchmark::State& state) {
  const int minutes = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = DefaultData();
  const QueryEngine& engine = bench::EngineFor(data);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] = bench::IntervalWindow(data, minutes);
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
}

// ---- Intra-query parallelism (src/common/executor.h) -----------------------
// Same interval workload as above, but with the engine's per-object
// derive/integrate loops fanned across the shared executor. Results are
// bit-identical to serial (tests/parallel_differential_test.cc), so these
// benchmarks measure pure scheduling win/overhead. threads=1 uses a serial
// engine and anchors the comparison.

void BM_Fig12_EffectOfThreads_Parallel(benchmark::State& state) {
  const int threads = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data = DefaultData();
  const QueryEngine& engine = threads <= 1
                                  ? bench::EngineFor(data)
                                  : bench::ParallelEngineFor(data, threads);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  QueryStats stats;
  int64_t queries = 0;
  for (auto _ : state) {
    auto result = engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo),
                                      &subset, &stats);
    benchmark::DoNotOptimize(result);
    ++queries;
  }
  bench::RecordQueryStats(state, stats, queries);
  state.SetLabel(bench::AlgoName(algo));
}

void BM_Fig12c_EffectOfO_Parallel(benchmark::State& state) {
  const int paper_objects = static_cast<int>(state.range(0));
  const int algo = static_cast<int>(state.range(1));
  const Dataset& data =
      bench::OfficeData(paper_objects, bench::kDetectionRangeDefault);
  const QueryEngine& engine = bench::ParallelEngineFor(data, 8);
  const std::vector<PoiId> subset =
      bench::PoiSubset(data, bench::kPoiPercentDefault);
  const auto [ts, te] =
      bench::IntervalWindow(data, bench::kIntervalMinutesDefault);
  for (auto _ : state) {
    auto result =
        engine.IntervalTopK(ts, te, bench::kKDefault, AlgoOf(algo), &subset);
    benchmark::DoNotOptimize(result);
  }
  state.SetLabel(bench::AlgoName(algo));
  state.counters["objects"] = bench::ScaledObjects(paper_objects);
}

void KArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int k : bench::kKValues) b->Args({k, algo});
  }
}
void PArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int p : bench::kPoiPercents) b->Args({p, algo});
  }
}
void OArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int o : bench::kPaperObjects) b->Args({o, algo});
  }
}
void LenArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int m : bench::kIntervalMinutes) b->Args({m, algo});
  }
}

BENCHMARK(BM_Fig12a_EffectOfK)
    ->Apply(KArgs)
    ->ArgNames({"k", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig12b_EffectOfP)
    ->Apply(PArgs)
    ->ArgNames({"P_pct", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig12c_EffectOfO)
    ->Apply(OArgs)
    ->ArgNames({"O_paper", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig12d_EffectOfInterval)
    ->Apply(LenArgs)
    ->ArgNames({"minutes", "algo"})
    ->Unit(benchmark::kMillisecond);

void ThreadArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int threads : {1, 2, 4, 8}) b->Args({threads, algo});
  }
}
void OParallelArgs(benchmark::internal::Benchmark* b) {
  for (int algo = 0; algo < 2; ++algo) {
    for (int o : bench::kPaperObjects) b->Args({o, algo});
  }
}

BENCHMARK(BM_Fig12_EffectOfThreads_Parallel)
    ->Apply(ThreadArgs)
    ->ArgNames({"threads", "algo"})
    ->Unit(benchmark::kMillisecond);
BENCHMARK(BM_Fig12c_EffectOfO_Parallel)
    ->Apply(OParallelArgs)
    ->ArgNames({"O_paper", "algo"})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace indoorflow
