// Corpus-replay driver: the main() linked into fuzz targets when they are
// built WITHOUT -DINDOORFLOW_FUZZ=ON (i.e. without libFuzzer, which brings
// its own main). Each argument is a corpus file or a directory of corpus
// files; every input is fed through LLVMFuzzerTestOneInput exactly once.
// This keeps the harness logic and the checked-in corpora exercised by
// every compiler as plain ctest cases, while the real coverage-guided
// exploration runs in the Clang fuzz-smoke CI job.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size);

namespace {

int RunOne(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "cannot open corpus input %s\n",
                 path.string().c_str());
    return 1;
  }
  const std::string bytes((std::istreambuf_iterator<char>(in)),
                          std::istreambuf_iterator<char>());
  LLVMFuzzerTestOneInput(reinterpret_cast<const uint8_t*>(bytes.data()),
                         bytes.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  int ran = 0;
  for (int i = 1; i < argc; ++i) {
    const std::filesystem::path arg(argv[i]);
    std::error_code ec;
    if (std::filesystem::is_directory(arg, ec)) {
      std::vector<std::filesystem::path> inputs;
      for (const auto& entry : std::filesystem::directory_iterator(arg)) {
        if (entry.is_regular_file()) inputs.push_back(entry.path());
      }
      // Sorted for deterministic replay order across filesystems.
      std::sort(inputs.begin(), inputs.end());
      for (const auto& p : inputs) {
        if (RunOne(p) != 0) return 1;
        ++ran;
      }
    } else {
      if (RunOne(arg) != 0) return 1;
      ++ran;
    }
  }
  std::printf("replayed %d corpus input(s) without a crash\n", ran);
  return 0;
}
