// Fuzz harness for the floor-plan and POI loaders (src/indoor/plan_io.cc).
// The first input byte picks plan vs. POIs; the rest is the file body.
// On successful parse, every accepted polygon must pass CheckInvariants()
// (>= 3 finite vertices, consistent bounds, non-zero area) — the loaders
// are the trust boundary for all downstream geometry.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "fuzz/fuzz_input.h"
#include "src/indoor/plan_io.h"

namespace {

void RequireOk(const indoorflow::Status& s, const char* what) {
  if (s.ok()) return;
  std::fprintf(stderr, "plan_loader_fuzz invariant violated: %s: %s\n",
               what, s.message().c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  indoorflow_fuzz::FuzzInput input(data, size);
  const uint8_t mode = input.TakeByte() % 2;
  std::istringstream in(input.TakeRest());
  if (mode == 0) {
    auto plan = indoorflow::ParsePlanFile(in);
    if (plan.ok()) {
      for (const indoorflow::Partition& part : plan->partitions()) {
        RequireOk(part.shape.CheckInvariants(),
                  "accepted partition polygon breaks invariants");
      }
    }
  } else {
    auto pois = indoorflow::ParsePoisFile(in);
    if (pois.ok()) {
      for (const indoorflow::Poi& poi : *pois) {
        RequireOk(poi.shape.CheckInvariants(),
                  "accepted poi polygon breaks invariants");
      }
    }
  }
  return 0;
}
