// Tiny byte-stream reader shared by the fuzz harnesses.
//
// Plays the role of LLVM's FuzzedDataProvider without depending on it: the
// harnesses slice the fuzzer's byte buffer into mode selectors, doubles,
// and payload strings through this one helper, so the input encoding stays
// consistent between libFuzzer runs and corpus replay.

#ifndef INDOORFLOW_FUZZ_FUZZ_INPUT_H_
#define INDOORFLOW_FUZZ_FUZZ_INPUT_H_

#include <cmath>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>

namespace indoorflow_fuzz {

class FuzzInput {
 public:
  FuzzInput(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  size_t remaining() const { return size_ - pos_; }
  bool empty() const { return pos_ >= size_; }

  uint8_t TakeByte() {
    if (empty()) return 0;
    return data_[pos_++];
  }

  /// Next 8 bytes reinterpreted as a double; NaN/infinity are folded into
  /// a large-but-finite range so harnesses can probe extreme yet legal
  /// coordinates (the parsers' own NaN handling is fuzzed via the text
  /// surface, not here).
  double TakeFiniteDouble() {
    double v = 0.0;
    if (remaining() >= sizeof(v)) {
      std::memcpy(&v, data_ + pos_, sizeof(v));
      pos_ += sizeof(v);
    } else {
      pos_ = size_;
    }
    if (!std::isfinite(v)) return 0.0;
    // Clamp magnitude so squared distances stay finite.
    if (std::abs(v) > 1e12) v = std::fmod(v, 1e12);
    return v;
  }

  /// Everything not yet consumed, as a string (binary-safe).
  std::string TakeRest() {
    std::string rest(reinterpret_cast<const char*>(data_ + pos_),
                     size_ - pos_);
    pos_ = size_;
    return rest;
  }

 private:
  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

}  // namespace indoorflow_fuzz

#endif  // INDOORFLOW_FUZZ_FUZZ_INPUT_H_
