// Fuzz harness for the geometry kernels that consume uncertainty-region
// inputs: polygon clipping (Sutherland–Hodgman), the extended-ellipse Θ
// primitive, and Region CSG booleans. Inputs are decoded into finite (but
// adversarial) coordinates; the harness asserts the kernels' contracts —
// finite outputs, CheckInvariants() on built regions, and agreement
// between exact Contains() and conservative Classify() — rather than any
// particular geometric result.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "fuzz/fuzz_input.h"
#include "src/geometry/clip.h"
#include "src/geometry/extended_ellipse.h"
#include "src/geometry/region.h"

namespace {

using indoorflow::Box;
using indoorflow::BoxClass;
using indoorflow::Circle;
using indoorflow::ClippedArea;
using indoorflow::ClipToConvex;
using indoorflow::ExtendedEllipse;
using indoorflow::Point;
using indoorflow::Polygon;
using indoorflow::Region;
using indoorflow::Ring;
using indoorflow_fuzz::FuzzInput;

void Require(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "geometry_fuzz invariant violated: %s\n", what);
  std::abort();
}

/// Conservative Classify must agree with exact Contains on a degenerate
/// (point-sized) probe box: kInside implies containment, kOutside implies
/// non-containment, kBoundary may be anything.
void CheckClassifyAgreesWithContains(const Region& region, Point p) {
  const Box probe{p.x, p.y, p.x, p.y};
  switch (region.Classify(probe)) {
    case BoxClass::kInside:
      Require(region.Contains(p), "Classify=kInside but Contains=false");
      break;
    case BoxClass::kOutside:
      Require(!region.Contains(p), "Classify=kOutside but Contains=true");
      break;
    case BoxClass::kBoundary:
      break;
  }
}

void FuzzClip(FuzzInput& input) {
  const size_t n = 3 + input.TakeByte() % 8;
  std::vector<Point> vertices;
  vertices.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    vertices.push_back({input.TakeFiniteDouble(), input.TakeFiniteDouble()});
  }
  const Polygon subject(std::move(vertices));
  const double x = input.TakeFiniteDouble();
  const double y = input.TakeFiniteDouble();
  // The minimum window size must scale with the corner magnitude, or the
  // addition is absorbed (x + 1e-6 == x at 1e12) and the window degenerates
  // to a zero-area rectangle.
  const double pad = 1e-6 + 1e-9 * std::max(std::abs(x), std::abs(y));
  const double w = std::abs(input.TakeFiniteDouble()) + pad;
  const double h = std::abs(input.TakeFiniteDouble()) + pad;
  const Polygon window = Polygon::Rectangle(x, y, x + w, y + h);

  const double area = ClippedArea(subject, window);
  Require(std::isfinite(area), "clipped area not finite");
  Require(area >= -1e-9, "clipped area negative");
  if (auto clipped = ClipToConvex(subject, window)) {
    Require(std::isfinite(clipped->SignedArea()),
            "clipped polygon area not finite");
    // Intersection points carry rounding error proportional to the input
    // magnitude, compounded across the four successive edge passes, so the
    // containment tolerance must scale with the larger of the subject and
    // window coordinates (observed escapes reach ~1e-7 of that scale).
    const Box sb = subject.Bounds();
    const double scale = std::max(
        {1.0, std::abs(sb.min_x), std::abs(sb.min_y), std::abs(sb.max_x),
         std::abs(sb.max_y), std::abs(x), std::abs(y), std::abs(x + w),
         std::abs(y + h)});
    const double eps = 1e-5 * scale;
    const Box b = clipped->Bounds();
    Require(b.min_x >= x - eps && b.max_x <= x + w + eps &&
                b.min_y >= y - eps && b.max_y <= y + h + eps,
            "clipped polygon escapes the clip window");
  }
}

void FuzzExtendedEllipse(FuzzInput& input) {
  const Circle a{{input.TakeFiniteDouble(), input.TakeFiniteDouble()},
                 std::abs(input.TakeFiniteDouble()) + 1e-9};
  const Circle b{{input.TakeFiniteDouble(), input.TakeFiniteDouble()},
                 std::abs(input.TakeFiniteDouble()) + 1e-9};
  const double max_travel = std::abs(input.TakeFiniteDouble());
  const bool include_disks = (input.TakeByte() & 1) != 0;
  const ExtendedEllipse e(a, b, max_travel, include_disks);

  const Box bounds = e.Bounds();
  Require(!std::isnan(bounds.min_x) && !std::isnan(bounds.min_y) &&
              !std::isnan(bounds.max_x) && !std::isnan(bounds.max_y),
          "ellipse bounds contain NaN");
  const Region region = Region::Make(e);
  Require(region.CheckInvariants().ok(), "theta region breaks invariants");

  for (int i = 0; i < 4 && input.remaining() >= 2 * sizeof(double); ++i) {
    const Point p{input.TakeFiniteDouble(), input.TakeFiniteDouble()};
    const Box probe{p.x, p.y, p.x, p.y};
    Require(e.MinSumDistance(probe) <= e.MaxSumDistance(probe) + 1e-6,
            "min sum distance exceeds max sum distance");
    CheckClassifyAgreesWithContains(region, p);
  }
}

void FuzzRegionBooleans(FuzzInput& input) {
  const Circle c{{input.TakeFiniteDouble(), input.TakeFiniteDouble()},
                 std::abs(input.TakeFiniteDouble()) + 1e-9};
  const double inner = std::abs(input.TakeFiniteDouble());
  // The width pad scales with `inner` so the addition is never absorbed
  // (inner + 1e-9 == inner at 1e12), which would break inner < outer.
  const Ring r{{input.TakeFiniteDouble(), input.TakeFiniteDouble()},
               inner,
               inner + std::abs(input.TakeFiniteDouble()) + 1e-9 +
                   1e-9 * inner};
  const Region a = Region::Make(c);
  const Region b = Region::Make(r);

  const Region u = Region::Union(a, b);
  const Region i = Region::Intersect(a, b);
  const Region d = Region::Subtract(a, b);
  Require(u.CheckInvariants().ok(), "union breaks invariants");
  Require(i.CheckInvariants().ok(), "intersection breaks invariants");
  Require(d.CheckInvariants().ok(), "difference breaks invariants");

  while (input.remaining() >= 2 * sizeof(double)) {
    const Point p{input.TakeFiniteDouble(), input.TakeFiniteDouble()};
    const bool in_a = a.Contains(p);
    const bool in_b = b.Contains(p);
    Require(u.Contains(p) == (in_a || in_b), "union containment wrong");
    Require(i.Contains(p) == (in_a && in_b),
            "intersection containment wrong");
    Require(d.Contains(p) == (in_a && !in_b),
            "difference containment wrong");
    CheckClassifyAgreesWithContains(u, p);
    CheckClassifyAgreesWithContains(i, p);
    CheckClassifyAgreesWithContains(d, p);
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  FuzzInput input(data, size);
  switch (input.TakeByte() % 3) {
    case 0:
      FuzzClip(input);
      break;
    case 1:
      FuzzExtendedEllipse(input);
      break;
    default:
      FuzzRegionBooleans(input);
      break;
  }
  return 0;
}
