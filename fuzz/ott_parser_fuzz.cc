// Fuzz harness for the tracking-data parsers (src/tracking/io.cc): the
// three CSV readers and the binary OTT format. The first input byte picks
// the parser; the rest is fed to it verbatim. Any parse outcome is legal
// except a crash — and on success the resulting table must satisfy its
// own invariants (finalized, finite ordered intervals), since a parser
// that accepts garbage is as much a bug as one that crashes on it.

#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <sstream>

#include "fuzz/fuzz_input.h"
#include "src/tracking/io.h"

namespace {

void Require(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "ott_parser_fuzz invariant violated: %s\n", what);
  std::abort();
}

void CheckTable(const indoorflow::ObjectTrackingTable& table) {
  Require(table.finalized(), "parsed table not finalized");
  for (size_t i = 0; i < table.size(); ++i) {
    const indoorflow::TrackingRecord& r =
        table.record(static_cast<indoorflow::RecordIndex>(i));
    Require(std::isfinite(r.ts) && std::isfinite(r.te),
            "accepted record with non-finite timestamp");
    Require(r.te >= r.ts, "accepted record with te < ts");
  }
  if (table.size() > 0) {
    Require(table.min_time() <= table.max_time(),
            "min_time exceeds max_time");
  }
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const uint8_t* data, size_t size) {
  indoorflow_fuzz::FuzzInput input(data, size);
  const uint8_t mode = input.TakeByte() % 4;
  const std::string payload = input.TakeRest();
  switch (mode) {
    case 0: {
      std::istringstream in(payload);
      auto result = indoorflow::ParseReadingsCsv(in);
      if (result.ok()) {
        for (const indoorflow::RawReading& r : *result) {
          Require(std::isfinite(r.t),
                  "accepted reading with non-finite timestamp");
        }
      }
      break;
    }
    case 1: {
      std::istringstream in(payload);
      auto result = indoorflow::ParseOttCsv(in);
      if (result.ok()) CheckTable(*result);
      break;
    }
    case 2: {
      std::istringstream in(payload);
      auto result = indoorflow::ParseDeploymentCsv(in);
      if (result.ok()) {
        for (const indoorflow::Device& d : result->devices()) {
          Require(std::isfinite(d.range.center.x) &&
                      std::isfinite(d.range.center.y) &&
                      std::isfinite(d.range.radius) && d.range.radius > 0.0,
                  "accepted device with bad range");
        }
      }
      break;
    }
    default: {
      auto result = indoorflow::ParseOttBinary(payload);
      if (result.ok()) CheckTable(*result);
      break;
    }
  }
  return 0;
}
