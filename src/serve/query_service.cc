#include "src/serve/query_service.h"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <utility>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/executor.h"
#include "src/common/log.h"
#include "src/core/approx.h"
#include "src/core/flow.h"
#include "src/core/query_stats.h"
#include "src/core/streaming.h"
#include "src/serve/json.h"

namespace indoorflow {

namespace {

// Shortest-faithful double rendering: "%.17g" round-trips but prints
// 0.30000000000000004-style noise for most values; try increasing
// precision until the parse round-trips.
std::string NumberJson(double value) {
  if (!std::isfinite(value)) return "0";
  char buf[64];
  for (int precision = 6; precision <= 17; ++precision) {
    std::snprintf(buf, sizeof(buf), "%.*g", precision, value);
    if (std::strtod(buf, nullptr) == value) break;
  }
  return buf;
}

HttpResponse ErrorResponse(const std::string& message) {
  HttpResponse response;
  response.code = 400;
  response.body = "{\"status\":\"error\",\"message\":\"" +
                  JsonEscape(message) + "\"}\n";
  return response;
}

// One request's parameters, whichever wire form they arrived in: a POST
// body parses as flat JSON, a GET (or body-less POST) as a query string
// whose values become kString and get converted on lookup.
class Params {
 public:
  static Result<Params> FromRequest(const HttpRequest& request) {
    Params params;
    if (!request.body.empty()) {
      auto parsed = ParseFlatJsonObject(request.body);
      INDOORFLOW_RETURN_IF_ERROR(parsed.status());
      params.values_ = std::move(parsed).value();
    } else {
      for (const auto& [key, value] : DecodeQueryString(request.query)) {
        JsonValue json;
        json.type = JsonValue::Type::kString;
        json.string = value;
        params.values_[key] = std::move(json);
      }
    }
    return params;
  }

  bool Has(const std::string& key) const {
    return values_.count(key) != 0;
  }

  /// Reads `key` as a double. OK whether present or not (`*found` says
  /// which); InvalidArgument when present but not numeric.
  Status GetDouble(const std::string& key, double* out,
                   bool* found) const {
    *found = false;
    const auto it = values_.find(key);
    if (it == values_.end()) return Status::OK();
    const JsonValue& value = it->second;
    if (value.type == JsonValue::Type::kNumber) {
      *out = value.number;
    } else if (value.type == JsonValue::Type::kString &&
               !value.string.empty()) {
      char* end = nullptr;
      *out = std::strtod(value.string.c_str(), &end);
      if (end != value.string.c_str() + value.string.size()) {
        return Status::InvalidArgument("parameter '" + key +
                                       "' is not a number");
      }
    } else {
      return Status::InvalidArgument("parameter '" + key +
                                     "' is not a number");
    }
    if (!std::isfinite(*out)) {
      return Status::InvalidArgument("parameter '" + key +
                                     "' is not finite");
    }
    *found = true;
    return Status::OK();
  }

  /// GetDouble, then requires an exact integer value.
  Status GetInt(const std::string& key, int64_t* out, bool* found) const {
    double value = 0.0;
    INDOORFLOW_RETURN_IF_ERROR(GetDouble(key, &value, found));
    if (!*found) return Status::OK();
    if (value != std::floor(value)) {
      return Status::InvalidArgument("parameter '" + key +
                                     "' is not an integer");
    }
    *out = static_cast<int64_t>(value);
    return Status::OK();
  }

  Status GetString(const std::string& key, std::string* out,
                   bool* found) const {
    *found = false;
    const auto it = values_.find(key);
    if (it == values_.end()) return Status::OK();
    if (it->second.type != JsonValue::Type::kString) {
      return Status::InvalidArgument("parameter '" + key +
                                     "' is not a string");
    }
    *out = it->second.string;
    *found = true;
    return Status::OK();
  }

  /// Rejects any key outside `known` — a typoed "deadline_m" should be a
  /// 400, not a silently applied default.
  Status CheckKnown(const std::vector<std::string>& known) const {
    for (const auto& [key, value] : values_) {
      bool ok = false;
      for (const std::string& name : known) ok = ok || name == key;
      if (!ok) {
        return Status::InvalidArgument("unknown parameter '" + key + "'");
      }
    }
    return Status::OK();
  }

 private:
  JsonObject values_;
};

enum class QueryKind { kSnapshot, kInterval, kLive };

// One fully validated /query/* request, defaults and clamps applied.
struct ParsedQuery {
  QueryKind kind = QueryKind::kSnapshot;
  Timestamp t = 0.0;
  /// Live queries: whether the client named `t` (when not, the stream
  /// clock at evaluation time is substituted and echoed back).
  bool has_t = false;
  Timestamp ts = 0.0;
  Timestamp te = 0.0;
  int k = 0;
  Algorithm algorithm = Algorithm::kJoin;
  bool density = false;
  int64_t deadline_ms = 0;
  /// Effective evaluation mode: the service default, overridden by the
  /// request's `approx=` / `sample_budget=` when present.
  ApproxConfig approx;
  /// Whether the client named `approx=` itself — an explicit approx=exact
  /// is never downgraded under pressure.
  bool approx_requested = false;
  /// Set during evaluation when degraded admission forced sampling.
  bool degraded = false;
};

/// Whether this query shape has a sampled evaluation path: iterative
/// flow top-k and live continuous top-k. Join stays exact (its
/// early-termination bounds assume the full population) and density stays
/// exact (the area division amplifies sampling noise).
bool Sampleable(const ParsedQuery& query) {
  if (query.kind == QueryKind::kLive) return true;
  return query.algorithm == Algorithm::kIterative && !query.density;
}

Status ParseQuery(const HttpRequest& request,
                  const QueryServiceOptions& options, ParsedQuery* out) {
  auto params_or = Params::FromRequest(request);
  INDOORFLOW_RETURN_IF_ERROR(params_or.status());
  const Params& params = params_or.value();
  const bool is_live_endpoint = request.path == "/query/live";
  // Live queries run the monitor's continuous top-k: no algorithm or
  // metric choice, and `t` is optional (defaults to the stream clock).
  INDOORFLOW_RETURN_IF_ERROR(params.CheckKnown(
      is_live_endpoint
          ? std::vector<std::string>{"t", "k", "deadline_ms", "approx",
                                     "sample_budget"}
          : std::vector<std::string>{"t", "ts", "te", "k", "algo", "metric",
                                     "deadline_ms", "approx",
                                     "sample_budget"}));

  const bool is_join_endpoint = request.path == "/query/join";
  bool found = false;
  if (is_live_endpoint) {
    out->kind = QueryKind::kLive;
    INDOORFLOW_RETURN_IF_ERROR(
        params.GetDouble("t", &out->t, &out->has_t));
  } else if (request.path == "/query/snapshot" || is_join_endpoint) {
    INDOORFLOW_RETURN_IF_ERROR(params.GetDouble("t", &out->t, &found));
  }
  if (found) {
    out->kind = QueryKind::kSnapshot;
    if (params.Has("ts") || params.Has("te")) {
      return Status::InvalidArgument("pass either t or ts/te, not both");
    }
  } else if (request.path == "/query/interval" || is_join_endpoint) {
    out->kind = QueryKind::kInterval;
    bool found_ts = false;
    bool found_te = false;
    INDOORFLOW_RETURN_IF_ERROR(
        params.GetDouble("ts", &out->ts, &found_ts));
    INDOORFLOW_RETURN_IF_ERROR(
        params.GetDouble("te", &out->te, &found_te));
    if (!found_ts || !found_te) {
      return Status::InvalidArgument(
          is_join_endpoint ? "missing parameter: t (or ts and te)"
                           : "missing parameter: ts and te are required");
    }
    if (out->te < out->ts) {
      return Status::InvalidArgument("te must be >= ts");
    }
  } else if (!is_live_endpoint) {
    return Status::InvalidArgument("missing parameter: t is required");
  }

  int64_t k = options.default_k;
  INDOORFLOW_RETURN_IF_ERROR(params.GetInt("k", &k, &found));
  if (k <= 0 || k > 1000000) {
    return Status::InvalidArgument("k must be in [1, 1000000]");
  }
  out->k = static_cast<int>(k);

  if (!is_live_endpoint) {
    std::string algo = "join";
    INDOORFLOW_RETURN_IF_ERROR(params.GetString("algo", &algo, &found));
    if (algo == "join") {
      out->algorithm = Algorithm::kJoin;
    } else if (algo == "iterative") {
      if (is_join_endpoint) {
        return Status::InvalidArgument(
            "/query/join always runs algo=join; use /query/snapshot or "
            "/query/interval for algo=iterative");
      }
      out->algorithm = Algorithm::kIterative;
    } else {
      return Status::InvalidArgument("algo must be 'join' or 'iterative'");
    }

    std::string metric = "flow";
    INDOORFLOW_RETURN_IF_ERROR(
        params.GetString("metric", &metric, &found));
    if (metric == "flow") {
      out->density = false;
    } else if (metric == "density") {
      out->density = true;
    } else {
      return Status::InvalidArgument("metric must be 'flow' or 'density'");
    }
  }

  // Approximate evaluation (docs/APPROXIMATION.md): the service default,
  // overridable per request. A request naming approx=sampled|adaptive for
  // a shape with no sampled path is a 400, not a silent exact answer; a
  // service-wide sampled default simply doesn't apply to such shapes.
  out->approx = options.approx;
  std::string approx_name;
  INDOORFLOW_RETURN_IF_ERROR(
      params.GetString("approx", &approx_name, &found));
  if (found) {
    out->approx_requested = true;
    if (!ApproxModeFromName(approx_name, &out->approx.mode)) {
      return Status::InvalidArgument(
          "approx must be 'exact', 'sampled', or 'adaptive'");
    }
  }
  int64_t sample_budget = 0;
  INDOORFLOW_RETURN_IF_ERROR(
      params.GetInt("sample_budget", &sample_budget, &found));
  if (found) {
    // A single-draw sample has no within-sample variance, so its error
    // would be undefined; require at least two draws up front.
    if (sample_budget < 2) {
      return Status::InvalidArgument("sample_budget must be >= 2");
    }
    out->approx.sample_budget = sample_budget;
  }
  if (out->approx_requested && out->approx.mode != ApproxMode::kExact &&
      !Sampleable(*out)) {
    return Status::InvalidArgument(
        "approx=sampled|adaptive requires algo=iterative and metric=flow "
        "(join and density queries always evaluate exactly)");
  }

  int64_t deadline_ms = options.default_deadline_ms;
  INDOORFLOW_RETURN_IF_ERROR(
      params.GetInt("deadline_ms", &deadline_ms, &found));
  if (deadline_ms <= 0) {
    return Status::InvalidArgument("deadline_ms must be > 0");
  }
  if (deadline_ms > options.max_deadline_ms) {
    deadline_ms = options.max_deadline_ms;  // clamp, don't reject
  }
  out->deadline_ms = deadline_ms;
  return Status::OK();
}

// The request-echo half of every response body: what ran, under what
// deadline, for correlating responses with client-side settings.
void AppendQueryEcho(const ParsedQuery& query, std::string* body) {
  if (query.kind == QueryKind::kInterval) {
    body->append(",\"ts\":" + NumberJson(query.ts) +
                 ",\"te\":" + NumberJson(query.te));
  } else {
    // Snapshot and live both echo one timestamp — for live it is the
    // stream-clock default when the client named none.
    body->append(",\"t\":" + NumberJson(query.t));
  }
  body->append(",\"k\":" + std::to_string(query.k));
  if (query.kind == QueryKind::kLive) {
    body->append(",\"live\":true");
  } else {
    body->append(query.algorithm == Algorithm::kJoin
                     ? ",\"algo\":\"join\""
                     : ",\"algo\":\"iterative\"");
    body->append(query.density ? ",\"metric\":\"density\""
                               : ",\"metric\":\"flow\"");
  }
  body->append(",\"deadline_ms\":" + std::to_string(query.deadline_ms));
  // Approximation is only echoed when it can actually apply, so exact
  // responses keep their pre-approximation shape byte for byte.
  if (query.approx.mode != ApproxMode::kExact && Sampleable(query)) {
    body->append(",\"approx\":\"" +
                 std::string(ApproxModeName(query.approx.mode)) + "\"");
    body->append(",\"sample_budget\":" +
                 std::to_string(query.approx.sample_budget));
    if (query.degraded) body->append(",\"degraded\":true");
  }
}

HttpResponse DeadlineResponse(const ParsedQuery& query, int64_t arrival_ns,
                              const std::string& trace_id) {
  HttpResponse response;
  response.code = 504;
  response.body =
      "{\"status\":\"deadline_exceeded\",\"trace_id\":\"" + trace_id + "\"";
  AppendQueryEcho(query, &response.body);
  response.body.append(
      ",\"elapsed_ms\":" +
      NumberJson(static_cast<double>(MonotonicNowNs() - arrival_ns) /
                 1e6) +
      "}\n");
  return response;
}

}  // namespace

QueryService::QueryService(const QueryEngine* engine,
                           QueryServiceOptions options,
                           const StreamingMonitor* monitor)
    : engine_(engine),
      monitor_(monitor),
      options_(options),
      requests_(MetricsRegistry::Default().counter("serve.requests")),
      admitted_(MetricsRegistry::Default().counter("serve.admitted")),
      shed_(MetricsRegistry::Default().counter("serve.shed")),
      degraded_(MetricsRegistry::Default().counter("serve.degraded")),
      deadline_exceeded_(
          MetricsRegistry::Default().counter("serve.deadline_exceeded")),
      queue_depth_(MetricsRegistry::Default().gauge("serve.queue_depth")),
      latency_us_(
          MetricsRegistry::Default().histogram("serve.latency_us")),
      queue_wait_us_(
          MetricsRegistry::Default().histogram("serve.queue_wait_us")) {}

QueryService::~QueryService() { Stop(); }

void QueryService::RegisterRoutes(ExpoServer* server) {
  std::vector<const char*> paths = {"/query/snapshot", "/query/interval",
                                    "/query/join"};
  // No monitor, no live route: an unrouted path 404s at the server, which
  // beats a route that can only ever 400.
  if (monitor_ != nullptr) paths.push_back("/query/live");
  for (const char* path : paths) {
    server->HandleRequest(
        path, [this](const HttpRequest& request,
                     ExpoServer::ExchangePtr exchange) {
          Submit(request, [exchange](const HttpResponse& response) {
            exchange->Respond(response);
          });
        });
  }
  server->Handle("/traces/recent", "application/json",
                 []() { return TraceRing::Default().ToJson(); });
}

QueryService::RequestTrace QueryService::StartRequestTrace(
    const HttpRequest& request) const {
  RequestTrace rt;
  TraceContext incoming;
  if (!request.traceparent.empty() &&
      TraceContext::FromTraceparent(request.traceparent, &incoming)) {
    // Join the caller's trace: same trace id, the caller's span becomes
    // the remote parent of our root span, and the caller's sampling
    // decision is honored over the local rate.
    rt.context = incoming;
    rt.context.span_id = NextSpanId();
    rt.remote_parent_id = incoming.span_id;
  } else {
    rt.context = NewTraceContext(options_.trace_sample);
  }
  if (rt.context.sampled) {
    rt.trace = std::make_shared<Trace>(rt.context, rt.remote_parent_id);
  }
  return rt;
}

void QueryService::FinishRequest(const std::string& endpoint,
                                 const RequestTrace& rt,
                                 const RequestOutcome& outcome,
                                 int64_t arrival_ns) {
  if (rt.trace != nullptr) {
    rt.trace->Finish();
    TraceRing::Default().Push(rt.trace);
  }
  if (!LogEnabled(LogLevel::kInfo)) return;
  // The canonical query log: one wide record per request, whatever its
  // fate, with the trace id as the join key across /traces/recent,
  // /profiles/recent, and the metrics in the response body.
  LogRecord record = Log(LogLevel::kInfo, "query_log", "request");
  record.Field("trace_id", rt.context.trace_id_hex());
  record.Field("endpoint", endpoint);
  record.Field("admission", outcome.admission);
  record.Field("outcome", outcome.status);
  record.Field("code", static_cast<int64_t>(outcome.code));
  record.Field("sampled", rt.context.sampled);
  record.Field("deadline_ms", outcome.deadline_ms);
  record.Field("queue_wait_us", outcome.queue_wait_us);
  record.Field("latency_us", (MonotonicNowNs() - arrival_ns) / 1000);
  for (const QueryStatsField& field : kQueryStatsFields) {
    record.Field(field.json_name, outcome.stats.*field.member);
  }
}

void QueryService::Submit(const HttpRequest& request, Responder respond) {
  requests_.Add();
  const int64_t enqueue_ns = MonotonicNowNs();
  const RequestTrace rt = StartRequestTrace(request);
  enum class Decision { kAdmit, kShedStopping, kShedFull };
  Decision decision = Decision::kAdmit;
  int depth = 0;
  {
    MutexLock lock(mu_);
    if (stopping_) {
      decision = Decision::kShedStopping;
      depth = inflight_;
    } else if (inflight_ >= options_.queue_limit) {
      decision = Decision::kShedFull;
      depth = inflight_;
    } else {
      depth = ++inflight_;
    }
  }
  // Degraded admission: past degrade_depth the request still runs, but
  // sampled (EvaluateTraced applies it; explicit approx=exact wins).
  const bool degrade =
      decision == Decision::kAdmit && options_.degrade_depth > 0 &&
      depth >= options_.degrade_depth;
  // Respond outside the lock: the responder does socket IO.
  if (decision != Decision::kAdmit) {
    shed_.Add();
    HttpResponse response;
    response.code = 503;
    response.body =
        std::string("{\"status\":\"shed\",\"reason\":") +
        (decision == Decision::kShedStopping ? "\"stopping\""
                                             : "\"queue_full\"") +
        ",\"trace_id\":\"" + rt.context.trace_id_hex() +
        "\",\"queue_depth\":" + std::to_string(depth) +
        ",\"queue_limit\":" + std::to_string(options_.queue_limit) +
        "}\n";
    RequestOutcome outcome;
    outcome.admission = decision == Decision::kShedStopping
                            ? "shed_stopping"
                            : "shed_queue_full";
    outcome.status = "shed";
    outcome.code = 503;
    FinishRequest(request.path, rt, outcome, enqueue_ns);
    respond(response);
    return;
  }
  admitted_.Add();
  queue_depth_.Set(depth);
  // std::function requires copyable captures, so the request is copied
  // into the task; it is small (capped body) and the accept thread must
  // not block on the executor anyway.
  Executor::Default().Submit(
      [this, request, respond = std::move(respond), enqueue_ns, rt,
       degrade]() {
        RunAdmitted(request, respond, enqueue_ns, rt, degrade);
      });
}

void QueryService::RunAdmitted(const HttpRequest& request,
                               const Responder& respond,
                               int64_t enqueue_ns,
                               const RequestTrace& rt, bool degrade) {
  const int64_t waited_ns = MonotonicNowNs() - enqueue_ns;
  const int64_t waited_ms = waited_ns / 1'000'000;
  queue_wait_us_.Record(static_cast<double>(waited_ns) / 1e3);
  RequestOutcome outcome;
  outcome.queue_wait_us = waited_ns / 1000;
  HttpResponse response;
  {
    // The request's root span. It opens at dequeue; the wait the request
    // already served in the queue is recorded as a pre-measured child so
    // the tree still accounts for it.
    Span root(rt.trace.get(), "request");
    root.RecordChild("queue_wait", enqueue_ns, waited_ns);
    if (options_.max_queue_wait_ms > 0 &&
        waited_ms > options_.max_queue_wait_ms) {
      // Shed before computing: this request already sat in the queue past
      // the wait cap, so serving it would only push every later request
      // further past its own deadline.
      shed_.Add();
      outcome.admission = "shed_queue_wait";
      outcome.status = "shed";
      outcome.code = 503;
      response.code = 503;
      response.body =
          "{\"status\":\"shed\",\"reason\":\"queue_wait\",\"trace_id\":\"" +
          rt.context.trace_id_hex() + "\",\"waited_ms\":" +
          std::to_string(waited_ms) + ",\"max_queue_wait_ms\":" +
          std::to_string(options_.max_queue_wait_ms) + "}\n";
    } else {
      response =
          EvaluateTraced(request, enqueue_ns, rt, &root, &outcome, degrade);
    }
  }
  // Publish before responding so a client that immediately polls
  // /traces/recent after its response already sees this trace.
  FinishRequest(request.path, rt, outcome, enqueue_ns);
  respond(response);
  latency_us_.Record(
      static_cast<double>(MonotonicNowNs() - enqueue_ns) / 1e3);
  // The final decrement below is what releases Stop(), and Stop()'s caller
  // may destroy this service immediately after — so nothing may touch
  // *this* past the unlock. The gauge is owned by the process-wide
  // registry and outlives any service, so it is bound before the
  // decrement and updated after.
  Gauge& queue_depth = queue_depth_;
  int remaining = 0;
  {
    MutexLock lock(mu_);
    remaining = --inflight_;
    if (remaining == 0) idle_cv_.NotifyAll();
  }
  queue_depth.Set(remaining);
}

HttpResponse QueryService::Evaluate(const HttpRequest& request,
                                    int64_t arrival_ns) {
  // The synchronous path (tests, tools) mints its own trace the same way
  // Submit does, so direct evaluations land in /traces/recent and the
  // query log too.
  const RequestTrace rt = StartRequestTrace(request);
  RequestOutcome outcome;
  HttpResponse response;
  {
    Span root(rt.trace.get(), "request");
    response = EvaluateTraced(request, arrival_ns, rt, &root, &outcome,
                              /*degrade=*/false);
  }
  FinishRequest(request.path, rt, outcome, arrival_ns);
  return response;
}

HttpResponse QueryService::EvaluateTraced(const HttpRequest& request,
                                          int64_t arrival_ns,
                                          const RequestTrace& rt, Span* root,
                                          RequestOutcome* outcome,
                                          bool degrade) {
  ParsedQuery query;
  const Status parse = ParseQuery(request, options_, &query);
  if (!parse.ok()) {
    outcome->status = "bad_request";
    outcome->code = 400;
    return ErrorResponse(parse.message());
  }
  outcome->deadline_ms = query.deadline_ms;

  // Degraded mode: under queue pressure an exact sampleable query runs
  // sampled instead — a bounded-error answer instead of a 503 later in
  // the overload curve. A client that pinned approx=exact keeps exact.
  if (degrade && query.approx.mode == ApproxMode::kExact &&
      !query.approx_requested && Sampleable(query)) {
    query.approx.mode = ApproxMode::kSampled;
    query.degraded = true;
    degraded_.Add();
  }
  const bool approximate =
      query.approx.mode != ApproxMode::kExact && Sampleable(query);

  if (query.kind == QueryKind::kLive) {
    if (monitor_ == nullptr) {
      // Only reachable through direct Evaluate() calls — RegisterRoutes
      // never exposes the path without a monitor.
      outcome->status = "bad_request";
      outcome->code = 400;
      return ErrorResponse(
          "live queries are not enabled (no streaming monitor attached)");
    }
    // Resolve the stream-clock default before the deadline check so even
    // a 504 echoes the timestamp the query would have run at.
    if (!query.has_t) query.t = monitor_->now();
  }

  // The deadline is anchored at *arrival*: time spent queued counts
  // against it, so a request that aged out while waiting fails fast here
  // instead of computing an answer its client stopped waiting for.
  const Deadline deadline =
      Deadline::AtNanos(arrival_ns + query.deadline_ms * 1'000'000);
  QueryControl control(deadline);
  control.set_span(root);
  std::vector<PoiFlow> results;
  std::vector<FlowEstimate> estimates;
  QueryStats stats;
  if (!control.ShouldAbort()) {
    if (approximate) {
      switch (query.kind) {
        case QueryKind::kSnapshot:
          estimates = engine_->SnapshotTopKEstimate(query.t, query.k,
                                                    query.approx, nullptr,
                                                    &stats, nullptr,
                                                    &control);
          break;
        case QueryKind::kInterval:
          estimates = engine_->IntervalTopKEstimate(query.ts, query.te,
                                                    query.k, query.approx,
                                                    nullptr, &stats, nullptr,
                                                    &control);
          break;
        case QueryKind::kLive:
          estimates =
              monitor_->CurrentTopKEstimate(query.t, query.k, query.approx,
                                            &control);
          break;
      }
    } else {
      // The *Exact entrypoints bypass the engine's and monitor's
      // config-based approximate routing: on a sampled-default server a
      // pinned approx=exact must stay exact, not silently re-route to
      // estimates wearing the exact response shape.
      switch (query.kind) {
        case QueryKind::kSnapshot:
          results = query.density
                        ? engine_->SnapshotDensityTopK(
                              query.t, query.k, query.algorithm, nullptr,
                              &stats, nullptr, &control)
                        : engine_->SnapshotTopKExact(query.t, query.k,
                                                     query.algorithm,
                                                     nullptr, &stats,
                                                     nullptr, &control);
          break;
        case QueryKind::kInterval:
          results = query.density
                        ? engine_->IntervalDensityTopK(
                              query.ts, query.te, query.k, query.algorithm,
                              nullptr, &stats, nullptr, &control)
                        : engine_->IntervalTopKExact(
                              query.ts, query.te, query.k, query.algorithm,
                              nullptr, &stats, nullptr, &control);
          break;
        case QueryKind::kLive:
          // The monitor has its own stats surface (streaming.* metrics);
          // outcome->stats stays zeroed, like a shed request's.
          results = monitor_->ExactCurrentTopK(query.t, query.k, &control);
          break;
      }
    }
  }
  outcome->stats = stats;
  if (control.Aborted()) {
    // Partial results are garbage by contract; never ship them.
    deadline_exceeded_.Add();
    outcome->status = "deadline_exceeded";
    outcome->code = 504;
    return DeadlineResponse(query, arrival_ns, rt.context.trace_id_hex());
  }

  const PoiSet& pois = engine_->pois();
  HttpResponse response;
  response.body =
      "{\"status\":\"ok\",\"trace_id\":\"" + rt.context.trace_id_hex() + "\"";
  AppendQueryEcho(query, &response.body);
  response.body.append(
      ",\"elapsed_ms\":" +
      NumberJson(static_cast<double>(MonotonicNowNs() - arrival_ns) /
                 1e6));
  response.body.append(",\"results\":[");
  if (approximate) {
    // Estimated rows carry the approximation contract: the flow value is
    // an unbiased estimate with its standard error and 95% interval, and
    // `exact` marks rows the sampler actually evaluated in full.
    for (size_t i = 0; i < estimates.size(); ++i) {
      if (i > 0) response.body.push_back(',');
      const FlowEstimate& est = estimates[i];
      response.body.append("{\"poi\":" + std::to_string(est.poi));
      if (est.poi >= 0 && static_cast<size_t>(est.poi) < pois.size()) {
        response.body.append(
            ",\"name\":\"" +
            JsonEscape(pois[static_cast<size_t>(est.poi)].name) + "\"");
      }
      response.body.append(",\"flow\":" + NumberJson(est.value));
      response.body.append(est.exact ? ",\"exact\":true"
                                     : ",\"exact\":false");
      if (!est.exact && std::isfinite(est.std_err)) {
        // A NaN std_err marks a degenerate (sub-two-sample) estimate whose
        // error is undefined; omit the fields rather than render NaN as 0
        // and dress a maximally uncertain answer up as a confident one.
        response.body.append(",\"stderr\":" + NumberJson(est.std_err));
        response.body.append(",\"ci95\":[" + NumberJson(est.ci_low) + "," +
                             NumberJson(est.ci_high) + "]");
      }
      response.body.push_back('}');
    }
  } else {
    for (size_t i = 0; i < results.size(); ++i) {
      if (i > 0) response.body.push_back(',');
      const PoiFlow& flow = results[i];
      response.body.append("{\"poi\":" + std::to_string(flow.poi));
      if (flow.poi >= 0 && static_cast<size_t>(flow.poi) < pois.size()) {
        response.body.append(",\"name\":\"" +
                             JsonEscape(pois[static_cast<size_t>(flow.poi)]
                                            .name) +
                             "\"");
      }
      response.body.append(",\"flow\":" + NumberJson(flow.flow) + "}");
    }
  }
  response.body.append("]}\n");
  return response;
}

void QueryService::Stop() {
  MutexLock lock(mu_);
  stopping_ = true;
  while (inflight_ > 0) idle_cv_.Wait(mu_);
}

}  // namespace indoorflow
