// The production query-serving path: JSON query endpoints with per-request
// deadlines, cooperative cancellation, and admission control.
//
// QueryService turns an ExpoServer from a read-only exposition endpoint
// into a query server. It registers the request routes —
//
//   POST /query/snapshot  {"t": 300, "k": 5, "algo": "join", ...}
//   POST /query/interval  {"ts": 200, "te": 400, "k": 5, ...}
//   POST /query/join      snapshot or interval, join algorithm forced
//   POST /query/live      {"k": 5, ...} — continuous top-k "right now"
//                         from an attached StreamingMonitor (registered
//                         only when one was passed at construction)
//
// (GET with the same parameters as a query string also works) — and
// resolves each admitted request onto the QueryEngine (or, for
// /query/live, the StreamingMonitor) on the shared process-wide
// executor, never on the accept thread. See docs/SERVING.md for the full
// request/response schema and tuning guidance.
//
// Admission control happens BEFORE computing, in two stages:
//   1. Depth shedding (accept thread): when `queue_limit` requests are
//      already queued, the request is shed immediately with a structured
//      503 — the queue never grows without bound.
//   2. Wait shedding (worker, at dequeue): a request that sat queued
//      longer than `max_queue_wait_ms` is shed with a 503 before any
//      query work — under sustained overload the server does useful work
//      for the requests it can still serve in time instead of burning
//      cycles on ones whose clients have given up.
// Between healthy and shedding sits the degraded mode (docs/SERVING.md,
// docs/APPROXIMATION.md): with `degrade_depth` > 0, a request admitted at
// or above that depth is downgraded to sampled evaluation (approximate
// top-k with error bounds) instead of running exactly — a cheaper answer
// with a confidence interval beats a 503. Requests that explicitly name
// `approx=exact` are never downgraded, and every request may opt into
// approximation itself with `approx=sampled|adaptive` + `sample_budget`.
// Each admitted request then runs under a Deadline anchored at its
// *arrival* (src/common/deadline.h): the query kernels poll it between
// per-object work items and abandon the query once it trips, and the
// client gets a structured 504 instead of a late answer.
//
// Observability: the `serve.*` registry family — requests/admitted/shed/
// deadline_exceeded counters, a queue-depth gauge, and end-to-end
// request-latency plus queue-wait histograms (docs/OBSERVABILITY.md).
// Every request additionally carries a TraceContext (src/common/trace.h):
// an injected W3C `traceparent` header joins the caller's trace, anything
// else mints fresh ids under `trace_sample`. Sampled requests record a
// span tree (queue wait -> engine phases -> executor lanes -> cache
// events) published on /traces/recent, and every request — sampled or
// not — emits one wide "query_log" JSONL record through src/common/log.h
// whose trace id joins traces, profiles, and metrics.
//
// Thread safety: Submit() may be called from any thread (the accept
// thread in production); the bounded-queue accounting sits behind a
// ranked Mutex (LockRank::kServe) held only for counter updates — never
// across query execution. Stop() sheds new arrivals and blocks until
// every admitted request has responded, so the engine and server always
// outlive the work.

#ifndef INDOORFLOW_SERVE_QUERY_SERVICE_H_
#define INDOORFLOW_SERVE_QUERY_SERVICE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "src/common/expo_server.h"
#include "src/common/metrics.h"
#include "src/common/mutex.h"
#include "src/common/trace.h"
#include "src/core/approx.h"
#include "src/core/engine.h"
#include "src/core/query_stats.h"

namespace indoorflow {

class StreamingMonitor;  // src/core/streaming.h

struct QueryServiceOptions {
  /// Depth cap: requests arriving while this many are already admitted
  /// but unfinished are shed with 503 "queue_full".
  int queue_limit = 64;
  /// Wait cap: an admitted request that waited longer than this before a
  /// worker picked it up is shed with 503 "queue_wait" (shed before
  /// computing). <= 0 disables wait shedding.
  int64_t max_queue_wait_ms = 250;
  /// Deadline applied when the request names none. Anchored at arrival.
  int64_t default_deadline_ms = 1000;
  /// Upper clamp on client-requested deadlines.
  int64_t max_deadline_ms = 10000;
  /// `k` when the request names none.
  int default_k = 10;
  /// Head-sampling rate for request traces in [0, 1]: the fraction of
  /// requests that record a span tree into /traces/recent. Trace ids are
  /// generated — and stamped into response bodies and the canonical query
  /// log — regardless, so the join key survives sampling. An injected
  /// `traceparent` header's sampled flag overrides the local rate.
  double trace_sample = 1.0;
  /// Service-wide default evaluation mode (src/core/approx.h). Requests
  /// may override it per query with `approx=` / `sample_budget=`. The
  /// default (exact) keeps every response bit-identical to an engine
  /// without approximation.
  ApproxConfig approx;
  /// Degraded mode: when > 0 and a request is admitted at queue depth >=
  /// this value, an exact iterative/live query is downgraded to sampled
  /// evaluation (booked on serve.degraded) instead of computed exactly —
  /// the pressure valve between healthy service and 503 shedding. Clients
  /// that explicitly sent `approx=exact` are never downgraded. Should sit
  /// below queue_limit to matter; 0 disables.
  int degrade_depth = 0;
};

class QueryService {
 public:
  /// Delivers one response; invoked exactly once per Submit(), on the
  /// accept thread (shed) or an executor worker (everything else).
  using Responder = std::function<void(const HttpResponse&)>;

  /// `engine` must outlive the service (and every in-flight request —
  /// Stop() guarantees that order). `monitor` is optional: when non-null
  /// (and alive as long as the engine must be) the /query/live route is
  /// registered and live top-k queries run against it under the same
  /// admission control, deadlines, and tracing as the historical routes.
  QueryService(const QueryEngine* engine, QueryServiceOptions options,
               const StreamingMonitor* monitor = nullptr);
  ~QueryService();
  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Registers /query/snapshot, /query/interval, and /query/join on
  /// `server` — plus /query/live when a StreamingMonitor was attached —
  /// and the /traces/recent exposition route (the process-wide TraceRing
  /// as JSON). Call before ExpoServer::Start().
  void RegisterRoutes(ExpoServer* server);

  /// Admission control + dispatch for one request: shed (503, inline) or
  /// enqueue onto the shared executor, where the request is parsed, run
  /// under its deadline, and responded to. Thread-safe.
  void Submit(const HttpRequest& request, Responder respond);

  /// Sheds new arrivals from now on and blocks until every admitted
  /// request has responded. Idempotent; called by the destructor.
  void Stop();

  /// Parses and runs one request synchronously with its deadline anchored
  /// at `arrival_ns` (MonotonicNowNs units), bypassing admission control.
  /// The worker path and tests share this; it books deadline_exceeded but
  /// no queue metrics.
  HttpResponse Evaluate(const HttpRequest& request, int64_t arrival_ns);

  const QueryServiceOptions& options() const { return options_; }

 private:
  /// Identifiers plus (when head-sampled) the span-tree recorder for one
  /// request. Copyable so it can ride the executor task's std::function.
  struct RequestTrace {
    TraceContext context;
    uint64_t remote_parent_id = 0;  // caller's span id when propagated in
    std::shared_ptr<Trace> trace;   // null when the request is unsampled
  };

  /// What happened to one request, for the canonical query log.
  struct RequestOutcome {
    const char* admission = "admitted";  // or "shed_*"
    // "ok"|"bad_request"|"deadline_exceeded"|"shed"
    const char* status = "ok";
    int code = 200;
    int64_t deadline_ms = 0;
    int64_t queue_wait_us = 0;
    QueryStats stats;  // zeros unless the query ran
  };

  /// Joins the request's injected traceparent (when present and valid) or
  /// mints a fresh context under options_.trace_sample.
  RequestTrace StartRequestTrace(const HttpRequest& request) const;

  /// Finishes + publishes the trace (ring, Chrome sink) and emits the
  /// canonical query-log record. Runs before the response is sent so
  /// /traces/recent already shows the trace when the client sees the body.
  void FinishRequest(const std::string& endpoint, const RequestTrace& rt,
                     const RequestOutcome& outcome, int64_t arrival_ns);

  /// `degrade` marks a request admitted past options_.degrade_depth: an
  /// exact sampleable query is downgraded to sampled evaluation (unless
  /// the client pinned approx=exact).
  HttpResponse EvaluateTraced(const HttpRequest& request, int64_t arrival_ns,
                              const RequestTrace& rt, Span* root,
                              RequestOutcome* outcome, bool degrade);

  void RunAdmitted(const HttpRequest& request, const Responder& respond,
                   int64_t enqueue_ns, const RequestTrace& rt, bool degrade);

  const QueryEngine* engine_;
  /// Null when the service has no live route.
  const StreamingMonitor* monitor_;
  QueryServiceOptions options_;

  Counter& requests_;
  Counter& admitted_;
  Counter& shed_;
  Counter& degraded_;
  Counter& deadline_exceeded_;
  Gauge& queue_depth_;
  Histogram& latency_us_;
  Histogram& queue_wait_us_;

  Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceExpo)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceServe) =
          Mutex(LockRank::kServe);
  CondVar idle_cv_;
  /// Admitted requests not yet responded to (queued + running).
  int inflight_ INDOORFLOW_GUARDED_BY(mu_) = 0;
  bool stopping_ INDOORFLOW_GUARDED_BY(mu_) = false;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_SERVE_QUERY_SERVICE_H_
