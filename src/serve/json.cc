#include "src/serve/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace indoorflow {

namespace {

// Cursor over the input; every helper leaves `pos` just past what it
// consumed.
struct Cursor {
  const std::string& text;
  size_t pos = 0;

  void SkipWs() {
    while (pos < text.size() &&
           std::isspace(static_cast<unsigned char>(text[pos]))) {
      ++pos;
    }
  }
  bool AtEnd() {
    SkipWs();
    return pos >= text.size();
  }
  char Peek() { return pos < text.size() ? text[pos] : '\0'; }
  bool Consume(char c) {
    SkipWs();
    if (Peek() != c) return false;
    ++pos;
    return true;
  }
};

Status Malformed(const Cursor& cur, const std::string& what) {
  return Status::InvalidArgument("json: " + what + " at offset " +
                                 std::to_string(cur.pos));
}

// One hex digit, or -1.
int HexValue(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

Status ParseString(Cursor& cur, std::string* out) {
  if (!cur.Consume('"')) return Malformed(cur, "expected string");
  out->clear();
  while (cur.pos < cur.text.size()) {
    const char c = cur.text[cur.pos++];
    if (c == '"') return Status::OK();
    if (c != '\\') {
      out->push_back(c);
      continue;
    }
    if (cur.pos >= cur.text.size()) break;
    const char esc = cur.text[cur.pos++];
    switch (esc) {
      case '"': out->push_back('"'); break;
      case '\\': out->push_back('\\'); break;
      case '/': out->push_back('/'); break;
      case 'b': out->push_back('\b'); break;
      case 'f': out->push_back('\f'); break;
      case 'n': out->push_back('\n'); break;
      case 'r': out->push_back('\r'); break;
      case 't': out->push_back('\t'); break;
      case 'u': {
        if (cur.pos + 4 > cur.text.size()) {
          return Malformed(cur, "truncated \\u escape");
        }
        int code = 0;
        for (int i = 0; i < 4; ++i) {
          const int digit = HexValue(cur.text[cur.pos + i]);
          if (digit < 0) return Malformed(cur, "bad \\u escape");
          code = code * 16 + digit;
        }
        cur.pos += 4;
        // BMP code point -> UTF-8 (surrogate pairs are out of scope for a
        // request schema of ASCII keys and algorithm names).
        if (code < 0x80) {
          out->push_back(static_cast<char>(code));
        } else if (code < 0x800) {
          out->push_back(static_cast<char>(0xC0 | (code >> 6)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        } else {
          out->push_back(static_cast<char>(0xE0 | (code >> 12)));
          out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
          out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
        }
        break;
      }
      default:
        return Malformed(cur, "bad escape");
    }
  }
  return Malformed(cur, "unterminated string");
}

Status ParseValue(Cursor& cur, JsonValue* out) {
  cur.SkipWs();
  const char c = cur.Peek();
  if (c == '"') {
    out->type = JsonValue::Type::kString;
    return ParseString(cur, &out->string);
  }
  if (c == '{' || c == '[') {
    return Malformed(cur,
                     "nested objects/arrays unsupported (flat schema)");
  }
  if (cur.text.compare(cur.pos, 4, "true") == 0) {
    cur.pos += 4;
    out->type = JsonValue::Type::kBool;
    out->boolean = true;
    return Status::OK();
  }
  if (cur.text.compare(cur.pos, 5, "false") == 0) {
    cur.pos += 5;
    out->type = JsonValue::Type::kBool;
    out->boolean = false;
    return Status::OK();
  }
  if (cur.text.compare(cur.pos, 4, "null") == 0) {
    cur.pos += 4;
    out->type = JsonValue::Type::kNull;
    return Status::OK();
  }
  // Number: delegate to strtod, then verify it consumed something sane.
  errno = 0;
  char* end = nullptr;
  const double value = std::strtod(cur.text.c_str() + cur.pos, &end);
  if (end == cur.text.c_str() + cur.pos || errno == ERANGE) {
    return Malformed(cur, "expected value");
  }
  cur.pos = static_cast<size_t>(end - cur.text.c_str());
  out->type = JsonValue::Type::kNumber;
  out->number = value;
  return Status::OK();
}

// "%3A" -> ':', '+' -> ' '; malformed escapes pass through verbatim.
std::string PercentDecode(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
      continue;
    }
    if (s[i] == '%' && i + 2 < s.size()) {
      const int hi = HexValue(s[i + 1]);
      const int lo = HexValue(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
        continue;
      }
    }
    out.push_back(s[i]);
  }
  return out;
}

}  // namespace

Result<JsonObject> ParseFlatJsonObject(const std::string& text) {
  Cursor cur{text};
  JsonObject object;
  if (!cur.Consume('{')) return Malformed(cur, "expected '{'");
  if (!cur.Consume('}')) {
    for (;;) {
      std::string key;
      INDOORFLOW_RETURN_IF_ERROR(ParseString(cur, &key));
      if (!cur.Consume(':')) return Malformed(cur, "expected ':'");
      JsonValue value;
      INDOORFLOW_RETURN_IF_ERROR(ParseValue(cur, &value));
      object[std::move(key)] = std::move(value);
      if (cur.Consume(',')) continue;
      if (cur.Consume('}')) break;
      return Malformed(cur, "expected ',' or '}'");
    }
  }
  if (!cur.AtEnd()) return Malformed(cur, "trailing garbage");
  return object;
}

std::map<std::string, std::string> DecodeQueryString(
    const std::string& query) {
  std::map<std::string, std::string> params;
  size_t pos = 0;
  while (pos <= query.size()) {
    size_t amp = query.find('&', pos);
    if (amp == std::string::npos) amp = query.size();
    const std::string pair = query.substr(pos, amp - pos);
    if (!pair.empty()) {
      const size_t eq = pair.find('=');
      if (eq == std::string::npos) {
        params[PercentDecode(pair)] = "";
      } else {
        params[PercentDecode(pair.substr(0, eq))] =
            PercentDecode(pair.substr(eq + 1));
      }
    }
    pos = amp + 1;
  }
  return params;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(c));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace indoorflow
