// Request-parameter parsing for the query-serving path.
//
// The /query/* endpoints accept parameters either as a flat JSON object in
// a POST body ({"t": 300, "k": 5, "algo": "join"}) or as a GET query
// string (t=300&k=5&algo=join). Both parse into the same string-keyed
// map so the service resolves parameters one way. The JSON parser is
// deliberately minimal — scalars only, no nesting — because the request
// schema is flat (docs/SERVING.md); nested values are rejected with
// InvalidArgument rather than half-supported. No external dependency: the
// repo serves JSON with hand-rolled rendering everywhere else too.

#ifndef INDOORFLOW_SERVE_JSON_H_
#define INDOORFLOW_SERVE_JSON_H_

#include <map>
#include <string>

#include "src/common/status.h"

namespace indoorflow {

/// One scalar JSON value from a request body.
struct JsonValue {
  enum class Type { kNull, kBool, kNumber, kString };
  Type type = Type::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
};

using JsonObject = std::map<std::string, JsonValue>;

/// Parses a flat JSON object: `{}` or string keys mapped to scalar values
/// (string / number / true / false / null). Duplicate keys keep the last
/// value. InvalidArgument on malformed input, nested objects/arrays, or
/// trailing garbage.
Result<JsonObject> ParseFlatJsonObject(const std::string& text);

/// Decodes an application/x-www-form-urlencoded query string ("a=1&b=x",
/// no leading '?') into key -> percent-decoded value; '+' decodes to a
/// space, keys without '=' map to "". Malformed percent escapes are kept
/// verbatim (a scrape-friendly endpoint shouldn't 500 on a sloppy probe).
std::map<std::string, std::string> DecodeQueryString(
    const std::string& query);

/// Escapes `s` for embedding inside a JSON string literal (quotes,
/// backslashes, control characters).
std::string JsonEscape(const std::string& s);

}  // namespace indoorflow

#endif  // INDOORFLOW_SERVE_JSON_H_
