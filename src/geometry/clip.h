// Exact polygon clipping (Sutherland–Hodgman) for convex clip windows.
//
// Used where both operands are polygons (e.g. POI-in-room computations and
// as a cross-check oracle for the adaptive area integrator in tests). Curved
// uncertainty regions go through area_integrator.h instead.

#ifndef INDOORFLOW_GEOMETRY_CLIP_H_
#define INDOORFLOW_GEOMETRY_CLIP_H_

#include <optional>

#include "src/geometry/polygon.h"

namespace indoorflow {

/// Clips `subject` (any simple polygon) against the half-plane on the left
/// of the directed line a -> b. Returns nullopt when the result is empty.
std::optional<Polygon> ClipToHalfPlane(const Polygon& subject, Point a,
                                       Point b);

/// Clips `subject` against convex polygon `clip` (CCW). Returns nullopt when
/// the intersection is empty (or degenerate to a point/segment).
std::optional<Polygon> ClipToConvex(const Polygon& subject,
                                    const Polygon& clip);

/// Exact area of subject ∩ clip for a convex CCW `clip` window.
double ClippedArea(const Polygon& subject, const Polygon& clip);

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_CLIP_H_
