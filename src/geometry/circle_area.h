// Exact area of circle ∩ axis-aligned rectangle.
//
// Serves as an independent closed-form oracle for the adaptive quadtree
// integrator (tests), and as a fast path for presence computations whose
// uncertainty region is a single detection disk against a rectangular POI.

#ifndef INDOORFLOW_GEOMETRY_CIRCLE_AREA_H_
#define INDOORFLOW_GEOMETRY_CIRCLE_AREA_H_

#include "src/geometry/box.h"
#include "src/geometry/circle.h"
#include "src/geometry/polygon.h"

namespace indoorflow {

/// area({ p : |p - circle.center| <= circle.radius } ∩ box), exactly
/// (piecewise antiderivatives, no sampling).
double CircleBoxIntersectionArea(const Circle& circle, const Box& box);

/// area(circle ∩ polygon) for any simple polygon, exactly: the polygon is
/// decomposed into signed triangles fanned from the circle center, and each
/// triangle's circle overlap has a closed form (chord/sector pieces).
double CirclePolygonIntersectionArea(const Circle& circle,
                                     const Polygon& polygon);

/// area(ring ∩ polygon), exactly: outer-disk overlap minus inner-disk
/// overlap.
double RingPolygonIntersectionArea(const Ring& ring, const Polygon& polygon);

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_CIRCLE_AREA_H_
