#include "src/geometry/area_integrator.h"

#include <vector>

#include "src/geometry/circle_area.h"

namespace indoorflow {

namespace {

// Classifies `box` against the (implicit) intersection of a and b.
BoxClass ClassifyIntersection(const Region& a, const Region& b,
                              const Box& box) {
  const BoxClass ca = a.Classify(box);
  if (ca == BoxClass::kOutside) return BoxClass::kOutside;
  const BoxClass cb = b.Classify(box);
  if (cb == BoxClass::kOutside) return BoxClass::kOutside;
  if (ca == BoxClass::kInside && cb == BoxClass::kInside) {
    return BoxClass::kInside;
  }
  return BoxClass::kBoundary;
}

}  // namespace

namespace {

// Exact fast paths for primitive pairs with closed-form intersection areas
// (circle/ring against an axis-aligned rectangle, rectangle pairs). Returns
// false when no fast path applies.
bool TryExactArea(const Region& a, const Region& b, AreaEstimate* out) {
  const auto pair_area = [](const Region& shape,
                            const Region& rect_side,
                            AreaEstimate* result) {
    const Box* rect = rect_side.AsBox();
    if (rect == nullptr) return false;
    if (const Circle* circle = shape.AsCircle()) {
      result->area = CircleBoxIntersectionArea(*circle, *rect);
      result->error_bound = 0.0;
      return true;
    }
    if (const Ring* ring = shape.AsRing()) {
      result->area = RingPolygonIntersectionArea(
          *ring, Polygon::FromBox(*rect));
      result->error_bound = 0.0;
      return true;
    }
    if (const Box* box = shape.AsBox()) {
      result->area = Intersection(*box, *rect).Area();
      result->error_bound = 0.0;
      return true;
    }
    return false;
  };
  return pair_area(a, b, out) || pair_area(b, a, out);
}

}  // namespace

AreaEstimate AreaOfIntersection(const Region& a, const Region& b,
                                const AreaOptions& options) {
  AreaEstimate result;
  const Box root = Intersection(a.Bounds(), b.Bounds());
  if (root.Empty() || root.Area() <= 0.0) return result;
  if (TryExactArea(a, b, &result)) return result;

  std::vector<Box> boundary;
  switch (ClassifyIntersection(a, b, root)) {
    case BoxClass::kInside:
      result.area = root.Area();
      return result;
    case BoxClass::kOutside:
      return result;
    case BoxClass::kBoundary:
      boundary.push_back(root);
      break;
  }

  int cells = 1;
  double boundary_area = root.Area();
  for (int depth = 0; depth < options.max_depth && !boundary.empty();
       ++depth) {
    if (boundary_area * 0.5 <= options.abs_tolerance) break;
    if (cells >= options.max_cells) break;
    std::vector<Box> next;
    next.reserve(boundary.size() * 2);
    boundary_area = 0.0;
    for (const Box& cell : boundary) {
      const Point c = cell.Center();
      const Box quads[4] = {
          Box{cell.min_x, cell.min_y, c.x, c.y},
          Box{c.x, cell.min_y, cell.max_x, c.y},
          Box{cell.min_x, c.y, c.x, cell.max_y},
          Box{c.x, c.y, cell.max_x, cell.max_y},
      };
      for (const Box& q : quads) {
        ++cells;
        switch (ClassifyIntersection(a, b, q)) {
          case BoxClass::kInside:
            result.area += q.Area();
            break;
          case BoxClass::kOutside:
            break;
          case BoxClass::kBoundary:
            next.push_back(q);
            boundary_area += q.Area();
            break;
        }
      }
    }
    boundary = std::move(next);
  }

  // Remaining boundary cells: midpoint-free half-area rule, which makes the
  // half boundary area an exact error bound.
  result.area += boundary_area * 0.5;
  result.error_bound = boundary_area * 0.5;
  return result;
}

AreaEstimate Area(const Region& r, const AreaOptions& options) {
  // Integrate against an "everything" proxy: the region's own bounds.
  return AreaOfIntersection(r, Region::Make(r.Bounds()), options);
}

}  // namespace indoorflow
