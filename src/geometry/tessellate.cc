#include "src/geometry/tessellate.h"

#include <cmath>
#include <numbers>
#include <vector>

#include "src/common/status.h"

namespace indoorflow {

Polygon TessellateCircle(const Circle& circle, int segments) {
  INDOORFLOW_CHECK(segments >= 3);
  std::vector<Point> vertices;
  vertices.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / segments;
    vertices.push_back({circle.center.x + circle.radius * std::cos(angle),
                        circle.center.y + circle.radius * std::sin(angle)});
  }
  return Polygon(std::move(vertices));
}

Polygon TessellateExtendedEllipse(const ExtendedEllipse& ellipse,
                                  int segments) {
  INDOORFLOW_CHECK(segments >= 8);
  const Point origin =
      (ellipse.disk_a().center + ellipse.disk_b().center) * 0.5;
  const Box bounds = ellipse.Bounds();
  const double max_radius =
      MaxDistance(bounds, origin) + 1.0;  // strictly outside
  std::vector<Point> vertices;
  vertices.reserve(segments);
  for (int i = 0; i < segments; ++i) {
    const double angle = 2.0 * std::numbers::pi * i / segments;
    const Point dir{std::cos(angle), std::sin(angle)};
    // Bisect [lo, hi] with origin + lo*dir inside, origin + hi*dir outside.
    double lo = 0.0;
    double hi = max_radius;
    if (!ellipse.Contains(origin)) {
      // Degenerate (empty bridge with origin between disjoint disks):
      // collapse this ray to the origin.
      vertices.push_back(origin);
      continue;
    }
    for (int iter = 0; iter < 48; ++iter) {
      const double mid = (lo + hi) * 0.5;
      if (ellipse.Contains(origin + dir * mid)) {
        lo = mid;
      } else {
        hi = mid;
      }
    }
    vertices.push_back(origin + dir * lo);
  }
  return Polygon(std::move(vertices));
}

}  // namespace indoorflow
