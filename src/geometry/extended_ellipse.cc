#include "src/geometry/extended_ellipse.h"

#include <algorithm>
#include <cmath>

namespace indoorflow {

ExtendedEllipse::ExtendedEllipse(Circle disk_a, Circle disk_b,
                                 double max_travel, bool include_disks)
    : disk_a_(disk_a),
      disk_b_(disk_b),
      max_travel_(std::max(max_travel, 0.0)),
      include_disks_(include_disks) {
  const double center_dist = Distance(disk_a_.center, disk_b_.center);
  const double min_bridge =
      std::max(0.0, center_dist - disk_a_.radius - disk_b_.radius);
  empty_bridge_ = min_bridge > max_travel_ + kGeomEpsilon;

  if (!empty_bridge_) {
    // The bridge region is contained in the classical ellipse with foci at
    // the two disk centers and major-axis length L + r_a + r_b. Its AABB is
    // a conservative bound for the bridge.
    const double a = (max_travel_ + disk_a_.radius + disk_b_.radius) * 0.5;
    const double c = center_dist * 0.5;
    const double b2 = std::max(a * a - c * c, 0.0);
    const double b = std::sqrt(b2);
    const Point mid = (disk_a_.center + disk_b_.center) * 0.5;
    Point u = Normalized(disk_b_.center - disk_a_.center);
    if (u == Point{0.0, 0.0}) u = {1.0, 0.0};
    const Point v = Perp(u);
    const double hx = std::sqrt(a * a * u.x * u.x + b * b * v.x * v.x);
    const double hy = std::sqrt(a * a * u.y * u.y + b * b * v.y * v.y);
    bounds_ = Box{mid.x - hx, mid.y - hy, mid.x + hx, mid.y + hy};
  }
  if (include_disks_ || empty_bridge_) {
    // With an empty bridge, the region degenerates to the disks themselves
    // (the object was observed there regardless of the travel budget).
    bounds_.ExpandToInclude(disk_a_.Bounds());
    bounds_.ExpandToInclude(disk_b_.Bounds());
  }
}

bool ExtendedEllipse::Contains(Point p) const {
  const bool in_disks = disk_a_.Contains(p) || disk_b_.Contains(p);
  if (include_disks_ || empty_bridge_) {
    if (in_disks) return true;
  } else if (in_disks) {
    return false;
  }
  if (empty_bridge_) return false;
  return disk_a_.DistanceToDisk(p) + disk_b_.DistanceToDisk(p) <=
         max_travel_;
}

double ExtendedEllipse::MinSumDistance(const Box& box) const {
  const double da =
      std::max(0.0, MinDistance(box, disk_a_.center) - disk_a_.radius);
  const double db =
      std::max(0.0, MinDistance(box, disk_b_.center) - disk_b_.radius);
  return da + db;
}

double ExtendedEllipse::MaxSumDistance(const Box& box) const {
  const double da =
      std::max(0.0, MaxDistance(box, disk_a_.center) - disk_a_.radius);
  const double db =
      std::max(0.0, MaxDistance(box, disk_b_.center) - disk_b_.radius);
  return da + db;
}

}  // namespace indoorflow
