#include "src/geometry/clip.h"

#include <cmath>
#include <vector>

#include "src/common/status.h"

namespace indoorflow {

namespace {

// Signed distance proxy: > 0 on the left of a->b.
double Side(Point p, Point a, Point b) { return Orient(a, b, p); }

Point LineIntersection(Point p1, Point p2, Point a, Point b) {
  const double d1 = Side(p1, a, b);
  const double d2 = Side(p2, a, b);
  const double t = d1 / (d1 - d2);
  return p1 + (p2 - p1) * t;
}

std::vector<Point> ClipVerticesToHalfPlane(const std::vector<Point>& input,
                                           Point a, Point b) {
  std::vector<Point> output;
  output.reserve(input.size() + 2);
  for (size_t i = 0; i < input.size(); ++i) {
    const Point cur = input[i];
    const Point nxt = input[(i + 1) % input.size()];
    const bool cur_in = Side(cur, a, b) >= -kGeomEpsilon;
    const bool nxt_in = Side(nxt, a, b) >= -kGeomEpsilon;
    if (cur_in) {
      output.push_back(cur);
      if (!nxt_in) output.push_back(LineIntersection(cur, nxt, a, b));
    } else if (nxt_in) {
      output.push_back(LineIntersection(cur, nxt, a, b));
    }
  }
  return output;
}

std::optional<Polygon> MakePolygonIfValid(std::vector<Point> vertices) {
  // Drop consecutive duplicates introduced by clipping at vertices.
  std::vector<Point> cleaned;
  cleaned.reserve(vertices.size());
  for (Point p : vertices) {
    if (cleaned.empty() ||
        Distance(cleaned.back(), p) > kGeomEpsilon) {
      cleaned.push_back(p);
    }
  }
  while (cleaned.size() >= 2 &&
         Distance(cleaned.front(), cleaned.back()) <= kGeomEpsilon) {
    cleaned.pop_back();
  }
  if (cleaned.size() < 3) return std::nullopt;
  Polygon result(std::move(cleaned));
  if (result.Area() < kGeomEpsilon) return std::nullopt;
  return result;
}

}  // namespace

std::optional<Polygon> ClipToHalfPlane(const Polygon& subject, Point a,
                                       Point b) {
  return MakePolygonIfValid(
      ClipVerticesToHalfPlane(subject.vertices(), a, b));
}

std::optional<Polygon> ClipToConvex(const Polygon& subject,
                                    const Polygon& clip) {
  INDOORFLOW_CHECK(clip.IsConvex());
  // Sutherland–Hodgman requires the clip polygon's edges oriented CCW so
  // "left of edge" means inside.
  Polygon ccw_clip = clip;
  ccw_clip.Normalize();
  std::vector<Point> vertices = subject.vertices();
  for (size_t i = 0; i < ccw_clip.size() && !vertices.empty(); ++i) {
    const Segment e = ccw_clip.edge(i);
    vertices = ClipVerticesToHalfPlane(vertices, e.a, e.b);
  }
  return MakePolygonIfValid(std::move(vertices));
}

double ClippedArea(const Polygon& subject, const Polygon& clip) {
  const std::optional<Polygon> result = ClipToConvex(subject, clip);
  return result ? result->Area() : 0.0;
}

}  // namespace indoorflow
