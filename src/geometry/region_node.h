// Internal extension point for Region: the CSG node interface.
//
// Most users never touch this; it exists so that higher layers can
// contribute custom primitives to the CSG machinery (e.g. the indoor
// reachability predicate used by the topology check) without the geometry
// layer depending on them.

#ifndef INDOORFLOW_GEOMETRY_REGION_NODE_H_
#define INDOORFLOW_GEOMETRY_REGION_NODE_H_

#include <cmath>
#include <cstddef>

#include "src/common/status.h"
#include "src/geometry/box.h"
#include "src/geometry/circle.h"
#include "src/geometry/point.h"

namespace indoorflow {

enum class BoxClass;

namespace region_internal {

/// A CSG node: an immutable point set with exact containment and
/// conservative box classification. Implementations must be thread-safe for
/// concurrent reads.
class Node {
 public:
  virtual ~Node() = default;
  virtual bool Contains(Point p) const = 0;
  /// Conservative bounding box (superset of the point set).
  virtual Box Bounds() const = 0;
  /// Conservative: kInside/kOutside only when certain.
  virtual BoxClass Classify(const Box& box) const = 0;

  // Optional shape introspection, enabling exact-area fast paths in the
  // integrator. Non-null only when the node is exactly that primitive.
  virtual const Circle* AsCircle() const { return nullptr; }
  virtual const Ring* AsRing() const { return nullptr; }
  /// For axis-aligned-rectangle nodes: the rectangle.
  virtual const Box* AsBox() const { return nullptr; }

  /// Approximate heap footprint of this subtree in bytes, for cache byte
  /// accounting (src/core/ur_cache.h). Composite nodes include their
  /// children; shared subtrees are counted once per reference, so the sum
  /// over-estimates under structural sharing. The default covers small
  /// fixed-size primitives.
  virtual size_t ApproxBytes() const { return 64; }

  /// Structural well-formedness of this subtree: sane primitive parameters,
  /// no NaN creeping into bounds, composite nodes recursing into children.
  /// Asserted by the fuzz harnesses and property tests (debug tooling, not
  /// a hot-path check). The default accepts any node whose bounds are
  /// NaN-free; infinite bounds are legal (unbounded custom predicates),
  /// empty bounds are legal (empty region).
  virtual Status CheckInvariants() const {
    const Box b = Bounds();
    if (std::isnan(b.min_x) || std::isnan(b.min_y) || std::isnan(b.max_x) ||
        std::isnan(b.max_y)) {
      return Status::Internal("region node with NaN bounds");
    }
    return Status::OK();
  }
};

}  // namespace region_internal
}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_REGION_NODE_H_
