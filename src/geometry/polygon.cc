#include "src/geometry/polygon.h"

#include <algorithm>
#include <cmath>

#include "src/common/status.h"

namespace indoorflow {

bool SegmentsIntersect(Segment s1, Segment s2) {
  const double d1 = Orient(s2.a, s2.b, s1.a);
  const double d2 = Orient(s2.a, s2.b, s1.b);
  const double d3 = Orient(s1.a, s1.b, s2.a);
  const double d4 = Orient(s1.a, s1.b, s2.b);
  if (((d1 > 0 && d2 < 0) || (d1 < 0 && d2 > 0)) &&
      ((d3 > 0 && d4 < 0) || (d3 < 0 && d4 > 0))) {
    return true;
  }
  // Collinear / touching cases: a point lies on the other segment.
  auto on_segment = [](Point p, Segment s) {
    if (std::abs(Orient(s.a, s.b, p)) > kGeomEpsilon) return false;
    return p.x >= std::min(s.a.x, s.b.x) - kGeomEpsilon &&
           p.x <= std::max(s.a.x, s.b.x) + kGeomEpsilon &&
           p.y >= std::min(s.a.y, s.b.y) - kGeomEpsilon &&
           p.y <= std::max(s.a.y, s.b.y) + kGeomEpsilon;
  };
  return on_segment(s1.a, s2) || on_segment(s1.b, s2) ||
         on_segment(s2.a, s1) || on_segment(s2.b, s1);
}

namespace {

// Four vertices, each on a corner of the bounds, covering all corners.
bool DetectAxisAlignedRectangle(const std::vector<Point>& vertices,
                                const Box& bounds) {
  if (vertices.size() != 4) return false;
  bool corner_seen[4] = {false, false, false, false};
  for (const Point& v : vertices) {
    const bool at_min_x = v.x == bounds.min_x;
    const bool at_max_x = v.x == bounds.max_x;
    const bool at_min_y = v.y == bounds.min_y;
    const bool at_max_y = v.y == bounds.max_y;
    if (!(at_min_x || at_max_x) || !(at_min_y || at_max_y)) return false;
    corner_seen[(at_max_x ? 1 : 0) + (at_max_y ? 2 : 0)] = true;
  }
  return corner_seen[0] && corner_seen[1] && corner_seen[2] &&
         corner_seen[3];
}

}  // namespace

Polygon::Polygon(std::vector<Point> vertices)
    : vertices_(std::move(vertices)) {
  INDOORFLOW_CHECK(vertices_.size() >= 3);
  for (Point p : vertices_) bounds_.ExpandToInclude(p);
  is_rectangle_ = DetectAxisAlignedRectangle(vertices_, bounds_);
}

Polygon Polygon::Rectangle(double min_x, double min_y, double max_x,
                           double max_y) {
  return Polygon({{min_x, min_y},
                  {max_x, min_y},
                  {max_x, max_y},
                  {min_x, max_y}});
}

double Polygon::SignedArea() const {
  double twice = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point a = vertices_[i];
    const Point b = vertices_[(i + 1) % vertices_.size()];
    twice += Cross(a, b);
  }
  return twice * 0.5;
}

double Polygon::Area() const { return std::abs(SignedArea()); }

Point Polygon::Centroid() const {
  // Area-weighted centroid; falls back to the vertex mean for degenerate
  // (near-zero-area) polygons.
  double twice_area = 0.0;
  Point c{0.0, 0.0};
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point a = vertices_[i];
    const Point b = vertices_[(i + 1) % vertices_.size()];
    const double w = Cross(a, b);
    twice_area += w;
    c = c + (a + b) * w;
  }
  if (std::abs(twice_area) < kGeomEpsilon) {
    Point mean{0.0, 0.0};
    for (Point p : vertices_) mean = mean + p;
    return mean / static_cast<double>(vertices_.size());
  }
  return c / (3.0 * twice_area);
}

double Polygon::Perimeter() const {
  double total = 0.0;
  for (size_t i = 0; i < vertices_.size(); ++i) total += edge(i).Length();
  return total;
}

void Polygon::Normalize() {
  if (SignedArea() < 0.0) std::reverse(vertices_.begin(), vertices_.end());
}

bool Polygon::IsConvex() const {
  int sign = 0;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point a = vertices_[i];
    const Point b = vertices_[(i + 1) % vertices_.size()];
    const Point c = vertices_[(i + 2) % vertices_.size()];
    const double o = Orient(a, b, c);
    if (std::abs(o) < kGeomEpsilon) continue;
    const int s = o > 0 ? 1 : -1;
    if (sign == 0) {
      sign = s;
    } else if (s != sign) {
      return false;
    }
  }
  return true;
}

bool Polygon::Contains(Point p) const {
  if (!bounds_.Contains(p)) return false;
  if (is_rectangle_) return true;  // bounds == shape
  // Boundary counts as inside.
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Segment e = edge(i);
    if (DistancePointSegment(p, e) < kGeomEpsilon) return true;
  }
  // Ray casting toward +x.
  bool inside = false;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    const Point a = vertices_[i];
    const Point b = vertices_[(i + 1) % vertices_.size()];
    const bool crosses = (a.y > p.y) != (b.y > p.y);
    if (!crosses) continue;
    const double x_at = a.x + (p.y - a.y) / (b.y - a.y) * (b.x - a.x);
    if (x_at > p.x) inside = !inside;
  }
  return inside;
}

bool Polygon::EdgeIntersects(Segment s) const {
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (SegmentsIntersect(edge(i), s)) return true;
  }
  return false;
}

bool Polygon::Intersects(const Polygon& other) const {
  if (!bounds_.Intersects(other.bounds_)) return false;
  if (Contains(other.vertex(0)) || other.Contains(vertex(0))) return true;
  for (size_t i = 0; i < vertices_.size(); ++i) {
    if (other.EdgeIntersects(edge(i))) return true;
  }
  return false;
}

double Polygon::BoundaryDistance(Point p) const {
  double best = std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < vertices_.size(); ++i) {
    best = std::min(best, DistancePointSegment(p, edge(i)));
  }
  return best;
}

Status Polygon::CheckInvariants() const {
  if (vertices_.empty()) {
    if (!bounds_.Empty()) {
      return Status::Internal("empty polygon with non-empty bounds");
    }
    return Status::OK();
  }
  if (vertices_.size() < 3) {
    return Status::Internal("polygon with fewer than 3 vertices");
  }
  Box want;
  for (const Point& v : vertices_) {
    if (!std::isfinite(v.x) || !std::isfinite(v.y)) {
      return Status::Internal("polygon with non-finite vertex");
    }
    want.ExpandToInclude(v);
  }
  if (want.min_x != bounds_.min_x || want.min_y != bounds_.min_y ||
      want.max_x != bounds_.max_x || want.max_y != bounds_.max_y) {
    return Status::Internal("polygon bounds out of sync with vertices");
  }
  const double area = SignedArea();
  if (!std::isfinite(area) || area == 0.0) {
    return Status::Internal("polygon with zero or non-finite signed area");
  }
  return Status::OK();
}

}  // namespace indoorflow
