// Adaptive quadtree area integration for CSG regions.
//
// Computes area(A ∩ B) for two Regions with a certified error bound: cells
// classified fully-inside contribute exactly, fully-outside cells contribute
// nothing, and the area of still-ambiguous boundary cells bounds the error.
// Boundary cells are subdivided breadth-first until the error bound drops
// below the requested tolerance (or a depth cap is hit). Every remaining
// boundary cell contributes half its area, so the reported error bound is
// half the total boundary-cell area.

#ifndef INDOORFLOW_GEOMETRY_AREA_INTEGRATOR_H_
#define INDOORFLOW_GEOMETRY_AREA_INTEGRATOR_H_

#include "src/geometry/region.h"

namespace indoorflow {

struct AreaOptions {
  /// Stop refining once the error bound is below this many square meters.
  double abs_tolerance = 0.05;
  /// Hard cap on subdivision depth (cells shrink 2x per level).
  int max_depth = 14;
  /// Safety cap on the number of classified cells.
  int max_cells = 200000;
};

struct AreaEstimate {
  double area = 0.0;
  /// |area - true area| <= error_bound.
  double error_bound = 0.0;

  double LowerBound() const { return area - error_bound; }
  double UpperBound() const { return area + error_bound; }
};

/// Estimates area(a ∩ b).
AreaEstimate AreaOfIntersection(const Region& a, const Region& b,
                                const AreaOptions& options = {});

/// Estimates area(r).
AreaEstimate Area(const Region& r, const AreaOptions& options = {});

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_AREA_INTEGRATOR_H_
