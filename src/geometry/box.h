// Axis-aligned bounding boxes (MBRs).

#ifndef INDOORFLOW_GEOMETRY_BOX_H_
#define INDOORFLOW_GEOMETRY_BOX_H_

#include <algorithm>
#include <limits>

#include "src/geometry/point.h"

namespace indoorflow {

/// An axis-aligned rectangle [min_x, max_x] x [min_y, max_y]. The default
/// constructed Box is *empty* (inverted bounds) so that ExpandToInclude can
/// be used to accumulate bounds.
struct Box {
  double min_x = std::numeric_limits<double>::infinity();
  double min_y = std::numeric_limits<double>::infinity();
  double max_x = -std::numeric_limits<double>::infinity();
  double max_y = -std::numeric_limits<double>::infinity();

  static Box Of(Point a, Point b) {
    return Box{std::min(a.x, b.x), std::min(a.y, b.y), std::max(a.x, b.x),
               std::max(a.y, b.y)};
  }

  bool Empty() const { return min_x > max_x || min_y > max_y; }

  double Width() const { return Empty() ? 0.0 : max_x - min_x; }
  double Height() const { return Empty() ? 0.0 : max_y - min_y; }
  double Area() const { return Width() * Height(); }
  double Perimeter() const { return 2.0 * (Width() + Height()); }
  Point Center() const {
    return {(min_x + max_x) * 0.5, (min_y + max_y) * 0.5};
  }

  bool Contains(Point p) const {
    return p.x >= min_x && p.x <= max_x && p.y >= min_y && p.y <= max_y;
  }

  bool Contains(const Box& o) const {
    return !o.Empty() && o.min_x >= min_x && o.max_x <= max_x &&
           o.min_y >= min_y && o.max_y <= max_y;
  }

  bool Intersects(const Box& o) const {
    return !Empty() && !o.Empty() && min_x <= o.max_x && o.min_x <= max_x &&
           min_y <= o.max_y && o.min_y <= max_y;
  }

  void ExpandToInclude(Point p) {
    min_x = std::min(min_x, p.x);
    min_y = std::min(min_y, p.y);
    max_x = std::max(max_x, p.x);
    max_y = std::max(max_y, p.y);
  }

  void ExpandToInclude(const Box& o) {
    if (o.Empty()) return;
    min_x = std::min(min_x, o.min_x);
    min_y = std::min(min_y, o.min_y);
    max_x = std::max(max_x, o.max_x);
    max_y = std::max(max_y, o.max_y);
  }

  /// Box grown by `margin` on every side.
  Box Expanded(double margin) const {
    if (Empty()) return *this;
    return Box{min_x - margin, min_y - margin, max_x + margin,
               max_y + margin};
  }

  friend bool operator==(const Box& a, const Box& b) {
    return a.min_x == b.min_x && a.min_y == b.min_y && a.max_x == b.max_x &&
           a.max_y == b.max_y;
  }
};

/// Smallest box covering both inputs.
inline Box Union(const Box& a, const Box& b) {
  Box out = a;
  out.ExpandToInclude(b);
  return out;
}

/// Intersection of two boxes (empty Box if disjoint).
inline Box Intersection(const Box& a, const Box& b) {
  if (!a.Intersects(b)) return Box{};
  return Box{std::max(a.min_x, b.min_x), std::max(a.min_y, b.min_y),
             std::min(a.max_x, b.max_x), std::min(a.max_y, b.max_y)};
}

/// Minimum distance from `p` to any point of `b` (0 if inside).
inline double MinDistance(const Box& b, Point p) {
  const double dx = std::max({b.min_x - p.x, 0.0, p.x - b.max_x});
  const double dy = std::max({b.min_y - p.y, 0.0, p.y - b.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

/// Maximum distance from `p` to any point of `b`.
inline double MaxDistance(const Box& b, Point p) {
  const double dx = std::max(std::abs(p.x - b.min_x), std::abs(p.x - b.max_x));
  const double dy = std::max(std::abs(p.y - b.min_y), std::abs(p.y - b.max_y));
  return std::sqrt(dx * dx + dy * dy);
}

// Squared variants for comparisons against squared radii. Classification
// code must use these rather than MinDistance/MaxDistance so it compares in
// the same arithmetic as Circle::Contains / Ring::Contains: taking the
// square root first changes where underflow happens, and a conservative
// Classify that disagrees with Contains at extreme magnitudes violates its
// "kInside/kOutside only when certain" contract. They also skip the sqrt.

/// Squared minimum distance from `p` to any point of `b` (0 if inside).
inline double MinDistanceSquared(const Box& b, Point p) {
  const double dx = std::max({b.min_x - p.x, 0.0, p.x - b.max_x});
  const double dy = std::max({b.min_y - p.y, 0.0, p.y - b.max_y});
  return dx * dx + dy * dy;
}

/// Squared maximum distance from `p` to any point of `b`.
inline double MaxDistanceSquared(const Box& b, Point p) {
  const double dx = std::max(std::abs(p.x - b.min_x), std::abs(p.x - b.max_x));
  const double dy = std::max(std::abs(p.y - b.min_y), std::abs(p.y - b.max_y));
  return dx * dx + dy * dy;
}

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_BOX_H_
