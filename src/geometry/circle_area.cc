#include "src/geometry/circle_area.h"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <vector>

namespace indoorflow {

namespace {

// Antiderivative of the half-chord h(x) = sqrt(r^2 - x^2):
// H(x) = (x h(x) + r^2 asin(x / r)) / 2.
double HalfChordIntegral(double r, double x) {
  x = std::clamp(x, -r, r);
  const double h = std::sqrt(std::max(0.0, r * r - x * x));
  return 0.5 * (x * h + r * r * std::asin(x / r));
}

}  // namespace

double CircleBoxIntersectionArea(const Circle& circle, const Box& box) {
  if (box.Empty() || circle.radius <= 0.0) return 0.0;
  const double r = circle.radius;
  // Translate so the circle is centered at the origin.
  const double x0 = box.min_x - circle.center.x;
  const double x1 = box.max_x - circle.center.x;
  const double y0 = box.min_y - circle.center.y;
  const double y1 = box.max_y - circle.center.y;

  const double a = std::max(x0, -r);
  const double b = std::min(x1, r);
  if (a >= b) return 0.0;

  // Between breakpoints, the clipped chord [max(y0, -h), min(y1, h)] keeps
  // one algebraic form, so each piece integrates exactly. Breakpoints are
  // where h(x) crosses |y0| or |y1|.
  std::vector<double> cuts = {a, b};
  for (const double y : {y0, y1}) {
    if (std::abs(y) < r) {
      const double x_cross = std::sqrt(r * r - y * y);
      if (-x_cross > a && -x_cross < b) cuts.push_back(-x_cross);
      if (x_cross > a && x_cross < b) cuts.push_back(x_cross);
    }
  }
  std::sort(cuts.begin(), cuts.end());

  double area = 0.0;
  for (size_t i = 0; i + 1 < cuts.size(); ++i) {
    const double lo = cuts[i];
    const double hi = cuts[i + 1];
    if (hi - lo <= 0.0) continue;
    const double mid = 0.5 * (lo + hi);
    const double h_mid = std::sqrt(std::max(0.0, r * r - mid * mid));
    const bool top_is_circle = y1 >= h_mid;     // min(y1, h) == h
    const bool bottom_is_circle = y0 <= -h_mid;  // max(y0, -h) == -h
    if (std::min(y1, h_mid) <= std::max(y0, -h_mid)) continue;  // empty

    const double dH = HalfChordIntegral(r, hi) - HalfChordIntegral(r, lo);
    const double dx = hi - lo;
    if (top_is_circle && bottom_is_circle) {
      area += 2.0 * dH;
    } else if (top_is_circle) {
      area += dH - y0 * dx;
    } else if (bottom_is_circle) {
      area += y1 * dx + dH;
    } else {
      area += (y1 - y0) * dx;
    }
  }
  return area;
}

namespace {

// Signed angle from p to q as seen from the origin, in (-pi, pi].
double SignedAngle(Point p, Point q) {
  double d = std::atan2(q.y, q.x) - std::atan2(p.y, p.x);
  if (d > std::numbers::pi) d -= 2.0 * std::numbers::pi;
  if (d <= -std::numbers::pi) d += 2.0 * std::numbers::pi;
  return d;
}

double SectorArea(Point p, Point q, double r) {
  return 0.5 * r * r * SignedAngle(p, q);
}

double TriangleArea(Point p, Point q) { return 0.5 * Cross(p, q); }

// Signed area of triangle(origin, a, b) ∩ disk(origin, r). Summed over the
// directed edges of a polygon (translated so the circle center is the
// origin), these contributions add up to the signed polygon-disk overlap.
double EdgeDiskArea(Point a, Point b, double r) {
  const bool a_in = LengthSquared(a) <= r * r;
  const bool b_in = LengthSquared(b) <= r * r;
  if (a_in && b_in) return TriangleArea(a, b);

  // Parametrize p(t) = a + t (b - a) and intersect with the circle.
  const Point d = b - a;
  const double qa = Dot(d, d);
  const double qb = 2.0 * Dot(a, d);
  const double qc = Dot(a, a) - r * r;
  const double disc = qb * qb - 4.0 * qa * qc;
  if (qa < kGeomEpsilon * kGeomEpsilon) {
    return 0.0;  // degenerate edge
  }
  double t1 = 0.0;
  double t2 = 0.0;
  bool crosses = false;
  if (disc > 0.0) {
    const double sq = std::sqrt(disc);
    t1 = (-qb - sq) / (2.0 * qa);
    t2 = (-qb + sq) / (2.0 * qa);
    crosses = t1 < 1.0 && t2 > 0.0 && t1 < t2;
  }

  if (a_in) {  // leaves the disk at t2
    const Point m = a + d * std::clamp(t2, 0.0, 1.0);
    return TriangleArea(a, m) + SectorArea(m, b, r);
  }
  if (b_in) {  // enters the disk at t1
    const Point m = a + d * std::clamp(t1, 0.0, 1.0);
    return SectorArea(a, m, r) + TriangleArea(m, b);
  }
  // Both endpoints outside: the chord between t1 and t2 may dip inside.
  if (crosses && t1 > 0.0 && t2 < 1.0) {
    const Point m1 = a + d * t1;
    const Point m2 = a + d * t2;
    return SectorArea(a, m1, r) + TriangleArea(m1, m2) +
           SectorArea(m2, b, r);
  }
  return SectorArea(a, b, r);
}

}  // namespace

double CirclePolygonIntersectionArea(const Circle& circle,
                                     const Polygon& polygon) {
  if (circle.radius <= 0.0) return 0.0;
  if (!circle.Bounds().Intersects(polygon.Bounds())) return 0.0;
  double total = 0.0;
  for (size_t i = 0; i < polygon.size(); ++i) {
    const Segment e = polygon.edge(i);
    total += EdgeDiskArea(e.a - circle.center, e.b - circle.center,
                          circle.radius);
  }
  // The fan is signed with the polygon's orientation.
  if (polygon.SignedArea() < 0.0) total = -total;
  return std::max(0.0, total);
}

double RingPolygonIntersectionArea(const Ring& ring,
                                   const Polygon& polygon) {
  const double outer = CirclePolygonIntersectionArea(
      Circle{ring.center, ring.outer_radius}, polygon);
  const double inner = CirclePolygonIntersectionArea(
      Circle{ring.center, ring.inner_radius}, polygon);
  return std::max(0.0, outer - inner);
}

}  // namespace indoorflow
