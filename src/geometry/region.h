// CSG regions: the representation of object uncertainty regions.
//
// An uncertainty region (paper Section 3) is built from circles, rings, and
// extended ellipses combined by intersection, union, and difference — e.g.
// "Ring(dev_pre, ...) ∩ dev_cov.range" for a snapshot in the active state, or
// a union of Θ-regions for an interval. Clipping such curved CSG shapes
// against POI polygons analytically is brittle; instead, Region exposes
//   * exact point containment,
//   * a conservative bounding box, and
//   * conservative box classification (inside / outside / boundary),
// which is exactly what the adaptive area integrator (area_integrator.h)
// needs to compute area(UR ∩ p) to a configurable error bound.

#ifndef INDOORFLOW_GEOMETRY_REGION_H_
#define INDOORFLOW_GEOMETRY_REGION_H_

#include <memory>
#include <vector>

#include "src/geometry/box.h"
#include "src/geometry/circle.h"
#include "src/geometry/extended_ellipse.h"
#include "src/geometry/point.h"
#include "src/geometry/polygon.h"
#include "src/geometry/region_node.h"

namespace indoorflow {

/// Conservative classification of a box against a region.
enum class BoxClass {
  kInside,    // every point of the box is in the region
  kOutside,   // no point of the box is in the region
  kBoundary,  // undetermined / mixed
};

/// An immutable 2-D point set built from geometric primitives and boolean
/// operations. Cheap to copy (shared immutable nodes).
class Region {
 public:
  /// The empty region.
  Region();

  static Region Make(const Circle& c);
  static Region Make(const Ring& r);
  static Region Make(const ExtendedEllipse& e);
  static Region Make(const Polygon& p);
  static Region Make(const Box& b);

  /// Wraps a custom CSG node (see region_node.h). For library-internal
  /// extensions such as the indoor reachability predicate.
  static Region FromNode(std::shared_ptr<const region_internal::Node> node);

  static Region Intersect(Region a, Region b);
  static Region Union(Region a, Region b);
  static Region Union(std::vector<Region> parts);
  static Region Subtract(Region a, Region b);

  /// Structurally empty (no primitive, or known-empty bounds). A false
  /// return does not guarantee positive area.
  bool IsEmpty() const;

  bool Contains(Point p) const;
  Box Bounds() const;
  BoxClass Classify(const Box& box) const;

  /// Approximate heap footprint of the CSG tree in bytes (see
  /// region_internal::Node::ApproxBytes). Used by the uncertainty-region
  /// cache for its byte budget; not an exact allocator measurement.
  size_t ApproxBytes() const;

  /// Shape introspection (non-null only for exactly-primitive regions);
  /// enables the integrator's exact-area fast paths.
  const Circle* AsCircle() const;
  const Ring* AsRing() const;
  const Box* AsBox() const;

  /// Recursive structural validation of the CSG tree: finite primitive
  /// parameters, NaN-free bounds, composite bookkeeping consistent (see
  /// region_internal::Node::CheckInvariants). Debug tooling for the fuzz
  /// harnesses and property tests — not meant for hot paths.
  Status CheckInvariants() const;

 private:
  explicit Region(std::shared_ptr<const region_internal::Node> node);

  std::shared_ptr<const region_internal::Node> node_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_REGION_H_
