// Basic 2-D primitives: points/vectors and segments.
//
// indoorflow models one building floor as a Euclidean plane (the paper's
// setting; multi-floor spaces are handled by running one engine per floor).
// Coordinates are in meters, stored as double.

#ifndef INDOORFLOW_GEOMETRY_POINT_H_
#define INDOORFLOW_GEOMETRY_POINT_H_

#include <cmath>

namespace indoorflow {

/// Geometric comparison tolerance (meters). Two coordinates closer than
/// kGeomEpsilon are considered equal.
inline constexpr double kGeomEpsilon = 1e-9;

/// A 2-D point (also used as a vector where convenient).
struct Point {
  double x = 0.0;
  double y = 0.0;

  Point operator+(Point o) const { return {x + o.x, y + o.y}; }
  Point operator-(Point o) const { return {x - o.x, y - o.y}; }
  Point operator*(double s) const { return {x * s, y * s}; }
  Point operator/(double s) const { return {x / s, y / s}; }

  friend bool operator==(Point a, Point b) {
    return a.x == b.x && a.y == b.y;
  }
};

inline double Dot(Point a, Point b) { return a.x * b.x + a.y * b.y; }

/// Z-component of the 3-D cross product; > 0 when b is counter-clockwise
/// from a.
inline double Cross(Point a, Point b) { return a.x * b.y - a.y * b.x; }

inline double LengthSquared(Point a) { return Dot(a, a); }
inline double Length(Point a) { return std::sqrt(LengthSquared(a)); }

inline double DistanceSquared(Point a, Point b) {
  return LengthSquared(a - b);
}
inline double Distance(Point a, Point b) { return Length(a - b); }

/// Returns a unit-length copy of `a` (or {0,0} if `a` is ~zero).
inline Point Normalized(Point a) {
  const double len = Length(a);
  if (len < kGeomEpsilon) return {0.0, 0.0};
  return a / len;
}

/// `a` rotated 90 degrees counter-clockwise.
inline Point Perp(Point a) { return {-a.y, a.x}; }

/// A line segment between two points.
struct Segment {
  Point a;
  Point b;

  Point Midpoint() const { return (a + b) * 0.5; }
  double Length() const { return Distance(a, b); }
};

/// Orientation of the triangle (a, b, c): > 0 counter-clockwise, < 0
/// clockwise, ~0 collinear.
inline double Orient(Point a, Point b, Point c) {
  return Cross(b - a, c - a);
}

/// Closest point on segment `s` to point `p`.
inline Point ClosestPointOnSegment(Segment s, Point p) {
  const Point d = s.b - s.a;
  const double len2 = LengthSquared(d);
  if (len2 < kGeomEpsilon * kGeomEpsilon) return s.a;
  double t = Dot(p - s.a, d) / len2;
  t = t < 0.0 ? 0.0 : (t > 1.0 ? 1.0 : t);
  return s.a + d * t;
}

inline double DistancePointSegment(Point p, Segment s) {
  return Distance(p, ClosestPointOnSegment(s, p));
}

/// Whether segments `s1` and `s2` intersect (including touching endpoints
/// within kGeomEpsilon).
bool SegmentsIntersect(Segment s1, Segment s2);

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_POINT_H_
