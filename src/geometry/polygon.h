// Simple polygons: POI extents, rooms, hallways.

#ifndef INDOORFLOW_GEOMETRY_POLYGON_H_
#define INDOORFLOW_GEOMETRY_POLYGON_H_

#include <vector>

#include "src/common/status.h"
#include "src/geometry/box.h"
#include "src/geometry/point.h"

namespace indoorflow {

/// A simple (non-self-intersecting) polygon. Vertices may be given in either
/// orientation; SignedArea() reveals it and Normalize() enforces CCW.
class Polygon {
 public:
  Polygon() = default;
  explicit Polygon(std::vector<Point> vertices);

  /// Axis-aligned rectangle polygon.
  static Polygon Rectangle(double min_x, double min_y, double max_x,
                           double max_y);
  static Polygon FromBox(const Box& b) {
    return Rectangle(b.min_x, b.min_y, b.max_x, b.max_y);
  }

  const std::vector<Point>& vertices() const { return vertices_; }
  size_t size() const { return vertices_.size(); }
  Point vertex(size_t i) const { return vertices_[i]; }
  Segment edge(size_t i) const {
    return Segment{vertices_[i], vertices_[(i + 1) % vertices_.size()]};
  }

  /// Shoelace area: positive when CCW.
  double SignedArea() const;
  double Area() const;
  Point Centroid() const;
  double Perimeter() const;
  Box Bounds() const { return bounds_; }

  /// Reorders vertices to counter-clockwise if needed.
  void Normalize();

  bool IsConvex() const;

  /// Whether the polygon is exactly an axis-aligned rectangle (any vertex
  /// order). Detected at construction; rectangle polygons take O(1) fast
  /// paths in Contains and related predicates.
  bool IsAxisAlignedRectangle() const { return is_rectangle_; }

  /// Point-in-polygon (boundary counts as inside).
  bool Contains(Point p) const;

  /// Whether any polygon edge intersects segment `s`.
  bool EdgeIntersects(Segment s) const;

  /// Whether this polygon and `other` overlap (share interior or boundary).
  bool Intersects(const Polygon& other) const;

  /// Minimum distance from `p` to the polygon boundary.
  double BoundaryDistance(Point p) const;

  /// Distance from `p` to the polygon as a region: 0 when inside, otherwise
  /// distance to the boundary.
  double Distance(Point p) const {
    return Contains(p) ? 0.0 : BoundaryDistance(p);
  }

  /// Structural validation for debug tooling (fuzz harnesses, property
  /// tests): default-constructed polygons are empty and valid; otherwise
  /// the polygon needs >= 3 finite vertices, a cached bounds box matching
  /// the vertices, and a non-zero signed area (so orientation is
  /// well-defined and Normalize() yields CCW).
  Status CheckInvariants() const;

 private:
  std::vector<Point> vertices_;
  Box bounds_;
  bool is_rectangle_ = false;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_POLYGON_H_
