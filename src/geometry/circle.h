// Circles (proximity-detection ranges) and rings (annuli).
//
// The paper models a proximity detection device's range as a circle. A
// Ring(dev, rho) is "the ring whose inner circle is device dev's detection
// circle and whose outer circle extends the inner circle's radius by rho"
// (paper, Section 3.1.2) — i.e. the annulus of points the object can have
// reached after leaving (or before entering) the device's range.

#ifndef INDOORFLOW_GEOMETRY_CIRCLE_H_
#define INDOORFLOW_GEOMETRY_CIRCLE_H_

#include <numbers>

#include "src/geometry/box.h"
#include "src/geometry/point.h"

namespace indoorflow {

struct Circle {
  Point center;
  double radius = 0.0;

  bool Contains(Point p) const {
    return DistanceSquared(center, p) <= radius * radius;
  }

  double Area() const { return std::numbers::pi * radius * radius; }

  Box Bounds() const {
    return Box{center.x - radius, center.y - radius, center.x + radius,
               center.y + radius};
  }

  /// Distance from `p` to the closed disk (0 when inside).
  double DistanceToDisk(Point p) const {
    const double d = Distance(center, p) - radius;
    return d > 0.0 ? d : 0.0;
  }
};

/// An annulus: points at distance [inner_radius, outer_radius] from center.
/// Ring(dev, rho) in the paper has inner_radius = dev.range and
/// outer_radius = dev.range + rho.
struct Ring {
  Point center;
  double inner_radius = 0.0;
  double outer_radius = 0.0;

  static Ring Around(const Circle& detection_range, double rho) {
    return Ring{detection_range.center, detection_range.radius,
                detection_range.radius + rho};
  }

  bool Contains(Point p) const {
    const double d2 = DistanceSquared(center, p);
    return d2 >= inner_radius * inner_radius &&
           d2 <= outer_radius * outer_radius;
  }

  double Area() const {
    return std::numbers::pi *
           (outer_radius * outer_radius - inner_radius * inner_radius);
  }

  Box Bounds() const {
    return Box{center.x - outer_radius, center.y - outer_radius,
               center.x + outer_radius, center.y + outer_radius};
  }
};

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_CIRCLE_H_
