// Extended ellipses: the Θ-regions constraining an object between two
// consecutive detections.
//
// Let dev_i and dev_j be the devices of two consecutive tracking records of
// an object, with detection disks D_i, D_j, and let the object be unseen
// during (t_i, t_j). The object left D_i at some boundary point, travelled at
// most L = Vmax * (t_j - t_i), and entered D_j at some boundary point. Its
// possible positions therefore satisfy
//
//     dist(q, D_i) + dist(q, D_j) <= L,
//
// where dist(q, D) is the Euclidean distance from q to the closed disk D
// (0 inside). This is the "extended ellipse" of the paper (Section 3.1.3,
// following Jensen et al.): an ellipse whose two foci are points on the two
// detection-circle boundaries and whose major-axis length is L. The paper's
// Θ(dev_i, dev_j, t_i, t_j) denotes the *complete* region covered by the
// ellipse, i.e. including the two detection disks themselves.

#ifndef INDOORFLOW_GEOMETRY_EXTENDED_ELLIPSE_H_
#define INDOORFLOW_GEOMETRY_EXTENDED_ELLIPSE_H_

#include "src/geometry/box.h"
#include "src/geometry/circle.h"
#include "src/geometry/point.h"

namespace indoorflow {

class ExtendedEllipse {
 public:
  /// Builds Θ(disk_a, disk_b, L) where `max_travel` is L = Vmax * gap.
  /// `include_disks` selects the paper's "complete region" (default) versus
  /// the between-detections variant that excludes both detection disks.
  ExtendedEllipse(Circle disk_a, Circle disk_b, double max_travel,
                  bool include_disks = true);

  const Circle& disk_a() const { return disk_a_; }
  const Circle& disk_b() const { return disk_b_; }
  double max_travel() const { return max_travel_; }
  bool include_disks() const { return include_disks_; }

  /// True when the travel budget cannot bridge the two disks at all. An
  /// empty Θ indicates data/parameter inconsistency (e.g. Vmax too small for
  /// the observed movement); callers typically fall back to the disks alone.
  bool EmptyBridge() const { return empty_bridge_; }

  bool Contains(Point p) const;

  /// Conservative bounding box (superset of the region).
  Box Bounds() const { return bounds_; }

  /// Lower bound of dist(q, D_a) + dist(q, D_b) over all q in `box`.
  /// If this exceeds max_travel(), the box is fully outside the bridge part.
  double MinSumDistance(const Box& box) const;

  /// Upper bound of dist(q, D_a) + dist(q, D_b) over all q in `box`.
  /// If this is <= max_travel(), the box is fully inside the bridge part.
  double MaxSumDistance(const Box& box) const;

 private:
  Circle disk_a_;
  Circle disk_b_;
  double max_travel_;
  bool include_disks_;
  bool empty_bridge_;
  Box bounds_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_EXTENDED_ELLIPSE_H_
