// Polygonal approximations of curved primitives.
//
// Used for visualization, for building floor plans, and as an alternative
// area oracle in tests. The approximations are inscribed (circle) or
// radially sampled (extended ellipse), with accuracy controlled by the
// segment count.

#ifndef INDOORFLOW_GEOMETRY_TESSELLATE_H_
#define INDOORFLOW_GEOMETRY_TESSELLATE_H_

#include "src/geometry/circle.h"
#include "src/geometry/extended_ellipse.h"
#include "src/geometry/polygon.h"

namespace indoorflow {

/// Regular n-gon inscribed in `circle` (n >= 3).
Polygon TessellateCircle(const Circle& circle, int segments);

/// Radial approximation of a (complete, disk-including) extended ellipse:
/// for `segments` directions from the midpoint of the two disk centers, the
/// boundary radius is located by bisection. Exact when the region is
/// star-shaped from the midpoint, which holds for all feasible Θ-regions
/// produced by tracking data (the bridge is convex and contains the
/// midpoint, and both disks overlap it).
Polygon TessellateExtendedEllipse(const ExtendedEllipse& ellipse,
                                  int segments);

}  // namespace indoorflow

#endif  // INDOORFLOW_GEOMETRY_TESSELLATE_H_
