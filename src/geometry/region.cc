#include "src/geometry/region.h"

#include "src/common/status.h"

#include <algorithm>
#include <utility>

namespace indoorflow {
namespace region_internal {
namespace {

class EmptyNode final : public Node {
 public:
  bool Contains(Point) const override { return false; }
  Box Bounds() const override { return Box{}; }
  BoxClass Classify(const Box&) const override { return BoxClass::kOutside; }
  size_t ApproxBytes() const override { return sizeof(*this); }
};

class CircleNode final : public Node {
 public:
  explicit CircleNode(Circle c) : circle_(c) {}

  bool Contains(Point p) const override { return circle_.Contains(p); }
  Box Bounds() const override { return circle_.Bounds(); }
  const Circle* AsCircle() const override { return &circle_; }

  BoxClass Classify(const Box& box) const override {
    const double min_d = MinDistance(box, circle_.center);
    if (min_d > circle_.radius) return BoxClass::kOutside;
    const double max_d = MaxDistance(box, circle_.center);
    if (max_d <= circle_.radius) return BoxClass::kInside;
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

 private:
  Circle circle_;
};

class RingNode final : public Node {
 public:
  explicit RingNode(Ring r) : ring_(r) {}

  bool Contains(Point p) const override { return ring_.Contains(p); }
  Box Bounds() const override { return ring_.Bounds(); }
  const Ring* AsRing() const override { return &ring_; }

  BoxClass Classify(const Box& box) const override {
    const double min_d = MinDistance(box, ring_.center);
    const double max_d = MaxDistance(box, ring_.center);
    if (min_d > ring_.outer_radius || max_d < ring_.inner_radius) {
      return BoxClass::kOutside;
    }
    if (min_d >= ring_.inner_radius && max_d <= ring_.outer_radius) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

 private:
  Ring ring_;
};

// A complete extended-ellipse region Θ in one node: bridge ∪ disks (or
// bridge \ disks for the include_disks=false variant). Collapsing the CSG
// into one primitive matters: Θ pieces dominate interval uncertainty
// regions and are classified once per quadtree cell.
class ThetaNode final : public Node {
 public:
  explicit ThetaNode(const ExtendedEllipse& e)
      : ellipse_(e), bounds_(e.Bounds()) {}

  bool Contains(Point p) const override { return ellipse_.Contains(p); }

  Box Bounds() const override { return bounds_; }

  BoxClass Classify(const Box& box) const override {
    if (!bounds_.Intersects(box)) return BoxClass::kOutside;
    const BoxClass in_a = ClassifyDisk(ellipse_.disk_a(), box);
    const BoxClass in_b = ClassifyDisk(ellipse_.disk_b(), box);
    BoxClass bridge = BoxClass::kOutside;
    if (!ellipse_.EmptyBridge()) {
      if (ellipse_.MaxSumDistance(box) <= ellipse_.max_travel()) {
        bridge = BoxClass::kInside;
      } else if (ellipse_.MinSumDistance(box) <= ellipse_.max_travel()) {
        bridge = BoxClass::kBoundary;
      }
    }
    if (ellipse_.include_disks() || ellipse_.EmptyBridge()) {
      // Union semantics: bridge ∪ disk_a ∪ disk_b.
      if (bridge == BoxClass::kInside || in_a == BoxClass::kInside ||
          in_b == BoxClass::kInside) {
        return BoxClass::kInside;
      }
      if (bridge == BoxClass::kOutside && in_a == BoxClass::kOutside &&
          in_b == BoxClass::kOutside) {
        return BoxClass::kOutside;
      }
      return BoxClass::kBoundary;
    }
    // Difference semantics: bridge \ (disk_a ∪ disk_b).
    if (bridge == BoxClass::kOutside || in_a == BoxClass::kInside ||
        in_b == BoxClass::kInside) {
      return BoxClass::kOutside;
    }
    if (bridge == BoxClass::kInside && in_a == BoxClass::kOutside &&
        in_b == BoxClass::kOutside) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

 private:
  static BoxClass ClassifyDisk(const Circle& disk, const Box& box) {
    const double min_d = MinDistance(box, disk.center);
    if (min_d > disk.radius) return BoxClass::kOutside;
    if (MaxDistance(box, disk.center) <= disk.radius) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  ExtendedEllipse ellipse_;
  Box bounds_;
};

// Axis-aligned rectangles (rooms, rectangular POIs) get exact O(1)
// classification instead of polygon edge tests.
class BoxNode final : public Node {
 public:
  explicit BoxNode(Box box) : box_(box) {}

  bool Contains(Point p) const override { return box_.Contains(p); }
  Box Bounds() const override { return box_; }
  const Box* AsBox() const override { return &box_; }

  BoxClass Classify(const Box& query) const override {
    if (!box_.Intersects(query)) return BoxClass::kOutside;
    if (box_.Contains(query)) return BoxClass::kInside;
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

 private:
  Box box_;
};

class PolygonNode final : public Node {
 public:
  explicit PolygonNode(Polygon p) : polygon_(std::move(p)) {}

  bool Contains(Point p) const override { return polygon_.Contains(p); }
  Box Bounds() const override { return polygon_.Bounds(); }

  BoxClass Classify(const Box& box) const override {
    if (!box.Intersects(polygon_.Bounds())) return BoxClass::kOutside;
    // A box is fully inside/outside iff its corners all are and no polygon
    // edge crosses it.
    const Point corners[4] = {{box.min_x, box.min_y},
                              {box.max_x, box.min_y},
                              {box.max_x, box.max_y},
                              {box.min_x, box.max_y}};
    int inside_corners = 0;
    for (Point c : corners) inside_corners += polygon_.Contains(c) ? 1 : 0;
    if (inside_corners != 0 && inside_corners != 4) {
      return BoxClass::kBoundary;
    }
    const Segment box_edges[4] = {{corners[0], corners[1]},
                                  {corners[1], corners[2]},
                                  {corners[2], corners[3]},
                                  {corners[3], corners[0]}};
    for (const Segment& e : box_edges) {
      if (polygon_.EdgeIntersects(e)) return BoxClass::kBoundary;
    }
    if (inside_corners == 4) return BoxClass::kInside;
    // All corners outside, no edge crossing: the polygon is either disjoint
    // from the box or entirely within it.
    if (box.Contains(polygon_.Bounds())) return BoxClass::kBoundary;
    return BoxClass::kOutside;
  }

  size_t ApproxBytes() const override {
    return sizeof(*this) + polygon_.size() * sizeof(Point);
  }

 private:
  Polygon polygon_;
};

class IntersectionNode final : public Node {
 public:
  IntersectionNode(std::shared_ptr<const Node> a,
                   std::shared_ptr<const Node> b)
      : a_(std::move(a)), b_(std::move(b)) {
    bounds_ = indoorflow::Intersection(a_->Bounds(), b_->Bounds());
  }

  bool Contains(Point p) const override {
    return a_->Contains(p) && b_->Contains(p);
  }
  Box Bounds() const override { return bounds_; }

  BoxClass Classify(const Box& box) const override {
    const BoxClass ca = a_->Classify(box);
    if (ca == BoxClass::kOutside) return BoxClass::kOutside;
    const BoxClass cb = b_->Classify(box);
    if (cb == BoxClass::kOutside) return BoxClass::kOutside;
    if (ca == BoxClass::kInside && cb == BoxClass::kInside) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override {
    return sizeof(*this) + a_->ApproxBytes() + b_->ApproxBytes();
  }

 private:
  std::shared_ptr<const Node> a_;
  std::shared_ptr<const Node> b_;
  Box bounds_;
};

class UnionNode final : public Node {
 public:
  explicit UnionNode(std::vector<std::shared_ptr<const Node>> parts)
      : parts_(std::move(parts)) {
    part_bounds_.reserve(parts_.size());
    for (const auto& p : parts_) {
      part_bounds_.push_back(p->Bounds());
      bounds_.ExpandToInclude(part_bounds_.back());
    }
  }

  bool Contains(Point p) const override {
    if (!bounds_.Contains(p)) return false;
    // Uncertainty regions are unions of many *localized* pieces (one per
    // trajectory ellipse); the cached per-part bounds skip the rest.
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (part_bounds_[i].Contains(p) && parts_[i]->Contains(p)) {
        return true;
      }
    }
    return false;
  }

  Box Bounds() const override { return bounds_; }

  BoxClass Classify(const Box& box) const override {
    if (!bounds_.Intersects(box)) return BoxClass::kOutside;
    bool any_boundary = false;
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (!part_bounds_[i].Intersects(box)) continue;
      switch (parts_[i]->Classify(box)) {
        case BoxClass::kInside:
          return BoxClass::kInside;
        case BoxClass::kBoundary:
          any_boundary = true;
          break;
        case BoxClass::kOutside:
          break;
      }
    }
    return any_boundary ? BoxClass::kBoundary : BoxClass::kOutside;
  }

  size_t ApproxBytes() const override {
    size_t bytes = sizeof(*this) + part_bounds_.capacity() * sizeof(Box) +
                   parts_.capacity() * sizeof(std::shared_ptr<const Node>);
    for (const auto& p : parts_) bytes += p->ApproxBytes();
    return bytes;
  }

 private:
  std::vector<std::shared_ptr<const Node>> parts_;
  std::vector<Box> part_bounds_;
  Box bounds_;
};

class DifferenceNode final : public Node {
 public:
  DifferenceNode(std::shared_ptr<const Node> a,
                 std::shared_ptr<const Node> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  bool Contains(Point p) const override {
    return a_->Contains(p) && !b_->Contains(p);
  }
  Box Bounds() const override { return a_->Bounds(); }

  BoxClass Classify(const Box& box) const override {
    const BoxClass ca = a_->Classify(box);
    if (ca == BoxClass::kOutside) return BoxClass::kOutside;
    const BoxClass cb = b_->Classify(box);
    if (cb == BoxClass::kInside) return BoxClass::kOutside;
    if (ca == BoxClass::kInside && cb == BoxClass::kOutside) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override {
    return sizeof(*this) + a_->ApproxBytes() + b_->ApproxBytes();
  }

 private:
  std::shared_ptr<const Node> a_;
  std::shared_ptr<const Node> b_;
};

}  // namespace
}  // namespace region_internal

namespace {
using region_internal::Node;

const std::shared_ptr<const Node>& EmptySingleton() {
  static const auto* kEmpty = new std::shared_ptr<const Node>(
      std::make_shared<region_internal::EmptyNode>());
  return *kEmpty;
}
}  // namespace

Region::Region() : node_(EmptySingleton()) {}

Region::Region(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Region Region::Make(const Circle& c) {
  if (c.radius <= 0.0) return Region();
  return Region(std::make_shared<region_internal::CircleNode>(c));
}

Region Region::Make(const Ring& r) {
  if (r.outer_radius <= 0.0 || r.outer_radius < r.inner_radius) {
    return Region();
  }
  return Region(std::make_shared<region_internal::RingNode>(r));
}

Region Region::Make(const ExtendedEllipse& e) {
  if (e.Bounds().Empty()) return Region();
  return Region(std::make_shared<region_internal::ThetaNode>(e));
}

Region Region::Make(const Polygon& p) {
  if (p.IsAxisAlignedRectangle()) {
    return Region(
        std::make_shared<region_internal::BoxNode>(p.Bounds()));
  }
  return Region(std::make_shared<region_internal::PolygonNode>(p));
}

Region Region::Make(const Box& b) {
  if (b.Empty()) return Region();
  return Region(std::make_shared<region_internal::BoxNode>(b));
}

Region Region::FromNode(std::shared_ptr<const region_internal::Node> node) {
  INDOORFLOW_CHECK(node != nullptr);
  return Region(std::move(node));
}

Region Region::Intersect(Region a, Region b) {
  if (a.IsEmpty() || b.IsEmpty()) return Region();
  return Region(std::make_shared<region_internal::IntersectionNode>(
      std::move(a.node_), std::move(b.node_)));
}

Region Region::Union(Region a, Region b) {
  if (a.IsEmpty()) return b;
  if (b.IsEmpty()) return a;
  std::vector<std::shared_ptr<const Node>> parts;
  parts.push_back(std::move(a.node_));
  parts.push_back(std::move(b.node_));
  return Region(
      std::make_shared<region_internal::UnionNode>(std::move(parts)));
}

Region Region::Union(std::vector<Region> parts) {
  std::vector<std::shared_ptr<const Node>> nodes;
  nodes.reserve(parts.size());
  for (Region& r : parts) {
    if (!r.IsEmpty()) nodes.push_back(std::move(r.node_));
  }
  if (nodes.empty()) return Region();
  if (nodes.size() == 1) return Region(std::move(nodes[0]));
  return Region(
      std::make_shared<region_internal::UnionNode>(std::move(nodes)));
}

Region Region::Subtract(Region a, Region b) {
  if (a.IsEmpty()) return Region();
  if (b.IsEmpty()) return a;
  return Region(std::make_shared<region_internal::DifferenceNode>(
      std::move(a.node_), std::move(b.node_)));
}

bool Region::IsEmpty() const { return node_->Bounds().Empty(); }

bool Region::Contains(Point p) const { return node_->Contains(p); }

Box Region::Bounds() const { return node_->Bounds(); }

BoxClass Region::Classify(const Box& box) const {
  return node_->Classify(box);
}

size_t Region::ApproxBytes() const { return node_->ApproxBytes(); }

const Circle* Region::AsCircle() const { return node_->AsCircle(); }
const Ring* Region::AsRing() const { return node_->AsRing(); }
const Box* Region::AsBox() const { return node_->AsBox(); }

}  // namespace indoorflow
