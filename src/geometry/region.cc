#include "src/geometry/region.h"

#include "src/common/status.h"

#include <algorithm>
#include <cmath>
#include <utility>

namespace {

bool FinitePoint(indoorflow::Point p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

}  // namespace

namespace indoorflow {
namespace region_internal {
namespace {

class EmptyNode final : public Node {
 public:
  bool Contains(Point) const override { return false; }
  Box Bounds() const override { return Box{}; }
  BoxClass Classify(const Box&) const override { return BoxClass::kOutside; }
  size_t ApproxBytes() const override { return sizeof(*this); }
};

class CircleNode final : public Node {
 public:
  explicit CircleNode(Circle c) : circle_(c) {}

  bool Contains(Point p) const override { return circle_.Contains(p); }
  Box Bounds() const override { return circle_.Bounds(); }
  const Circle* AsCircle() const override { return &circle_; }

  BoxClass Classify(const Box& box) const override {
    const double r2 = circle_.radius * circle_.radius;
    if (MinDistanceSquared(box, circle_.center) > r2) {
      return BoxClass::kOutside;
    }
    if (MaxDistanceSquared(box, circle_.center) <= r2) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

  Status CheckInvariants() const override {
    if (!FinitePoint(circle_.center) || !std::isfinite(circle_.radius) ||
        circle_.radius <= 0.0) {
      return Status::Internal("circle node with bad center/radius");
    }
    return Status::OK();
  }

 private:
  Circle circle_;
};

class RingNode final : public Node {
 public:
  explicit RingNode(Ring r) : ring_(r) {}

  bool Contains(Point p) const override { return ring_.Contains(p); }
  Box Bounds() const override { return ring_.Bounds(); }
  const Ring* AsRing() const override { return &ring_; }

  BoxClass Classify(const Box& box) const override {
    const double inner2 = ring_.inner_radius * ring_.inner_radius;
    const double outer2 = ring_.outer_radius * ring_.outer_radius;
    const double min_d2 = MinDistanceSquared(box, ring_.center);
    const double max_d2 = MaxDistanceSquared(box, ring_.center);
    if (min_d2 > outer2 || max_d2 < inner2) {
      return BoxClass::kOutside;
    }
    if (min_d2 >= inner2 && max_d2 <= outer2) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

  Status CheckInvariants() const override {
    if (!FinitePoint(ring_.center) ||
        !std::isfinite(ring_.outer_radius) || ring_.inner_radius < 0.0 ||
        !(ring_.inner_radius < ring_.outer_radius)) {
      return Status::Internal("ring node with bad radii");
    }
    return Status::OK();
  }

 private:
  Ring ring_;
};

// A complete extended-ellipse region Θ in one node: bridge ∪ disks (or
// bridge \ disks for the include_disks=false variant). Collapsing the CSG
// into one primitive matters: Θ pieces dominate interval uncertainty
// regions and are classified once per quadtree cell.
class ThetaNode final : public Node {
 public:
  explicit ThetaNode(const ExtendedEllipse& e)
      : ellipse_(e), bounds_(e.Bounds()) {}

  bool Contains(Point p) const override { return ellipse_.Contains(p); }

  Box Bounds() const override { return bounds_; }

  BoxClass Classify(const Box& box) const override {
    if (!bounds_.Intersects(box)) return BoxClass::kOutside;
    const BoxClass in_a = ClassifyDisk(ellipse_.disk_a(), box);
    const BoxClass in_b = ClassifyDisk(ellipse_.disk_b(), box);
    BoxClass bridge = BoxClass::kOutside;
    if (!ellipse_.EmptyBridge()) {
      if (ellipse_.MaxSumDistance(box) <= ellipse_.max_travel()) {
        bridge = BoxClass::kInside;
      } else if (ellipse_.MinSumDistance(box) <= ellipse_.max_travel()) {
        bridge = BoxClass::kBoundary;
      }
    }
    if (ellipse_.include_disks() || ellipse_.EmptyBridge()) {
      // Union semantics: bridge ∪ disk_a ∪ disk_b.
      if (bridge == BoxClass::kInside || in_a == BoxClass::kInside ||
          in_b == BoxClass::kInside) {
        return BoxClass::kInside;
      }
      if (bridge == BoxClass::kOutside && in_a == BoxClass::kOutside &&
          in_b == BoxClass::kOutside) {
        return BoxClass::kOutside;
      }
      return BoxClass::kBoundary;
    }
    // Difference semantics: bridge \ (disk_a ∪ disk_b).
    if (bridge == BoxClass::kOutside || in_a == BoxClass::kInside ||
        in_b == BoxClass::kInside) {
      return BoxClass::kOutside;
    }
    if (bridge == BoxClass::kInside && in_a == BoxClass::kOutside &&
        in_b == BoxClass::kOutside) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

  Status CheckInvariants() const override {
    if (!FinitePoint(ellipse_.disk_a().center) ||
        !FinitePoint(ellipse_.disk_b().center) ||
        !std::isfinite(ellipse_.disk_a().radius) ||
        !std::isfinite(ellipse_.disk_b().radius) ||
        ellipse_.disk_a().radius < 0.0 || ellipse_.disk_b().radius < 0.0 ||
        !std::isfinite(ellipse_.max_travel()) ||
        ellipse_.max_travel() < 0.0) {
      return Status::Internal("theta node with bad ellipse parameters");
    }
    if (std::isnan(bounds_.min_x) || std::isnan(bounds_.min_y) ||
        std::isnan(bounds_.max_x) || std::isnan(bounds_.max_y)) {
      return Status::Internal("theta node with NaN bounds");
    }
    // The min/max sum-distance pair must bracket for any probe box; the
    // classifier's correctness rests on it. Tolerance scales with the
    // magnitude so rounding at extreme coordinates cannot trip it.
    if (!bounds_.Empty()) {
      const double min_sum = ellipse_.MinSumDistance(bounds_);
      const double max_sum = ellipse_.MaxSumDistance(bounds_);
      if (min_sum > max_sum + 1e-9 * std::max(1.0, std::abs(max_sum))) {
        return Status::Internal("theta node with inverted sum distances");
      }
    }
    return Status::OK();
  }

 private:
  static BoxClass ClassifyDisk(const Circle& disk, const Box& box) {
    const double r2 = disk.radius * disk.radius;
    if (MinDistanceSquared(box, disk.center) > r2) return BoxClass::kOutside;
    if (MaxDistanceSquared(box, disk.center) <= r2) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  ExtendedEllipse ellipse_;
  Box bounds_;
};

// Axis-aligned rectangles (rooms, rectangular POIs) get exact O(1)
// classification instead of polygon edge tests.
class BoxNode final : public Node {
 public:
  explicit BoxNode(Box box) : box_(box) {}

  bool Contains(Point p) const override { return box_.Contains(p); }
  Box Bounds() const override { return box_; }
  const Box* AsBox() const override { return &box_; }

  Status CheckInvariants() const override {
    if (std::isnan(box_.min_x) || std::isnan(box_.min_y) ||
        std::isnan(box_.max_x) || std::isnan(box_.max_y)) {
      return Status::Internal("box node with NaN bounds");
    }
    if (!box_.Empty() &&
        (!std::isfinite(box_.min_x) || !std::isfinite(box_.min_y) ||
         !std::isfinite(box_.max_x) || !std::isfinite(box_.max_y))) {
      return Status::Internal("box node with infinite extent");
    }
    return Status::OK();
  }

  BoxClass Classify(const Box& query) const override {
    if (!box_.Intersects(query)) return BoxClass::kOutside;
    if (box_.Contains(query)) return BoxClass::kInside;
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override { return sizeof(*this); }

 private:
  Box box_;
};

class PolygonNode final : public Node {
 public:
  explicit PolygonNode(Polygon p) : polygon_(std::move(p)) {}

  bool Contains(Point p) const override { return polygon_.Contains(p); }
  Box Bounds() const override { return polygon_.Bounds(); }

  BoxClass Classify(const Box& box) const override {
    if (!box.Intersects(polygon_.Bounds())) return BoxClass::kOutside;
    // A box is fully inside/outside iff its corners all are and no polygon
    // edge crosses it.
    const Point corners[4] = {{box.min_x, box.min_y},
                              {box.max_x, box.min_y},
                              {box.max_x, box.max_y},
                              {box.min_x, box.max_y}};
    int inside_corners = 0;
    for (Point c : corners) inside_corners += polygon_.Contains(c) ? 1 : 0;
    if (inside_corners != 0 && inside_corners != 4) {
      return BoxClass::kBoundary;
    }
    const Segment box_edges[4] = {{corners[0], corners[1]},
                                  {corners[1], corners[2]},
                                  {corners[2], corners[3]},
                                  {corners[3], corners[0]}};
    for (const Segment& e : box_edges) {
      if (polygon_.EdgeIntersects(e)) return BoxClass::kBoundary;
    }
    if (inside_corners == 4) return BoxClass::kInside;
    // All corners outside, no edge crossing: the polygon is either disjoint
    // from the box or entirely within it.
    if (box.Contains(polygon_.Bounds())) return BoxClass::kBoundary;
    return BoxClass::kOutside;
  }

  size_t ApproxBytes() const override {
    return sizeof(*this) + polygon_.size() * sizeof(Point);
  }

  Status CheckInvariants() const override {
    return polygon_.CheckInvariants();
  }

 private:
  Polygon polygon_;
};

class IntersectionNode final : public Node {
 public:
  IntersectionNode(std::shared_ptr<const Node> a,
                   std::shared_ptr<const Node> b)
      : a_(std::move(a)), b_(std::move(b)) {
    bounds_ = indoorflow::Intersection(a_->Bounds(), b_->Bounds());
  }

  bool Contains(Point p) const override {
    return a_->Contains(p) && b_->Contains(p);
  }
  Box Bounds() const override { return bounds_; }

  BoxClass Classify(const Box& box) const override {
    const BoxClass ca = a_->Classify(box);
    if (ca == BoxClass::kOutside) return BoxClass::kOutside;
    const BoxClass cb = b_->Classify(box);
    if (cb == BoxClass::kOutside) return BoxClass::kOutside;
    if (ca == BoxClass::kInside && cb == BoxClass::kInside) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override {
    return sizeof(*this) + a_->ApproxBytes() + b_->ApproxBytes();
  }

  Status CheckInvariants() const override {
    if (a_ == nullptr || b_ == nullptr) {
      return Status::Internal("intersection node with null child");
    }
    INDOORFLOW_RETURN_IF_ERROR(a_->CheckInvariants());
    INDOORFLOW_RETURN_IF_ERROR(b_->CheckInvariants());
    if (std::isnan(bounds_.min_x) || std::isnan(bounds_.min_y) ||
        std::isnan(bounds_.max_x) || std::isnan(bounds_.max_y)) {
      return Status::Internal("intersection node with NaN bounds");
    }
    return Status::OK();
  }

 private:
  std::shared_ptr<const Node> a_;
  std::shared_ptr<const Node> b_;
  Box bounds_;
};

class UnionNode final : public Node {
 public:
  explicit UnionNode(std::vector<std::shared_ptr<const Node>> parts)
      : parts_(std::move(parts)) {
    part_bounds_.reserve(parts_.size());
    for (const auto& p : parts_) {
      part_bounds_.push_back(p->Bounds());
      bounds_.ExpandToInclude(part_bounds_.back());
    }
  }

  bool Contains(Point p) const override {
    if (!bounds_.Contains(p)) return false;
    // Uncertainty regions are unions of many *localized* pieces (one per
    // trajectory ellipse); the cached per-part bounds skip the rest.
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (part_bounds_[i].Contains(p) && parts_[i]->Contains(p)) {
        return true;
      }
    }
    return false;
  }

  Box Bounds() const override { return bounds_; }

  BoxClass Classify(const Box& box) const override {
    if (!bounds_.Intersects(box)) return BoxClass::kOutside;
    bool any_boundary = false;
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (!part_bounds_[i].Intersects(box)) continue;
      switch (parts_[i]->Classify(box)) {
        case BoxClass::kInside:
          return BoxClass::kInside;
        case BoxClass::kBoundary:
          any_boundary = true;
          break;
        case BoxClass::kOutside:
          break;
      }
    }
    return any_boundary ? BoxClass::kBoundary : BoxClass::kOutside;
  }

  size_t ApproxBytes() const override {
    size_t bytes = sizeof(*this) + part_bounds_.capacity() * sizeof(Box) +
                   parts_.capacity() * sizeof(std::shared_ptr<const Node>);
    for (const auto& p : parts_) bytes += p->ApproxBytes();
    return bytes;
  }

  Status CheckInvariants() const override {
    if (parts_.size() != part_bounds_.size()) {
      return Status::Internal("union node with desynced part bounds");
    }
    for (size_t i = 0; i < parts_.size(); ++i) {
      if (parts_[i] == nullptr) {
        return Status::Internal("union node with null child");
      }
      INDOORFLOW_RETURN_IF_ERROR(parts_[i]->CheckInvariants());
      // The cached union bounds must cover every cached part bound, or
      // Contains() would wrongly cull points of that part.
      if (!part_bounds_[i].Empty() && !bounds_.Contains(part_bounds_[i])) {
        return Status::Internal("union node bounds miss a part");
      }
    }
    return Status::OK();
  }

 private:
  std::vector<std::shared_ptr<const Node>> parts_;
  std::vector<Box> part_bounds_;
  Box bounds_;
};

class DifferenceNode final : public Node {
 public:
  DifferenceNode(std::shared_ptr<const Node> a,
                 std::shared_ptr<const Node> b)
      : a_(std::move(a)), b_(std::move(b)) {}

  bool Contains(Point p) const override {
    return a_->Contains(p) && !b_->Contains(p);
  }
  Box Bounds() const override { return a_->Bounds(); }

  BoxClass Classify(const Box& box) const override {
    const BoxClass ca = a_->Classify(box);
    if (ca == BoxClass::kOutside) return BoxClass::kOutside;
    const BoxClass cb = b_->Classify(box);
    if (cb == BoxClass::kInside) return BoxClass::kOutside;
    if (ca == BoxClass::kInside && cb == BoxClass::kOutside) {
      return BoxClass::kInside;
    }
    return BoxClass::kBoundary;
  }

  size_t ApproxBytes() const override {
    return sizeof(*this) + a_->ApproxBytes() + b_->ApproxBytes();
  }

  Status CheckInvariants() const override {
    if (a_ == nullptr || b_ == nullptr) {
      return Status::Internal("difference node with null child");
    }
    INDOORFLOW_RETURN_IF_ERROR(a_->CheckInvariants());
    return b_->CheckInvariants();
  }

 private:
  std::shared_ptr<const Node> a_;
  std::shared_ptr<const Node> b_;
};

}  // namespace
}  // namespace region_internal

namespace {
using region_internal::Node;

const std::shared_ptr<const Node>& EmptySingleton() {
  static const auto* kEmpty = new std::shared_ptr<const Node>(
      std::make_shared<region_internal::EmptyNode>());
  return *kEmpty;
}
}  // namespace

Region::Region() : node_(EmptySingleton()) {}

Region::Region(std::shared_ptr<const Node> node) : node_(std::move(node)) {}

Region Region::Make(const Circle& c) {
  if (c.radius <= 0.0) return Region();
  return Region(std::make_shared<region_internal::CircleNode>(c));
}

Region Region::Make(const Ring& r) {
  if (r.outer_radius <= 0.0 || r.outer_radius < r.inner_radius) {
    return Region();
  }
  return Region(std::make_shared<region_internal::RingNode>(r));
}

Region Region::Make(const ExtendedEllipse& e) {
  if (e.Bounds().Empty()) return Region();
  return Region(std::make_shared<region_internal::ThetaNode>(e));
}

Region Region::Make(const Polygon& p) {
  if (p.IsAxisAlignedRectangle()) {
    return Region(
        std::make_shared<region_internal::BoxNode>(p.Bounds()));
  }
  return Region(std::make_shared<region_internal::PolygonNode>(p));
}

Region Region::Make(const Box& b) {
  if (b.Empty()) return Region();
  return Region(std::make_shared<region_internal::BoxNode>(b));
}

Region Region::FromNode(std::shared_ptr<const region_internal::Node> node) {
  INDOORFLOW_CHECK(node != nullptr);
  return Region(std::move(node));
}

Region Region::Intersect(Region a, Region b) {
  if (a.IsEmpty() || b.IsEmpty()) return Region();
  return Region(std::make_shared<region_internal::IntersectionNode>(
      std::move(a.node_), std::move(b.node_)));
}

Region Region::Union(Region a, Region b) {
  if (a.IsEmpty()) return b;
  if (b.IsEmpty()) return a;
  std::vector<std::shared_ptr<const Node>> parts;
  parts.push_back(std::move(a.node_));
  parts.push_back(std::move(b.node_));
  return Region(
      std::make_shared<region_internal::UnionNode>(std::move(parts)));
}

Region Region::Union(std::vector<Region> parts) {
  std::vector<std::shared_ptr<const Node>> nodes;
  nodes.reserve(parts.size());
  for (Region& r : parts) {
    if (!r.IsEmpty()) nodes.push_back(std::move(r.node_));
  }
  if (nodes.empty()) return Region();
  if (nodes.size() == 1) return Region(std::move(nodes[0]));
  return Region(
      std::make_shared<region_internal::UnionNode>(std::move(nodes)));
}

Region Region::Subtract(Region a, Region b) {
  if (a.IsEmpty()) return Region();
  if (b.IsEmpty()) return a;
  return Region(std::make_shared<region_internal::DifferenceNode>(
      std::move(a.node_), std::move(b.node_)));
}

bool Region::IsEmpty() const { return node_->Bounds().Empty(); }

bool Region::Contains(Point p) const { return node_->Contains(p); }

Box Region::Bounds() const { return node_->Bounds(); }

BoxClass Region::Classify(const Box& box) const {
  return node_->Classify(box);
}

size_t Region::ApproxBytes() const { return node_->ApproxBytes(); }

const Circle* Region::AsCircle() const { return node_->AsCircle(); }
const Ring* Region::AsRing() const { return node_->AsRing(); }
const Box* Region::AsBox() const { return node_->AsBox(); }

Status Region::CheckInvariants() const {
  if (node_ == nullptr) return Status::Internal("region with null node");
  return node_->CheckInvariants();
}

}  // namespace indoorflow
