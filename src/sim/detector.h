// Proximity-detection simulation: turning trajectories into tracking data.
//
// Two equivalent paths are provided:
//   * DetectReadings — tick-based: sample the trajectory at the positioning
//     frequency and emit a RawReading per (tick, covering device), exactly
//     like a real deployment; feed the result to MergeReadings.
//   * DetectRecords — continuous: intersect each linear trajectory leg with
//     the detection circles analytically and emit merged TrackingRecords
//     directly (optionally quantized to the sampling grid). Orders of
//     magnitude faster for large datasets; tests assert parity between the
//     two paths.

#ifndef INDOORFLOW_SIM_DETECTOR_H_
#define INDOORFLOW_SIM_DETECTOR_H_

#include <vector>

#include "src/sim/waypoint.h"
#include "src/tracking/deployment.h"
#include "src/tracking/merger.h"

namespace indoorflow {

struct DetectionOptions {
  /// Positioning sampling period (s).
  double sampling_period = 1.0;
  /// DetectRecords only: snap detection intervals onto the sampling grid so
  /// that continuous detection matches what tick-based sampling would see
  /// (an object crossing a range between two ticks is *not* detected).
  bool quantize = true;
};

class ProximityDetector {
 public:
  /// `deployment` must be indexed (BuildIndex) and outlive the detector.
  explicit ProximityDetector(const Deployment& deployment)
      : deployment_(deployment) {}

  /// Tick-based raw readings for `traj`, appended to `out`.
  void DetectReadings(const Trajectory& traj, const DetectionOptions& options,
                      std::vector<RawReading>* out) const;

  /// Continuous detection records for `traj`, appended to `out`.
  void DetectRecords(const Trajectory& traj, const DetectionOptions& options,
                     std::vector<TrackingRecord>* out) const;

 private:
  const Deployment& deployment_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_SIM_DETECTOR_H_
