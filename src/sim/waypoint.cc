#include "src/sim/waypoint.h"

#include <algorithm>
#include <limits>

namespace indoorflow {

Point Trajectory::At(Timestamp t) const {
  INDOORFLOW_CHECK(!points.empty());
  if (t <= points.front().t) return points.front().position;
  if (t >= points.back().t) return points.back().position;
  // Binary search for the segment containing t.
  const auto it = std::upper_bound(
      points.begin(), points.end(), t,
      [](Timestamp value, const TrajectoryPoint& p) { return value < p.t; });
  const TrajectoryPoint& b = *it;
  const TrajectoryPoint& a = *(it - 1);
  if (b.t <= a.t) return a.position;
  const double f = (t - a.t) / (b.t - a.t);
  return a.position + (b.position - a.position) * f;
}

Point RandomWaypointModel::SamplePointIn(PartitionId part, Rng& rng) const {
  const Polygon& shape = built_.plan.partition(part).shape;
  const Box b = shape.Bounds();
  // Rejection sampling; partitions are convex and reasonably box-filling,
  // so this terminates in a couple of iterations.
  for (int attempt = 0; attempt < 1000; ++attempt) {
    const Point p{rng.Uniform(b.min_x, b.max_x),
                  rng.Uniform(b.min_y, b.max_y)};
    if (shape.Contains(p)) return p;
  }
  return shape.Centroid();
}

PartitionId RandomWaypointModel::SampleDestinationPartition(
    const WaypointOptions& options, Rng& rng) const {
  const bool pick_room =
      !built_.room_ids.empty() &&
      (built_.hallway_ids.empty() || rng.Bernoulli(options.room_bias));
  const std::vector<PartitionId>& pool =
      pick_room ? built_.room_ids : built_.hallway_ids;
  return pool[rng.UniformInt(static_cast<uint64_t>(pool.size()))];
}

void RandomWaypointModel::AppendRoute(
    Point from, Point to, double speed, Timestamp* t,
    std::vector<TrajectoryPoint>* out) const {
  const FloorPlan& plan = built_.plan;
  std::vector<Point> stops;

  const std::vector<PartitionId> parts_from = plan.PartitionsAt(from);
  const std::vector<PartitionId> parts_to = plan.PartitionsAt(to);
  INDOORFLOW_CHECK(!parts_from.empty() && !parts_to.empty());

  bool same_partition = false;
  for (PartitionId a : parts_from) {
    for (PartitionId b : parts_to) {
      same_partition |= (a == b);
    }
  }
  if (!same_partition) {
    // Pick the cheapest exit/entry door pair, then the door path between.
    double best = std::numeric_limits<double>::infinity();
    DoorId best_exit = -1;
    DoorId best_entry = -1;
    for (PartitionId a : parts_from) {
      for (DoorId da : plan.DoorsOf(a)) {
        const double leg = Distance(from, plan.door(da).position);
        for (PartitionId b : parts_to) {
          for (DoorId db : plan.DoorsOf(b)) {
            const double through = graph_.Between(da, db);
            if (through == std::numeric_limits<double>::infinity()) continue;
            const double total =
                leg + through + Distance(plan.door(db).position, to);
            if (total < best) {
              best = total;
              best_exit = da;
              best_entry = db;
            }
          }
        }
      }
    }
    INDOORFLOW_CHECK(best_exit >= 0);
    for (DoorId d : graph_.PathBetween(best_exit, best_entry)) {
      stops.push_back(plan.door(d).position);
    }
  }
  stops.push_back(to);

  Point cur = from;
  for (Point next : stops) {
    const double len = Distance(cur, next);
    if (len > kGeomEpsilon) {
      *t += len / speed;
      out->push_back({*t, next});
    }
    cur = next;
  }
}

Trajectory RandomWaypointModel::Generate(ObjectId object,
                                         const WaypointOptions& options,
                                         Rng& rng) const {
  INDOORFLOW_CHECK(options.speed > 0.0);
  Trajectory traj;
  traj.object = object;

  Timestamp t = options.start;
  const Timestamp end = options.start + options.duration;
  Point position = SamplePointIn(SampleDestinationPartition(options, rng),
                                 rng);
  traj.points.push_back({t, position});

  while (t < end) {
    const PartitionId dest_part = SampleDestinationPartition(options, rng);
    const Point dest = SamplePointIn(dest_part, rng);
    AppendRoute(position, dest, options.speed, &t, &traj.points);
    position = dest;
    const double pause = rng.Uniform(options.min_pause, options.max_pause);
    if (pause > 0.0) {
      t += pause;
      traj.points.push_back({t, position});
    }
  }
  // Trim the overshoot past `end` so all trajectories share the window.
  if (traj.points.back().t > end) {
    const Point at_end = traj.At(end);
    while (traj.points.size() > 1 && traj.points.back().t > end) {
      traj.points.pop_back();
    }
    if (traj.points.back().t > end) {
      traj.points.back() = {end, at_end};
    } else {
      traj.points.push_back({end, at_end});
    }
  }
  return traj;
}

}  // namespace indoorflow
