// Indoor random waypoint movement model (paper Section 5.1: "We generate
// object movements using the random waypoint model. All objects move with a
// fixed speed ... which is also used as the maximum speed Vmax.").
//
// Destinations are sampled uniformly inside random partitions; the object
// walks there along the door graph (straight legs within convex partitions,
// door-to-door legs between them), optionally pauses, and repeats.

#ifndef INDOORFLOW_SIM_WAYPOINT_H_
#define INDOORFLOW_SIM_WAYPOINT_H_

#include <vector>

#include "src/common/random.h"
#include "src/indoor/door_graph.h"
#include "src/indoor/plan_builders.h"
#include "src/tracking/reading.h"

namespace indoorflow {

/// A trajectory vertex: the object is at `position` at time `t`.
struct TrajectoryPoint {
  Timestamp t = 0.0;
  Point position;
};

/// A piecewise-linear indoor trajectory (times nondecreasing; equal
/// consecutive times encode a pause).
struct Trajectory {
  ObjectId object = -1;
  std::vector<TrajectoryPoint> points;

  Timestamp start_time() const { return points.front().t; }
  Timestamp end_time() const { return points.back().t; }

  /// Position at time `t` by linear interpolation (clamped to endpoints).
  Point At(Timestamp t) const;
};

struct WaypointOptions {
  double speed = 1.1;  // m/s; equals Vmax in the experiments
  Timestamp start = 0.0;
  Timestamp duration = 3600.0;
  /// Pause at each destination ~ Uniform[min_pause, max_pause].
  double min_pause = 0.0;
  double max_pause = 60.0;
  /// Probability that the next destination is a room (vs a hallway).
  double room_bias = 0.8;
};

class RandomWaypointModel {
 public:
  /// Keeps references; `built` and `graph` must outlive the model.
  RandomWaypointModel(const BuiltPlan& built, const DoorGraph& graph)
      : built_(built), graph_(graph) {}

  Trajectory Generate(ObjectId object, const WaypointOptions& options,
                      Rng& rng) const;

 private:
  Point SamplePointIn(PartitionId part, Rng& rng) const;
  PartitionId SampleDestinationPartition(const WaypointOptions& options,
                                         Rng& rng) const;
  /// Appends the walking legs from `from` to `to` (through doors as
  /// needed) to `out`, advancing `*t` with leg travel times.
  void AppendRoute(Point from, Point to, double speed, Timestamp* t,
                   std::vector<TrajectoryPoint>* out) const;

  const BuiltPlan& built_;
  const DoorGraph& graph_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_SIM_WAYPOINT_H_
