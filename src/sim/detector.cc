#include "src/sim/detector.h"

#include <algorithm>
#include <cmath>

namespace indoorflow {

namespace {

struct DetectionInterval {
  DeviceId device = -1;
  Timestamp ta = 0.0;
  Timestamp tb = 0.0;
};

// Intersection of the moving point a + s*(b-a), s in [0,1], with `circle`,
// as an s-range. Returns false when there is no intersection.
bool SegmentCircleOverlap(Point a, Point b, const Circle& circle,
                          double* s_lo, double* s_hi) {
  const Point d = b - a;
  const Point f = a - circle.center;
  const double qa = Dot(d, d);
  const double qc = Dot(f, f) - circle.radius * circle.radius;
  if (qa < kGeomEpsilon * kGeomEpsilon) {
    // Stationary leg: in or out for its whole duration.
    if (qc > 0.0) return false;
    *s_lo = 0.0;
    *s_hi = 1.0;
    return true;
  }
  const double qb = 2.0 * Dot(f, d);
  const double disc = qb * qb - 4.0 * qa * qc;
  if (disc < 0.0) return false;
  const double sqrt_disc = std::sqrt(disc);
  double lo = (-qb - sqrt_disc) / (2.0 * qa);
  double hi = (-qb + sqrt_disc) / (2.0 * qa);
  lo = std::max(lo, 0.0);
  hi = std::min(hi, 1.0);
  if (lo > hi) return false;
  *s_lo = lo;
  *s_hi = hi;
  return true;
}

}  // namespace

void ProximityDetector::DetectReadings(const Trajectory& traj,
                                       const DetectionOptions& options,
                                       std::vector<RawReading>* out) const {
  INDOORFLOW_CHECK(options.sampling_period > 0.0);
  const double period = options.sampling_period;
  std::vector<DeviceId> near;
  const Timestamp first_tick =
      std::ceil(traj.start_time() / period - 1e-9) * period;
  for (Timestamp t = first_tick; t <= traj.end_time() + 1e-9; t += period) {
    const Point pos = traj.At(t);
    deployment_.DevicesNear(pos, 0.0, &near);
    for (DeviceId id : near) {
      if (deployment_.device(id).range.Contains(pos)) {
        out->push_back(RawReading{traj.object, id, t});
      }
    }
  }
}

void ProximityDetector::DetectRecords(const Trajectory& traj,
                                      const DetectionOptions& options,
                                      std::vector<TrackingRecord>* out) const {
  INDOORFLOW_CHECK(options.sampling_period > 0.0);
  std::vector<DetectionInterval> intervals;
  std::vector<DeviceId> near;

  for (size_t i = 0; i + 1 < traj.points.size(); ++i) {
    const TrajectoryPoint& a = traj.points[i];
    const TrajectoryPoint& b = traj.points[i + 1];
    if (b.t <= a.t) continue;
    const Point mid = (a.position + b.position) * 0.5;
    const double half_len = Distance(a.position, b.position) * 0.5;
    deployment_.DevicesNear(mid, half_len, &near);
    for (DeviceId id : near) {
      double s_lo = 0.0;
      double s_hi = 0.0;
      if (!SegmentCircleOverlap(a.position, b.position,
                                deployment_.device(id).range, &s_lo,
                                &s_hi)) {
        continue;
      }
      intervals.push_back(DetectionInterval{
          id, a.t + s_lo * (b.t - a.t), a.t + s_hi * (b.t - a.t)});
    }
  }

  std::sort(intervals.begin(), intervals.end(),
            [](const DetectionInterval& x, const DetectionInterval& y) {
              if (x.device != y.device) return x.device < y.device;
              return x.ta < y.ta;
            });

  // Merge continuous intervals of the same device: legs that abut at a
  // trajectory vertex produce back-to-back intervals.
  std::vector<DetectionInterval> merged;
  for (const DetectionInterval& iv : intervals) {
    if (!merged.empty() && merged.back().device == iv.device &&
        iv.ta <= merged.back().tb + 1e-9) {
      merged.back().tb = std::max(merged.back().tb, iv.tb);
    } else {
      merged.push_back(iv);
    }
  }

  const double period = options.sampling_period;
  const double merge_gap = 1.5 * period;  // matches MergerOptions default
  std::vector<TrackingRecord> records;
  for (const DetectionInterval& iv : merged) {
    Timestamp ts = iv.ta;
    Timestamp te = iv.tb;
    if (options.quantize) {
      ts = std::ceil(iv.ta / period - 1e-9) * period;
      te = std::floor(iv.tb / period + 1e-9) * period;
      if (te < ts) continue;  // crossed the range between two ticks
    }
    if (!records.empty() && records.back().device_id == iv.device &&
        ts - records.back().te <= merge_gap && ts >= records.back().te) {
      records.back().te = te;
    } else {
      records.push_back(TrackingRecord{traj.object, iv.device, ts, te});
    }
  }
  // The per-device merge pass above produced device-major order; tracking
  // records are conventionally chronological (ranges are disjoint, so start
  // order is total).
  std::sort(records.begin(), records.end(),
            [](const TrackingRecord& a, const TrackingRecord& b) {
              return a.ts < b.ts;
            });
  out->insert(out->end(), records.begin(), records.end());
}

}  // namespace indoorflow
