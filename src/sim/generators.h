// End-to-end dataset generators for the paper's two experimental settings.
//
// Office dataset  — paper Section 5.1 "Synthetic data set": an office floor
// plan whose rooms all connect to hallways, RFID readers by doors and along
// the hallways, random-waypoint movement at a fixed speed (= Vmax).
//
// CPH-like dataset — substitute for the proprietary Copenhagen Airport
// Bluetooth data (paper Section 5.1 "Real-world data set"): a long
// concourse, sparse Bluetooth radios, passengers arriving in waves with
// heavy gate dwell times. See DESIGN.md §4 for the substitution rationale.

#ifndef INDOORFLOW_SIM_GENERATORS_H_
#define INDOORFLOW_SIM_GENERATORS_H_

#include <memory>

#include "src/indoor/plan_builders.h"
#include "src/sim/detector.h"
#include "src/sim/waypoint.h"
#include "src/tracking/deployment.h"
#include "src/tracking/ott.h"

namespace indoorflow {

/// Everything a query engine needs: space, devices, data, POIs, Vmax.
struct Dataset {
  BuiltPlan built;
  std::unique_ptr<DoorGraph> door_graph;
  Deployment deployment;
  ObjectTrackingTable ott;
  PoiSet pois;
  double vmax = 1.1;
  double sampling_period = 1.0;
  Timestamp window_start = 0.0;
  Timestamp window_end = 0.0;
};

struct OfficeDatasetConfig {
  OfficePlanConfig plan;
  int num_objects = 1000;        // |O|
  double detection_range = 1.5;  // m (paper Table 4: 1 .. 2.5)
  double duration = 3600.0;      // observation period (s)
  double speed = 1.1;            // m/s, = Vmax
  double hallway_device_spacing = 15.0;
  /// Also place a reader at each room's centroid (e.g. per-shop beacons in
  /// a mall). Keeps dwelling objects detected, so uncertainty regions stay
  /// tight during long pauses.
  bool devices_in_rooms = false;
  double sampling_period = 1.0;
  int num_pois = 75;  // paper: "75 POIs are determined in the indoor space"
  /// Dwell time at each waypoint ~ Uniform[min_pause, max_pause]. Office
  /// occupants spend most time in rooms, not walking; the defaults keep
  /// uncertainty regions localized like real office tracking data.
  double min_pause = 30.0;
  double max_pause = 600.0;
  uint64_t seed = 42;
};

Dataset GenerateOfficeDataset(const OfficeDatasetConfig& config = {});

struct CphDatasetConfig {
  AirportPlanConfig plan;
  int num_passengers = 2000;
  double detection_range = 5.0;  // Bluetooth radios cover more than RFID
  /// Dense deployment with overlapping coverage (real Bluetooth
  /// installations overlap; see the paper's Section 3 Remark). The
  /// resulting OTT has has_overlaps() == true.
  bool overlapping_radios = false;
  double window = 4.0 * 3600.0;  // arrival/observation window (s)
  double min_stay = 1200.0;      // per-passenger active time
  double max_stay = 3600.0;
  double speed = 1.1;
  double sampling_period = 1.0;
  int num_pois = 75;
  uint64_t seed = 7;
};

Dataset GenerateCphLikeDataset(const CphDatasetConfig& config = {});

struct MallDatasetConfig {
  MallPlanConfig plan;
  int num_shoppers = 500;
  double detection_range = 1.5;
  /// Beacon at each shop/anchor/food-court centroid — the standard retail
  /// analytics deployment; keeps browsing shoppers detected.
  bool beacons_in_shops = true;
  double corridor_device_spacing = 15.0;
  double window = 4.0 * 3600.0;  // opening hours covered (s)
  double min_stay = 900.0;       // per-shopper time in the mall
  double max_stay = 5400.0;
  double speed = 1.1;
  double sampling_period = 1.0;
  int num_pois = 75;
  uint64_t seed = 2016;
};

/// Shopping-mall dataset (an indoorflow extension scenario): the cyclic
/// corridor loop of BuildMallPlan, door readers plus optional per-shop
/// beacons, and shoppers arriving throughout the window with heavy
/// in-shop dwell.
Dataset GenerateMallDataset(const MallDatasetConfig& config = {});

}  // namespace indoorflow

#endif  // INDOORFLOW_SIM_GENERATORS_H_
