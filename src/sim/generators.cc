#include "src/sim/generators.h"

#include <algorithm>
#include <cmath>
#include <functional>
#include <utility>
#include <vector>

namespace indoorflow {

namespace {

// Adds a device unless it would overlap an existing range (the paper's
// simplifying assumption is disjoint detection ranges). Returns success.
bool TryAddDevice(Deployment& deployment, Point center, double radius) {
  for (const Device& d : deployment.devices()) {
    if (Distance(d.range.center, center) <=
        d.range.radius + radius + 0.1) {
      return false;
    }
  }
  deployment.AddDevice(Circle{center, radius});
  return true;
}

// Devices along the centerline of a rectangular hallway partition.
void PlaceHallwayDevices(Deployment& deployment, const Polygon& hallway,
                         double spacing, double radius) {
  const Box b = hallway.Bounds();
  const bool horizontal = b.Width() >= b.Height();
  const double length = horizontal ? b.Width() : b.Height();
  const Point mid = b.Center();
  for (double offset = spacing * 0.5; offset < length; offset += spacing) {
    const Point center = horizontal
                             ? Point{b.min_x + offset, mid.y}
                             : Point{mid.x, b.min_y + offset};
    TryAddDevice(deployment, center, radius);
  }
}

// Runs the movement + detection pipeline and produces the finalized OTT.
ObjectTrackingTable SimulateObjects(
    const BuiltPlan& built, const DoorGraph& graph,
    const Deployment& deployment, int num_objects,
    const DetectionOptions& detection, uint64_t seed,
    const std::function<WaypointOptions(int, Rng&)>& options_for,
    bool allow_overlap = false) {
  RandomWaypointModel model(built, graph);
  ProximityDetector detector(deployment);
  ObjectTrackingTable table;
  std::vector<TrackingRecord> records;
  for (int i = 0; i < num_objects; ++i) {
    // Per-object streams keep objects independent of each other and of
    // num_objects (object k's trajectory is identical in a 1K and a 50K
    // dataset with the same seed).
    Rng rng(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(i));
    const WaypointOptions options = options_for(i, rng);
    const Trajectory traj =
        model.Generate(static_cast<ObjectId>(i), options, rng);
    records.clear();
    detector.DetectRecords(traj, detection, &records);
    for (const TrackingRecord& r : records) table.Append(r);
  }
  const Status status = table.Finalize(allow_overlap);
  INDOORFLOW_CHECK(status.ok());
  return table;
}

}  // namespace

Dataset GenerateOfficeDataset(const OfficeDatasetConfig& config) {
  INDOORFLOW_CHECK(config.num_objects >= 0);
  Dataset ds;
  ds.built = BuildOfficePlan(config.plan);
  ds.door_graph = std::make_unique<DoorGraph>(ds.built.plan);
  ds.vmax = config.speed;
  ds.sampling_period = config.sampling_period;
  ds.window_start = 0.0;
  ds.window_end = config.duration;

  // "We place a total of ~100 RFID readers by doors and along the
  // hallways" (paper Section 5.1).
  for (const Door& door : ds.built.plan.doors()) {
    TryAddDevice(ds.deployment, door.position, config.detection_range);
  }
  for (PartitionId hall : ds.built.hallway_ids) {
    PlaceHallwayDevices(ds.deployment, ds.built.plan.partition(hall).shape,
                        config.hallway_device_spacing,
                        config.detection_range);
  }
  if (config.devices_in_rooms) {
    for (PartitionId room : ds.built.room_ids) {
      TryAddDevice(ds.deployment,
                   ds.built.plan.partition(room).shape.Centroid(),
                   config.detection_range);
    }
  }
  ds.deployment.BuildIndex();
  INDOORFLOW_CHECK(ds.deployment.RangesDisjoint());

  Rng poi_rng(config.seed ^ 0xabcdef12345ULL);
  ds.pois = GeneratePois(ds.built, config.num_pois, poi_rng);

  const DetectionOptions detection{config.sampling_period, true};
  ds.ott = SimulateObjects(
      ds.built, *ds.door_graph, ds.deployment, config.num_objects, detection,
      config.seed, [&](int, Rng&) {
        WaypointOptions options;
        options.speed = config.speed;
        options.start = 0.0;
        options.duration = config.duration;
        options.min_pause = config.min_pause;
        options.max_pause = config.max_pause;
        options.room_bias = 0.7;
        return options;
      });
  return ds;
}

Dataset GenerateCphLikeDataset(const CphDatasetConfig& config) {
  INDOORFLOW_CHECK(config.num_passengers >= 0);
  Dataset ds;
  ds.built = BuildAirportPlan(config.plan);
  ds.door_graph = std::make_unique<DoorGraph>(ds.built.plan);
  ds.vmax = config.speed;
  ds.sampling_period = config.sampling_period;
  ds.window_start = 0.0;
  ds.window_end = config.window;

  // Sparse Bluetooth deployment: radios at concourse joints and at every
  // other gate/shop door — real deployments cover far less than the full
  // space (the source of tracking uncertainty). In overlapping mode every
  // door gets a radio regardless of range conflicts (real installations
  // overlap; the engine handles it, see the paper's Section 3 Remark).
  int door_index = 0;
  for (const Door& door : ds.built.plan.doors()) {
    const bool joint =
        ds.built.plan.partition(door.partition_a).name.starts_with(
            "concourse") &&
        ds.built.plan.partition(door.partition_b).name.starts_with(
            "concourse");
    if (config.overlapping_radios) {
      ds.deployment.AddDevice(
          Circle{door.position, config.detection_range});
    } else if (joint || (door_index % 2 == 0)) {
      TryAddDevice(ds.deployment, door.position, config.detection_range);
    }
    ++door_index;
  }
  if (config.overlapping_radios) {
    // Dense centerline radios along the concourse, spaced well under one
    // diameter so neighboring coverages overlap.
    const double spacing = config.detection_range * 1.6;
    for (PartitionId hall : ds.built.hallway_ids) {
      const Box b = ds.built.plan.partition(hall).shape.Bounds();
      const double mid_y = b.Center().y;
      for (double x = b.min_x + spacing * 0.5; x < b.max_x; x += spacing) {
        ds.deployment.AddDevice(
            Circle{{x, mid_y}, config.detection_range});
      }
    }
  }
  ds.deployment.BuildIndex();
  if (!config.overlapping_radios) {
    INDOORFLOW_CHECK(ds.deployment.RangesDisjoint());
  }

  Rng poi_rng(config.seed ^ 0x5deece66dULL);
  ds.pois = GeneratePois(ds.built, config.num_pois, poi_rng);

  const DetectionOptions detection{config.sampling_period, true};
  const int waves = std::max(1, static_cast<int>(config.window / 3600.0));
  ds.ott = SimulateObjects(
      ds.built, *ds.door_graph, ds.deployment, config.num_passengers,
      detection, config.seed, [&](int, Rng& rng) {
        WaypointOptions options;
        options.speed = config.speed;
        // Passengers arrive in hourly waves (flight banks) and stay for a
        // bounded time.
        const double wave_start =
            static_cast<double>(rng.UniformInt(
                static_cast<uint64_t>(waves))) *
            config.window / waves;
        const double stay =
            rng.Uniform(config.min_stay, config.max_stay);
        options.start = std::min(
            wave_start + rng.Exponential(config.window / (4.0 * waves)),
            std::max(0.0, config.window - stay));
        options.duration = stay;
        // Long dwell at gates/shops dominates airport behavior.
        options.min_pause = 60.0;
        options.max_pause = 600.0;
        options.room_bias = 0.85;
        return options;
      },
      config.overlapping_radios);
  return ds;
}

Dataset GenerateMallDataset(const MallDatasetConfig& config) {
  INDOORFLOW_CHECK(config.num_shoppers >= 0);
  Dataset ds;
  ds.built = BuildMallPlan(config.plan);
  ds.door_graph = std::make_unique<DoorGraph>(ds.built.plan);
  ds.vmax = config.speed;
  ds.sampling_period = config.sampling_period;
  ds.window_start = 0.0;
  ds.window_end = config.window;

  for (const Door& door : ds.built.plan.doors()) {
    TryAddDevice(ds.deployment, door.position, config.detection_range);
  }
  for (PartitionId corridor : ds.built.hallway_ids) {
    PlaceHallwayDevices(ds.deployment,
                        ds.built.plan.partition(corridor).shape,
                        config.corridor_device_spacing,
                        config.detection_range);
  }
  if (config.beacons_in_shops) {
    for (PartitionId room : ds.built.room_ids) {
      TryAddDevice(ds.deployment,
                   ds.built.plan.partition(room).shape.Centroid(),
                   config.detection_range);
    }
  }
  ds.deployment.BuildIndex();
  INDOORFLOW_CHECK(ds.deployment.RangesDisjoint());

  Rng poi_rng(config.seed ^ 0x3c6ef372fe94f82aULL);
  ds.pois = GeneratePois(ds.built, config.num_pois, poi_rng);

  const DetectionOptions detection{config.sampling_period, true};
  ds.ott = SimulateObjects(
      ds.built, *ds.door_graph, ds.deployment, config.num_shoppers,
      detection, config.seed, [&](int, Rng& rng) {
        WaypointOptions options;
        options.speed = config.speed;
        // Shoppers trickle in all day and browse shop after shop; stays
        // are clipped to the observation window.
        const double stay = rng.Uniform(config.min_stay, config.max_stay);
        options.start =
            rng.Uniform(0.0, std::max(0.0, config.window - config.min_stay));
        options.duration = std::min(stay, config.window - options.start);
        options.min_pause = 60.0;
        options.max_pause = 480.0;
        options.room_bias = 0.8;
        return options;
      });
  return ds;
}

}  // namespace indoorflow
