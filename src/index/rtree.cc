#include "src/index/rtree.h"

#include <algorithm>
#include <cmath>

namespace indoorflow {

RTree RTree::BulkLoad(std::vector<Item> items, int fanout) {
  INDOORFLOW_CHECK(fanout >= 2);
  RTree tree;
  tree.items_ = std::move(items);
  if (tree.items_.empty()) return tree;

  // STR: sort by x-center, slice into vertical strips of ~sqrt(n/fanout)
  // leaves each, sort each strip by y-center.
  const size_t n = tree.items_.size();
  std::sort(tree.items_.begin(), tree.items_.end(),
            [](const Item& a, const Item& b) {
              return a.box.Center().x < b.box.Center().x;
            });
  const size_t num_leaves =
      (n + static_cast<size_t>(fanout) - 1) / static_cast<size_t>(fanout);
  const size_t strips = static_cast<size_t>(
      std::ceil(std::sqrt(static_cast<double>(num_leaves))));
  const size_t strip_size =
      (n + strips - 1) / strips;  // items per vertical strip
  for (size_t s = 0; s < n; s += strip_size) {
    const size_t end = std::min(n, s + strip_size);
    std::sort(tree.items_.begin() + static_cast<ptrdiff_t>(s),
              tree.items_.begin() + static_cast<ptrdiff_t>(end),
              [](const Item& a, const Item& b) {
                return a.box.Center().y < b.box.Center().y;
              });
  }

  // Leaves over the permuted items.
  std::vector<NodeId> level;
  for (size_t i = 0; i < n; i += static_cast<size_t>(fanout)) {
    Node node;
    node.leaf = true;
    node.first = static_cast<int32_t>(i);
    node.count =
        static_cast<int32_t>(std::min<size_t>(fanout, n - i));
    node.total = node.count;
    node.min_value = tree.items_[i].value;
    for (int32_t j = 0; j < node.count; ++j) {
      const Item& item = tree.items_[i + static_cast<size_t>(j)];
      node.box.ExpandToInclude(item.box);
      node.min_value = std::min(node.min_value, item.value);
    }
    level.push_back(static_cast<NodeId>(tree.nodes_.size()));
    tree.nodes_.push_back(node);
  }
  // Upper levels group contiguous nodes (children of one parent are
  // contiguous in nodes_).
  while (level.size() > 1) {
    std::vector<NodeId> next;
    for (size_t i = 0; i < level.size(); i += static_cast<size_t>(fanout)) {
      Node node;
      node.leaf = false;
      node.first = level[i];
      node.count = static_cast<int32_t>(
          std::min<size_t>(fanout, level.size() - i));
      node.min_value =
          tree.nodes_[static_cast<size_t>(node.first)].min_value;
      for (int32_t j = 0; j < node.count; ++j) {
        const Node& child =
            tree.nodes_[static_cast<size_t>(node.first + j)];
        node.box.ExpandToInclude(child.box);
        node.total += child.total;
        node.min_value = std::min(node.min_value, child.min_value);
      }
      next.push_back(static_cast<NodeId>(tree.nodes_.size()));
      tree.nodes_.push_back(node);
    }
    level = std::move(next);
  }
  tree.root_ = level.front();
  return tree;
}

void RTree::IntersectionQuery(const Box& query,
                              std::vector<int32_t>* out) const {
  out->clear();
  if (root_ < 0) return;
  std::vector<NodeId> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (!node.box.Intersects(query)) continue;
    if (node.leaf) {
      for (int32_t j = 0; j < node.count; ++j) {
        const Item& item = items_[static_cast<size_t>(node.first + j)];
        if (item.box.Intersects(query)) out->push_back(item.id);
      }
    } else {
      for (int32_t j = 0; j < node.count; ++j) {
        stack.push_back(node.first + j);
      }
    }
  }
}

const Box& RTree::EntryBox(NodeId node, int slot) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.leaf) return items_[static_cast<size_t>(n.first + slot)].box;
  return nodes_[static_cast<size_t>(n.first + slot)].box;
}

int64_t RTree::EntryCount(NodeId node, int slot) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.leaf) return 1;
  return nodes_[static_cast<size_t>(n.first + slot)].total;
}

double RTree::EntryMinValue(NodeId node, int slot) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  if (n.leaf) return items_[static_cast<size_t>(n.first + slot)].value;
  return nodes_[static_cast<size_t>(n.first + slot)].min_value;
}

RTree::NodeId RTree::EntryChild(NodeId node, int slot) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  INDOORFLOW_CHECK(!n.leaf);
  return n.first + slot;
}

int32_t RTree::EntryItem(NodeId node, int slot) const {
  const Node& n = nodes_[static_cast<size_t>(node)];
  INDOORFLOW_CHECK(n.leaf);
  return items_[static_cast<size_t>(n.first + slot)].id;
}

}  // namespace indoorflow
