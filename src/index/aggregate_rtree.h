// The per-query aggregate object R-tree R_I (paper Section 4.2/4.3).
//
// Each item is one object relevant to the query, boxed by its uncertainty-
// region MBR. Node entries carry subtree object counts (via RTree). For
// interval queries, a leaf item may additionally carry a list of *sub-MBRs*,
// one per extended ellipse of the object's trajectory — the paper's
// improvement (Section 4.3.2) that replaces a single dead-space-dominated
// trajectory MBR by finer boxes during join-list admission (Figure 9).

#ifndef INDOORFLOW_INDEX_AGGREGATE_RTREE_H_
#define INDOORFLOW_INDEX_AGGREGATE_RTREE_H_

#include <utility>
#include <vector>

#include "src/index/rtree.h"
#include "src/tracking/reading.h"

namespace indoorflow {

class AggregateRTree {
 public:
  struct ObjectEntry {
    ObjectId object = -1;
    Box mbr;
    /// Optional finer boxes (empty = none; admission falls back to `mbr`).
    std::vector<Box> sub_mbrs;
  };

  static AggregateRTree Build(std::vector<ObjectEntry> objects,
                              int fanout = 8);

  const RTree& tree() const { return tree_; }
  size_t num_objects() const { return entries_.size(); }

  /// The object behind item id `slot` (item ids index `entries_`).
  const ObjectEntry& entry(int32_t slot) const {
    return entries_[static_cast<size_t>(slot)];
  }

  /// Admission test for joining a POI box against leaf item `slot`: true
  /// when `box` intersects the item's MBR and, if sub-MBRs exist, at least
  /// one sub-MBR.
  bool Admits(int32_t slot, const Box& box) const {
    const ObjectEntry& e = entry(slot);
    if (!e.mbr.Intersects(box)) return false;
    if (e.sub_mbrs.empty()) return true;
    for (const Box& sub : e.sub_mbrs) {
      if (sub.Intersects(box)) return true;
    }
    return false;
  }

 private:
  std::vector<ObjectEntry> entries_;
  RTree tree_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDEX_AGGREGATE_RTREE_H_
