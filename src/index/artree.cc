#include "src/index/artree.h"

#include <algorithm>

namespace indoorflow {

ARTree ARTree::Build(const ObjectTrackingTable& table, int fanout) {
  INDOORFLOW_CHECK(table.finalized());
  INDOORFLOW_CHECK(fanout >= 2);

  ARTree tree;
  tree.entries_.reserve(table.size());
  for (ObjectId object : table.objects()) {
    for (RecordIndex idx : table.ChainOf(object)) {
      const TrackingRecord& cur = table.record(idx);
      const RecordIndex pre = table.PrevOf(idx);
      ARTreeEntry entry;
      entry.pre = pre;
      entry.cur = idx;
      entry.t2 = cur.te;
      if (pre == kInvalidRecord) {
        entry.t1 = cur.ts;
        entry.closed_start = true;
      } else if (cur.ts < table.record(pre).te) {
        // Overlapping-range deployments: no inactive prefix exists; the
        // augmented interval is just the record's own span.
        entry.t1 = cur.ts;
        entry.closed_start = true;
      } else {
        entry.t1 = table.record(pre).te;
        entry.closed_start = false;
      }
      if (entry.t2 < entry.t1) continue;  // record nested inside its pre
      tree.entries_.push_back(entry);
    }
  }
  std::sort(tree.entries_.begin(), tree.entries_.end(),
            [](const ARTreeEntry& a, const ARTreeEntry& b) {
              return a.t1 < b.t1;
            });

  if (tree.entries_.empty()) return tree;

  // Packed bottom-up build.
  const int32_t n = static_cast<int32_t>(tree.entries_.size());
  std::vector<int32_t> level;  // node ids of the level being built
  for (int32_t i = 0; i < n; i += fanout) {
    Node node;
    node.leaf = true;
    node.first = i;
    node.count = std::min<int32_t>(fanout, n - i);
    node.t_min = tree.entries_[static_cast<size_t>(i)].t1;
    node.t_max = tree.entries_[static_cast<size_t>(i)].t2;
    for (int32_t j = 1; j < node.count; ++j) {
      const ARTreeEntry& e = tree.entries_[static_cast<size_t>(i + j)];
      node.t_min = std::min(node.t_min, e.t1);
      node.t_max = std::max(node.t_max, e.t2);
    }
    level.push_back(static_cast<int32_t>(tree.nodes_.size()));
    tree.nodes_.push_back(node);
  }
  while (level.size() > 1) {
    std::vector<int32_t> next;
    for (size_t i = 0; i < level.size(); i += static_cast<size_t>(fanout)) {
      Node node;
      node.leaf = false;
      node.first = level[i];
      node.count = static_cast<int32_t>(
          std::min<size_t>(fanout, level.size() - i));
      // Children of one internal node are contiguous in nodes_.
      node.t_min = tree.nodes_[static_cast<size_t>(node.first)].t_min;
      node.t_max = tree.nodes_[static_cast<size_t>(node.first)].t_max;
      for (int32_t j = 1; j < node.count; ++j) {
        const Node& child =
            tree.nodes_[static_cast<size_t>(node.first + j)];
        node.t_min = std::min(node.t_min, child.t_min);
        node.t_max = std::max(node.t_max, child.t_max);
      }
      next.push_back(static_cast<int32_t>(tree.nodes_.size()));
      tree.nodes_.push_back(node);
    }
    level = std::move(next);
  }
  tree.root_ = level.front();
  return tree;
}

void ARTree::PointQuery(Timestamp t, std::vector<ARTreeEntry>* out) const {
  out->clear();
  if (root_ < 0) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (t < node.t_min || t > node.t_max) continue;
    if (node.leaf) {
      for (int32_t j = 0; j < node.count; ++j) {
        const ARTreeEntry& e = entries_[static_cast<size_t>(node.first + j)];
        if (e.CoversTime(t)) out->push_back(e);
      }
    } else {
      for (int32_t j = 0; j < node.count; ++j) {
        stack.push_back(node.first + j);
      }
    }
  }
}

void ARTree::RangeQuery(Timestamp ts, Timestamp te,
                        std::vector<ARTreeEntry>* out) const {
  out->clear();
  if (root_ < 0 || te < ts) return;
  std::vector<int32_t> stack = {root_};
  while (!stack.empty()) {
    const Node& node = nodes_[static_cast<size_t>(stack.back())];
    stack.pop_back();
    if (te < node.t_min || ts > node.t_max) continue;
    if (node.leaf) {
      for (int32_t j = 0; j < node.count; ++j) {
        const ARTreeEntry& e = entries_[static_cast<size_t>(node.first + j)];
        if (e.OverlapsInterval(ts, te)) out->push_back(e);
      }
    } else {
      for (int32_t j = 0; j < node.count; ++j) {
        stack.push_back(node.first + j);
      }
    }
  }
}

}  // namespace indoorflow
