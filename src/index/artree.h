// AR-tree: the temporal index over the OTT (paper Section 4.1).
//
// Each pair of consecutive tracking records (rd_p, rd_c) of an object is
// indexed by a leaf entry (t1, t2, pre, cur) with t1 = rd_p.te and
// t2 = rd_c.te; the *augmented tracking time interval* (t1, t2] covers both
// the undetected gap and rd_c's own detection span. An object's first record
// produces an entry with pre = kInvalidRecord over the closed interval
// [rd.ts, rd.te].
//
// A point query at time t returns, per object, the entry whose augmented
// interval covers t — from which the object's tracking state at t (active /
// inactive, with rd_pre / rd_cov / rd_suc) follows directly. A range query
// returns all entries overlapping [ts, te], i.e. the record chains needed
// for interval uncertainty regions.
//
// The structure is a packed (bulk-loaded) R-tree over the time axis: the
// paper's 2-D AR-tree with only the temporal attributes populated.

#ifndef INDOORFLOW_INDEX_ARTREE_H_
#define INDOORFLOW_INDEX_ARTREE_H_

#include <vector>

#include "src/tracking/ott.h"

namespace indoorflow {

struct ARTreeEntry {
  Timestamp t1 = 0.0;
  Timestamp t2 = 0.0;
  /// Predecessor record (rd_p), kInvalidRecord for an object's first entry.
  RecordIndex pre = kInvalidRecord;
  /// Covering / successor record (rd_c).
  RecordIndex cur = kInvalidRecord;
  /// Whether the interval start is closed ([t1, t2] vs (t1, t2]).
  bool closed_start = false;

  bool CoversTime(Timestamp t) const {
    return (closed_start ? t >= t1 : t > t1) && t <= t2;
  }
  bool OverlapsInterval(Timestamp ts, Timestamp te) const {
    return (closed_start ? t1 <= te : t1 < te) && t2 >= ts;
  }
};

class ARTree {
 public:
  /// Builds the index over a finalized OTT.
  static ARTree Build(const ObjectTrackingTable& table, int fanout = 32);

  /// All entries whose augmented interval covers `t`.
  void PointQuery(Timestamp t, std::vector<ARTreeEntry>* out) const;

  /// All entries whose augmented interval overlaps [ts, te].
  void RangeQuery(Timestamp ts, Timestamp te,
                  std::vector<ARTreeEntry>* out) const;

  size_t num_entries() const { return entries_.size(); }

 private:
  struct Node {
    Timestamp t_min = 0.0;
    Timestamp t_max = 0.0;
    bool leaf = false;
    int32_t first = 0;  // into entries_ (leaf) or nodes_ (internal)
    int32_t count = 0;
  };

  std::vector<ARTreeEntry> entries_;  // sorted by t1
  std::vector<Node> nodes_;
  int32_t root_ = -1;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDEX_ARTREE_H_
