#include "src/index/aggregate_rtree.h"

namespace indoorflow {

AggregateRTree AggregateRTree::Build(std::vector<ObjectEntry> objects,
                                     int fanout) {
  AggregateRTree agg;
  agg.entries_ = std::move(objects);
  std::vector<RTree::Item> items;
  items.reserve(agg.entries_.size());
  for (size_t i = 0; i < agg.entries_.size(); ++i) {
    items.push_back(
        RTree::Item{static_cast<int32_t>(i), agg.entries_[i].mbr});
  }
  agg.tree_ = RTree::BulkLoad(std::move(items), fanout);
  return agg;
}

}  // namespace indoorflow
