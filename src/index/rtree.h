// Static 2-D R-tree with count-augmented entries.
//
// Serves two roles from the paper (Section 4):
//   * R_P — the R-tree over the query POIs;
//   * the structural core of R_I — the in-memory aggregate R-tree over
//     object MBRs, whose node entries carry `count`, "the number of all
//     objects in the corresponding sub-tree", used as flow upper bounds in
//     the join algorithms.
//
// Built by STR (sort-tile-recursive) bulk loading. Besides box search, the
// tree exposes node/entry navigation so the join algorithms can descend both
// trees level by level.

#ifndef INDOORFLOW_INDEX_RTREE_H_
#define INDOORFLOW_INDEX_RTREE_H_

#include <cstdint>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/box.h"

namespace indoorflow {

class RTree {
 public:
  using NodeId = int32_t;

  struct Item {
    int32_t id = -1;  // caller-defined (PoiId, object slot, ...)
    Box box;
    /// Optional per-item scalar aggregated as a subtree minimum (e.g. POI
    /// area, used by area-aware join bounds). Defaults keep it inert.
    double value = 0.0;
  };

  RTree() = default;

  static RTree BulkLoad(std::vector<Item> items, int fanout = 8);

  bool empty() const { return nodes_.empty(); }
  size_t num_items() const { return items_.size(); }
  const std::vector<Item>& items() const { return items_; }

  /// Ids of all items whose box intersects `query`.
  void IntersectionQuery(const Box& query, std::vector<int32_t>* out) const;

  // --- Navigation (join algorithms) -------------------------------------

  NodeId root() const { return root_; }
  bool IsLeaf(NodeId node) const {
    return nodes_[static_cast<size_t>(node)].leaf;
  }
  int NumEntries(NodeId node) const {
    return nodes_[static_cast<size_t>(node)].count;
  }
  /// MBR of entry `slot` of `node`.
  const Box& EntryBox(NodeId node, int slot) const;
  /// Number of items under entry `slot` of `node` (1 for leaf entries).
  int64_t EntryCount(NodeId node, int slot) const;
  /// Minimum Item::value under entry `slot` of `node` (the item's own value
  /// for leaf entries).
  double EntryMinValue(NodeId node, int slot) const;
  /// Child node of an internal entry.
  NodeId EntryChild(NodeId node, int slot) const;
  /// Item id of a leaf entry.
  int32_t EntryItem(NodeId node, int slot) const;

 private:
  struct Node {
    Box box;
    int64_t total = 0;      // items in subtree
    double min_value = 0.0;  // min Item::value in subtree
    bool leaf = false;
    int32_t first = 0;  // into items_ (leaf) or nodes_ (internal)
    int32_t count = 0;
  };

  std::vector<Item> items_;  // permuted by the STR order
  std::vector<Node> nodes_;
  NodeId root_ = -1;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDEX_RTREE_H_
