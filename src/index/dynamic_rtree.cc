#include "src/index/dynamic_rtree.h"

#include <algorithm>
#include <limits>
#include <utility>

namespace indoorflow {

namespace {

double Enlargement(const Box& box, const Box& add) {
  return Union(box, add).Area() - box.Area();
}

}  // namespace

DynamicRTree::DynamicRTree(int max_entries)
    : max_entries_(max_entries), min_entries_(std::max(1, max_entries / 2)) {
  INDOORFLOW_CHECK(max_entries_ >= 2);
  root_ = std::make_unique<Node>();
}

void DynamicRTree::Insert(int32_t id, const Box& box) {
  INDOORFLOW_CHECK(!box.Empty());
  Entry entry;
  entry.box = box;
  entry.id = id;
  MutexLock lock(mu_);
  std::unique_ptr<Node> sibling = InsertInto(root_.get(), std::move(entry));
  if (sibling != nullptr) {
    // Root split: grow the tree by one level.
    auto new_root = std::make_unique<Node>();
    new_root->leaf = false;
    Entry left;
    left.box = root_->ComputeBox();
    left.child = std::move(root_);
    Entry right;
    right.box = sibling->ComputeBox();
    right.child = std::move(sibling);
    new_root->entries.push_back(std::move(left));
    new_root->entries.push_back(std::move(right));
    root_ = std::move(new_root);
  }
  ++size_;
}

std::unique_ptr<DynamicRTree::Node> DynamicRTree::InsertInto(Node* node,
                                                             Entry entry) {
  if (node->leaf) {
    node->entries.push_back(std::move(entry));
  } else {
    // ChooseSubtree: least enlargement, ties by smaller area.
    Entry* best = nullptr;
    double best_enlargement = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (Entry& child : node->entries) {
      const double enlargement = Enlargement(child.box, entry.box);
      const double area = child.box.Area();
      if (enlargement < best_enlargement ||
          (enlargement == best_enlargement && area < best_area)) {
        best = &child;
        best_enlargement = enlargement;
        best_area = area;
      }
    }
    INDOORFLOW_CHECK(best != nullptr);
    best->box.ExpandToInclude(entry.box);
    std::unique_ptr<Node> split =
        InsertInto(best->child.get(), std::move(entry));
    best->box = best->child->ComputeBox();
    if (split != nullptr) {
      Entry sibling;
      sibling.box = split->ComputeBox();
      sibling.child = std::move(split);
      node->entries.push_back(std::move(sibling));
    }
  }
  if (static_cast<int>(node->entries.size()) > max_entries_) {
    return SplitNode(node);
  }
  return nullptr;
}

std::unique_ptr<DynamicRTree::Node> DynamicRTree::SplitNode(Node* node) {
  std::vector<Entry> entries = std::move(node->entries);
  node->entries.clear();

  // Quadratic PickSeeds: the pair wasting the most area together.
  size_t seed_a = 0;
  size_t seed_b = 1;
  double worst_waste = -std::numeric_limits<double>::infinity();
  for (size_t i = 0; i < entries.size(); ++i) {
    for (size_t j = i + 1; j < entries.size(); ++j) {
      const double waste = Union(entries[i].box, entries[j].box).Area() -
                           entries[i].box.Area() - entries[j].box.Area();
      if (waste > worst_waste) {
        worst_waste = waste;
        seed_a = i;
        seed_b = j;
      }
    }
  }

  auto sibling = std::make_unique<Node>();
  sibling->leaf = node->leaf;
  Box box_a = entries[seed_a].box;
  Box box_b = entries[seed_b].box;
  node->entries.push_back(std::move(entries[seed_a]));
  sibling->entries.push_back(std::move(entries[seed_b]));

  std::vector<Entry> rest;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (i != seed_a && i != seed_b) rest.push_back(std::move(entries[i]));
  }

  // PickNext: assign the entry with the largest preference difference.
  while (!rest.empty()) {
    const int remaining = static_cast<int>(rest.size());
    // Force-assign when one side must take all the rest to reach min fill.
    if (static_cast<int>(node->entries.size()) + remaining <= min_entries_) {
      for (Entry& e : rest) {
        box_a.ExpandToInclude(e.box);
        node->entries.push_back(std::move(e));
      }
      break;
    }
    if (static_cast<int>(sibling->entries.size()) + remaining <=
        min_entries_) {
      for (Entry& e : rest) {
        box_b.ExpandToInclude(e.box);
        sibling->entries.push_back(std::move(e));
      }
      break;
    }
    size_t pick = 0;
    double best_diff = -1.0;
    for (size_t i = 0; i < rest.size(); ++i) {
      const double diff = std::abs(Enlargement(box_a, rest[i].box) -
                                   Enlargement(box_b, rest[i].box));
      if (diff > best_diff) {
        best_diff = diff;
        pick = i;
      }
    }
    Entry chosen = std::move(rest[pick]);
    rest.erase(rest.begin() + static_cast<ptrdiff_t>(pick));
    const double grow_a = Enlargement(box_a, chosen.box);
    const double grow_b = Enlargement(box_b, chosen.box);
    const bool to_a =
        grow_a < grow_b ||
        (grow_a == grow_b && node->entries.size() <= sibling->entries.size());
    if (to_a) {
      box_a.ExpandToInclude(chosen.box);
      node->entries.push_back(std::move(chosen));
    } else {
      box_b.ExpandToInclude(chosen.box);
      sibling->entries.push_back(std::move(chosen));
    }
  }
  return sibling;
}

void DynamicRTree::IntersectionQuery(const Box& query,
                                     std::vector<int32_t>* out) const {
  out->clear();
  MutexLock lock(mu_);
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    for (const Entry& e : node->entries) {
      if (!e.box.Intersects(query)) continue;
      if (node->leaf) {
        out->push_back(e.id);
      } else {
        stack.push_back(e.child.get());
      }
    }
  }
}

Box DynamicRTree::Bounds() const {
  MutexLock lock(mu_);
  return root_->ComputeBox();
}

int DynamicRTree::Height() const {
  MutexLock lock(mu_);
  if (size_ == 0) return 0;
  int height = 1;
  const Node* node = root_.get();
  while (!node->leaf) {
    ++height;
    node = node->entries.front().child.get();
  }
  return height;
}

Status DynamicRTree::CheckInvariants() const {
  struct Frame {
    const Node* node;
    int depth;
  };
  int leaf_depth = -1;
  MutexLock lock(mu_);
  std::vector<Frame> stack = {{root_.get(), 0}};
  while (!stack.empty()) {
    const Frame frame = stack.back();
    stack.pop_back();
    const Node* node = frame.node;
    // Occupancy: non-root nodes have [min, max] entries.
    if (node != root_.get()) {
      if (static_cast<int>(node->entries.size()) < min_entries_ ||
          static_cast<int>(node->entries.size()) > max_entries_) {
        return Status::Internal(
            "node occupancy " + std::to_string(node->entries.size()) +
            " outside [" + std::to_string(min_entries_) + ", " +
            std::to_string(max_entries_) + "]");
      }
    }
    if (node->leaf) {
      if (leaf_depth < 0) leaf_depth = frame.depth;
      if (leaf_depth != frame.depth) {
        return Status::Internal("leaves at different depths");
      }
      continue;
    }
    for (const Entry& e : node->entries) {
      if (e.child == nullptr) {
        return Status::Internal("internal entry without child");
      }
      const Box child_box = e.child->ComputeBox();
      if (!e.box.Contains(child_box)) {
        return Status::Internal("entry box does not cover its child");
      }
      stack.push_back({e.child.get(), frame.depth + 1});
    }
  }
  return Status::OK();
}

}  // namespace indoorflow
