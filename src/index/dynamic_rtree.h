// Dynamic R-tree with Guttman insertion (quadratic split).
//
// The paper builds the per-query aggregate object R-tree by inserting one
// MBR per object (Algorithm 2 line 11). indoorflow's AggregateRTree uses
// STR bulk loading instead, which is faster and yields better-packed nodes;
// this classical insert-based R-tree exists (a) as the faithful
// construction for comparison (bench_ablation), and (b) as a general
// dynamic index for workloads where items trickle in.

#ifndef INDOORFLOW_INDEX_DYNAMIC_RTREE_H_
#define INDOORFLOW_INDEX_DYNAMIC_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/box.h"

namespace indoorflow {

class DynamicRTree {
 public:
  /// `max_entries` per node; min fill is max_entries / 2.
  explicit DynamicRTree(int max_entries = 8);

  void Insert(int32_t id, const Box& box);

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Ids of all items whose box intersects `query`.
  void IntersectionQuery(const Box& query, std::vector<int32_t>* out) const;

  /// Bounding box of everything inserted (empty Box when empty).
  Box Bounds() const;

  /// Tree height (0 when empty, 1 for a single leaf).
  int Height() const;

  /// Verifies structural invariants (entry boxes within parent MBRs, node
  /// occupancy, uniform leaf depth). For tests.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct Entry {
    Box box;
    int32_t id = -1;              // valid for leaf entries
    std::unique_ptr<Node> child;  // non-null for internal entries
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;

    Box ComputeBox() const {
      Box b;
      for (const Entry& e : entries) b.ExpandToInclude(e.box);
      return b;
    }
  };

  // Insertion helpers (Guttman 1984).
  Node* ChooseLeaf(Node* node, const Box& box);
  /// Splits an overfull node; returns the new sibling.
  std::unique_ptr<Node> SplitNode(Node* node);
  /// Inserts `entry` into the subtree at `node`; if the node splits, the
  /// new sibling is returned for the caller to adopt.
  std::unique_ptr<Node> InsertInto(Node* node, Entry entry);

  int max_entries_;
  int min_entries_;
  std::unique_ptr<Node> root_;
  size_t size_ = 0;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDEX_DYNAMIC_RTREE_H_
