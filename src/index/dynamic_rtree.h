// Dynamic R-tree with Guttman insertion (quadratic split).
//
// The paper builds the per-query aggregate object R-tree by inserting one
// MBR per object (Algorithm 2 line 11). indoorflow's AggregateRTree uses
// STR bulk loading instead, which is faster and yields better-packed nodes;
// this classical insert-based R-tree exists (a) as the faithful
// construction for comparison (bench_ablation), and (b) as a general
// dynamic index for workloads where items trickle in.
//
// Thread safety: the tree is internally synchronized — concurrent Insert
// and query calls from any number of threads are safe. All tree state is
// guarded by `mu_` and the invariant is enforced by Clang's thread-safety
// analysis (see src/common/thread_annotations.h). The lock is held for the
// full duration of one operation; queries do not block each other's
// correctness but do serialize, so a read-heavy workload that never inserts
// concurrently may prefer the lock-free bulk-loaded RTree.

#ifndef INDOORFLOW_INDEX_DYNAMIC_RTREE_H_
#define INDOORFLOW_INDEX_DYNAMIC_RTREE_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"
#include "src/common/thread_annotations.h"
#include "src/geometry/box.h"

namespace indoorflow {

class DynamicRTree {
 public:
  /// `max_entries` per node; min fill is max_entries / 2.
  explicit DynamicRTree(int max_entries = 8);

  void Insert(int32_t id, const Box& box) INDOORFLOW_LOCKS_EXCLUDED(mu_);

  size_t size() const INDOORFLOW_LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    return size_;
  }
  bool empty() const INDOORFLOW_LOCKS_EXCLUDED(mu_) { return size() == 0; }

  /// Ids of all items whose box intersects `query`.
  void IntersectionQuery(const Box& query, std::vector<int32_t>* out) const
      INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// Bounding box of everything inserted (empty Box when empty).
  Box Bounds() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// Tree height (0 when empty, 1 for a single leaf).
  int Height() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// Verifies structural invariants (entry boxes within parent MBRs, node
  /// occupancy, uniform leaf depth). For tests.
  Status CheckInvariants() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

 private:
  struct Node;
  struct Entry {
    Box box;
    int32_t id = -1;              // valid for leaf entries
    std::unique_ptr<Node> child;  // non-null for internal entries
  };
  struct Node {
    bool leaf = true;
    std::vector<Entry> entries;

    Box ComputeBox() const {
      Box b;
      for (const Entry& e : entries) b.ExpandToInclude(e.box);
      return b;
    }
  };

  // Insertion helpers (Guttman 1984). All walk the tree, so they run with
  // `mu_` held.
  /// Splits an overfull node; returns the new sibling.
  std::unique_ptr<Node> SplitNode(Node* node) INDOORFLOW_REQUIRES(mu_);
  /// Inserts `entry` into the subtree at `node`; if the node splits, the
  /// new sibling is returned for the caller to adopt.
  std::unique_ptr<Node> InsertInto(Node* node, Entry entry)
      INDOORFLOW_REQUIRES(mu_);

  int max_entries_;  // immutable after construction
  int min_entries_;  // immutable after construction
  mutable Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceUrCache)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceRtree) =
          Mutex(LockRank::kRtree);
  std::unique_ptr<Node> root_ INDOORFLOW_GUARDED_BY(mu_);
  size_t size_ INDOORFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDEX_DYNAMIC_RTREE_H_
