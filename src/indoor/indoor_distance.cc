#include "src/indoor/indoor_distance.h"

#include <algorithm>
#include <limits>

namespace indoorflow {

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

double IndoorDistance::Between(Point p, Point q) const {
  const std::vector<PartitionId> parts_p = plan_.PartitionsAt(p);
  const std::vector<PartitionId> parts_q = plan_.PartitionsAt(q);
  if (parts_p.empty() || parts_q.empty()) return kInf;

  // Same partition: straight line (partitions are convex).
  for (PartitionId a : parts_p) {
    for (PartitionId b : parts_q) {
      if (a == b) return Distance(p, q);
    }
  }

  // Otherwise: leave via some door of p's partition(s), walk the door
  // graph, enter via some door of q's partition(s).
  double best = kInf;
  for (PartitionId a : parts_p) {
    for (DoorId da : plan_.DoorsOf(a)) {
      const double leg_p = Distance(p, plan_.door(da).position);
      if (leg_p >= best) continue;
      for (PartitionId b : parts_q) {
        for (DoorId db : plan_.DoorsOf(b)) {
          const double through = graph_.Between(da, db);
          if (through == kInf) continue;
          const double total =
              leg_p + through + Distance(plan_.door(db).position, q);
          best = std::min(best, total);
        }
      }
    }
  }
  return best;
}

double IndoorDistance::ToDoor(Point p, DoorId d) const {
  const std::vector<PartitionId> parts_p = plan_.PartitionsAt(p);
  if (parts_p.empty()) return kInf;
  const Door& target = plan_.door(d);
  double best = kInf;
  for (PartitionId a : parts_p) {
    if (a == target.partition_a || a == target.partition_b) {
      best = std::min(best, Distance(p, target.position));
      continue;
    }
    for (DoorId da : plan_.DoorsOf(a)) {
      const double through = graph_.Between(da, d);
      if (through == kInf) continue;
      best = std::min(best,
                      Distance(p, plan_.door(da).position) + through);
    }
  }
  return best;
}

}  // namespace indoorflow
