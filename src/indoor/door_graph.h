// Door-to-door connectivity graph with precomputed shortest walking
// distances.

#ifndef INDOORFLOW_INDOOR_DOOR_GRAPH_H_
#define INDOORFLOW_INDOOR_DOOR_GRAPH_H_

#include <vector>

#include "src/indoor/floor_plan.h"

namespace indoorflow {

/// Shortest-path distances between all pairs of doors, walking through
/// partitions. Two doors incident to the same partition are connected by an
/// edge weighted with their Euclidean distance (partitions are convex, so
/// the straight line stays inside).
class DoorGraph {
 public:
  explicit DoorGraph(const FloorPlan& plan);

  /// Shortest walking distance between two doors (infinity if unreachable).
  double Between(DoorId a, DoorId b) const {
    return dist_[static_cast<size_t>(a)][static_cast<size_t>(b)];
  }

  /// Shortest door sequence from `a` to `b`, inclusive of both endpoints.
  /// Empty when unreachable; {a} when a == b.
  std::vector<DoorId> PathBetween(DoorId a, DoorId b) const;

  size_t num_doors() const { return dist_.size(); }

 private:
  std::vector<std::vector<double>> dist_;
  // parent_[src][v]: predecessor of v on the shortest path from src.
  std::vector<std::vector<DoorId>> parent_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDOOR_DOOR_GRAPH_H_
