#include "src/indoor/plan_builders.h"

#include <algorithm>
#include <string>
#include <utility>

namespace indoorflow {

namespace {

PartitionId AddRect(FloorPlan& plan, const std::string& name, double min_x,
                    double min_y, double max_x, double max_y) {
  return plan.AddPartition(name,
                           Polygon::Rectangle(min_x, min_y, max_x, max_y));
}

void MustAddDoor(FloorPlan& plan, Point position, PartitionId a,
                 PartitionId b) {
  Result<DoorId> door = plan.AddDoor(position, a, b);
  INDOORFLOW_CHECK(door.ok());
}

}  // namespace

namespace {

/// Total height of one office floor for the given layout.
double OfficeFloorHeight(const OfficePlanConfig& config) {
  const double pitch =
      2.0 * config.room_height + config.hallway_height + 2.0;
  return config.room_height + (config.num_rows - 1) * pitch +
         config.hallway_height + config.room_height;
}

/// Appends one office floor to `built`, offset by `origin` in the shared
/// coordinate plane, tagging partitions with `floor_index`. Returns the
/// spine partition id.
PartitionId AppendOfficeFloor(BuiltPlan& built,
                              const OfficePlanConfig& config, Point origin,
                              int floor_index, const std::string& prefix) {
  FloorPlan& plan = built.plan;
  const double pitch =
      2.0 * config.room_height + config.hallway_height + 2.0;
  const double total_height = OfficeFloorHeight(config);

  const auto tag = [&](PartitionId id) {
    built.partition_floor.resize(static_cast<size_t>(id) + 1, 0);
    built.partition_floor[static_cast<size_t>(id)] = floor_index;
    return id;
  };

  // Vertical spine hallway on the left.
  const PartitionId spine =
      tag(AddRect(plan, prefix + "spine", origin.x, origin.y,
                  origin.x + config.spine_width, origin.y + total_height));
  built.hallway_ids.push_back(spine);

  for (int row = 0; row < config.num_rows; ++row) {
    const double hall_y0 = origin.y + config.room_height + row * pitch;
    const double hall_y1 = hall_y0 + config.hallway_height;
    const double hall_x0 = origin.x + config.spine_width;
    const double hall_x1 =
        hall_x0 + config.rooms_per_side * config.room_width;

    const PartitionId hallway =
        tag(AddRect(plan, prefix + "hallway_" + std::to_string(row),
                    hall_x0, hall_y0, hall_x1, hall_y1));
    built.hallway_ids.push_back(hallway);
    // Opening between the spine and this hallway.
    MustAddDoor(plan, {hall_x0, (hall_y0 + hall_y1) * 0.5}, spine, hallway);

    for (int i = 0; i < config.rooms_per_side; ++i) {
      const double x0 = hall_x0 + i * config.room_width;
      const double x1 = x0 + config.room_width;
      // Doors of facing rooms are staggered (30% vs 70% along the wall) so
      // that door-mounted readers with ranges up to 2.5 m stay disjoint
      // across a 4 m hallway (the paper's non-overlap assumption).
      const double door_above_x = x0 + 0.3 * config.room_width;
      const double door_below_x = x0 + 0.7 * config.room_width;

      const PartitionId above = tag(AddRect(
          plan, prefix + "room_" + std::to_string(row) + "a" +
                    std::to_string(i),
          x0, hall_y1, x1, hall_y1 + config.room_height));
      built.room_ids.push_back(above);
      MustAddDoor(plan, {door_above_x, hall_y1}, above, hallway);

      const PartitionId below = tag(AddRect(
          plan, prefix + "room_" + std::to_string(row) + "b" +
                    std::to_string(i),
          x0, hall_y0 - config.room_height, x1, hall_y0));
      built.room_ids.push_back(below);
      MustAddDoor(plan, {door_below_x, hall_y0}, below, hallway);
    }
  }
  return spine;
}

}  // namespace

BuiltPlan BuildOfficePlan(const OfficePlanConfig& config) {
  BuiltPlan built;
  AppendOfficeFloor(built, config, {0.0, 0.0}, 0, "");
  built.partition_floor.clear();  // single floor: keep the compact default
  INDOORFLOW_CHECK(built.plan.Validate().ok());
  return built;
}

BuiltPlan BuildMultiFloorOfficePlan(const MultiFloorConfig& config) {
  INDOORFLOW_CHECK(config.num_floors >= 1);
  INDOORFLOW_CHECK(config.stair_length > 0.0);
  BuiltPlan built;
  const double floor_height = OfficeFloorHeight(config.floor);
  PartitionId prev_spine = kInvalidPartition;
  for (int floor = 0; floor < config.num_floors; ++floor) {
    const double y0 = floor * (floor_height + config.stair_length);
    const PartitionId spine = AppendOfficeFloor(
        built, config.floor, {0.0, y0}, floor,
        "f" + std::to_string(floor) + "_");
    if (floor > 0) {
      // Staircase partition spanning the inter-floor band, joined to both
      // spines by doors at its ends. Walking between floors costs exactly
      // stair_length (plus the horizontal approach).
      const double stair_y0 = y0 - config.stair_length;
      const PartitionId stairs = built.plan.AddPartition(
          "stairs_" + std::to_string(floor - 1) + "_" +
              std::to_string(floor),
          Polygon::Rectangle(0.0, stair_y0, config.stair_width, y0));
      built.partition_floor.resize(static_cast<size_t>(stairs) + 1, 0);
      built.partition_floor[static_cast<size_t>(stairs)] = floor - 1;
      MustAddDoor(built.plan, {config.stair_width / 2.0, stair_y0},
                  prev_spine, stairs);
      MustAddDoor(built.plan, {config.stair_width / 2.0, y0}, stairs,
                  spine);
    }
    prev_spine = spine;
  }
  INDOORFLOW_CHECK(built.plan.Validate().ok());
  return built;
}

BuiltPlan BuildAirportPlan(const AirportPlanConfig& config) {
  BuiltPlan built;
  FloorPlan& plan = built.plan;

  const double h0 = config.room_height;  // concourse sits above south rooms
  const double h1 = h0 + config.concourse_height;

  // Concourse: a chain of convex hallway segments joined by full-width
  // openings (modeled as doors at the joint midpoints).
  std::vector<PartitionId> segments;
  for (int s = 0; s < config.num_segments; ++s) {
    const double x0 = s * config.segment_length;
    const double x1 = x0 + config.segment_length;
    const PartitionId seg = AddRect(
        plan, "concourse_" + std::to_string(s), x0, h0, x1, h1);
    segments.push_back(seg);
    built.hallway_ids.push_back(seg);
    if (s > 0) {
      MustAddDoor(plan, {x0, (h0 + h1) * 0.5}, segments[s - 1], seg);
    }
  }

  // Gate lounges / shops on both sides of each segment.
  for (int s = 0; s < config.num_segments; ++s) {
    const double seg_x0 = s * config.segment_length;
    for (int i = 0; i < config.rooms_per_segment_side; ++i) {
      const double gap = (config.segment_length -
                          config.rooms_per_segment_side * config.room_width) /
                         (config.rooms_per_segment_side + 1);
      const double x0 = seg_x0 + gap + i * (config.room_width + gap);
      const double x1 = x0 + config.room_width;
      const double door_x = (x0 + x1) * 0.5;

      const PartitionId north = AddRect(
          plan, "gate_" + std::to_string(s) + "n" + std::to_string(i), x0,
          h1, x1, h1 + config.room_height);
      built.room_ids.push_back(north);
      MustAddDoor(plan, {door_x, h1}, north, segments[s]);

      const PartitionId south = AddRect(
          plan, "shop_" + std::to_string(s) + "s" + std::to_string(i), x0,
          0.0, x1, h0);
      built.room_ids.push_back(south);
      MustAddDoor(plan, {door_x, h0}, south, segments[s]);
    }
  }

  INDOORFLOW_CHECK(plan.Validate().ok());
  return built;
}

BuiltPlan BuildMallPlan(const MallPlanConfig& config) {
  INDOORFLOW_CHECK(config.shops_per_row >= 1);
  INDOORFLOW_CHECK(config.shops_per_side >= 1);
  INDOORFLOW_CHECK(config.anchor_fraction > 0.0 &&
                   config.anchor_fraction < 0.5);
  const double d = config.shop_depth;
  const double c = config.corridor_width;
  const double width = 2.0 * d + config.shops_per_row * config.shop_frontage;
  const double height =
      2.0 * (d + c) + config.shops_per_side * config.side_shop_frontage;
  INDOORFLOW_CHECK(width - 2.0 * (d + c) > 1.0);  // central block exists

  BuiltPlan built;
  FloorPlan& plan = built.plan;

  // Corridor loop. The south/north segments span the full inner width; the
  // west/east segments fill the gap between them, meeting at corner doors.
  const PartitionId south =
      AddRect(plan, "corridor_south", d, d, width - d, d + c);
  const PartitionId north = AddRect(plan, "corridor_north", d,
                                    height - d - c, width - d, height - d);
  const PartitionId west =
      AddRect(plan, "corridor_west", d, d + c, d + c, height - d - c);
  const PartitionId east = AddRect(plan, "corridor_east", width - d - c,
                                   d + c, width - d, height - d - c);
  for (PartitionId corridor : {south, west, north, east}) {
    built.hallway_ids.push_back(corridor);
  }
  MustAddDoor(plan, {d + c * 0.5, d + c}, south, west);
  MustAddDoor(plan, {width - d - c * 0.5, d + c}, south, east);
  MustAddDoor(plan, {d + c * 0.5, height - d - c}, west, north);
  MustAddDoor(plan, {width - d - c * 0.5, height - d - c}, east, north);

  // Shops along the south and north rows, opening onto their corridor.
  for (int i = 0; i < config.shops_per_row; ++i) {
    const double x0 = d + i * config.shop_frontage;
    const double x1 = x0 + config.shop_frontage;
    const double door_x = (x0 + x1) * 0.5;
    const PartitionId s = AddRect(plan, "shop_s" + std::to_string(i), x0,
                                  0.0, x1, d);
    built.room_ids.push_back(s);
    MustAddDoor(plan, {door_x, d}, s, south);
    const PartitionId n = AddRect(plan, "shop_n" + std::to_string(i), x0,
                                  height - d, x1, height);
    built.room_ids.push_back(n);
    MustAddDoor(plan, {door_x, height - d}, n, north);
  }
  // Shops along the west and east sides.
  for (int j = 0; j < config.shops_per_side; ++j) {
    const double y0 = d + c + j * config.side_shop_frontage;
    const double y1 = y0 + config.side_shop_frontage;
    const double door_y = (y0 + y1) * 0.5;
    const PartitionId w = AddRect(plan, "shop_w" + std::to_string(j), 0.0,
                                  y0, d, y1);
    built.room_ids.push_back(w);
    MustAddDoor(plan, {d, door_y}, w, west);
    const PartitionId e = AddRect(plan, "shop_e" + std::to_string(j),
                                  width - d, y0, width, y1);
    built.room_ids.push_back(e);
    MustAddDoor(plan, {width - d, door_y}, e, east);
  }

  // Central block inside the loop: anchor | food court | anchor.
  const double inner_x0 = d + c;
  const double inner_x1 = width - d - c;
  const double inner_y0 = d + c;
  const double inner_y1 = height - d - c;
  const double inner_w = inner_x1 - inner_x0;
  const double mid_y = (inner_y0 + inner_y1) * 0.5;
  const double a_w = inner_w * config.anchor_fraction;

  const PartitionId anchor_west = AddRect(
      plan, "anchor_west", inner_x0, inner_y0, inner_x0 + a_w, inner_y1);
  built.room_ids.push_back(anchor_west);
  MustAddDoor(plan, {inner_x0, mid_y}, anchor_west, west);

  const PartitionId food_court =
      AddRect(plan, "food_court", inner_x0 + a_w, inner_y0, inner_x1 - a_w,
              inner_y1);
  built.room_ids.push_back(food_court);
  const double court_mid_x = (inner_x0 + a_w + inner_x1 - a_w) * 0.5;
  MustAddDoor(plan, {court_mid_x, inner_y0}, food_court, south);
  MustAddDoor(plan, {court_mid_x, inner_y1}, food_court, north);

  const PartitionId anchor_east = AddRect(
      plan, "anchor_east", inner_x1 - a_w, inner_y0, inner_x1, inner_y1);
  built.room_ids.push_back(anchor_east);
  MustAddDoor(plan, {inner_x1, mid_y}, anchor_east, east);

  INDOORFLOW_CHECK(plan.Validate().ok());
  return built;
}

PoiSet GeneratePois(const BuiltPlan& built, int count, Rng& rng) {
  INDOORFLOW_CHECK(count > 0);
  PoiSet pois;
  pois.reserve(count);
  // Roughly one POI in five is a hallway slice (popular pass-by spots); the
  // rest are sub-rectangles of rooms with varied sizes and anchors.
  int room_cursor = 0;
  int hall_cursor = 0;
  for (int i = 0; i < count; ++i) {
    const bool hallway_poi = (i % 5 == 4) && !built.hallway_ids.empty();
    PartitionId part;
    if (hallway_poi) {
      part = built.hallway_ids[hall_cursor % built.hallway_ids.size()];
      ++hall_cursor;
    } else {
      part = built.room_ids[room_cursor % built.room_ids.size()];
      ++room_cursor;
    }
    const Box b = built.plan.partition(part).shape.Bounds();
    // A sub-rectangle covering 25%..90% of each extent, randomly anchored.
    const double fx = rng.Uniform(0.25, 0.9);
    const double fy = rng.Uniform(0.25, 0.9);
    const double w = b.Width() * fx;
    const double h = b.Height() * fy;
    const double x0 = b.min_x + rng.Uniform(0.0, b.Width() - w);
    const double y0 = b.min_y + rng.Uniform(0.0, b.Height() - h);
    pois.push_back(Poi{static_cast<PoiId>(i),
                       (hallway_poi ? "hallway_poi_" : "poi_") +
                           std::to_string(i),
                       Polygon::Rectangle(x0, y0, x0 + w, y0 + h)});
  }
  return pois;
}

BuiltPlan BuildTinyPlan() {
  BuiltPlan built;
  FloorPlan& plan = built.plan;
  // Two 10x8 rooms north of a 20x4 hallway.
  const PartitionId hallway = AddRect(plan, "hallway", 0, 0, 20, 4);
  const PartitionId room_a = AddRect(plan, "room_a", 0, 4, 10, 12);
  const PartitionId room_b = AddRect(plan, "room_b", 10, 4, 20, 12);
  built.hallway_ids.push_back(hallway);
  built.room_ids.push_back(room_a);
  built.room_ids.push_back(room_b);
  MustAddDoor(plan, {5, 4}, room_a, hallway);
  MustAddDoor(plan, {15, 4}, room_b, hallway);
  INDOORFLOW_CHECK(plan.Validate().ok());
  return built;
}

}  // namespace indoorflow
