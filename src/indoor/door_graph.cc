#include "src/indoor/door_graph.h"

#include <algorithm>
#include <limits>
#include <queue>
#include <utility>

namespace indoorflow {

DoorGraph::DoorGraph(const FloorPlan& plan) {
  const size_t n = plan.doors().size();
  constexpr double kInf = std::numeric_limits<double>::infinity();

  // Adjacency: doors sharing a partition.
  std::vector<std::vector<std::pair<DoorId, double>>> adj(n);
  for (const Partition& part : plan.partitions()) {
    const std::vector<DoorId>& doors = plan.DoorsOf(part.id);
    for (size_t i = 0; i < doors.size(); ++i) {
      for (size_t j = i + 1; j < doors.size(); ++j) {
        const double w = Distance(plan.door(doors[i]).position,
                                  plan.door(doors[j]).position);
        adj[static_cast<size_t>(doors[i])].push_back({doors[j], w});
        adj[static_cast<size_t>(doors[j])].push_back({doors[i], w});
      }
    }
  }

  dist_.assign(n, std::vector<double>(n, kInf));
  parent_.assign(n, std::vector<DoorId>(n, -1));
  // Dijkstra from every door. Door counts are small (tens to low hundreds),
  // so n * (E log V) is cheap and done once per plan.
  using QueueItem = std::pair<double, DoorId>;
  for (size_t src = 0; src < n; ++src) {
    std::vector<double>& dist = dist_[src];
    dist[src] = 0.0;
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        queue;
    queue.push({0.0, static_cast<DoorId>(src)});
    while (!queue.empty()) {
      const auto [d, u] = queue.top();
      queue.pop();
      if (d > dist[static_cast<size_t>(u)]) continue;
      for (const auto& [v, w] : adj[static_cast<size_t>(u)]) {
        const double nd = d + w;
        if (nd < dist[static_cast<size_t>(v)]) {
          dist[static_cast<size_t>(v)] = nd;
          parent_[src][static_cast<size_t>(v)] = u;
          queue.push({nd, v});
        }
      }
    }
  }
}

std::vector<DoorId> DoorGraph::PathBetween(DoorId a, DoorId b) const {
  if (a == b) return {a};
  if (Between(a, b) == std::numeric_limits<double>::infinity()) return {};
  std::vector<DoorId> path;
  for (DoorId v = b; v != a; v = parent_[static_cast<size_t>(a)]
                                        [static_cast<size_t>(v)]) {
    path.push_back(v);
  }
  path.push_back(a);
  std::reverse(path.begin(), path.end());
  return path;
}

}  // namespace indoorflow
