// Text serialization for floor plans and POI sets.
//
// A small line-oriented format (one entity per line, '#' comments):
//
//   # indoorflow plan v1
//   partition <name> <x1> <y1> <x2> <y2> <x3> <y3> [...]
//   door <x> <y> <partition_index_a> <partition_index_b>
//
//   # indoorflow pois v1
//   poi <name> <x1> <y1> <x2> <y2> <x3> <y3> [...]
//
// Names must not contain whitespace; partition/poi indices follow file
// order. Together with the CSV helpers in tracking/io.h this makes a whole
// dataset round-trippable through flat files (see tools/indoorflow_cli).

#ifndef INDOORFLOW_INDOOR_PLAN_IO_H_
#define INDOORFLOW_INDOOR_PLAN_IO_H_

#include <istream>
#include <string>

#include "src/indoor/floor_plan.h"
#include "src/indoor/poi.h"

namespace indoorflow {

// The Parse* overloads consume an already-opened stream so adversarial
// tests and the fuzz harnesses in fuzz/ can drive the loaders without the
// filesystem; `path` only labels error messages. The Read* file forms
// delegate to them.

Status WritePlanFile(const FloorPlan& plan, const std::string& path);
/// Returns a validated plan.
Result<FloorPlan> ParsePlanFile(std::istream& in,
                                const std::string& path = "<input>");
Result<FloorPlan> ReadPlanFile(const std::string& path);

Status WritePoisFile(const PoiSet& pois, const std::string& path);
Result<PoiSet> ParsePoisFile(std::istream& in,
                             const std::string& path = "<input>");
Result<PoiSet> ReadPoisFile(const std::string& path);

}  // namespace indoorflow

#endif  // INDOORFLOW_INDOOR_PLAN_IO_H_
