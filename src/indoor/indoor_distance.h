// Indoor walking distance between arbitrary positions.

#ifndef INDOORFLOW_INDOOR_INDOOR_DISTANCE_H_
#define INDOORFLOW_INDOOR_INDOOR_DISTANCE_H_

#include <memory>

#include "src/indoor/door_graph.h"
#include "src/indoor/floor_plan.h"

namespace indoorflow {

/// Computes the shortest *indoor walking* distance between two positions:
/// Euclidean within a partition, otherwise through the door graph. This is
/// the distance the topology check (paper Section 3.3) compares against the
/// maximum Euclidean distance Vmax * dt an object can cover.
class IndoorDistance {
 public:
  /// Keeps references to `plan` and `graph`; both must outlive this object.
  IndoorDistance(const FloorPlan& plan, const DoorGraph& graph)
      : plan_(plan), graph_(graph) {}

  /// Walking distance from `p` to `q`. Returns +infinity when either point
  /// is outside every partition or no door path connects them.
  double Between(Point p, Point q) const;

  /// Walking distance from `p` to the nearest point "through" door `d`,
  /// i.e. |p - d| routed through partitions. Equal to Between(p, d.position)
  /// but cheaper (no destination partition resolution).
  double ToDoor(Point p, DoorId d) const;

  const FloorPlan& plan() const { return plan_; }

 private:
  const FloorPlan& plan_;
  const DoorGraph& graph_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDOOR_INDOOR_DISTANCE_H_
