// Indoor space model: partitions (rooms, hallways) connected by doors.
//
// The paper's setting is a symbolic indoor space: movement is enabled and
// constrained by rooms, hallways and doors, and the indoor *walking*
// distance between two positions (through doors) can far exceed their
// Euclidean distance — the basis of the indoor topology check (paper
// Section 3.3).

#ifndef INDOORFLOW_INDOOR_FLOOR_PLAN_H_
#define INDOORFLOW_INDOOR_FLOOR_PLAN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/geometry/polygon.h"

namespace indoorflow {

using PartitionId = int32_t;
using DoorId = int32_t;

inline constexpr PartitionId kInvalidPartition = -1;

/// A topological unit of the indoor space (a room or a hallway segment),
/// modeled as a convex polygon. Convexity keeps intra-partition distances
/// Euclidean; non-convex rooms are modeled as several convex partitions
/// joined by zero-width "open doors".
struct Partition {
  PartitionId id = kInvalidPartition;
  std::string name;
  Polygon shape;
};

/// A door connecting two partitions, located at `position` (the midpoint of
/// the physical doorway). `partition_a/b` are the two sides.
struct Door {
  DoorId id = -1;
  Point position;
  PartitionId partition_a = kInvalidPartition;
  PartitionId partition_b = kInvalidPartition;

  PartitionId OtherSide(PartitionId from) const {
    return from == partition_a ? partition_b : partition_a;
  }
};

/// An immutable-after-construction floor plan. Build with AddPartition /
/// AddDoor, then call Validate() once before use.
class FloorPlan {
 public:
  PartitionId AddPartition(std::string name, Polygon shape);
  /// Adds a door between partitions `a` and `b` at `position`. The position
  /// should lie on (or within tolerance of) both partitions' boundaries.
  Result<DoorId> AddDoor(Point position, PartitionId a, PartitionId b);

  const std::vector<Partition>& partitions() const { return partitions_; }
  const std::vector<Door>& doors() const { return doors_; }
  const Partition& partition(PartitionId id) const {
    return partitions_[static_cast<size_t>(id)];
  }
  const Door& door(DoorId id) const { return doors_[static_cast<size_t>(id)]; }

  /// Door ids incident to a partition.
  const std::vector<DoorId>& DoorsOf(PartitionId id) const {
    return doors_of_[static_cast<size_t>(id)];
  }

  /// The partition containing `p`, or kInvalidPartition. Points on shared
  /// walls resolve to the lowest-id containing partition.
  PartitionId PartitionAt(Point p) const;

  /// All partitions containing `p` (points on walls/doors belong to both).
  std::vector<PartitionId> PartitionsAt(Point p) const;

  Box Bounds() const { return bounds_; }

  /// Checks structural consistency: door endpoints valid, door positions
  /// near both partitions, every partition reachable from partition 0.
  Status Validate() const;

 private:
  std::vector<Partition> partitions_;
  std::vector<Door> doors_;
  std::vector<std::vector<DoorId>> doors_of_;
  Box bounds_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_INDOOR_FLOOR_PLAN_H_
