#include "src/indoor/plan_io.h"

#include <cmath>
#include <fstream>
#include <sstream>
#include <vector>

namespace indoorflow {

namespace {

constexpr char kPlanHeader[] = "# indoorflow plan v1";
constexpr char kPoisHeader[] = "# indoorflow pois v1";

void StripCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

Status BadLine(int line_no, const std::string& what) {
  return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                 what);
}

/// Parses "<name> x1 y1 x2 y2 ..." from `in` (>= 3 vertices).
Status ParseNamedPolygon(std::istringstream& in, int line_no,
                         std::string* name, std::vector<Point>* vertices) {
  if (!(in >> *name)) return BadLine(line_no, "missing name");
  vertices->clear();
  double x = 0.0;
  double y = 0.0;
  while (in >> x) {
    if (!(in >> y)) return BadLine(line_no, "odd number of coordinates");
    // operator>> accepts the "nan"/"inf" spellings; a non-finite vertex
    // breaks every downstream geometric predicate, so reject it here.
    if (!std::isfinite(x) || !std::isfinite(y)) {
      return BadLine(line_no, "non-finite coordinate");
    }
    vertices->push_back({x, y});
  }
  if (!in.eof()) return BadLine(line_no, "bad coordinate");
  if (vertices->size() < 3) {
    return BadLine(line_no, "polygon needs at least 3 vertices");
  }
  return Status::OK();
}

void WriteNamedPolygon(std::ofstream& out, const std::string& kind,
                       const std::string& name, const Polygon& shape) {
  out << kind << ' ' << name;
  for (const Point& p : shape.vertices()) {
    out << ' ' << p.x << ' ' << p.y;
  }
  out << '\n';
}

}  // namespace

Status WritePlanFile(const FloorPlan& plan, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.precision(17);
  out << kPlanHeader << '\n';
  for (const Partition& part : plan.partitions()) {
    WriteNamedPolygon(out, "partition", part.name, part.shape);
  }
  for (const Door& door : plan.doors()) {
    out << "door " << door.position.x << ' ' << door.position.y << ' '
        << door.partition_a << ' ' << door.partition_b << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<FloorPlan> ParsePlanFile(std::istream& in, const std::string& path) {
  std::string line;
  if (std::getline(in, line)) StripCr(&line);
  if (line != kPlanHeader) {
    return Status::InvalidArgument(path + ": expected header '" +
                                   kPlanHeader + "'");
  }
  FloorPlan plan;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    StripCr(&line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind == "partition") {
      std::string name;
      std::vector<Point> vertices;
      INDOORFLOW_RETURN_IF_ERROR(
          ParseNamedPolygon(fields, line_no, &name, &vertices));
      Polygon shape(std::move(vertices));
      if (!shape.CheckInvariants().ok()) {
        return BadLine(line_no, "degenerate polygon");
      }
      plan.AddPartition(std::move(name), std::move(shape));
    } else if (kind == "door") {
      Point position;
      PartitionId a = kInvalidPartition;
      PartitionId b = kInvalidPartition;
      if (!(fields >> position.x >> position.y >> a >> b)) {
        return BadLine(line_no, "door needs x y partition_a partition_b");
      }
      if (!std::isfinite(position.x) || !std::isfinite(position.y)) {
        return BadLine(line_no, "non-finite door position");
      }
      Result<DoorId> door = plan.AddDoor(position, a, b);
      if (!door.ok()) {
        return BadLine(line_no, door.status().message());
      }
    } else {
      return BadLine(line_no, "unknown entity '" + kind + "'");
    }
  }
  INDOORFLOW_RETURN_IF_ERROR(plan.Validate());
  return plan;
}

Result<FloorPlan> ReadPlanFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParsePlanFile(in, path);
}

Status WritePoisFile(const PoiSet& pois, const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.precision(17);
  out << kPoisHeader << '\n';
  for (const Poi& poi : pois) {
    WriteNamedPolygon(out, "poi", poi.name, poi.shape);
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<PoiSet> ParsePoisFile(std::istream& in, const std::string& path) {
  std::string line;
  if (std::getline(in, line)) StripCr(&line);
  if (line != kPoisHeader) {
    return Status::InvalidArgument(path + ": expected header '" +
                                   kPoisHeader + "'");
  }
  PoiSet pois;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    StripCr(&line);
    if (line.empty() || line[0] == '#') continue;
    std::istringstream fields(line);
    std::string kind;
    fields >> kind;
    if (kind != "poi") {
      return BadLine(line_no, "unknown entity '" + kind + "'");
    }
    std::string name;
    std::vector<Point> vertices;
    INDOORFLOW_RETURN_IF_ERROR(
        ParseNamedPolygon(fields, line_no, &name, &vertices));
    Polygon shape(std::move(vertices));
    if (!shape.CheckInvariants().ok()) {
      return BadLine(line_no, "degenerate polygon");
    }
    pois.push_back(Poi{static_cast<PoiId>(pois.size()), std::move(name),
                       std::move(shape)});
  }
  return pois;
}

Result<PoiSet> ReadPoisFile(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParsePoisFile(in, path);
}

}  // namespace indoorflow
