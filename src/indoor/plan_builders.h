// Parametric floor-plan builders for the paper's two experimental settings.
//
// * Office plan (synthetic data, paper Section 5.1): rooms on both sides of
//   horizontal hallways that branch off a vertical spine hallway; every room
//   connects to its hallway by one door.
// * Airport plan (CPH substitute, see DESIGN.md): a long concourse made of
//   hallway segments with gate lounges and shops on both sides.
//
// Both builders also generate POI sets: "75 POIs ... at distinctive
// locations and with different areas. Multiple POIs may come from the same
// large room" (paper Section 5.1).

#ifndef INDOORFLOW_INDOOR_PLAN_BUILDERS_H_
#define INDOORFLOW_INDOOR_PLAN_BUILDERS_H_

#include <vector>

#include "src/common/random.h"
#include "src/indoor/floor_plan.h"
#include "src/indoor/poi.h"

namespace indoorflow {

/// A floor plan plus the partition roles needed by data generators.
struct BuiltPlan {
  FloorPlan plan;
  std::vector<PartitionId> room_ids;
  std::vector<PartitionId> hallway_ids;
  /// Floor index per partition (empty for single-floor plans; staircases
  /// carry the lower of the two floors they join).
  std::vector<int> partition_floor;

  int FloorOf(PartitionId id) const {
    return partition_floor.empty() ? 0
                                   : partition_floor[static_cast<size_t>(id)];
  }
};

struct OfficePlanConfig {
  int num_rows = 2;        // horizontal hallway rows
  int rooms_per_side = 8;  // rooms above and below each hallway
  double room_width = 10.0;
  double room_height = 8.0;
  double hallway_height = 4.0;
  double spine_width = 4.0;
};

/// Builds the office plan. With defaults: 32 rooms ("about 30"), 3 hallway
/// partitions, all connected by doors (paper Section 5.1).
BuiltPlan BuildOfficePlan(const OfficePlanConfig& config = {});

struct AirportPlanConfig {
  int num_segments = 8;       // concourse hallway segments
  double segment_length = 50.0;
  double concourse_height = 12.0;
  int rooms_per_segment_side = 2;  // lounges/shops per side per segment
  double room_width = 20.0;
  double room_height = 15.0;
};

/// Builds the airport concourse plan (CPH substitute).
BuiltPlan BuildAirportPlan(const AirportPlanConfig& config = {});

struct MultiFloorConfig {
  OfficePlanConfig floor;  // layout of each floor
  int num_floors = 2;
  /// Staircase length (meters of walking between floors); also the
  /// coordinate gap separating the floors' areas in the shared plane.
  double stair_length = 8.0;
  double stair_width = 2.0;
};

/// Builds a multi-floor office: each floor is an office plan placed in its
/// own band of the shared coordinate plane ("unfolded building"), and
/// consecutive floors' spine hallways are joined by a staircase partition
/// spanning the inter-floor band. All indoor walking distances are exact.
///
/// IMPORTANT: because floors share one Euclidean plane, a raw (Euclidean)
/// uncertainty region can spuriously reach another floor's band whenever
/// Vmax · Δt exceeds the band gap; the indoor topology check prunes exactly
/// those parts. Run engines over multi-floor plans with
/// TopologyMode::kPartition or kExact — never kOff (the paper's uncertainty
/// analysis assumes a single floor otherwise).
BuiltPlan BuildMultiFloorOfficePlan(const MultiFloorConfig& config = {});

struct MallPlanConfig {
  int shops_per_row = 10;   // shops along the north and south rows
  int shops_per_side = 4;   // shops along the west and east sides
  double shop_depth = 12.0;
  double shop_frontage = 14.0;       // north/south shop width
  double side_shop_frontage = 14.0;  // west/east shop height
  double corridor_width = 6.0;
  /// Central block split: anchor stores take this fraction of its width
  /// each; the food court takes the rest. Must leave the block non-empty.
  double anchor_fraction = 0.3;
};

/// Builds a single-floor shopping mall: a rectangular corridor *loop*
/// (south/west/north/east segments joined at the corners) with shops on its
/// outer side and, inside the loop, two anchor stores flanking a central
/// food court. Unlike the office and airport plans the door graph here is
/// cyclic — between any two shops there are two routes around the loop, so
/// indoor distances and the topology check exercise non-tree shortest
/// paths. Roles: corridors -> hallway_ids; shops/anchors/food court ->
/// room_ids.
BuiltPlan BuildMallPlan(const MallPlanConfig& config = {});

/// Generates `count` POIs over the plan: sub-rectangles of rooms with varied
/// sizes/positions plus hallway slices, deterministically from `rng`.
PoiSet GeneratePois(const BuiltPlan& built, int count, Rng& rng);

/// A minimal 3-partition plan (two rooms joined to one hallway) for unit
/// tests and the quickstart example.
BuiltPlan BuildTinyPlan();

}  // namespace indoorflow

#endif  // INDOORFLOW_INDOOR_PLAN_BUILDERS_H_
