#include "src/indoor/floor_plan.h"

#include <queue>
#include <utility>

namespace indoorflow {

namespace {
// A door may sit slightly off a partition boundary due to floating-point
// plan construction; accept up to this gap (meters).
constexpr double kDoorSnapTolerance = 0.5;
}  // namespace

PartitionId FloorPlan::AddPartition(std::string name, Polygon shape) {
  const PartitionId id = static_cast<PartitionId>(partitions_.size());
  shape.Normalize();
  bounds_.ExpandToInclude(shape.Bounds());
  partitions_.push_back(Partition{id, std::move(name), std::move(shape)});
  doors_of_.emplace_back();
  return id;
}

Result<DoorId> FloorPlan::AddDoor(Point position, PartitionId a,
                                  PartitionId b) {
  const auto n = static_cast<PartitionId>(partitions_.size());
  if (a < 0 || a >= n || b < 0 || b >= n || a == b) {
    return Status::InvalidArgument("door endpoints must be distinct valid "
                                   "partitions");
  }
  const DoorId id = static_cast<DoorId>(doors_.size());
  doors_.push_back(Door{id, position, a, b});
  doors_of_[static_cast<size_t>(a)].push_back(id);
  doors_of_[static_cast<size_t>(b)].push_back(id);
  return id;
}

PartitionId FloorPlan::PartitionAt(Point p) const {
  for (const Partition& part : partitions_) {
    if (part.shape.Contains(p)) return part.id;
  }
  return kInvalidPartition;
}

std::vector<PartitionId> FloorPlan::PartitionsAt(Point p) const {
  std::vector<PartitionId> result;
  for (const Partition& part : partitions_) {
    if (part.shape.Contains(p)) result.push_back(part.id);
  }
  return result;
}

Status FloorPlan::Validate() const {
  if (partitions_.empty()) {
    return Status::FailedPrecondition("floor plan has no partitions");
  }
  for (const Door& door : doors_) {
    const Polygon& pa = partition(door.partition_a).shape;
    const Polygon& pb = partition(door.partition_b).shape;
    if (pa.Distance(door.position) > kDoorSnapTolerance ||
        pb.Distance(door.position) > kDoorSnapTolerance) {
      return Status::FailedPrecondition(
          "door " + std::to_string(door.id) +
          " is not on the boundary of both partitions");
    }
  }
  // Connectivity: BFS over the door graph from partition 0.
  std::vector<bool> seen(partitions_.size(), false);
  std::queue<PartitionId> frontier;
  frontier.push(0);
  seen[0] = true;
  size_t reached = 1;
  while (!frontier.empty()) {
    const PartitionId cur = frontier.front();
    frontier.pop();
    for (DoorId d : DoorsOf(cur)) {
      const PartitionId next = door(d).OtherSide(cur);
      if (!seen[static_cast<size_t>(next)]) {
        seen[static_cast<size_t>(next)] = true;
        ++reached;
        frontier.push(next);
      }
    }
  }
  if (reached != partitions_.size()) {
    return Status::FailedPrecondition(
        "floor plan is not connected: only " + std::to_string(reached) +
        " of " + std::to_string(partitions_.size()) +
        " partitions reachable from partition 0");
  }
  return Status::OK();
}

}  // namespace indoorflow
