// Indoor points of interest.

#ifndef INDOORFLOW_INDOOR_POI_H_
#define INDOORFLOW_INDOOR_POI_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/geometry/polygon.h"

namespace indoorflow {

using PoiId = int32_t;

/// An indoor POI: a named polygonal extent (paper Section 2.2 equates a POI
/// with its polygon). Multiple POIs may subdivide one large room.
struct Poi {
  PoiId id = -1;
  std::string name;
  Polygon shape;

  double Area() const { return shape.Area(); }
};

using PoiSet = std::vector<Poi>;

}  // namespace indoorflow

#endif  // INDOORFLOW_INDOOR_POI_H_
