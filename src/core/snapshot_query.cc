#include "src/core/snapshot_query.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/metrics.h"
#include "src/core/priority_join.h"
#include "src/core/query_profile.h"
#include "src/core/tracking_state.h"

namespace indoorflow {

namespace {

// AR-tree point query -> one resolved state per object tracked at t
// (Algorithm 1 lines 3-5). With the paper's disjoint detection ranges each
// object has exactly one covering entry; overlapping deployments can yield
// several, so states are resolved per distinct object from the OTT.
std::vector<SnapshotState> CollectStates(const QueryContext& ctx,
                                         Timestamp t) {
  const int64_t start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<ARTreeEntry> entries;
  ctx.artree->PointQuery(t, &entries);
  std::vector<SnapshotState> states;
  states.reserve(entries.size());
  if (!ctx.table->has_overlaps()) {
    for (const ARTreeEntry& le : entries) {
      states.push_back(ResolveSnapshotState(*ctx.table, le, t));
    }
  } else {
    std::unordered_set<ObjectId> seen;
    for (const ARTreeEntry& le : entries) {
      const ObjectId object = ctx.table->record(le.cur).object_id;
      if (!seen.insert(object).second) continue;
      states.push_back(ResolveSnapshotStateAt(*ctx.table, object, t));
    }
  }
  if (ctx.stats != nullptr) {
    ctx.stats->objects_retrieved += static_cast<int64_t>(states.size());
    ctx.stats->retrieve_ns += MonotonicNowNs() - start;
  }
  return states;
}

// The iterative algorithms' flow accumulation (Algorithm 1 lines 1-14):
// derive every tracked object's UR and add its presences into per-POI flows.
std::vector<PoiFlow> AllSnapshotFlows(const QueryContext& ctx,
                                      const RTree& poi_tree,
                                      const std::vector<PoiId>& subset_ids,
                                      Timestamp t) {
  std::unordered_map<PoiId, double> flows;
  flows.reserve(subset_ids.size());
  for (PoiId id : subset_ids) flows[id] = 0.0;
  if (ctx.stats != nullptr) {
    ctx.stats->pois_evaluated += static_cast<int64_t>(subset_ids.size());
  }

  // Phase marks bracket the UR derivation and the presence integrations
  // per object; two clock reads each keep the overhead per object flat.
  // EXPLAIN shares the brackets, so profiling alone still times phases.
  const bool timed = ctx.stats != nullptr;
  QueryProfile* profile = ctx.profile;
  const bool clocked = timed || profile != nullptr;
  std::vector<int32_t> candidates;
  for (const SnapshotState& state : CollectStates(ctx, t)) {  // lines 4-14
    const int64_t derive_start = clocked ? MonotonicNowNs() : 0;
    const Region ur = ctx.model->Snapshot(state, t);
    if (clocked) {
      const int64_t derive_ns = MonotonicNowNs() - derive_start;
      if (timed) {
        ctx.stats->derive_ns += derive_ns;
        ++ctx.stats->regions_derived;
      }
      if (profile != nullptr) profile->AddObjectCost(state.object, derive_ns);
    }
    if (ur.IsEmpty()) continue;
    poi_tree.IntersectionQuery(ur.Bounds(), &candidates);  // line 12
    const int64_t presence_start = timed ? MonotonicNowNs() : 0;
    for (int32_t poi_id : candidates) {
      const double presence = Presence(
          ur, (*ctx.poi_areas)[static_cast<size_t>(poi_id)],
          (*ctx.poi_regions)[static_cast<size_t>(poi_id)], *ctx.flow);
      flows[poi_id] += presence;
      if (timed) ++ctx.stats->presence_evaluations;
      if (profile != nullptr) profile->MarkPresence(poi_id, presence);
    }
    if (timed) ctx.stats->presence_ns += MonotonicNowNs() - presence_start;
  }

  std::vector<PoiFlow> all;
  all.reserve(flows.size());
  for (const auto& [id, flow] : flows) all.push_back(PoiFlow{id, flow});
  return all;
}

// Phase 1 of the join algorithms (Algorithm 2 lines 1-11): build the
// aggregate object R-tree R_I from cheap per-object MBRs and wire up the
// lazily-caching UR derivation, then hand the assembled spec to `run`.
template <typename Run>
std::vector<PoiFlow> WithSnapshotJoinSpec(const QueryContext& ctx,
                                          const RTree& poi_tree, Timestamp t,
                                          const Run& run) {
  const std::vector<SnapshotState> states = CollectStates(ctx, t);
  // Everything below CollectStates is join work; the derive/presence time
  // booked by ur_of and Presence during `run` is subtracted at the end so
  // topk_ns covers only the R_I build plus the priority traversal itself.
  const int64_t join_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  const int64_t derive_before =
      ctx.stats != nullptr ? ctx.stats->derive_ns : 0;
  const int64_t presence_before =
      ctx.stats != nullptr ? ctx.stats->presence_ns : 0;
  std::vector<AggregateRTree::ObjectEntry> objects;
  std::vector<const SnapshotState*> slot_states;  // aligned with R_I slots
  objects.reserve(states.size());
  slot_states.reserve(states.size());
  for (const SnapshotState& state : states) {
    Box mbr = ctx.model->SnapshotMbr(state, t);
    if (mbr.Empty()) continue;
    AggregateRTree::ObjectEntry entry;
    entry.object = state.object;
    entry.mbr = mbr;
    objects.push_back(std::move(entry));
    slot_states.push_back(&state);
  }
  const AggregateRTree agg =
      AggregateRTree::Build(std::move(objects), ctx.ri_fanout);

  // Lazy uncertainty-region derivation with the H_U cache (lines 29-31).
  std::unordered_map<int32_t, Region> ur_cache;
  const auto ur_of = [&](int32_t slot) -> const Region& {
    auto it = ur_cache.find(slot);
    if (it == ur_cache.end()) {
      const bool clocked = ctx.stats != nullptr || ctx.profile != nullptr;
      const int64_t derive_start = clocked ? MonotonicNowNs() : 0;
      it = ur_cache
               .emplace(slot,
                        ctx.model->Snapshot(
                            *slot_states[static_cast<size_t>(slot)], t))
               .first;
      if (clocked) {
        const int64_t derive_ns = MonotonicNowNs() - derive_start;
        if (ctx.stats != nullptr) {
          ctx.stats->derive_ns += derive_ns;
          ++ctx.stats->regions_derived;
        }
        if (ctx.profile != nullptr) {
          ctx.profile->AddObjectCost(
              slot_states[static_cast<size_t>(slot)]->object, derive_ns);
        }
      }
    }
    return it->second;
  };

  PriorityJoinSpec spec;
  spec.poi_tree = &poi_tree;
  spec.objects = &agg;
  spec.poi_areas = ctx.poi_areas;
  spec.poi_regions = ctx.poi_regions;
  spec.flow = ctx.flow;
  spec.ur_of = ur_of;
  spec.stats = ctx.stats;
  spec.profile = ctx.profile;
  spec.area_bounds = ctx.join_area_bounds;
  std::vector<PoiFlow> result = run(spec);
  if (ctx.stats != nullptr) {
    const int64_t span = MonotonicNowNs() - join_start;
    const int64_t inner = (ctx.stats->derive_ns - derive_before) +
                          (ctx.stats->presence_ns - presence_before);
    ctx.stats->topk_ns += span > inner ? span - inner : 0;
  }
  return result;
}

}  // namespace

std::vector<PoiFlow> IterativeSnapshot(const QueryContext& ctx,
                                       const RTree& poi_tree,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp t, int k) {
  std::vector<PoiFlow> flows = AllSnapshotFlows(ctx, poi_tree, subset_ids, t);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<PoiFlow> result = TopK(std::move(flows), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> IterativeSnapshotThreshold(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, double tau) {
  std::vector<PoiFlow> flows = AllSnapshotFlows(ctx, poi_tree, subset_ids, t);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<PoiFlow> result = FlowsAtLeast(std::move(flows), tau);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> JoinSnapshot(const QueryContext& ctx,
                                  const RTree& poi_tree,
                                  const std::vector<PoiId>& subset_ids,
                                  Timestamp t, int k) {
  return WithSnapshotJoinSpec(
      ctx, poi_tree, t, [&](const PriorityJoinSpec& spec) {
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

std::vector<PoiFlow> JoinSnapshotThreshold(const QueryContext& ctx,
                                           const RTree& poi_tree,
                                           Timestamp t, double tau) {
  return WithSnapshotJoinSpec(ctx, poi_tree, t,
                              [&](const PriorityJoinSpec& spec) {
                                return PriorityJoinThreshold(spec, tau);
                              });
}

std::vector<PoiFlow> IterativeSnapshotDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, int k) {
  std::vector<PoiFlow> flows = AllSnapshotFlows(ctx, poi_tree, subset_ids, t);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  for (PoiFlow& f : flows) {
    const double area = (*ctx.poi_areas)[static_cast<size_t>(f.poi)];
    f.flow = area > 0.0 ? f.flow / area : 0.0;
  }
  std::vector<PoiFlow> result = TopK(std::move(flows), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> JoinSnapshotDensity(const QueryContext& ctx,
                                         const RTree& poi_tree,
                                         const std::vector<PoiId>& subset_ids,
                                         Timestamp t, int k) {
  return WithSnapshotJoinSpec(
      ctx, poi_tree, t, [&](PriorityJoinSpec spec) {
        spec.density = true;
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

}  // namespace indoorflow
