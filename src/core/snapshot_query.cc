#include "src/core/snapshot_query.h"

#include <unordered_map>
#include <unordered_set>
#include <utility>

#include "src/common/metrics.h"
#include "src/core/approx.h"
#include "src/core/parallel_flows.h"
#include "src/core/priority_join.h"
#include "src/core/query_profile.h"
#include "src/core/tracking_state.h"
#include "src/core/ur_cache.h"

namespace indoorflow {

namespace {

// AR-tree point query -> one resolved state per object tracked at t
// (Algorithm 1 lines 3-5). With the paper's disjoint detection ranges each
// object has exactly one covering entry; overlapping deployments can yield
// several, so states are resolved per distinct object from the OTT.
std::vector<SnapshotState> CollectStates(const QueryContext& ctx,
                                         Timestamp t) {
  const int64_t start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<ARTreeEntry> entries;
  ctx.artree->PointQuery(t, &entries);
  std::vector<SnapshotState> states;
  states.reserve(entries.size());
  if (!ctx.table->has_overlaps()) {
    for (const ARTreeEntry& le : entries) {
      states.push_back(ResolveSnapshotState(*ctx.table, le, t));
    }
  } else {
    std::unordered_set<ObjectId> seen;
    for (const ARTreeEntry& le : entries) {
      const ObjectId object = ctx.table->record(le.cur).object_id;
      if (!seen.insert(object).second) continue;
      states.push_back(ResolveSnapshotStateAt(*ctx.table, object, t));
    }
  }
  if (ctx.stats != nullptr) {
    ctx.stats->objects_retrieved += static_cast<int64_t>(states.size());
    ctx.stats->retrieve_ns += MonotonicNowNs() - start;
  }
  return states;
}

// The iterative algorithms' per-object accumulation (Algorithm 1 lines
// 4-14): derive each state's UR and add its presences into per-POI flows.
// The sampled path reuses this verbatim over a subsampled `states` vector
// and passes `flows_sq` to collect the squares its variance needs; the
// exact path passes nullptr, leaving its behavior untouched.
void AccumulateSnapshotFlows(const QueryContext& ctx, const RTree& poi_tree,
                             const std::vector<SnapshotState>& states,
                             Timestamp t,
                             std::unordered_map<PoiId, double>* flows,
                             std::unordered_map<PoiId, double>* flows_sq) {
  // Parallel path: per-object map across the executor plus an ordered
  // reduce (bit-identical to the serial loop below; see parallel_flows.h).
  // Falls through to the serial loop for small object sets or a serial
  // engine.
  const bool parallel = ParallelAccumulateFlows(
      ctx, poi_tree, states, UrCache::Kind::kSnapshot, t, t,
      [](const SnapshotState& state) { return state.object; },
      [&](const SnapshotState& state) {
        return ctx.model->Snapshot(state, t);
      },
      flows, flows_sq);

  // Serial path. Phase marks bracket the UR derivation and the presence
  // integrations per object; two clock reads each keep the overhead per
  // object flat. EXPLAIN shares the brackets, so profiling alone still
  // times phases.
  const bool timed = ctx.stats != nullptr;
  QueryProfile* profile = ctx.profile;
  const bool clocked = timed || profile != nullptr;
  UrCache* const shared_cache = ctx.ur_cache;
  std::vector<int32_t> candidates;
  const size_t serial_count = parallel ? 0 : states.size();
  for (size_t s = 0; s < serial_count; ++s) {  // lines 4-14
    // Cooperative abandonment: one sticky deadline/cancel poll per object
    // (src/common/deadline.h). The partial flows are discarded by the
    // caller once control->Aborted() reports the abort.
    if (QueryAborted(ctx)) break;
    const SnapshotState& state = states[s];
    Region ur;
    UrCache::PresenceMemoPtr memo;
    // A cache hit hands back the identical shared CSG tree a fresh
    // derivation would build, so flows downstream are bit-identical; it
    // books a ur_cache_hit instead of a derivation.
    if (shared_cache != nullptr &&
        shared_cache->Lookup(state.object, UrCache::Kind::kSnapshot, t, t,
                             &ur, &memo, ctx.span)) {
      if (timed) ++ctx.stats->ur_cache_hits;
    } else {
      const int64_t derive_start = clocked ? MonotonicNowNs() : 0;
      ur = ctx.model->Snapshot(state, t);
      if (clocked) {
        const int64_t derive_ns = MonotonicNowNs() - derive_start;
        if (timed) {
          ctx.stats->derive_ns += derive_ns;
          ++ctx.stats->regions_derived;
        }
        if (profile != nullptr) {
          profile->AddObjectCost(state.object, derive_ns);
        }
      }
      if (shared_cache != nullptr) {
        shared_cache->Insert(state.object, UrCache::Kind::kSnapshot, t, t,
                             ur, &memo);
      }
    }
    if (ur.IsEmpty()) continue;
    poi_tree.IntersectionQuery(ur.Bounds(), &candidates);  // line 12
    const int64_t presence_start = timed ? MonotonicNowNs() : 0;
    for (int32_t poi_id : candidates) {
      // A memoized integral is the exact double an evaluation over the
      // same cached region would produce (deterministic integrator), so
      // flows stay bit-identical; only real evaluations are booked.
      double presence;
      if (memo == nullptr || !memo->TryGet(poi_id, &presence)) {
        presence = Presence(
            ur, (*ctx.poi_areas)[static_cast<size_t>(poi_id)],
            (*ctx.poi_regions)[static_cast<size_t>(poi_id)], *ctx.flow);
        if (timed) ++ctx.stats->presence_evaluations;
        if (memo != nullptr) memo->Put(poi_id, presence);
      }
      (*flows)[poi_id] += presence;
      if (flows_sq != nullptr) {
        (*flows_sq)[poi_id] += presence * presence;
      }
      if (profile != nullptr) profile->MarkPresence(poi_id, presence);
    }
    if (timed) ctx.stats->presence_ns += MonotonicNowNs() - presence_start;
  }
}

// The iterative algorithms' flow accumulation (Algorithm 1 lines 1-14):
// derive every tracked object's UR and add its presences into per-POI flows.
std::vector<PoiFlow> AllSnapshotFlows(const QueryContext& ctx,
                                      const RTree& poi_tree,
                                      const std::vector<PoiId>& subset_ids,
                                      Timestamp t) {
  std::unordered_map<PoiId, double> flows;
  flows.reserve(subset_ids.size());
  for (PoiId id : subset_ids) flows[id] = 0.0;
  if (ctx.stats != nullptr) {
    ctx.stats->pois_evaluated += static_cast<int64_t>(subset_ids.size());
  }
  const std::vector<SnapshotState> states = CollectStates(ctx, t);
  AccumulateSnapshotFlows(ctx, poi_tree, states, t, &flows, nullptr);
  std::vector<PoiFlow> all;
  all.reserve(flows.size());
  for (const auto& [id, flow] : flows) all.push_back(PoiFlow{id, flow});
  return all;
}

// Phase 1 of the join algorithms (Algorithm 2 lines 1-11): build the
// aggregate object R-tree R_I from cheap per-object MBRs and wire up the
// lazily-caching UR derivation, then hand the assembled spec to `run`.
template <typename Run>
std::vector<PoiFlow> WithSnapshotJoinSpec(const QueryContext& ctx,
                                          const RTree& poi_tree, Timestamp t,
                                          const Run& run) {
  const std::vector<SnapshotState> states = CollectStates(ctx, t);
  // Everything below CollectStates is join work; the derive/presence time
  // booked by ur_of and Presence during `run` is subtracted at the end so
  // topk_ns covers only the R_I build plus the priority traversal itself.
  const int64_t join_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  const int64_t derive_before =
      ctx.stats != nullptr ? ctx.stats->derive_ns : 0;
  const int64_t presence_before =
      ctx.stats != nullptr ? ctx.stats->presence_ns : 0;
  std::vector<AggregateRTree::ObjectEntry> objects;
  std::vector<const SnapshotState*> slot_states;  // aligned with R_I slots
  objects.reserve(states.size());
  slot_states.reserve(states.size());
  for (const SnapshotState& state : states) {
    Box mbr = ctx.model->SnapshotMbr(state, t);
    if (mbr.Empty()) continue;
    AggregateRTree::ObjectEntry entry;
    entry.object = state.object;
    entry.mbr = mbr;
    objects.push_back(std::move(entry));
    slot_states.push_back(&state);
  }
  const AggregateRTree agg =
      AggregateRTree::Build(std::move(objects), ctx.ri_fanout);

  // Lazy uncertainty-region derivation with the H_U cache (lines 29-31).
  // The per-query slot map keeps the `const Region&` callback contract;
  // misses consult the engine's shared cross-query cache first.
  UrCache* const shared_cache = ctx.ur_cache;
  std::unordered_map<int32_t, Region> slot_urs;
  std::unordered_map<int32_t, UrCache::PresenceMemoPtr> slot_memos;
  const auto ur_of = [&](int32_t slot) -> const Region& {
    auto it = slot_urs.find(slot);
    if (it == slot_urs.end()) {
      const SnapshotState& state = *slot_states[static_cast<size_t>(slot)];
      Region cached;
      UrCache::PresenceMemoPtr memo;
      if (shared_cache != nullptr &&
          shared_cache->Lookup(state.object, UrCache::Kind::kSnapshot, t, t,
                               &cached, &memo, ctx.span)) {
        if (ctx.stats != nullptr) ++ctx.stats->ur_cache_hits;
        slot_memos.emplace(slot, std::move(memo));
        return slot_urs.emplace(slot, std::move(cached)).first->second;
      }
      const bool clocked = ctx.stats != nullptr || ctx.profile != nullptr;
      const int64_t derive_start = clocked ? MonotonicNowNs() : 0;
      it = slot_urs.emplace(slot, ctx.model->Snapshot(state, t)).first;
      if (clocked) {
        const int64_t derive_ns = MonotonicNowNs() - derive_start;
        if (ctx.stats != nullptr) {
          ctx.stats->derive_ns += derive_ns;
          ++ctx.stats->regions_derived;
        }
        if (ctx.profile != nullptr) {
          ctx.profile->AddObjectCost(state.object, derive_ns);
        }
      }
      if (shared_cache != nullptr) {
        shared_cache->Insert(state.object, UrCache::Kind::kSnapshot, t, t,
                             it->second, &memo);
        slot_memos.emplace(slot, std::move(memo));
      }
    }
    return it->second;
  };

  PriorityJoinSpec spec;
  spec.poi_tree = &poi_tree;
  spec.objects = &agg;
  spec.poi_areas = ctx.poi_areas;
  spec.poi_regions = ctx.poi_regions;
  spec.flow = ctx.flow;
  spec.ur_of = ur_of;
  if (shared_cache != nullptr) {
    // Consult the cache entry's presence memo before integrating; the
    // memoized double is what the evaluation over the identical cached
    // region would return, so join flows stay bit-identical.
    spec.presence_of = [&ur_of, &slot_memos, &ctx](int32_t slot,
                                                   int32_t poi_id) {
      const Region& ur = ur_of(slot);  // fills slot_memos[slot]
      const auto memo_it = slot_memos.find(slot);
      UrCache::PresenceMemo* memo =
          memo_it != slot_memos.end() ? memo_it->second.get() : nullptr;
      double presence;
      if (memo != nullptr && memo->TryGet(poi_id, &presence)) {
        return presence;
      }
      presence = Presence(ur, (*ctx.poi_areas)[static_cast<size_t>(poi_id)],
                          (*ctx.poi_regions)[static_cast<size_t>(poi_id)],
                          *ctx.flow);
      if (ctx.stats != nullptr) ++ctx.stats->presence_evaluations;
      if (memo != nullptr) memo->Put(poi_id, presence);
      return presence;
    };
  }
  // Intra-query parallelism for big leaf rounds (empty function — and thus
  // never consulted — when the engine is serial). The pointers target this
  // spec instance, which outlives `run` even when the runner copies the
  // spec to flip flags.
  spec.presence_batch = MakeJoinPresenceBatch(
      ctx, &slot_urs, &slot_memos, &spec.ur_of, &spec.presence_of,
      UrCache::Kind::kSnapshot, t, t,
      [&slot_states](int32_t slot) {
        return slot_states[static_cast<size_t>(slot)]->object;
      },
      [&ctx, &slot_states, t](int32_t slot) {
        return ctx.model->Snapshot(
            *slot_states[static_cast<size_t>(slot)], t);
      });
  spec.stats = ctx.stats;
  spec.profile = ctx.profile;
  spec.area_bounds = ctx.join_area_bounds;
  spec.control = ctx.control;
  std::vector<PoiFlow> result = run(spec);
  if (ctx.stats != nullptr) {
    const int64_t span = MonotonicNowNs() - join_start;
    const int64_t inner = (ctx.stats->derive_ns - derive_before) +
                          (ctx.stats->presence_ns - presence_before);
    ctx.stats->topk_ns += span > inner ? span - inner : 0;
  }
  return result;
}

}  // namespace

std::vector<PoiFlow> IterativeSnapshot(const QueryContext& ctx,
                                       const RTree& poi_tree,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp t, int k) {
  std::vector<PoiFlow> flows = AllSnapshotFlows(ctx, poi_tree, subset_ids, t);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<PoiFlow> result = TopK(std::move(flows), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<FlowEstimate> IterativeSnapshotEstimate(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, int k,
    const ApproxConfig& approx) {
  if (ctx.stats != nullptr) {
    ctx.stats->pois_evaluated += static_cast<int64_t>(subset_ids.size());
  }
  const std::vector<SnapshotState> states = CollectStates(ctx, t);
  const size_t population = states.size();
  const bool sample = ShouldSample(approx, population);

  std::unordered_map<PoiId, double> flows;
  std::unordered_map<PoiId, double> flows_sq;
  flows.reserve(subset_ids.size());
  for (PoiId id : subset_ids) flows[id] = 0.0;
  size_t evaluated = population;
  if (sample) {
    // Deterministic subsample in canonical (filter-phase) order; the
    // accumulation over it is the exact loop above, UR cache and memos
    // included, just over fewer objects.
    const std::vector<size_t> picks =
        SampleIndices(population, static_cast<size_t>(approx.sample_budget),
                      MixSampleSeed(approx.seed, t, t));
    std::vector<SnapshotState> sampled;
    sampled.reserve(picks.size());
    for (size_t i : picks) sampled.push_back(states[i]);
    evaluated = sampled.size();
    flows_sq.reserve(subset_ids.size());
    for (PoiId id : subset_ids) flows_sq[id] = 0.0;
    AccumulateSnapshotFlows(ctx, poi_tree, sampled, t, &flows, &flows_sq);
  } else {
    AccumulateSnapshotFlows(ctx, poi_tree, states, t, &flows, nullptr);
  }
  std::vector<FlowEstimate> estimates =
      EstimateFlows(subset_ids, flows, flows_sq, population, evaluated);

  if (ctx.stats != nullptr) {
    ctx.stats->sample_population += static_cast<int64_t>(population);
    ctx.stats->sample_size += static_cast<int64_t>(evaluated);
  }
  if (ctx.profile != nullptr) {
    ctx.profile->approx_mode = ApproxModeName(approx.mode);
    ctx.profile->sampled = sample;
    ctx.profile->sample_budget = approx.sample_budget;
    ctx.profile->sample_population = static_cast<int64_t>(population);
    ctx.profile->sample_size = static_cast<int64_t>(evaluated);
    for (const FlowEstimate& est : estimates) {
      if (est.std_err > ctx.profile->max_std_err) {
        ctx.profile->max_std_err = est.std_err;
      }
    }
  }

  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<FlowEstimate> result = TopKEstimates(std::move(estimates), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> IterativeSnapshotThreshold(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, double tau) {
  std::vector<PoiFlow> flows = AllSnapshotFlows(ctx, poi_tree, subset_ids, t);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<PoiFlow> result = FlowsAtLeast(std::move(flows), tau);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> JoinSnapshot(const QueryContext& ctx,
                                  const RTree& poi_tree,
                                  const std::vector<PoiId>& subset_ids,
                                  Timestamp t, int k) {
  return WithSnapshotJoinSpec(
      ctx, poi_tree, t, [&](const PriorityJoinSpec& spec) {
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

std::vector<PoiFlow> JoinSnapshotThreshold(const QueryContext& ctx,
                                           const RTree& poi_tree,
                                           Timestamp t, double tau) {
  return WithSnapshotJoinSpec(ctx, poi_tree, t,
                              [&](const PriorityJoinSpec& spec) {
                                return PriorityJoinThreshold(spec, tau);
                              });
}

std::vector<PoiFlow> IterativeSnapshotDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, int k) {
  std::vector<PoiFlow> flows = AllSnapshotFlows(ctx, poi_tree, subset_ids, t);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  for (PoiFlow& f : flows) {
    const double area = (*ctx.poi_areas)[static_cast<size_t>(f.poi)];
    f.flow = area > 0.0 ? f.flow / area : 0.0;
  }
  std::vector<PoiFlow> result = TopK(std::move(flows), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> JoinSnapshotDensity(const QueryContext& ctx,
                                         const RTree& poi_tree,
                                         const std::vector<PoiId>& subset_ids,
                                         Timestamp t, int k) {
  return WithSnapshotJoinSpec(
      ctx, poi_tree, t, [&](PriorityJoinSpec spec) {
        spec.density = true;
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

}  // namespace indoorflow
