#include "src/core/engine.h"

#include <limits>
#include <utility>

#include "src/common/executor.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"
#include "src/core/query_profile.h"

namespace indoorflow {

namespace {

// Registry handles for one query family ("snapshot" / "interval"), resolved
// once and cached: the hot path then touches only lock-free metric state.
struct EngineMetrics {
  explicit EngineMetrics(const std::string& prefix)
      : queries(MetricsRegistry::Default().counter(prefix + "count")),
        objects_retrieved(MetricsRegistry::Default().counter(
            prefix + "objects_retrieved")),
        regions_derived(
            MetricsRegistry::Default().counter(prefix + "regions_derived")),
        presence_evaluations(MetricsRegistry::Default().counter(
            prefix + "presence_evaluations")),
        pois_evaluated(
            MetricsRegistry::Default().counter(prefix + "pois_evaluated")),
        ur_cache_hits(
            MetricsRegistry::Default().counter(prefix + "ur_cache_hits")),
        latency_us(
            MetricsRegistry::Default().histogram(prefix + "latency_us")),
        retrieve_us(
            MetricsRegistry::Default().histogram(prefix + "retrieve_us")),
        derive_us(
            MetricsRegistry::Default().histogram(prefix + "derive_us")),
        presence_us(
            MetricsRegistry::Default().histogram(prefix + "presence_us")),
        topk_us(MetricsRegistry::Default().histogram(prefix + "topk_us")) {}

  Counter& queries;
  Counter& objects_retrieved;
  Counter& regions_derived;
  Counter& presence_evaluations;
  Counter& pois_evaluated;
  Counter& ur_cache_hits;
  Histogram& latency_us;
  Histogram& retrieve_us;
  Histogram& derive_us;
  Histogram& presence_us;
  Histogram& topk_us;
};

const EngineMetrics& SnapshotMetrics() {
  static const EngineMetrics* metrics =
      new EngineMetrics("query.snapshot.");
  return *metrics;
}

const EngineMetrics& IntervalMetrics() {
  static const EngineMetrics* metrics =
      new EngineMetrics("query.interval.");
  return *metrics;
}

// Folds one query's QueryStats delta and per-phase latency into the
// process-wide registry. When the caller passed no QueryStats, a local one
// is substituted (via the by-reference `stats` parameter) so the phase
// instrumentation always has somewhere to write; when the caller did pass
// one, only the delta accrued during this scope is recorded, keeping
// caller-side accumulation across queries intact.
//
// The scope also settles the EXPLAIN profile: the caller's QueryProfile
// (or, with a recorder attached and no caller profile, a substituted
// summary-mode one) gets the query's total time and stats delta, its
// verdicts finalized, and — if a flight recorder is attached — a copy
// handed to it.
//
// When the caller's QueryControl carries a request span (the serving
// path; see src/common/trace.h), the scope opens one engine span under
// it covering the whole query, synthesizes phase child spans from the
// QueryStats deltas on exit, and stamps the trace id into the profile so
// /profiles/recent rows join against /traces/recent and the query log.
class QueryMetricsScope {
 public:
  QueryMetricsScope(const EngineMetrics& metrics, const char* trace_name,
                    QueryStats*& stats, QueryProfile*& profile,
                    ProfileRecorder* recorder, const QueryControl* control)
      : metrics_(metrics),
        trace_name_(trace_name),
        recorder_(recorder),
        start_ns_(MonotonicNowNs()),
        span_(control != nullptr ? control->span() : nullptr, trace_name) {
    if (stats == nullptr) stats = &local_;
    stats_ = stats;
    before_ = *stats;
    if (profile == nullptr && recorder != nullptr) {
      local_profile_.emplace();
      local_profile_->detail = false;  // ambient recording stays cheap
      profile = &*local_profile_;
    }
    profile_ = profile;
    if (profile_ != nullptr) {
      profile_->kind = trace_name;
      if (span_.active()) profile_->trace_id = span_.trace_id_hex();
    }
  }
  QueryMetricsScope(const QueryMetricsScope&) = delete;
  QueryMetricsScope& operator=(const QueryMetricsScope&) = delete;

  ~QueryMetricsScope() {
    const int64_t total_ns = MonotonicNowNs() - start_ns_;
    const QueryStats& s = *stats_;
    metrics_.queries.Add(1);
    metrics_.objects_retrieved.Add(s.objects_retrieved -
                                   before_.objects_retrieved);
    metrics_.regions_derived.Add(s.regions_derived -
                                 before_.regions_derived);
    metrics_.presence_evaluations.Add(s.presence_evaluations -
                                      before_.presence_evaluations);
    metrics_.pois_evaluated.Add(s.pois_evaluated - before_.pois_evaluated);
    metrics_.ur_cache_hits.Add(s.ur_cache_hits - before_.ur_cache_hits);
    metrics_.latency_us.Record(static_cast<double>(total_ns) / 1000.0);
    metrics_.retrieve_us.Record(
        static_cast<double>(s.retrieve_ns - before_.retrieve_ns) / 1000.0);
    metrics_.derive_us.Record(
        static_cast<double>(s.derive_ns - before_.derive_ns) / 1000.0);
    metrics_.presence_us.Record(
        static_cast<double>(s.presence_ns - before_.presence_ns) / 1000.0);
    metrics_.topk_us.Record(
        static_cast<double>(s.topk_ns - before_.topk_ns) / 1000.0);
    if (profile_ != nullptr) {
      profile_->total_ns = total_ns;
      profile_->stats = s;
      profile_->stats -= before_;
      profile_->Finalize();
      if (recorder_ != nullptr) recorder_->Record(*profile_);
    }
    if (TracingEnabled()) {
      EmitTraceEvent(trace_name_, start_ns_ / 1000, total_ns / 1000);
    }
    if (span_.active()) {
      // Phase children synthesized from the same QueryStats deltas the
      // registry histograms record, so a trace's phase durations
      // reconcile with the stats by construction. The back-to-back
      // placement is approximate (phases interleave per object, and
      // parallel sections sum per-lane time), but every duration is the
      // measured one.
      int64_t cursor = start_ns_;
      const auto phase = [&](const char* name, int64_t dur_ns) {
        if (dur_ns <= 0) return;
        span_.RecordChild(name, cursor, dur_ns);
        cursor += dur_ns;
      };
      phase("retrieve", s.retrieve_ns - before_.retrieve_ns);
      phase("derive_ur", s.derive_ns - before_.derive_ns);
      phase("presence", s.presence_ns - before_.presence_ns);
      phase("topk", s.topk_ns - before_.topk_ns);
    }
  }

  /// The engine span lanes and cache events parent under; null when the
  /// request is unsampled so downstream sites skip all tracing work on a
  /// single pointer compare.
  const Span* span() const { return span_.active() ? &span_ : nullptr; }

 private:
  const EngineMetrics& metrics_;
  const char* trace_name_;
  QueryStats local_;
  QueryStats* stats_ = nullptr;
  QueryStats before_;
  std::optional<QueryProfile> local_profile_;
  QueryProfile* profile_ = nullptr;
  ProfileRecorder* recorder_ = nullptr;
  int64_t start_ns_;
  Span span_;
};

// The engine-side profile header: query identity, parameters, and the POI
// subset registration that anchors the verdict invariant.
void BeginProfile(QueryProfile* profile, Algorithm algorithm, double ts,
                  double te, int k, double tau,
                  const std::vector<PoiId>& ids) {
  if (profile == nullptr) return;
  profile->algorithm =
      algorithm == Algorithm::kJoin ? "join" : "iterative";
  profile->ts = ts;
  profile->te = te;
  profile->k = k;
  profile->tau = tau;
  profile->BeginPois(ids);
}

}  // namespace

QueryEngine::QueryEngine(const FloorPlan& plan, const DoorGraph& graph,
                         const Deployment& deployment,
                         const ObjectTrackingTable& table, const PoiSet& pois,
                         EngineConfig config)
    : table_(table),
      pois_(pois),
      config_(config),
      resolved_threads_(Executor::ResolveThreads(config.threads)) {
  INDOORFLOW_CHECK(table_.finalized());
  for (size_t i = 0; i < pois_.size(); ++i) {
    INDOORFLOW_CHECK(pois_[i].id == static_cast<PoiId>(i));
  }
  artree_ = ARTree::Build(table_, config_.artree_fanout);
  if (config_.topology != TopologyMode::kOff) {
    topology_.emplace(plan, graph, deployment);
  }
  model_ = std::make_unique<UncertaintyModel>(
      table_, deployment, config_.vmax,
      topology_.has_value() ? &*topology_ : nullptr, config_.topology);
  if (config_.ur_cache.enabled) {
    ur_cache_ = std::make_unique<UrCache>(config_.ur_cache);
  }
  poi_regions_.reserve(pois_.size());
  poi_areas_.reserve(pois_.size());
  for (const Poi& poi : pois_) {
    poi_regions_.push_back(Region::Make(poi.shape));
    // Degenerate polygons are demoted to exactly zero area here so every
    // downstream division (density ranking, area-aware join bounds) hits
    // the existing `area > 0` guards instead of a near-zero divisor.
    poi_areas_.push_back(EffectivePoiArea(poi.Area(), config_.flow));
  }
}

QueryEngine::QueryEngine(const Dataset& dataset, EngineConfig config)
    : QueryEngine(dataset.built.plan, *dataset.door_graph,
                  dataset.deployment, dataset.ott, dataset.pois,
                  [&] {
                    config.vmax = dataset.vmax;
                    return config;
                  }()) {}

QueryContext QueryEngine::MakeContext() const {
  QueryContext ctx;
  ctx.table = &table_;
  ctx.artree = &artree_;
  ctx.model = model_.get();
  ctx.pois = &pois_;
  ctx.poi_regions = &poi_regions_;
  ctx.poi_areas = &poi_areas_;
  ctx.flow = &config_.flow;
  ctx.ri_fanout = config_.ri_fanout;
  ctx.interval_sub_mbrs = config_.interval_sub_mbrs;
  ctx.join_area_bounds = config_.join_area_bounds;
  ctx.ur_cache = ur_cache_.get();
  ctx.threads = resolved_threads_;
  ctx.parallel_threshold = config_.parallel_threshold;
  // A null executor is the algorithms' "run serially" signal; resolving
  // here keeps the hot paths free of thread-count arithmetic.
  ctx.executor = resolved_threads_ > 1 ? &Executor::Default() : nullptr;
  return ctx;
}

std::vector<PoiId> QueryEngine::AllPoiIds() const {
  std::vector<PoiId> ids;
  ids.reserve(pois_.size());
  for (const Poi& poi : pois_) ids.push_back(poi.id);
  return ids;
}

RTree QueryEngine::BuildPoiTree(const std::vector<PoiId>& subset) const {
  std::vector<RTree::Item> items;
  items.reserve(subset.size());
  for (PoiId id : subset) {
    // Item::value carries the POI area for the area-aware join bounds and
    // the density ranking's min-area aggregate. Degenerate (zero-area)
    // POIs report +inf so EntryMinValue ignores them: their flows are
    // identically zero, and a zero min-area would otherwise zero out the
    // density bound of every sibling sharing the subtree.
    const double area = poi_areas_[static_cast<size_t>(id)];
    items.push_back(RTree::Item{
        id, pois_[static_cast<size_t>(id)].shape.Bounds(),
        area > 0.0 ? area : std::numeric_limits<double>::infinity()});
  }
  return RTree::BulkLoad(std::move(items), config_.poi_fanout);
}

const RTree& QueryEngine::AllPoiTree() const {
  MutexLock lock(poi_tree_mu_);
  if (!all_poi_tree_.has_value()) {
    all_poi_tree_.emplace(BuildPoiTree(AllPoiIds()));
  }
  return *all_poi_tree_;
}

QueryEngine::PoiSelection QueryEngine::SelectPois(
    const std::vector<PoiId>* subset) const {
  PoiSelection selection;
  if (subset != nullptr) {
    selection.ids = *subset;
    selection.owned.emplace(BuildPoiTree(selection.ids));
  } else {
    selection.ids = AllPoiIds();
    selection.shared = &AllPoiTree();
  }
  return selection;
}

std::vector<PoiFlow> QueryEngine::SnapshotTopK(
    Timestamp t, int k, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  // Approximate routing happens before the metrics scope so the estimate
  // path books exactly one query; kExact (the default) falls straight
  // through to the unchanged exact code below.
  if (config_.approx.mode != ApproxMode::kExact &&
      algorithm == Algorithm::kIterative) {
    return EstimatesToFlows(SnapshotTopKEstimate(t, k, config_.approx,
                                                 subset, stats, profile,
                                                 control));
  }
  return SnapshotTopKExact(t, k, algorithm, subset, stats, profile, control);
}

std::vector<PoiFlow> QueryEngine::SnapshotTopKExact(
    Timestamp t, int k, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  // The metrics scope keeps the routed name: this is SnapshotTopK's exact
  // body, reachable directly so a per-request approx=exact pin cannot be
  // re-routed by a sampled engine config.
  QueryMetricsScope scope(SnapshotMetrics(), "SnapshotTopK", stats, profile,
                          recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, algorithm, t, t, k, 0.0, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  switch (algorithm) {
    case Algorithm::kIterative:
      return IterativeSnapshot(ctx, poi_tree, ids, t, k);
    case Algorithm::kJoin:
      return JoinSnapshot(ctx, poi_tree, ids, t, k);
  }
  return {};
}

std::vector<std::vector<PoiFlow>> QueryEngine::SnapshotTopKBatch(
    const std::vector<Timestamp>& times, int k, Algorithm algorithm,
    const std::vector<PoiId>* subset, int threads) const {
  std::vector<std::vector<PoiFlow>> results(times.size());
  if (times.empty()) return results;
  // Each index is written by exactly one executor lane, so no shared work
  // counter is needed and the result order matches `times` no matter how
  // lanes interleave.
  Executor::Default().ParallelFor(
      times.size(), Executor::ResolveThreads(threads), [&](size_t i) {
        results[i] = SnapshotTopK(times[i], k, algorithm, subset);
      });
  return results;
}

std::vector<PoiFlow> QueryEngine::SnapshotDensityTopK(
    Timestamp t, int k, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  QueryMetricsScope scope(SnapshotMetrics(), "SnapshotDensityTopK", stats,
                          profile, recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, algorithm, t, t, k, 0.0, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  switch (algorithm) {
    case Algorithm::kIterative:
      return IterativeSnapshotDensity(ctx, poi_tree, ids, t, k);
    case Algorithm::kJoin:
      return JoinSnapshotDensity(ctx, poi_tree, ids, t, k);
  }
  return {};
}

std::vector<PoiFlow> QueryEngine::IntervalDensityTopK(
    Timestamp ts, Timestamp te, int k, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  QueryMetricsScope scope(IntervalMetrics(), "IntervalDensityTopK", stats,
                          profile, recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, algorithm, ts, te, k, 0.0, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  switch (algorithm) {
    case Algorithm::kIterative:
      return IterativeIntervalDensity(ctx, poi_tree, ids, ts, te, k);
    case Algorithm::kJoin:
      return JoinIntervalDensity(ctx, poi_tree, ids, ts, te, k);
  }
  return {};
}

Region QueryEngine::ObjectRegionAt(ObjectId object, Timestamp t) const {
  const SnapshotState state = ResolveSnapshotStateAt(table_, object, t);
  if (!state.active() && state.pre == kInvalidRecord &&
      state.suc == kInvalidRecord) {
    return Region();
  }
  return model_->Snapshot(state, t);
}

std::vector<ObjectId> QueryEngine::ActiveObjects(Timestamp t) const {
  std::vector<ARTreeEntry> entries;
  artree_.PointQuery(t, &entries);
  std::vector<ObjectId> objects;
  objects.reserve(entries.size());
  for (const ARTreeEntry& entry : entries) {
    objects.push_back(table_.record(entry.cur).object_id);
  }
  std::sort(objects.begin(), objects.end());
  objects.erase(std::unique(objects.begin(), objects.end()), objects.end());
  return objects;
}

std::vector<PoiFlow> QueryEngine::SnapshotThreshold(
    Timestamp t, double tau, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  QueryMetricsScope scope(SnapshotMetrics(), "SnapshotThreshold", stats,
                          profile, recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, algorithm, t, t, 0, tau, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  switch (algorithm) {
    case Algorithm::kIterative:
      return IterativeSnapshotThreshold(ctx, poi_tree, ids, t, tau);
    case Algorithm::kJoin:
      return JoinSnapshotThreshold(ctx, poi_tree, t, tau);
  }
  return {};
}

std::vector<PoiFlow> QueryEngine::IntervalThreshold(
    Timestamp ts, Timestamp te, double tau, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  QueryMetricsScope scope(IntervalMetrics(), "IntervalThreshold", stats,
                          profile, recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, algorithm, ts, te, 0, tau, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  switch (algorithm) {
    case Algorithm::kIterative:
      return IterativeIntervalThreshold(ctx, poi_tree, ids, ts, te, tau);
    case Algorithm::kJoin:
      return JoinIntervalThreshold(ctx, poi_tree, ts, te, tau);
  }
  return {};
}

std::vector<PoiFlow> QueryEngine::IntervalTopK(
    Timestamp ts, Timestamp te, int k, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  // As in SnapshotTopK: estimate routing precedes the metrics scope.
  if (config_.approx.mode != ApproxMode::kExact &&
      algorithm == Algorithm::kIterative) {
    return EstimatesToFlows(IntervalTopKEstimate(ts, te, k, config_.approx,
                                                 subset, stats, profile,
                                                 control));
  }
  return IntervalTopKExact(ts, te, k, algorithm, subset, stats, profile,
                           control);
}

std::vector<PoiFlow> QueryEngine::IntervalTopKExact(
    Timestamp ts, Timestamp te, int k, Algorithm algorithm,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  // IntervalTopK's exact body under its routed metrics name, as in
  // SnapshotTopKExact.
  QueryMetricsScope scope(IntervalMetrics(), "IntervalTopK", stats, profile,
                          recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, algorithm, ts, te, k, 0.0, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  switch (algorithm) {
    case Algorithm::kIterative:
      return IterativeInterval(ctx, poi_tree, ids, ts, te, k);
    case Algorithm::kJoin:
      return JoinInterval(ctx, poi_tree, ids, ts, te, k);
  }
  return {};
}

std::vector<FlowEstimate> QueryEngine::SnapshotTopKEstimate(
    Timestamp t, int k, const ApproxConfig& approx,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  QueryMetricsScope scope(SnapshotMetrics(), "SnapshotTopKEstimate", stats,
                          profile, recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, Algorithm::kIterative, t, t, k, 0.0, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  return IterativeSnapshotEstimate(ctx, poi_tree, ids, t, k, approx);
}

std::vector<FlowEstimate> QueryEngine::IntervalTopKEstimate(
    Timestamp ts, Timestamp te, int k, const ApproxConfig& approx,
    const std::vector<PoiId>* subset, QueryStats* stats,
    QueryProfile* profile, const QueryControl* control) const {
  QueryMetricsScope scope(IntervalMetrics(), "IntervalTopKEstimate", stats,
                          profile, recorder_, control);
  const PoiSelection selection = SelectPois(subset);
  const RTree& poi_tree = selection.tree();
  const std::vector<PoiId>& ids = selection.ids;
  BeginProfile(profile, Algorithm::kIterative, ts, te, k, 0.0, ids);
  QueryContext ctx = MakeContext();
  ctx.stats = stats;
  ctx.profile = profile;
  ctx.control = control;
  ctx.span = scope.span();
  return IterativeIntervalEstimate(ctx, poi_tree, ids, ts, te, k, approx);
}

}  // namespace indoorflow
