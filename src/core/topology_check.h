// Indoor topology check (paper Section 3.3).
//
// A raw uncertainty region is a purely Euclidean construct; parts of it may
// be unreachable once walls and doors are taken into account ("it is too far
// away for object o to be able to reach it", Figure 8). The check excludes
// from UR every point whose *indoor walking distance* from the involved
// devices exceeds the corresponding Vmax budget — including the paper's
// refinement that a part reachable only through an intermediate door must
// fit the budget along the full door path.
//
// Implementation: reachability is expressed as CSG region predicates
// (geometry/region_node.h) so the adaptive area integrator prunes
// unreachable parts with certified bounds:
//   * ReachableFrom(dev, rho)    = { q : ind(dev, q) <= r + rho } — the
//     indoor analog of Ring(dev, rho);
//   * ReachableBridge(a, b, L)   = { q : ind(a, q) + ind(b, q) <=
//     r_a + r_b + L } — the indoor analog of the extended ellipse Θ.
// Here ind(d, q) is the indoor walking distance from device d's center to q
// (Euclidean within a convex partition, through doors otherwise).

#ifndef INDOORFLOW_CORE_TOPOLOGY_CHECK_H_
#define INDOORFLOW_CORE_TOPOLOGY_CHECK_H_

#include <vector>

#include "src/geometry/region.h"
#include "src/indoor/door_graph.h"
#include "src/indoor/indoor_distance.h"
#include "src/tracking/deployment.h"

namespace indoorflow {

/// How uncertainty regions are checked against the indoor topology.
enum class TopologyMode {
  /// No check: purely Euclidean regions.
  kOff,
  /// The paper's check: split the UR into parts by partition and exclude
  /// each partition whose minimum indoor distance from the involved devices
  /// exceeds the budget. Performed eagerly at derivation time — this is the
  /// per-object cost Algorithm 1 pays for every object and the join
  /// algorithms avoid for pruned objects.
  kPartition,
  /// Refined, point-wise check: every point of the UR individually
  /// satisfies the indoor-distance budgets (the paper's "any part of space
  /// beyond that distance from the assumed door should be excluded",
  /// applied exactly). Strictly tighter than kPartition; evaluated lazily
  /// during area integration.
  kExact,
};

/// One reachability constraint attached to an uncertainty-region piece:
/// either a single anchor (from a Ring) — ind(dev, q) <= limit — or a
/// bridge pair (from a Θ) — ind(a, q) + ind(b, q) <= limit. Limits include
/// the detection radii.
struct PieceConstraint {
  DeviceId dev_a = -1;
  DeviceId dev_b = -1;  // -1 for single-anchor constraints
  double limit = 0.0;

  bool IsBridge() const { return dev_b >= 0; }
};

class TopologyChecker {
 public:
  /// Precomputes device-to-door indoor distances. Keeps references to all
  /// three arguments; they — and this checker — must outlive every Region
  /// returned by the factory methods below.
  TopologyChecker(const FloorPlan& plan, const DoorGraph& graph,
                  const Deployment& deployment);

  /// Applies `constraints` to one UR piece under the given mode (kOff
  /// returns the piece unchanged).
  Region ApplyToPiece(Region piece,
                      const std::vector<PieceConstraint>& constraints,
                      TopologyMode mode) const;

  /// Minimum indoor walking distance from device `dev`'s center to any
  /// point of partition `part` (0 when the device is in the partition).
  double MinIndoorToPartition(DeviceId dev, PartitionId part) const {
    return min_to_partition_[static_cast<size_t>(dev)]
                            [static_cast<size_t>(part)];
  }

  /// Points reachable from device `dev`'s range with at most `budget`
  /// meters of indoor walking.
  Region ReachableFrom(DeviceId dev, double budget) const;

  /// Points q such that walking range(a) -> q -> range(b) fits within
  /// `max_travel` meters indoors.
  Region ReachableBridge(DeviceId a, DeviceId b, double max_travel) const;

  /// Indoor walking distance from device `dev`'s center to `q` (infinity
  /// when q is outside every partition).
  double IndoorDistanceFrom(DeviceId dev, Point q) const;

  /// Grid-accelerated FloorPlan::PartitionsAt.
  void PartitionsAt(Point q, std::vector<PartitionId>* out) const;

  const FloorPlan& plan() const { return plan_; }

 private:
  friend class ReachableNodeBase;

  const FloorPlan& plan_;
  const Deployment& deployment_;
  // to_door_[dev][door]: indoor distance from device center to the door.
  std::vector<std::vector<double>> to_door_;
  // min_to_partition_[dev][part]: min indoor distance to the partition.
  std::vector<std::vector<double>> min_to_partition_;
  // One shared Region per partition shape (Regions are cheap to copy).
  std::vector<Region> partition_regions_;

  // Uniform grid over the plan bounds mapping cells to candidate
  // partitions — accelerates the point-wise (kExact) reachability nodes'
  // box-to-partition resolution.
  friend class PartitionGridAccess;
  Box grid_bounds_;
  double grid_cell_ = 1.0;
  int grid_cols_ = 0;
  int grid_rows_ = 0;
  std::vector<std::vector<PartitionId>> grid_cells_;
  // Partitions containing each device center (door devices sit on walls and
  // belong to two partitions).
  std::vector<std::vector<PartitionId>> device_partitions_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_TOPOLOGY_CHECK_H_
