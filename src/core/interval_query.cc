#include "src/core/interval_query.h"

#include <unordered_map>
#include <utility>

#include "src/common/metrics.h"
#include "src/core/approx.h"
#include "src/core/parallel_flows.h"
#include "src/core/priority_join.h"
#include "src/core/query_profile.h"
#include "src/core/tracking_state.h"
#include "src/core/ur_cache.h"

namespace indoorflow {

namespace {

// AR-tree range query -> the distinct objects with relevant records, each
// with its Table-3 record chain (Algorithm 4 lines 3-8).
std::vector<IntervalChain> CollectChains(const QueryContext& ctx,
                                         Timestamp ts, Timestamp te) {
  const int64_t start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<ARTreeEntry> entries;
  ctx.artree->RangeQuery(ts, te, &entries);
  std::unordered_map<ObjectId, bool> seen;
  std::vector<IntervalChain> chains;
  for (const ARTreeEntry& le : entries) {
    const ObjectId object = ctx.table->record(le.cur).object_id;
    if (!seen.emplace(object, true).second) continue;
    IntervalChain chain = RelevantChain(*ctx.table, object, ts, te);
    if (!chain.records.empty()) chains.push_back(std::move(chain));
  }
  if (ctx.stats != nullptr) {
    ctx.stats->retrieve_ns += MonotonicNowNs() - start;
  }
  return chains;
}

// The iterative algorithms' per-chain accumulation (Algorithm 4 lines
// 9-12). As in AccumulateSnapshotFlows, the sampled path reuses this over a
// subsampled `chains` vector with `flows_sq` collecting squares; the exact
// path passes nullptr.
void AccumulateIntervalFlows(const QueryContext& ctx, const RTree& poi_tree,
                             const std::vector<IntervalChain>& chains,
                             Timestamp ts, Timestamp te,
                             std::unordered_map<PoiId, double>* flows,
                             std::unordered_map<PoiId, double>* flows_sq) {
  std::vector<int32_t> candidates;
  // Parallel path: per-chain map across the executor plus an ordered
  // reduce (bit-identical to the serial loop below; see parallel_flows.h).
  const bool parallel = ParallelAccumulateFlows(
      ctx, poi_tree, chains, UrCache::Kind::kInterval, ts, te,
      [](const IntervalChain& chain) { return chain.object; },
      [&](const IntervalChain& chain) {
        return ctx.model->Interval(chain, ts, te);
      },
      flows, flows_sq);

  // Serial path. Same phase bracketing as AllSnapshotFlows: derive and
  // presence spans per chain, two clock reads each; EXPLAIN shares the
  // brackets.
  const bool timed = ctx.stats != nullptr;
  QueryProfile* profile = ctx.profile;
  const bool clocked = timed || profile != nullptr;
  UrCache* const shared_cache = ctx.ur_cache;
  const size_t serial_count = parallel ? 0 : chains.size();
  for (size_t c = 0; c < serial_count; ++c) {
    // Cooperative abandonment, as in AllSnapshotFlows: one poll per chain.
    if (QueryAborted(ctx)) break;
    const IntervalChain& chain = chains[c];
    Region ur;
    UrCache::PresenceMemoPtr memo;
    // As in AllSnapshotFlows: a hit hands back the identical shared CSG
    // tree, so flows are bit-identical; it books a ur_cache_hit instead of
    // a derivation.
    if (shared_cache != nullptr &&
        shared_cache->Lookup(chain.object, UrCache::Kind::kInterval, ts, te,
                             &ur, &memo, ctx.span)) {
      if (timed) ++ctx.stats->ur_cache_hits;
    } else {
      const int64_t derive_start = clocked ? MonotonicNowNs() : 0;
      ur = ctx.model->Interval(chain, ts, te);  // line 9
      if (clocked) {
        const int64_t derive_ns = MonotonicNowNs() - derive_start;
        if (timed) {
          ctx.stats->derive_ns += derive_ns;
          ++ctx.stats->regions_derived;
        }
        if (profile != nullptr) {
          profile->AddObjectCost(chain.object, derive_ns);
        }
      }
      if (shared_cache != nullptr) {
        shared_cache->Insert(chain.object, UrCache::Kind::kInterval, ts, te,
                             ur, &memo);
      }
    }
    if (ur.IsEmpty()) continue;
    poi_tree.IntersectionQuery(ur.Bounds(), &candidates);  // line 10
    const int64_t presence_start = timed ? MonotonicNowNs() : 0;
    for (int32_t poi_id : candidates) {
      // Memoized integrals are bit-identical to re-evaluation over the
      // same cached region; only real evaluations are booked.
      double presence;
      if (memo == nullptr || !memo->TryGet(poi_id, &presence)) {
        presence = Presence(
            ur, (*ctx.poi_areas)[static_cast<size_t>(poi_id)],
            (*ctx.poi_regions)[static_cast<size_t>(poi_id)], *ctx.flow);
        if (timed) ++ctx.stats->presence_evaluations;
        if (memo != nullptr) memo->Put(poi_id, presence);
      }
      (*flows)[poi_id] += presence;
      if (flows_sq != nullptr) {
        (*flows_sq)[poi_id] += presence * presence;
      }
      if (profile != nullptr) profile->MarkPresence(poi_id, presence);
    }
    if (timed) ctx.stats->presence_ns += MonotonicNowNs() - presence_start;
  }
}

// The iterative algorithms' flow accumulation (Algorithm 4 lines 1-12).
std::vector<PoiFlow> AllIntervalFlows(const QueryContext& ctx,
                                      const RTree& poi_tree,
                                      const std::vector<PoiId>& subset_ids,
                                      Timestamp ts, Timestamp te) {
  std::unordered_map<PoiId, double> flows;
  flows.reserve(subset_ids.size());
  for (PoiId id : subset_ids) flows[id] = 0.0;
  const std::vector<IntervalChain> chains = CollectChains(ctx, ts, te);
  if (ctx.stats != nullptr) {
    ctx.stats->objects_retrieved += static_cast<int64_t>(chains.size());
    ctx.stats->pois_evaluated += static_cast<int64_t>(subset_ids.size());
  }
  AccumulateIntervalFlows(ctx, poi_tree, chains, ts, te, &flows, nullptr);
  std::vector<PoiFlow> all;
  all.reserve(flows.size());
  for (const auto& [id, flow] : flows) all.push_back(PoiFlow{id, flow});
  return all;
}

// Phase 1 of Algorithm 5 (lines 1-9): R_I from trajectory MBRs, with the
// finer per-ellipse sub-MBRs attached to leaf entries when enabled; hands
// the assembled join spec to `run`.
template <typename Run>
std::vector<PoiFlow> WithIntervalJoinSpec(const QueryContext& ctx,
                                          const RTree& poi_tree, Timestamp ts,
                                          Timestamp te, const Run& run) {
  std::vector<IntervalChain> chains = CollectChains(ctx, ts, te);
  if (ctx.stats != nullptr) {
    ctx.stats->objects_retrieved += static_cast<int64_t>(chains.size());
  }
  // As in WithSnapshotJoinSpec: topk_ns gets the join span minus the
  // derive/presence time booked inside it.
  const int64_t join_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  const int64_t derive_before =
      ctx.stats != nullptr ? ctx.stats->derive_ns : 0;
  const int64_t presence_before =
      ctx.stats != nullptr ? ctx.stats->presence_ns : 0;
  std::vector<AggregateRTree::ObjectEntry> objects;
  std::vector<const IntervalChain*> slot_chains;
  objects.reserve(chains.size());
  slot_chains.reserve(chains.size());
  for (const IntervalChain& chain : chains) {
    AggregateRTree::ObjectEntry entry;
    entry.object = chain.object;
    ctx.model->IntervalMbrs(chain, ts, te, &entry.mbr,
                            ctx.interval_sub_mbrs ? &entry.sub_mbrs
                                                  : nullptr);
    if (entry.mbr.Empty()) continue;
    objects.push_back(std::move(entry));
    slot_chains.push_back(&chain);
  }
  const AggregateRTree agg =
      AggregateRTree::Build(std::move(objects), ctx.ri_fanout);

  // Per-query slot map over the shared cross-query cache, as in
  // WithSnapshotJoinSpec.
  UrCache* const shared_cache = ctx.ur_cache;
  std::unordered_map<int32_t, Region> slot_urs;
  std::unordered_map<int32_t, UrCache::PresenceMemoPtr> slot_memos;
  const auto ur_of = [&](int32_t slot) -> const Region& {
    auto it = slot_urs.find(slot);
    if (it == slot_urs.end()) {
      const IntervalChain& chain = *slot_chains[static_cast<size_t>(slot)];
      Region cached;
      UrCache::PresenceMemoPtr memo;
      if (shared_cache != nullptr &&
          shared_cache->Lookup(chain.object, UrCache::Kind::kInterval, ts, te,
                               &cached, &memo, ctx.span)) {
        if (ctx.stats != nullptr) ++ctx.stats->ur_cache_hits;
        slot_memos.emplace(slot, std::move(memo));
        return slot_urs.emplace(slot, std::move(cached)).first->second;
      }
      const bool clocked = ctx.stats != nullptr || ctx.profile != nullptr;
      const int64_t derive_start = clocked ? MonotonicNowNs() : 0;
      it = slot_urs.emplace(slot, ctx.model->Interval(chain, ts, te)).first;
      if (clocked) {
        const int64_t derive_ns = MonotonicNowNs() - derive_start;
        if (ctx.stats != nullptr) {
          ctx.stats->derive_ns += derive_ns;
          ++ctx.stats->regions_derived;
        }
        if (ctx.profile != nullptr) {
          ctx.profile->AddObjectCost(chain.object, derive_ns);
        }
      }
      if (shared_cache != nullptr) {
        shared_cache->Insert(chain.object, UrCache::Kind::kInterval, ts, te,
                             it->second, &memo);
        slot_memos.emplace(slot, std::move(memo));
      }
    }
    return it->second;
  };

  PriorityJoinSpec spec;
  spec.poi_tree = &poi_tree;
  spec.objects = &agg;
  spec.poi_areas = ctx.poi_areas;
  spec.poi_regions = ctx.poi_regions;
  spec.flow = ctx.flow;
  spec.ur_of = ur_of;
  if (shared_cache != nullptr) {
    // As in WithSnapshotJoinSpec: consult the entry's presence memo before
    // integrating; memoized doubles keep join flows bit-identical.
    spec.presence_of = [&ur_of, &slot_memos, &ctx](int32_t slot,
                                                   int32_t poi_id) {
      const Region& ur = ur_of(slot);  // fills slot_memos[slot]
      const auto memo_it = slot_memos.find(slot);
      UrCache::PresenceMemo* memo =
          memo_it != slot_memos.end() ? memo_it->second.get() : nullptr;
      double presence;
      if (memo != nullptr && memo->TryGet(poi_id, &presence)) {
        return presence;
      }
      presence = Presence(ur, (*ctx.poi_areas)[static_cast<size_t>(poi_id)],
                          (*ctx.poi_regions)[static_cast<size_t>(poi_id)],
                          *ctx.flow);
      if (ctx.stats != nullptr) ++ctx.stats->presence_evaluations;
      if (memo != nullptr) memo->Put(poi_id, presence);
      return presence;
    };
  }
  // Intra-query parallelism for big leaf rounds, as in
  // WithSnapshotJoinSpec (empty function when the engine is serial).
  spec.presence_batch = MakeJoinPresenceBatch(
      ctx, &slot_urs, &slot_memos, &spec.ur_of, &spec.presence_of,
      UrCache::Kind::kInterval, ts, te,
      [&slot_chains](int32_t slot) {
        return slot_chains[static_cast<size_t>(slot)]->object;
      },
      [&ctx, &slot_chains, ts, te](int32_t slot) {
        return ctx.model->Interval(
            *slot_chains[static_cast<size_t>(slot)], ts, te);
      });
  spec.stats = ctx.stats;
  spec.profile = ctx.profile;
  spec.area_bounds = ctx.join_area_bounds;
  spec.control = ctx.control;
  std::vector<PoiFlow> result = run(spec);
  if (ctx.stats != nullptr) {
    const int64_t span = MonotonicNowNs() - join_start;
    const int64_t inner = (ctx.stats->derive_ns - derive_before) +
                          (ctx.stats->presence_ns - presence_before);
    ctx.stats->topk_ns += span > inner ? span - inner : 0;
  }
  return result;
}

}  // namespace

std::vector<PoiFlow> IterativeInterval(const QueryContext& ctx,
                                       const RTree& poi_tree,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp ts, Timestamp te, int k) {
  std::vector<PoiFlow> flows =
      AllIntervalFlows(ctx, poi_tree, subset_ids, ts, te);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<PoiFlow> result = TopK(std::move(flows), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<FlowEstimate> IterativeIntervalEstimate(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te, int k,
    const ApproxConfig& approx) {
  const std::vector<IntervalChain> chains = CollectChains(ctx, ts, te);
  const size_t population = chains.size();
  if (ctx.stats != nullptr) {
    ctx.stats->objects_retrieved += static_cast<int64_t>(population);
    ctx.stats->pois_evaluated += static_cast<int64_t>(subset_ids.size());
  }
  const bool sample = ShouldSample(approx, population);

  std::unordered_map<PoiId, double> flows;
  std::unordered_map<PoiId, double> flows_sq;
  flows.reserve(subset_ids.size());
  for (PoiId id : subset_ids) flows[id] = 0.0;
  size_t evaluated = population;
  if (sample) {
    // Deterministic subsample in canonical (filter-phase) order, evaluated
    // by the exact accumulation loop above.
    const std::vector<size_t> picks =
        SampleIndices(population, static_cast<size_t>(approx.sample_budget),
                      MixSampleSeed(approx.seed, ts, te));
    std::vector<IntervalChain> sampled;
    sampled.reserve(picks.size());
    for (size_t i : picks) sampled.push_back(chains[i]);
    evaluated = sampled.size();
    flows_sq.reserve(subset_ids.size());
    for (PoiId id : subset_ids) flows_sq[id] = 0.0;
    AccumulateIntervalFlows(ctx, poi_tree, sampled, ts, te, &flows,
                            &flows_sq);
  } else {
    AccumulateIntervalFlows(ctx, poi_tree, chains, ts, te, &flows, nullptr);
  }
  std::vector<FlowEstimate> estimates =
      EstimateFlows(subset_ids, flows, flows_sq, population, evaluated);

  if (ctx.stats != nullptr) {
    ctx.stats->sample_population += static_cast<int64_t>(population);
    ctx.stats->sample_size += static_cast<int64_t>(evaluated);
  }
  if (ctx.profile != nullptr) {
    ctx.profile->approx_mode = ApproxModeName(approx.mode);
    ctx.profile->sampled = sample;
    ctx.profile->sample_budget = approx.sample_budget;
    ctx.profile->sample_population = static_cast<int64_t>(population);
    ctx.profile->sample_size = static_cast<int64_t>(evaluated);
    for (const FlowEstimate& est : estimates) {
      if (est.std_err > ctx.profile->max_std_err) {
        ctx.profile->max_std_err = est.std_err;
      }
    }
  }

  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<FlowEstimate> result = TopKEstimates(std::move(estimates), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> IterativeIntervalThreshold(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te,
    double tau) {
  std::vector<PoiFlow> flows =
      AllIntervalFlows(ctx, poi_tree, subset_ids, ts, te);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  std::vector<PoiFlow> result = FlowsAtLeast(std::move(flows), tau);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> JoinInterval(const QueryContext& ctx,
                                  const RTree& poi_tree,
                                  const std::vector<PoiId>& subset_ids,
                                  Timestamp ts, Timestamp te, int k) {
  return WithIntervalJoinSpec(
      ctx, poi_tree, ts, te, [&](const PriorityJoinSpec& spec) {
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

std::vector<PoiFlow> JoinIntervalThreshold(const QueryContext& ctx,
                                           const RTree& poi_tree,
                                           Timestamp ts, Timestamp te,
                                           double tau) {
  return WithIntervalJoinSpec(ctx, poi_tree, ts, te,
                              [&](const PriorityJoinSpec& spec) {
                                return PriorityJoinThreshold(spec, tau);
                              });
}

std::vector<PoiFlow> IterativeIntervalDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te,
    int k) {
  std::vector<PoiFlow> flows =
      AllIntervalFlows(ctx, poi_tree, subset_ids, ts, te);
  const int64_t topk_start = ctx.stats != nullptr ? MonotonicNowNs() : 0;
  for (PoiFlow& f : flows) {
    const double area = (*ctx.poi_areas)[static_cast<size_t>(f.poi)];
    f.flow = area > 0.0 ? f.flow / area : 0.0;
  }
  std::vector<PoiFlow> result = TopK(std::move(flows), k);
  if (ctx.stats != nullptr) {
    ctx.stats->topk_ns += MonotonicNowNs() - topk_start;
  }
  return result;
}

std::vector<PoiFlow> JoinIntervalDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te,
    int k) {
  return WithIntervalJoinSpec(
      ctx, poi_tree, ts, te, [&](PriorityJoinSpec spec) {
        spec.density = true;
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

}  // namespace indoorflow
