#include "src/core/interval_query.h"

#include <unordered_map>
#include <utility>

#include "src/core/priority_join.h"
#include "src/core/tracking_state.h"

namespace indoorflow {

namespace {

// AR-tree range query -> the distinct objects with relevant records, each
// with its Table-3 record chain (Algorithm 4 lines 3-8).
std::vector<IntervalChain> CollectChains(const QueryContext& ctx,
                                         Timestamp ts, Timestamp te) {
  std::vector<ARTreeEntry> entries;
  ctx.artree->RangeQuery(ts, te, &entries);
  std::unordered_map<ObjectId, bool> seen;
  std::vector<IntervalChain> chains;
  for (const ARTreeEntry& le : entries) {
    const ObjectId object = ctx.table->record(le.cur).object_id;
    if (!seen.emplace(object, true).second) continue;
    IntervalChain chain = RelevantChain(*ctx.table, object, ts, te);
    if (!chain.records.empty()) chains.push_back(std::move(chain));
  }
  return chains;
}

// The iterative algorithms' flow accumulation (Algorithm 4 lines 1-12).
std::vector<PoiFlow> AllIntervalFlows(const QueryContext& ctx,
                                      const RTree& poi_tree,
                                      const std::vector<PoiId>& subset_ids,
                                      Timestamp ts, Timestamp te) {
  std::unordered_map<PoiId, double> flows;
  flows.reserve(subset_ids.size());
  for (PoiId id : subset_ids) flows[id] = 0.0;

  std::vector<int32_t> candidates;
  const std::vector<IntervalChain> chains = CollectChains(ctx, ts, te);
  if (ctx.stats != nullptr) {
    ctx.stats->objects_retrieved += static_cast<int64_t>(chains.size());
    ctx.stats->pois_evaluated += static_cast<int64_t>(subset_ids.size());
  }
  for (const IntervalChain& chain : chains) {
    const Region ur = ctx.model->Interval(chain, ts, te);  // line 9
    if (ctx.stats != nullptr) ++ctx.stats->regions_derived;
    if (ur.IsEmpty()) continue;
    poi_tree.IntersectionQuery(ur.Bounds(), &candidates);  // line 10
    for (int32_t poi_id : candidates) {
      flows[poi_id] += Presence(
          ur, (*ctx.poi_areas)[static_cast<size_t>(poi_id)],
          (*ctx.poi_regions)[static_cast<size_t>(poi_id)], *ctx.flow);
      if (ctx.stats != nullptr) ++ctx.stats->presence_evaluations;
    }
  }

  std::vector<PoiFlow> all;
  all.reserve(flows.size());
  for (const auto& [id, flow] : flows) all.push_back(PoiFlow{id, flow});
  return all;
}

// Phase 1 of Algorithm 5 (lines 1-9): R_I from trajectory MBRs, with the
// finer per-ellipse sub-MBRs attached to leaf entries when enabled; hands
// the assembled join spec to `run`.
template <typename Run>
std::vector<PoiFlow> WithIntervalJoinSpec(const QueryContext& ctx,
                                          const RTree& poi_tree, Timestamp ts,
                                          Timestamp te, const Run& run) {
  std::vector<IntervalChain> chains = CollectChains(ctx, ts, te);
  if (ctx.stats != nullptr) {
    ctx.stats->objects_retrieved += static_cast<int64_t>(chains.size());
  }
  std::vector<AggregateRTree::ObjectEntry> objects;
  std::vector<const IntervalChain*> slot_chains;
  objects.reserve(chains.size());
  slot_chains.reserve(chains.size());
  for (const IntervalChain& chain : chains) {
    AggregateRTree::ObjectEntry entry;
    entry.object = chain.object;
    ctx.model->IntervalMbrs(chain, ts, te, &entry.mbr,
                            ctx.interval_sub_mbrs ? &entry.sub_mbrs
                                                  : nullptr);
    if (entry.mbr.Empty()) continue;
    objects.push_back(std::move(entry));
    slot_chains.push_back(&chain);
  }
  const AggregateRTree agg =
      AggregateRTree::Build(std::move(objects), ctx.ri_fanout);

  std::unordered_map<int32_t, Region> ur_cache;
  const auto ur_of = [&](int32_t slot) -> const Region& {
    auto it = ur_cache.find(slot);
    if (it == ur_cache.end()) {
      it = ur_cache
               .emplace(slot,
                        ctx.model->Interval(
                            *slot_chains[static_cast<size_t>(slot)], ts, te))
               .first;
      if (ctx.stats != nullptr) ++ctx.stats->regions_derived;
    }
    return it->second;
  };

  PriorityJoinSpec spec;
  spec.poi_tree = &poi_tree;
  spec.objects = &agg;
  spec.poi_areas = ctx.poi_areas;
  spec.poi_regions = ctx.poi_regions;
  spec.flow = ctx.flow;
  spec.ur_of = ur_of;
  spec.stats = ctx.stats;
  spec.area_bounds = ctx.join_area_bounds;
  return run(spec);
}

}  // namespace

std::vector<PoiFlow> IterativeInterval(const QueryContext& ctx,
                                       const RTree& poi_tree,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp ts, Timestamp te, int k) {
  return TopK(AllIntervalFlows(ctx, poi_tree, subset_ids, ts, te), k);
}

std::vector<PoiFlow> IterativeIntervalThreshold(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te,
    double tau) {
  return FlowsAtLeast(AllIntervalFlows(ctx, poi_tree, subset_ids, ts, te),
                      tau);
}

std::vector<PoiFlow> JoinInterval(const QueryContext& ctx,
                                  const RTree& poi_tree,
                                  const std::vector<PoiId>& subset_ids,
                                  Timestamp ts, Timestamp te, int k) {
  return WithIntervalJoinSpec(
      ctx, poi_tree, ts, te, [&](const PriorityJoinSpec& spec) {
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

std::vector<PoiFlow> JoinIntervalThreshold(const QueryContext& ctx,
                                           const RTree& poi_tree,
                                           Timestamp ts, Timestamp te,
                                           double tau) {
  return WithIntervalJoinSpec(ctx, poi_tree, ts, te,
                              [&](const PriorityJoinSpec& spec) {
                                return PriorityJoinThreshold(spec, tau);
                              });
}

std::vector<PoiFlow> IterativeIntervalDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te,
    int k) {
  std::vector<PoiFlow> flows =
      AllIntervalFlows(ctx, poi_tree, subset_ids, ts, te);
  for (PoiFlow& f : flows) {
    const double area = (*ctx.poi_areas)[static_cast<size_t>(f.poi)];
    f.flow = area > 0.0 ? f.flow / area : 0.0;
  }
  return TopK(std::move(flows), k);
}

std::vector<PoiFlow> JoinIntervalDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te,
    int k) {
  return WithIntervalJoinSpec(
      ctx, poi_tree, ts, te, [&](PriorityJoinSpec spec) {
        spec.density = true;
        return PriorityJoinTopK(spec, k, subset_ids);
      });
}

}  // namespace indoorflow
