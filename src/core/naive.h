// Naive reference implementations of both query types.
//
// No AR-tree, no R-trees, no priority join: scan every object's full chain,
// derive its uncertainty region, and evaluate presence against every query
// POI. Deliberately simple enough to be obviously correct — used as a
// differential oracle in tests and as the no-index baseline in
// bench_ablation (what the paper's index structures buy end to end).

#ifndef INDOORFLOW_CORE_NAIVE_H_
#define INDOORFLOW_CORE_NAIVE_H_

#include <vector>

#include "src/core/flow.h"
#include "src/core/uncertainty.h"

namespace indoorflow {

struct NaiveContext {
  const ObjectTrackingTable* table = nullptr;
  const UncertaintyModel* model = nullptr;
  const PoiSet* pois = nullptr;  // id == index
  FlowConfig flow;
};

/// Problem 1 by exhaustive scan.
std::vector<PoiFlow> NaiveSnapshotTopK(const NaiveContext& ctx,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp t, int k);

/// Problem 2 by exhaustive scan.
std::vector<PoiFlow> NaiveIntervalTopK(const NaiveContext& ctx,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp ts, Timestamp te, int k);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_NAIVE_H_
