// Internal helper for the iterative algorithms' parallel path: fan the
// per-object "derive UR -> find candidate POIs -> integrate presences"
// work across the shared executor, then fold the results back serially.
//
// Bit-identity argument: every per-object value (the derived region, the
// candidate list, each presence integral) is computed independently per
// object — identical to what the serial loop computes for that object.
// The only order-sensitive step is the floating-point accumulation into
// per-POI flows, so that step (plus all stats/EXPLAIN bookkeeping, since
// QueryProfile is not thread-safe) runs in the ordered reduce, visiting
// objects in exactly the serial loop's order. The UR cache and presence
// memos are internally synchronized and return the identical shared
// values a serial run would see (see src/core/ur_cache.h), so the
// parallel path is observationally equal to the serial one; enforced by
// tests/parallel_differential_test.cc.
//
// The streaming monitor's sharded CurrentTopK (src/core/streaming.cc)
// follows the same recipe at shard granularity: independent per-shard
// tallies derived in parallel lanes, then one serial object-id-ordered
// reduce — which is why its results are bit-identical across shard
// counts for the same reason this path is bit-identical to serial.

#ifndef INDOORFLOW_CORE_PARALLEL_FLOWS_H_
#define INDOORFLOW_CORE_PARALLEL_FLOWS_H_

#include <cstdint>
#include <functional>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/executor.h"
#include "src/common/metrics.h"
#include "src/core/flow.h"
#include "src/core/query_context.h"
#include "src/core/query_profile.h"
#include "src/core/ur_cache.h"
#include "src/geometry/region.h"
#include "src/index/rtree.h"

namespace indoorflow {

/// One object's privately computed share of an iterative query. Workers
/// fill distinct tallies (no sharing); the reduce consumes them in order.
struct ParallelFlowTally {
  ObjectId object = 0;
  Region ur;
  UrCache::PresenceMemoPtr memo;
  bool cache_hit = false;
  bool derived = false;
  int64_t derive_ns = 0;
  std::vector<int32_t> candidates;
  std::vector<double> presences;  // aligned with candidates
  int64_t presence_evals = 0;
  int64_t presence_ns = 0;
};

/// Parallel map + ordered reduce over `items` (snapshot states or interval
/// chains). Returns false — computing nothing — when the context calls for
/// a serial run (no executor, or fewer items than the parallel threshold);
/// the caller then runs its serial loop. On true, per-POI presences have
/// been accumulated into `*flows` and all stats/profile bookkeeping done,
/// bit-identical to the serial loop.
///
/// `object_of(item)` names the item's object; `derive(item)` builds its
/// uncertainty region and must be safe to call concurrently for distinct
/// items (UncertaintyModel is const / stateless per call).
/// When `flows_sq` is non-null the reduce also accumulates each presence's
/// square per POI (for the sampling estimator's variance); passing nullptr
/// leaves the exact path's behavior untouched.
template <typename Item, typename ObjectOf, typename DeriveFn>
bool ParallelAccumulateFlows(const QueryContext& ctx, const RTree& poi_tree,
                             const std::vector<Item>& items,
                             UrCache::Kind kind, Timestamp ts, Timestamp te,
                             const ObjectOf& object_of, const DeriveFn& derive,
                             std::unordered_map<PoiId, double>* flows,
                             std::unordered_map<PoiId, double>* flows_sq =
                                 nullptr) {
  if (ctx.executor == nullptr || ctx.threads <= 1 ||
      items.size() < static_cast<size_t>(ctx.parallel_threshold)) {
    return false;
  }
  UrCache* const shared_cache = ctx.ur_cache;
  std::vector<ParallelFlowTally> tallies(items.size());
  const int64_t fan_start = MonotonicNowNs();
  const int lanes = ctx.executor->ParallelFor(
      items.size(), ctx.threads,
      [&](size_t i) {
        // Cooperative abandonment mid-fan-out: a tripped deadline/cancel
        // poll leaves this tally untouched (derived=false, no candidates),
        // so the ordered reduce books nothing for it. Every lane sees the
        // sticky flag within one item, and the caller discards the
        // partial flows once control->Aborted() reports the abort.
        if (QueryAborted(ctx)) return;
        ParallelFlowTally& tally = tallies[i];
        const Item& item = items[i];
        tally.object = object_of(item);
        if (shared_cache != nullptr &&
            shared_cache->Lookup(tally.object, kind, ts, te, &tally.ur,
                                 &tally.memo, ctx.span)) {
          tally.cache_hit = true;
        } else {
          const int64_t derive_start = MonotonicNowNs();
          tally.ur = derive(item);
          tally.derive_ns = MonotonicNowNs() - derive_start;
          tally.derived = true;
          if (shared_cache != nullptr) {
            shared_cache->Insert(tally.object, kind, ts, te, tally.ur,
                                 &tally.memo);
          }
        }
        if (tally.ur.IsEmpty()) return;
        poi_tree.IntersectionQuery(tally.ur.Bounds(), &tally.candidates);
        const int64_t presence_start = MonotonicNowNs();
        tally.presences.reserve(tally.candidates.size());
        for (int32_t poi_id : tally.candidates) {
          double presence;
          if (tally.memo == nullptr ||
              !tally.memo->TryGet(poi_id, &presence)) {
            presence = Presence(
                tally.ur, (*ctx.poi_areas)[static_cast<size_t>(poi_id)],
                (*ctx.poi_regions)[static_cast<size_t>(poi_id)], *ctx.flow);
            ++tally.presence_evals;
            if (tally.memo != nullptr) tally.memo->Put(poi_id, presence);
          }
          tally.presences.push_back(presence);
        }
        tally.presence_ns = MonotonicNowNs() - presence_start;
      },
      ctx.span);
  const int64_t fan_ns = MonotonicNowNs() - fan_start;

  // Ordered reduce: flow additions happen in the serial loop's object and
  // candidate order, so every accumulated double matches bit for bit; the
  // not-thread-safe QueryProfile is only touched here. derive_ns and
  // presence_ns sum the per-worker spans (they can exceed wall time when
  // lanes overlap — parallel_ns has the wall-clock view).
  QueryStats* const stats = ctx.stats;
  QueryProfile* const profile = ctx.profile;
  if (stats != nullptr) {
    stats->parallel_tasks += lanes;
    stats->parallel_ns += fan_ns;
  }
  for (ParallelFlowTally& tally : tallies) {
    if (tally.cache_hit) {
      if (stats != nullptr) ++stats->ur_cache_hits;
    } else if (tally.derived) {
      if (stats != nullptr) {
        stats->derive_ns += tally.derive_ns;
        ++stats->regions_derived;
      }
      if (profile != nullptr) {
        profile->AddObjectCost(tally.object, tally.derive_ns);
      }
    }
    if (stats != nullptr) {
      stats->presence_evaluations += tally.presence_evals;
      stats->presence_ns += tally.presence_ns;
    }
    for (size_t c = 0; c < tally.candidates.size(); ++c) {
      const int32_t poi_id = tally.candidates[c];
      (*flows)[poi_id] += tally.presences[c];
      if (flows_sq != nullptr) {
        (*flows_sq)[poi_id] += tally.presences[c] * tally.presences[c];
      }
      if (profile != nullptr) {
        profile->MarkPresence(poi_id, tally.presences[c]);
      }
    }
  }
  return true;
}

/// One slot's privately computed share of a join leaf batch (see
/// MakeJoinPresenceBatch). Workers fill distinct tallies.
struct JoinSlotTally {
  ObjectId object = 0;
  Region ur;                      // only when derived / cache-hit here
  UrCache::PresenceMemoPtr memo;  // only when fetched here
  bool cache_hit = false;
  bool derived = false;
  int64_t derive_ns = 0;
  bool evaluated = false;  // Presence() ran (vs. a memo hit)
  double presence = 0.0;
};

/// Builds a PriorityJoinSpec::presence_batch callback that fans one join
/// leaf's per-object derive + integrate work across the executor, in three
/// phases: (1) the calling thread snapshots which slots already have URs
/// in the per-query maps — workers never touch those maps; (2) workers
/// derive/integrate into private JoinSlotTally slots (the UR cache and
/// presence memos are internally synchronized); (3) the calling thread
/// publishes new URs/memos, books stats/EXPLAIN, and emits presences — all
/// in list order, so results and accounting match the serial per-slot loop
/// bit for bit. presence_ns accounting stays with the join's own leaf
/// bracket, exactly as in the serial paths.
///
/// Returns an empty function (batching disabled) when the context is
/// serial. Lists below ctx.parallel_threshold take a serial fallback that
/// replays the join's own per-slot logic. `ur_of` / `presence_of` must
/// point at the spec's callbacks and stay valid while the join runs;
/// `object_of(slot)` / `derive(slot)` resolve one R_I slot.
template <typename ObjectOfSlot, typename DeriveSlot>
std::function<void(const std::vector<int32_t>&, int32_t,
                   std::vector<double>*)>
MakeJoinPresenceBatch(
    const QueryContext& ctx,
    std::unordered_map<int32_t, Region>* slot_urs,
    std::unordered_map<int32_t, UrCache::PresenceMemoPtr>* slot_memos,
    const std::function<const Region&(int32_t)>* ur_of,
    const std::function<double(int32_t, int32_t)>* presence_of,
    UrCache::Kind kind, Timestamp ts, Timestamp te, ObjectOfSlot object_of,
    DeriveSlot derive) {
  if (ctx.executor == nullptr || ctx.threads <= 1) return nullptr;
  return [=, &ctx](const std::vector<int32_t>& slots, int32_t poi_id,
                   std::vector<double>* out) {
    out->assign(slots.size(), 0.0);
    const double poi_area = (*ctx.poi_areas)[static_cast<size_t>(poi_id)];
    const Region& poi_region =
        (*ctx.poi_regions)[static_cast<size_t>(poi_id)];
    if (slots.size() < static_cast<size_t>(ctx.parallel_threshold)) {
      // Serial fallback: replay the join's own per-slot logic (including
      // its accounting — the join books nothing when a batch hook is set).
      for (size_t i = 0; i < slots.size(); ++i) {
        if (*presence_of) {
          (*out)[i] = (*presence_of)(slots[i], poi_id);
        } else {
          (*out)[i] = Presence((*ur_of)(slots[i]), poi_area, poi_region,
                               *ctx.flow);
          if (ctx.stats != nullptr) ++ctx.stats->presence_evaluations;
        }
      }
      return;
    }
    // Phase 1 (calling thread): snapshot already-derived slots. Slots in
    // one leaf list are distinct, so workers handling different indices
    // never share a tally or a per-slot memo entry.
    struct SlotView {
      const Region* ur = nullptr;
      UrCache::PresenceMemo* memo = nullptr;
    };
    std::vector<SlotView> views(slots.size());
    for (size_t i = 0; i < slots.size(); ++i) {
      const auto it = slot_urs->find(slots[i]);
      if (it != slot_urs->end()) views[i].ur = &it->second;
      const auto mit = slot_memos->find(slots[i]);
      if (mit != slot_memos->end()) views[i].memo = mit->second.get();
    }
    // Phase 2 (workers): derive + integrate into private tallies.
    UrCache* const cache = ctx.ur_cache;
    std::vector<JoinSlotTally> tallies(slots.size());
    const int64_t fan_start = MonotonicNowNs();
    const int lanes = ctx.executor->ParallelFor(
        slots.size(), ctx.threads,
        [&](size_t i) {
          // Cooperative abandonment, as in ParallelAccumulateFlows: an
          // untouched tally publishes nothing in phase 3, and the join's
          // own per-round poll ends the traversal right after this batch.
          if (QueryAborted(ctx)) return;
          JoinSlotTally& tally = tallies[i];
          const int32_t slot = slots[i];
          const Region* ur = views[i].ur;
          UrCache::PresenceMemo* memo = views[i].memo;
          if (ur == nullptr) {
            tally.object = object_of(slot);
            if (cache != nullptr &&
                cache->Lookup(tally.object, kind, ts, te, &tally.ur,
                              &tally.memo, ctx.span)) {
              tally.cache_hit = true;
            } else {
              const int64_t derive_start = MonotonicNowNs();
              tally.ur = derive(slot);
              tally.derive_ns = MonotonicNowNs() - derive_start;
              tally.derived = true;
              if (cache != nullptr) {
                cache->Insert(tally.object, kind, ts, te, tally.ur,
                              &tally.memo);
              }
            }
            ur = &tally.ur;
            memo = tally.memo.get();
          }
          if (memo == nullptr || !memo->TryGet(poi_id, &tally.presence)) {
            tally.presence = Presence(*ur, poi_area, poi_region, *ctx.flow);
            tally.evaluated = true;
            if (memo != nullptr) memo->Put(poi_id, tally.presence);
          }
        },
        ctx.span);
    const int64_t fan_ns = MonotonicNowNs() - fan_start;
    // Phase 3 (calling thread, list order): publish and book.
    QueryStats* const stats = ctx.stats;
    QueryProfile* const profile = ctx.profile;
    if (stats != nullptr) {
      stats->parallel_tasks += lanes;
      stats->parallel_ns += fan_ns;
    }
    for (size_t i = 0; i < slots.size(); ++i) {
      JoinSlotTally& tally = tallies[i];
      if (tally.cache_hit || tally.derived) {
        if (tally.cache_hit) {
          if (stats != nullptr) ++stats->ur_cache_hits;
        } else {
          if (stats != nullptr) {
            stats->derive_ns += tally.derive_ns;
            ++stats->regions_derived;
          }
          if (profile != nullptr) {
            profile->AddObjectCost(tally.object, tally.derive_ns);
          }
        }
        slot_urs->emplace(slots[i], std::move(tally.ur));
        if (tally.memo != nullptr) {
          slot_memos->emplace(slots[i], std::move(tally.memo));
        }
      }
      if (stats != nullptr && tally.evaluated) {
        ++stats->presence_evaluations;
      }
      (*out)[i] = tally.presence;
    }
  };
}

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_PARALLEL_FLOWS_H_
