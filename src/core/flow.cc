#include "src/core/flow.h"

namespace indoorflow {

double Presence(const Region& ur, double poi_area, const Region& poi_region,
                const FlowConfig& config) {
  if (poi_area <= 0.0) return 0.0;
  AreaOptions options;
  options.abs_tolerance = config.presence_tolerance * poi_area;
  options.max_depth = config.max_depth;
  options.max_cells = config.max_cells;
  const AreaEstimate estimate = AreaOfIntersection(ur, poi_region, options);
  return std::clamp(estimate.area / poi_area, 0.0, 1.0);
}

std::vector<PoiFlow> TopK(std::vector<PoiFlow> flows, int k) {
  const auto better = [](const PoiFlow& a, const PoiFlow& b) {
    if (a.flow != b.flow) return a.flow > b.flow;
    return a.poi < b.poi;
  };
  const size_t keep = std::min<size_t>(static_cast<size_t>(std::max(k, 0)),
                                       flows.size());
  std::partial_sort(flows.begin(),
                    flows.begin() + static_cast<ptrdiff_t>(keep),
                    flows.end(), better);
  flows.resize(keep);
  return flows;
}

std::vector<PoiFlow> FlowsAtLeast(std::vector<PoiFlow> flows, double tau) {
  std::erase_if(flows, [tau](const PoiFlow& f) { return f.flow < tau; });
  std::sort(flows.begin(), flows.end(),
            [](const PoiFlow& a, const PoiFlow& b) {
              if (a.flow != b.flow) return a.flow > b.flow;
              return a.poi < b.poi;
            });
  return flows;
}

}  // namespace indoorflow
