// Sampling-based approximate flow evaluation (the approximation contract).
//
// The exact query paths evaluate a presence integral for every object that
// survives the R-tree filter phase. Under heavy traffic that is the cost
// ceiling, so the engine can instead uniformly sample n of the N surviving
// objects and scale: with S the sampled set,
//
//   Φ̂(p) = (N / n) · Σ_{o ∈ S} φ_o(p)
//
// is the Horvitz–Thompson estimator of the flow Φ(p) = Σ_{o ∈ O} φ_o(p) and
// is unbiased (every object is included with probability n/N). Its variance
// under simple random sampling without replacement carries the finite
// population correction,
//
//   Var[Φ̂(p)] = N² · (1 − n/N) · s²_p / n ,
//
// where s²_p is the sample variance of the per-object presences (zero
// presences of sampled objects included). The reported ci95 is the normal
// approximation Φ̂ ± 1.96·√Var, clamped below at 0 because flows are
// non-negative. When n ≥ N the sampler degrades to exact evaluation and the
// estimate is marked exact with zero error.
//
// Sampling is deterministic: a seeded Rng (mixed from the configured seed and
// the query timestamps) drives a partial Fisher–Yates shuffle, and the chosen
// indices are re-sorted ascending so sampled evaluation visits objects in the
// same canonical order as exact evaluation. Same seed + same inputs =>
// bit-identical estimates. See docs/APPROXIMATION.md for the full contract.

#ifndef INDOORFLOW_CORE_APPROX_H_
#define INDOORFLOW_CORE_APPROX_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/core/flow.h"

namespace indoorflow {

/// How a query evaluates per-POI flows.
enum class ApproxMode {
  /// Evaluate every surviving object. Bit-identical to an engine without an
  /// approximation config: exact queries never touch the sampling code.
  kExact,
  /// Always sample down to `sample_budget` objects (no-op when the
  /// population is already within budget).
  kSampled,
  /// Decide per query: sample only when the filter-phase population reaches
  /// `adaptive_min_population`, otherwise evaluate exactly.
  kAdaptive,
};

/// Approximate-evaluation knobs (EngineConfig::approx, StreamingOptions::
/// approx, and per-request overrides on the serving layer).
struct ApproxConfig {
  ApproxMode mode = ApproxMode::kExact;
  /// Maximum number of objects evaluated by a sampled query. The CLI and
  /// serving boundaries reject budgets below 2: a single draw has no
  /// within-sample variance, so its error would be undefined (see
  /// EstimateFlows).
  int64_t sample_budget = 256;
  /// kAdaptive samples only when the filter phase yields at least this many
  /// candidate objects; smaller populations are evaluated exactly.
  int64_t adaptive_min_population = 1024;
  /// Base seed for the deterministic sampler. The per-query stream is mixed
  /// from this and the query timestamps, so distinct queries draw distinct
  /// samples while repeated runs are reproducible.
  uint64_t seed = 0x1d0f10;
};

/// One POI's flow estimate. `value` is the (estimated or exact) flow;
/// `exact` is true when every candidate was evaluated, in which case
/// std_err is 0 and the interval collapses to the value. A sampled
/// estimate built from fewer than two draws has an undefined error:
/// std_err and the interval are NaN, never 0 (the boundaries require
/// sample_budget >= 2, but a live query racing eviction can still lose
/// draws). The error field is named std_err because `stderr` is a
/// <cstdio> macro.
struct FlowEstimate {
  PoiId poi = -1;
  double value = 0.0;
  bool exact = true;
  double std_err = 0.0;
  double ci_low = 0.0;
  double ci_high = 0.0;
};

/// "exact" | "sampled" | "adaptive".
const char* ApproxModeName(ApproxMode mode);

/// Maps an ApproxModeName spelling back to its mode; returns false
/// (leaving *mode untouched) on anything else.
bool ApproxModeFromName(const std::string& text, ApproxMode* mode);

/// Whether a query over `population` candidates should subsample under this
/// config. False whenever the budget already covers the population.
bool ShouldSample(const ApproxConfig& config, size_t population);

/// Mixes the configured base seed with the query window so distinct query
/// timestamps draw decorrelated samples deterministically.
uint64_t MixSampleSeed(uint64_t seed, double ts, double te);

/// `n` distinct indices drawn uniformly from [0, population) without
/// replacement (partial Fisher–Yates), returned sorted ascending so callers
/// evaluate sampled items in canonical order. n is clamped to population.
std::vector<size_t> SampleIndices(size_t population, size_t n, uint64_t seed);

/// Assembles Horvitz–Thompson estimates for every POI in `subset_ids` from
/// the per-POI presence sums and sums of squares accumulated over `sampled`
/// of `population` objects. With sampled >= population the result is exact;
/// with sampled < 2 (and not exact) the error fields are NaN (undefined).
/// Callers must count only observations that actually contributed to the
/// sums — an item that vanished mid-query leaves both `sampled` and
/// `population`, it is not a zero.
std::vector<FlowEstimate> EstimateFlows(
    const std::vector<PoiId>& subset_ids,
    const std::unordered_map<PoiId, double>& sums,
    const std::unordered_map<PoiId, double>& sums_sq, size_t population,
    size_t sampled);

/// Wraps exactly-evaluated flows as exact FlowEstimates (std_err 0, interval
/// collapsed to the value).
std::vector<FlowEstimate> ExactEstimates(const std::vector<PoiFlow>& flows);

/// Selects the k highest-value estimates with the same ordering contract as
/// TopK (value descending, ties toward lower POI id). `estimates` is
/// consumed.
std::vector<FlowEstimate> TopKEstimates(std::vector<FlowEstimate> estimates,
                                        int k);

/// Drops the estimate wrapper for callers that only want ranked values.
std::vector<PoiFlow> EstimatesToFlows(const std::vector<FlowEstimate>& est);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_APPROX_H_
