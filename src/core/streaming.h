// Live monitoring over a raw reading stream (an indoorflow extension —
// the paper's queries are strictly historical).
//
// StreamingMonitor ingests (object, device, t) readings in time order,
// maintains each object's open/last detection online (the merger's logic,
// incrementally), and answers "top-k POIs right now". The uncertainty of a
// currently-undetected object differs from the historical case: rd_suc does
// not exist yet, so the region is Ring(rd_pre, Vmax·(now − rd_pre.te))
// alone (optionally topology-checked) — it grows until the object is seen
// again. Objects unseen for longer than `expiry_seconds` are presumed to
// have left the space and stop contributing.
//
// One further live-vs-historical difference: within the merge gap after an
// object's last reading (merger.max_gap_factor * sampling_period) the
// monitor keeps the open record extended — the object is "probably still
// in range", and the next reading usually confirms it — whereas a merger
// over the stream truncated at `now` would have closed the record at the
// last reading. Live regions in that window are the detection disk, not
// the ring (tests/streaming_property_test.cc pins down both semantics).
//
// Limitation: with *overlapping* detection ranges, simultaneous readings
// from two radios ping-pong the open record between devices; feed such
// streams through CleanseReadings/MergeReadings and the historical engine
// instead (the monitor targets the paper's disjoint-range deployments).
//
// Thread safety: the monitor is internally synchronized — one ingest thread
// and any number of query threads may run concurrently (the deployment
// shape the ROADMAP targets: continuous ingest plus live dashboards). The
// object table and clock are guarded by `mu_`; the invariant is enforced at
// compile time by Clang's thread-safety analysis and validated dynamically
// by the TSan CI job (tests/concurrency_test.cc). Note the per-object
// time-order requirement on Ingest still holds: *concurrent* ingest of the
// same object's readings from two threads has no defined arrival order, so
// keep ingest single-threaded per object.

#ifndef INDOORFLOW_CORE_STREAMING_H_
#define INDOORFLOW_CORE_STREAMING_H_

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/flow.h"
#include "src/core/topology_check.h"
#include "src/core/ur_cache.h"
#include "src/tracking/deployment.h"
#include "src/tracking/merger.h"

namespace indoorflow {

class Span;  // src/common/trace.h

struct StreamingOptions {
  /// Reading merge behavior (sampling period, gap tolerance).
  MergerOptions merger;
  double vmax = 1.1;
  /// Objects unseen for this long no longer contribute to flows.
  double expiry_seconds = 600.0;
  FlowConfig flow;
  /// Live uncertainty-region memoization (src/core/ur_cache.h). Off by
  /// default. Each Ingest bumps the object's epoch, so cached live regions
  /// go stale the moment new evidence arrives; repeated CurrentTopK /
  /// LiveRegion polls at an unchanged timestamp hit the cache instead of
  /// re-deriving every track.
  UrCacheConfig ur_cache;
};

class StreamingMonitor {
 public:
  /// `deployment` must be indexed and outlive the monitor; `topology` is
  /// optional (applies ReachableFrom pruning to undetected objects) and
  /// must outlive the monitor when given. `pois` must be id-dense.
  StreamingMonitor(const Deployment& deployment, const PoiSet& pois,
                   StreamingOptions options,
                   const TopologyChecker* topology = nullptr);

  /// Ingests one reading. Readings of one object must arrive in
  /// nondecreasing time order; cross-object interleaving is free. When
  /// `span` is non-null (a sampled request trace, src/common/trace.h) the
  /// ingest work is recorded as an "ingest" child span.
  Status Ingest(const RawReading& reading, const Span* span = nullptr)
      INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// Largest reading time seen so far.
  Timestamp now() const INDOORFLOW_LOCKS_EXCLUDED(mu_) {
    MutexLock lock(mu_);
    return now_;
  }

  /// Objects currently contributing (seen within expiry_seconds of `t`).
  size_t ActiveObjects(Timestamp t) const INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// Top-k POIs by live flow at time `t` (>= now(); typically "now").
  std::vector<PoiFlow> CurrentTopK(Timestamp t, int k) const
      INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// The live uncertainty region of one object at `t` (empty when unknown
  /// or expired).
  Region LiveRegion(ObjectId object, Timestamp t) const
      INDOORFLOW_LOCKS_EXCLUDED(mu_);

 private:
  struct ObjectTrack {
    /// The record currently being extended (object in range), if any.
    std::optional<TrackingRecord> open;
    /// The most recent record before `open` (or before the gap).
    std::optional<TrackingRecord> last;
  };

  /// Reads a track owned by `tracks_`, so the table lock must be held.
  /// `object` keys the optional live-region cache; lock order is always
  /// mu_ -> cache shard (the cache never calls back out).
  Region TrackRegion(ObjectId object, const ObjectTrack& track,
                     Timestamp t) const INDOORFLOW_REQUIRES(mu_);

  const Deployment& deployment_;
  const PoiSet& pois_;
  StreamingOptions options_;
  const TopologyChecker* topology_;
  std::vector<Region> poi_regions_;   // immutable after construction
  std::vector<double> poi_areas_;     // immutable after construction
  /// Internally synchronized; null when options_.ur_cache.enabled is false.
  std::unique_ptr<UrCache> ur_cache_;
  mutable Mutex mu_
      INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceProfileRecorder)
          INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceMonitor) =
              Mutex(LockRank::kMonitor);
  std::unordered_map<ObjectId, ObjectTrack> tracks_ INDOORFLOW_GUARDED_BY(mu_);
  Timestamp now_ INDOORFLOW_GUARDED_BY(mu_) = 0.0;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_STREAMING_H_
