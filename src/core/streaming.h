// Live monitoring over a raw reading stream (an indoorflow extension —
// the paper's queries are strictly historical).
//
// StreamingMonitor ingests (object, device, t) readings in time order,
// maintains each object's open/last detection online (the merger's logic,
// incrementally), and answers "top-k POIs right now". The uncertainty of a
// currently-undetected object differs from the historical case: rd_suc does
// not exist yet, so the region is Ring(rd_pre, Vmax·(now − rd_pre.te))
// alone (optionally topology-checked) — it grows until the object is seen
// again. Objects unseen for longer than `expiry_seconds` are presumed to
// have left the space and stop contributing; their table entries are
// evicted lazily (see "Eviction" below).
//
// One further live-vs-historical difference: within the merge gap after an
// object's last reading (merger.max_gap_factor * sampling_period) the
// monitor keeps the open record extended — the object is "probably still
// in range", and the next reading usually confirms it — whereas a merger
// over the stream truncated at `now` would have closed the record at the
// last reading. Live regions in that window are the detection disk, not
// the ring (tests/streaming_property_test.cc pins down both semantics).
//
// Sharding and incremental top-k. The track table is split across N
// lock-ranked shards keyed by object id, so ingest of one object only
// contends with queries touching that object's shard. Each shard also
// owns a published flow tally: the per-object candidate-POI/presence
// contributions derived at some timestamp, immutable behind a shared_ptr.
// Ingest marks only the touched shard dirty; CurrentTopK re-derives
// contributions for dirty (or wrong-timestamp) shards only — fanned
// across the shared executor — and reuses every clean shard's published
// tally. The final flow accumulation is a serial merge across shard
// tallies in ascending object-id order, so the summed per-POI flows are
// bit-identical for every shard count (the same map/ordered-reduce
// discipline as src/core/parallel_flows.h; pinned by
// tests/streaming_shard_test.cc).
//
// Eviction: tracks whose open record ended more than the eviction lag
// before the stream clock are dropped during tally recomputes and during
// periodic per-shard sweeps on the ingest path. The lag is
// max(expiry_seconds, deployment reach / vmax): past `expiry_seconds` the
// track already contributes nothing, and past `reach / vmax` even a future
// re-detection's hand-off ring Ring(last, vmax·gap) would cover every
// detection disk in the deployment — intersecting with it is a geometric
// no-op — so forgetting the track's `last` record is bit-invisible to
// every later region. Eviction never changes results for queries at
// t >= now() − the documented domain − but the monitor forgets evicted
// objects entirely, so a query at a timestamp far in the past may see an
// empty region where a pre-eviction query saw one.
//
// Limitation: with *overlapping* detection ranges, simultaneous readings
// from two radios ping-pong the open record between devices; feed such
// streams through CleanseReadings/MergeReadings and the historical engine
// instead (the monitor targets the paper's disjoint-range deployments).
//
// Thread safety: the monitor is internally synchronized — any number of
// ingest and query threads may run concurrently (the deployment shape the
// ROADMAP targets: continuous ingest plus live dashboards). Each shard's
// table and tally are guarded by that shard's `mu` (rank kStreamShard; the
// shards are same-ranked and never nested — every path locks exactly one
// shard at a time). The stream clock and track count are lock-free
// atomics: the clock is a cross-shard monotonic max maintained by a CAS
// loop, polled by query threads without touching any shard lock
// (allowlisted in tools/indoorflow_lint.py and raced deliberately by
// tests/streaming_shard_test.cc under the TSan CI job). The invariants
// are enforced at compile time by Clang's thread-safety analysis and
// validated dynamically by the TSan CI job. Note the per-object
// time-order requirement on Ingest still holds: *concurrent* ingest of
// the same object's readings from two threads has no defined arrival
// order, so keep ingest single-threaded per object.

#ifndef INDOORFLOW_CORE_STREAMING_H_
#define INDOORFLOW_CORE_STREAMING_H_

#include <atomic>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/common/deadline.h"
#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/approx.h"
#include "src/core/flow.h"
#include "src/core/topology_check.h"
#include "src/core/ur_cache.h"
#include "src/tracking/deployment.h"
#include "src/tracking/merger.h"

namespace indoorflow {

class Span;  // src/common/trace.h

struct StreamingOptions {
  /// Reading merge behavior (sampling period, gap tolerance).
  MergerOptions merger;
  double vmax = 1.1;
  /// Objects unseen for this long no longer contribute to flows (and are
  /// eventually evicted from the track table).
  double expiry_seconds = 600.0;
  /// Track-table shards (rounded up to a power of two, minimum 1).
  /// Objects map to shards by id, so sequential id spaces spread
  /// round-robin. One shard reproduces the pre-sharding single-mutex
  /// monitor's locking behavior exactly.
  int shards = 8;
  FlowConfig flow;
  /// Live uncertainty-region memoization (src/core/ur_cache.h). Off by
  /// default. Each Ingest bumps the object's epoch, so cached live regions
  /// go stale the moment new evidence arrives; repeated CurrentTopK /
  /// LiveRegion polls at an unchanged timestamp hit the cache instead of
  /// re-deriving every track.
  UrCacheConfig ur_cache;
  /// Approximate CurrentTopK (src/core/approx.h, docs/APPROXIMATION.md).
  /// The default kExact keeps the incremental sharded path bit-identical
  /// to today; kSampled / kAdaptive make CurrentTopK rank by
  /// Horvitz–Thompson estimates over a deterministic subsample of the live
  /// tracks (call CurrentTopKEstimate directly for the error bounds).
  ApproxConfig approx;
};

class StreamingMonitor {
 public:
  /// `deployment` must be indexed and outlive the monitor; `topology` is
  /// optional (applies ReachableFrom pruning to undetected objects) and
  /// must outlive the monitor when given. `pois` must be id-dense.
  StreamingMonitor(const Deployment& deployment, const PoiSet& pois,
                   StreamingOptions options,
                   const TopologyChecker* topology = nullptr);

  /// Ingests one reading. Readings of one object must arrive in
  /// nondecreasing time order; cross-object interleaving is free. When
  /// `span` is non-null (a sampled request trace, src/common/trace.h) the
  /// ingest work is recorded as an "ingest" child span.
  Status Ingest(const RawReading& reading, const Span* span = nullptr);

  /// Ingests a batch of readings, locking each touched shard once instead
  /// of once per reading. Relative order within the batch is preserved, so
  /// the result is identical to ingesting the readings one by one. Invalid
  /// readings (unknown device, per-object time regression) are rejected
  /// individually — the rest of the batch still applies — and the first
  /// rejection's status is returned (OK when everything applied).
  Status IngestBatch(const std::vector<RawReading>& readings,
                     const Span* span = nullptr);

  /// Largest reading time seen so far (the stream clock).
  Timestamp now() const {
    return now_.load(std::memory_order_relaxed);
  }

  /// Objects currently contributing (seen within expiry_seconds of `t`).
  size_t ActiveObjects(Timestamp t) const;

  /// Objects resident in the track table (after lazy eviction; counts
  /// expired entries that have not been swept yet).
  size_t TrackCount() const {
    return static_cast<size_t>(track_count_.load(std::memory_order_relaxed));
  }

  size_t shard_count() const { return shards_.size(); }

  /// Top-k POIs by live flow at time `t` (>= now(); typically "now").
  /// Reuses each clean shard's cached tally and recomputes only dirty
  /// shards, fanned across the shared executor. When `control` is non-null
  /// it is polled per object; once it trips, the (partial) result must be
  /// discarded by the caller — `control->Aborted()` reports the fact —
  /// and no half-computed tally is published.
  std::vector<PoiFlow> CurrentTopK(Timestamp t, int k,
                                   const QueryControl* control = nullptr)
      const;

  /// Approximate CurrentTopK under an explicit per-call ApproxConfig: when
  /// the config calls for sampling over the live track population (see
  /// ShouldSample), evaluates a deterministic uniform subsample of the
  /// tracks and returns Horvitz–Thompson top-k estimates with error
  /// bounds; otherwise runs the exact incremental path and wraps its
  /// result. The sampled path derives regions fresh per call (it neither
  /// consults nor publishes the per-shard tallies — a sampled tally would
  /// poison exact reuse), so its win is evaluating budget-many tracks
  /// instead of all of them. Same abandonment contract as CurrentTopK.
  std::vector<FlowEstimate> CurrentTopKEstimate(
      Timestamp t, int k, const ApproxConfig& approx,
      const QueryControl* control = nullptr) const;

  /// The exact incremental top-k (CurrentTopK's pre-approximation body),
  /// regardless of StreamingOptions::approx. CurrentTopK routes here when
  /// options_.approx stays exact, CurrentTopKEstimate falls back here when
  /// it decides not to sample, and the serving layer calls it directly so
  /// a per-request approx=exact pin cannot be re-routed by a
  /// sampled-default monitor.
  std::vector<PoiFlow> ExactCurrentTopK(
      Timestamp t, int k, const QueryControl* control = nullptr) const;

  /// The live uncertainty region of one object at `t` (empty when unknown,
  /// expired, before the object's first reading, or when `control` has
  /// already tripped).
  Region LiveRegion(ObjectId object, Timestamp t,
                    const QueryControl* control = nullptr) const;

 private:
  struct ObjectTrack {
    /// The record currently being extended (object in range), if any.
    std::optional<TrackingRecord> open;
    /// The most recent record before `open` (or before the gap).
    std::optional<TrackingRecord> last;
  };

  /// One object's share of a shard tally: its candidate POIs (bounds
  /// intersection order, as the seed monitor visited them) and the
  /// matching presence integrals.
  struct TrackContribution {
    ObjectId object = 0;
    std::vector<int32_t> pois;
    std::vector<double> presences;  // aligned with pois
  };

  /// A shard's published flow tally: per-object contributions at `t`, in
  /// ascending object-id order. Immutable once published — CurrentTopK
  /// snapshots the shared_ptr under the shard lock and merges outside it.
  struct ShardTally {
    Timestamp t = 0.0;
    std::vector<TrackContribution> contribs;
  };
  using ShardTallyPtr = std::shared_ptr<const ShardTally>;

  struct Shard {
    /// Same-ranked across shards; never nested (one shard per path).
    mutable Mutex mu
        INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceProfileRecorder)
            INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceStreamShard) =
                Mutex(LockRank::kStreamShard);
    std::unordered_map<ObjectId, ObjectTrack> tracks
        INDOORFLOW_GUARDED_BY(mu);
    /// Tracks changed since `tally` was published.
    bool dirty INDOORFLOW_GUARDED_BY(mu) = false;
    /// Null until the first recompute.
    ShardTallyPtr tally INDOORFLOW_GUARDED_BY(mu);
    /// Stream time of the last ingest-path eviction sweep.
    Timestamp last_sweep INDOORFLOW_GUARDED_BY(mu) = 0.0;
  };

  Shard& ShardFor(ObjectId object) const {
    return *shards_[static_cast<uint32_t>(object) & shard_mask_];
  }

  /// Merge-or-open one reading into its track; marks the shard dirty,
  /// advances the stream clock, and bumps the object's cache epoch.
  Status ApplyReadingLocked(Shard& shard, const RawReading& reading)
      INDOORFLOW_REQUIRES(shard.mu);

  /// Drops tracks whose open record ended more than eviction_lag_seconds_
  /// before `horizon`; returns the number evicted. Const because the query
  /// path evicts too (the table is reached through the shard, and the
  /// eviction count lives in the mutable atomic).
  size_t EvictExpiredLocked(Shard& shard, Timestamp horizon) const
      INDOORFLOW_REQUIRES(shard.mu);

  /// Rebuilds and publishes `shard.tally` for time `t` (evicting expired
  /// tracks on the way). Returns false — publishing nothing, leaving the
  /// shard dirty — when `control` trips mid-walk.
  bool RecomputeShardTallyLocked(Shard& shard, Timestamp t,
                                 const QueryControl* control) const
      INDOORFLOW_REQUIRES(shard.mu);

  /// Reads a track owned by a shard's table, so that shard's lock must be
  /// held (not expressible to the static analysis across N shards; the
  /// dynamic rank validator still sees it). `object` keys the optional
  /// live-region cache; lock order is always shard -> cache shard (the
  /// cache never calls back out).
  Region TrackRegion(ObjectId object, const ObjectTrack& track,
                     Timestamp t) const;

  const Deployment& deployment_;
  const PoiSet& pois_;
  StreamingOptions options_;
  const TopologyChecker* topology_;
  std::vector<Region> poi_regions_;   // immutable after construction
  std::vector<double> poi_areas_;     // immutable after construction
  /// Internally synchronized; null when options_.ur_cache.enabled is false.
  std::unique_ptr<UrCache> ur_cache_;
  /// Immutable after construction (the unique_ptrs pin each Shard's
  /// address; Mutex is not movable).
  std::vector<std::unique_ptr<Shard>> shards_;
  uint32_t shard_mask_ = 0;
  /// Age past which a track may be forgotten without changing any future
  /// region: max(expiry_seconds, deployment reach / vmax), where reach is
  /// the deployment bounding-box diagonal plus twice the largest detection
  /// radius. Once a gap exceeds reach / vmax, a re-detection's hand-off
  /// ring covers every possible detection disk (classifying every
  /// integrator cell kInside), so dropping the `last` record it would have
  /// constrained is bit-invisible (tests/streaming_shard_test.cc).
  double eviction_lag_seconds_ = 0.0;
  /// Cross-shard monotonic max of reading times (CAS loop in the ingest
  /// path); lock-free so query threads read the clock without touching a
  /// shard.
  std::atomic<Timestamp> now_{0.0};
  /// Resident tracks across all shards (insertions minus evictions).
  mutable std::atomic<int64_t> track_count_{0};
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_STREAMING_H_
