#include "src/core/naive.h"

#include <unordered_map>
#include <utility>

#include "src/core/tracking_state.h"

namespace indoorflow {

namespace {

std::vector<PoiFlow> Collect(const NaiveContext& ctx,
                             const std::vector<PoiId>& subset_ids,
                             const std::unordered_map<PoiId, double>& flows,
                             int k) {
  std::vector<PoiFlow> all;
  all.reserve(subset_ids.size());
  for (PoiId id : subset_ids) {
    const auto it = flows.find(id);
    all.push_back(PoiFlow{id, it == flows.end() ? 0.0 : it->second});
  }
  return TopK(std::move(all), k);
}

}  // namespace

std::vector<PoiFlow> NaiveSnapshotTopK(const NaiveContext& ctx,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp t, int k) {
  std::unordered_map<PoiId, double> flows;
  for (ObjectId object : ctx.table->objects()) {
    // An object is relevant at t iff t falls before its last record's end
    // and at/after its first record's start (the AR-tree coverage).
    const auto chain = ctx.table->ChainOf(object);
    if (chain.empty()) continue;
    if (t < ctx.table->record(chain.front()).ts ||
        t > ctx.table->record(chain.back()).te) {
      continue;
    }
    const SnapshotState state = ResolveSnapshotStateAt(*ctx.table, object, t);
    if (!state.active() && state.suc == kInvalidRecord) continue;
    const Region ur = ctx.model->Snapshot(state, t);
    if (ur.IsEmpty()) continue;
    for (PoiId id : subset_ids) {
      const Poi& poi = (*ctx.pois)[static_cast<size_t>(id)];
      flows[id] += Presence(ur, poi.Area(), Region::Make(poi.shape),
                            ctx.flow);
    }
  }
  return Collect(ctx, subset_ids, flows, k);
}

std::vector<PoiFlow> NaiveIntervalTopK(const NaiveContext& ctx,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp ts, Timestamp te, int k) {
  std::unordered_map<PoiId, double> flows;
  for (ObjectId object : ctx.table->objects()) {
    const IntervalChain chain = RelevantChain(*ctx.table, object, ts, te);
    if (chain.records.empty()) continue;
    const Region ur = ctx.model->Interval(chain, ts, te);
    if (ur.IsEmpty()) continue;
    for (PoiId id : subset_ids) {
      const Poi& poi = (*ctx.pois)[static_cast<size_t>(id)];
      flows[id] += Presence(ur, poi.Area(), Region::Make(poi.shape),
                            ctx.flow);
    }
  }
  return Collect(ctx, subset_ids, flows, k);
}

}  // namespace indoorflow
