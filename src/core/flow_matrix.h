// Materialized flows: a (time bucket × POI) snapshot-flow matrix.
//
// Interactive dashboards (the paper's shop-popularity / bottleneck
// scenarios) ask many flow questions over the same historical data; instead
// of running a full query per interaction, FlowMatrix precomputes snapshot
// flows on a time grid once and answers
//   * approximate snapshot top-k (nearest bucket / linear interpolation),
//   * average-occupancy rankings over arbitrary windows,
// in microseconds. Approximation error is bounded by how much flows change
// within one bucket; pick bucket_seconds accordingly.
//
// Thread safety: Build materializes in parallel internally by fanning the
// bucket probes across the shared executor (src/common/executor.h); each
// fan-out index owns exactly one bucket row, so all writes are disjoint —
// the partitioning is by construction, not convention, and the TSan CI job
// checks it. A built matrix is immutable, so any number of threads may
// share one instance through the const API without synchronization.

#ifndef INDOORFLOW_CORE_FLOW_MATRIX_H_
#define INDOORFLOW_CORE_FLOW_MATRIX_H_

#include <vector>

#include "src/core/engine.h"

namespace indoorflow {

struct FlowMatrixOptions {
  /// Time grid resolution.
  double bucket_seconds = 300.0;
  Algorithm algorithm = Algorithm::kJoin;
  /// Materialization fan-out, resolved via Executor::ResolveThreads
  /// (<= 0: hardware concurrency; capped at Executor::kMaxThreads).
  int threads = 0;
};

class FlowMatrix {
 public:
  /// Materializes snapshot flows for every POI of `engine` at bucket
  /// centers spanning [t0, t1]. O(num_buckets) full snapshot queries.
  ///
  /// Thread safety: safe to call concurrently from multiple threads (the
  /// shared executor serializes nothing across calls; each call writes only
  /// its own matrix). Deterministic: every bucket row is computed by an
  /// independent SnapshotTopK probe, so the result is bit-identical for any
  /// `options.threads` value.
  static FlowMatrix Build(const QueryEngine& engine, Timestamp t0,
                          Timestamp t1, const FlowMatrixOptions& options = {});

  size_t num_buckets() const { return bucket_times_.size(); }
  size_t num_pois() const { return num_pois_; }
  Timestamp bucket_time(size_t i) const { return bucket_times_[i]; }

  /// Materialized flow of `poi` at bucket `i`.
  double FlowAt(size_t bucket, PoiId poi) const {
    return flows_[bucket * num_pois_ + static_cast<size_t>(poi)];
  }

  /// Flow of `poi` at time `t`, linearly interpolated between buckets
  /// (clamped at the grid edges).
  double ApproxFlow(PoiId poi, Timestamp t) const;

  /// Approximate snapshot top-k at `t` from the interpolated flows.
  std::vector<PoiFlow> ApproxSnapshotTopK(Timestamp t, int k) const;

  /// Time-averaged flow ("average occupancy") of every POI over [ts, te],
  /// ranked descending; trapezoidal rule over the bucket grid.
  std::vector<PoiFlow> AverageOccupancyTopK(Timestamp ts, Timestamp te,
                                            int k) const;

 private:
  std::vector<Timestamp> bucket_times_;
  size_t num_pois_ = 0;
  std::vector<double> flows_;  // bucket-major
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_FLOW_MATRIX_H_
