#include "src/core/approx.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>
#include <numeric>

#include "src/common/random.h"

namespace indoorflow {

namespace {

// z for a two-sided 95% normal interval.
constexpr double kZ95 = 1.959963984540054;

uint64_t DoubleBits(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  return bits;
}

}  // namespace

const char* ApproxModeName(ApproxMode mode) {
  switch (mode) {
    case ApproxMode::kExact:
      return "exact";
    case ApproxMode::kSampled:
      return "sampled";
    case ApproxMode::kAdaptive:
      return "adaptive";
  }
  return "exact";
}

bool ApproxModeFromName(const std::string& text, ApproxMode* mode) {
  if (text == "exact") {
    *mode = ApproxMode::kExact;
  } else if (text == "sampled") {
    *mode = ApproxMode::kSampled;
  } else if (text == "adaptive") {
    *mode = ApproxMode::kAdaptive;
  } else {
    return false;
  }
  return true;
}

bool ShouldSample(const ApproxConfig& config, size_t population) {
  if (config.sample_budget <= 0) return false;
  if (static_cast<size_t>(config.sample_budget) >= population) return false;
  switch (config.mode) {
    case ApproxMode::kExact:
      return false;
    case ApproxMode::kSampled:
      return true;
    case ApproxMode::kAdaptive:
      return config.adaptive_min_population >= 0 &&
             population >=
                 static_cast<size_t>(config.adaptive_min_population);
  }
  return false;
}

uint64_t MixSampleSeed(uint64_t seed, double ts, double te) {
  // SplitMix64-style finalizer over the seed and the timestamp bit
  // patterns; Rng's own seeding decorrelates further.
  uint64_t x = seed ^ (DoubleBits(ts) * 0x9e3779b97f4a7c15ULL);
  x ^= DoubleBits(te) + 0x9e3779b97f4a7c15ULL + (x << 6) + (x >> 2);
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::vector<size_t> SampleIndices(size_t population, size_t n,
                                  uint64_t seed) {
  if (n >= population) {
    std::vector<size_t> all(population);
    std::iota(all.begin(), all.end(), size_t{0});
    return all;
  }
  // Partial Fisher–Yates: after i swaps the prefix [0, i) is a uniform
  // draw without replacement.
  std::vector<size_t> indices(population);
  std::iota(indices.begin(), indices.end(), size_t{0});
  Rng rng(seed);
  for (size_t i = 0; i < n; ++i) {
    const size_t j =
        i + static_cast<size_t>(rng.UniformInt(uint64_t{population - i}));
    std::swap(indices[i], indices[j]);
  }
  indices.resize(n);
  // Canonical evaluation order: callers walk sampled objects in the same
  // order exact evaluation would.
  std::sort(indices.begin(), indices.end());
  return indices;
}

std::vector<FlowEstimate> EstimateFlows(
    const std::vector<PoiId>& subset_ids,
    const std::unordered_map<PoiId, double>& sums,
    const std::unordered_map<PoiId, double>& sums_sq, size_t population,
    size_t sampled) {
  std::vector<FlowEstimate> out;
  out.reserve(subset_ids.size());
  const bool exact = sampled >= population;
  const double n = static_cast<double>(sampled);
  const double big_n = static_cast<double>(population);
  const double scale = sampled > 0 ? big_n / n : 0.0;
  for (PoiId id : subset_ids) {
    FlowEstimate est;
    est.poi = id;
    const auto sum_it = sums.find(id);
    const double sum = sum_it != sums.end() ? sum_it->second : 0.0;
    if (exact) {
      est.value = sum;
      est.exact = true;
      est.ci_low = est.ci_high = sum;
      out.push_back(est);
      continue;
    }
    const auto sq_it = sums_sq.find(id);
    const double sum_sq = sq_it != sums_sq.end() ? sq_it->second : 0.0;
    est.value = scale * sum;
    est.exact = false;
    if (sampled >= 2) {
      // Sample variance over all n sampled objects; the (n - count of
      // non-zero presences) objects that never touched this POI contribute
      // zeros, which the sum/sum_sq form includes implicitly.
      double s2 = (sum_sq - sum * sum / n) / (n - 1.0);
      if (s2 < 0.0) s2 = 0.0;  // guard against rounding
      const double fpc = 1.0 - n / big_n;
      est.std_err = std::sqrt(big_n * big_n * fpc * s2 / n);
      est.ci_low = std::max(0.0, est.value - kZ95 * est.std_err);
      est.ci_high = est.value + kZ95 * est.std_err;
    } else {
      // Fewer than two draws carry no within-sample variance: the error is
      // undefined, not zero. NaN marks the fact so formatters can drop the
      // fields instead of presenting the estimate as perfectly confident.
      est.std_err = std::numeric_limits<double>::quiet_NaN();
      est.ci_low = est.ci_high = est.std_err;
    }
    out.push_back(est);
  }
  return out;
}

std::vector<FlowEstimate> ExactEstimates(const std::vector<PoiFlow>& flows) {
  std::vector<FlowEstimate> out;
  out.reserve(flows.size());
  for (const PoiFlow& f : flows) {
    FlowEstimate est;
    est.poi = f.poi;
    est.value = f.flow;
    est.exact = true;
    est.ci_low = est.ci_high = f.flow;
    out.push_back(est);
  }
  return out;
}

std::vector<FlowEstimate> TopKEstimates(std::vector<FlowEstimate> estimates,
                                        int k) {
  if (k <= 0) return {};
  // Same contract as TopK: value descending, ties toward lower POI id.
  std::sort(estimates.begin(), estimates.end(),
            [](const FlowEstimate& a, const FlowEstimate& b) {
              if (a.value != b.value) return a.value > b.value;
              return a.poi < b.poi;
            });
  if (estimates.size() > static_cast<size_t>(k)) {
    estimates.resize(static_cast<size_t>(k));
  }
  return estimates;
}

std::vector<PoiFlow> EstimatesToFlows(const std::vector<FlowEstimate>& est) {
  std::vector<PoiFlow> out;
  out.reserve(est.size());
  for (const FlowEstimate& e : est) out.push_back({e.poi, e.value});
  return out;
}

}  // namespace indoorflow
