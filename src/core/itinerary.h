// Per-object visit reconstruction (an indoorflow extension).
//
// The paper's queries aggregate over all objects; this module answers the
// dual, object-centric question: *which POIs did object o likely visit
// during [ts, te], and when?* It samples the object's snapshot uncertainty
// region on a regular grid, evaluates its presence (Definition 1) in every
// nearby POI, and merges consecutive qualifying samples into visits:
//
//   Itinerary it = BuildItinerary(engine, object, 0.0, 3600.0);
//   for (const ItineraryVisit& v : it.visits)
//     std::cout << pois[v.poi].name << " " << v.start << ".." << v.end;
//
// Presence is probability mass, not ground truth: a visit with
// mean_presence 0.3 says "roughly 30% of the uncertainty region overlapped
// this POI through the visit", which is the honest answer symbolic tracking
// can give (Section 3's uncertainty analysis).

#ifndef INDOORFLOW_CORE_ITINERARY_H_
#define INDOORFLOW_CORE_ITINERARY_H_

#include <limits>
#include <vector>

#include "src/core/engine.h"

namespace indoorflow {

struct ItineraryOptions {
  /// Sampling period in seconds. Visits shorter than one period between
  /// qualifying samples are merged; gaps of one period end a visit.
  double step = 10.0;
  /// A sample contributes to a visit when the object's presence in the POI
  /// is at least this value.
  double min_presence = 0.2;
  /// Visits spanning less than this many seconds are dropped (a visit over
  /// n consecutive samples spans (n-1) * step seconds, so single-sample
  /// visits survive only when this is 0).
  double min_duration = 0.0;
  /// Samples whose uncertainty-region bounding box exceeds this area (m²)
  /// are skipped as uninformative: presence is a coverage ratio
  /// (Definition 1), so a region spanning the whole floor scores 1.0 in
  /// every POI it covers. Infinity keeps every sample.
  double max_region_bounds_area = std::numeric_limits<double>::infinity();
};

/// One reconstructed stay of the object in one POI.
struct ItineraryVisit {
  PoiId poi = -1;
  /// First and last qualifying sample time (inclusive).
  Timestamp start = 0.0;
  Timestamp end = 0.0;
  /// Mean / maximum presence over the visit's samples.
  double mean_presence = 0.0;
  double peak_presence = 0.0;
};

struct Itinerary {
  ObjectId object = -1;
  /// Visits ordered by (start, poi). Visits of different POIs may overlap
  /// in time when the uncertainty region straddles several POIs.
  std::vector<ItineraryVisit> visits;
};

/// Reconstructs `object`'s likely visits during [ts, te] against the
/// engine's POI set. Cost is one snapshot-region derivation plus a few
/// presence integrations per sample; tighten options.step for finer
/// boundaries.
Itinerary BuildItinerary(const QueryEngine& engine, ObjectId object,
                         Timestamp ts, Timestamp te,
                         const ItineraryOptions& options = {});

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_ITINERARY_H_
