#include "src/core/uncertainty.h"

#include <algorithm>
#include <utility>

namespace indoorflow {

namespace {

// Constraint builders: limits include the anchor detection radii, matching
// Ring(dev, rho) (outer radius r + rho) and Θ (slack r_a + r_b + L).
PieceConstraint SingleConstraint(const Device& dev, double budget) {
  return PieceConstraint{dev.id, -1, dev.range.radius + std::max(budget,
                                                                 0.0)};
}

PieceConstraint BridgeConstraint(const Device& a, const Device& b,
                                 double max_travel) {
  return PieceConstraint{a.id, b.id,
                         a.range.radius + b.range.radius +
                             std::max(max_travel, 0.0)};
}

// Ring(dev, Vmax·Δt) as a UR piece. At Δt == 0 (query time exactly at a
// detection boundary, e.g. t == rd_pre.te) the ring formula degenerates to
// a zero-area annulus that Region::Make treats as empty and that would
// erase the whole UR once intersected in; the physically correct region is
// the detection disk itself — the object is still within range at that
// instant — so a non-positive budget yields the full disk.
Region RingPiece(const Circle& range, double budget) {
  if (budget <= 0.0) return Region::Make(range);
  return Region::Make(Ring::Around(range, budget));
}

// MBR analog of RingPiece for the derivation-free bound paths.
Box RingPieceBounds(const Circle& range, double budget) {
  if (budget <= 0.0) return range.Bounds();
  return Ring::Around(range, budget).Bounds();
}

}  // namespace

const Circle& UncertaintyModel::RangeOf(RecordIndex r) const {
  return deployment_.device(table_.record(r).device_id).range;
}

Region UncertaintyModel::CheckPiece(
    Region piece, const std::vector<PieceConstraint>& constraints) const {
  if (topology_ == nullptr || mode_ == TopologyMode::kOff) return piece;
  return topology_->ApplyToPiece(std::move(piece), constraints, mode_);
}

Region UncertaintyModel::Snapshot(const SnapshotState& state,
                                  Timestamp t) const {
  if (state.active()) {
    // Active: the intersection of all covering ranges (one range with the
    // paper's disjoint deployments), further constrained by the ring
    // around rd_pre's device.
    Region region = Region::Make(RangeOf(state.covering.front()));
    bool pre_device_covering = false;
    for (size_t i = 1; i < state.covering.size(); ++i) {
      region = Region::Intersect(
          region, Region::Make(RangeOf(state.covering[i])));
    }
    if (state.pre != kInvalidRecord) {
      const TrackingRecord& pre = table_.record(state.pre);
      for (RecordIndex idx : state.covering) {
        pre_device_covering |=
            table_.record(idx).device_id == pre.device_id;
      }
      // Same-device re-detection: the ring around dev_pre excludes its own
      // detection disk, which contradicts the current detection; skip it
      // (see header).
      if (!pre_device_covering) {
        const double budget = vmax_ * (t - pre.te);
        region = Region::Intersect(region,
                                   RingPiece(RangeOf(state.pre), budget));
        region = CheckPiece(
            std::move(region),
            {SingleConstraint(deployment_.device(pre.device_id), budget)});
      }
    }
    return region;
  }

  // Inactive: both rd_pre and rd_suc exist whenever the object has an
  // AR-tree entry covering t; tolerate a missing side defensively by using
  // the other ring alone.
  std::vector<Region> rings;
  std::vector<PieceConstraint> constraints;
  if (state.pre != kInvalidRecord) {
    const TrackingRecord& pre = table_.record(state.pre);
    const double budget = vmax_ * (t - pre.te);
    rings.push_back(RingPiece(RangeOf(state.pre), budget));
    constraints.push_back(
        SingleConstraint(deployment_.device(pre.device_id), budget));
  }
  if (state.suc != kInvalidRecord) {
    const TrackingRecord& suc = table_.record(state.suc);
    const double budget = vmax_ * (suc.ts - t);
    rings.push_back(RingPiece(RangeOf(state.suc), budget));
    constraints.push_back(
        SingleConstraint(deployment_.device(suc.device_id), budget));
  }
  if (rings.empty()) return Region();
  Region region = std::move(rings.front());
  for (size_t i = 1; i < rings.size(); ++i) {
    region = Region::Intersect(std::move(region), std::move(rings[i]));
  }
  return CheckPiece(std::move(region), constraints);
}

Box UncertaintyModel::SnapshotMbr(const SnapshotState& state,
                                  Timestamp t) const {
  if (state.active()) {
    Box box = RangeOf(state.covering.front()).Bounds();
    bool pre_device_covering = false;
    for (size_t i = 1; i < state.covering.size(); ++i) {
      box = Intersection(box, RangeOf(state.covering[i]).Bounds());
    }
    if (state.pre != kInvalidRecord) {
      const TrackingRecord& pre = table_.record(state.pre);
      for (RecordIndex idx : state.covering) {
        pre_device_covering |=
            table_.record(idx).device_id == pre.device_id;
      }
      if (!pre_device_covering) {
        // UR lies in both the covering range and the pre-ring, so the box
        // intersection bounds it (tighter than the paper's box union).
        const double budget = vmax_ * (t - pre.te);
        box = Intersection(box, RingPieceBounds(RangeOf(state.pre), budget));
      }
    }
    return box;
  }
  Box box;
  bool constrained = false;
  if (state.pre != kInvalidRecord) {
    const TrackingRecord& pre = table_.record(state.pre);
    const Box pre_box =
        RingPieceBounds(RangeOf(state.pre), vmax_ * (t - pre.te));
    box = constrained ? Intersection(box, pre_box) : pre_box;
    constrained = true;
  }
  if (state.suc != kInvalidRecord) {
    const TrackingRecord& suc = table_.record(state.suc);
    const Box suc_box =
        RingPieceBounds(RangeOf(state.suc), vmax_ * (suc.ts - t));
    box = constrained ? Intersection(box, suc_box) : suc_box;
    constrained = true;
  }
  return box;
}

Region UncertaintyModel::Interval(const IntervalChain& chain, Timestamp ts,
                                  Timestamp te) const {
  // A degenerate window [t, t] is exactly the snapshot query at t; delegate
  // so IntervalTopK(t, t) and SnapshotTopK(t) agree bit-for-bit. The chain
  // classification below (front.te <= ts / back.ts >= te) would otherwise
  // tag the single boundary record as both predecessor and successor and
  // build a spurious two-sided region.
  if (te <= ts) {
    return Snapshot(ResolveSnapshotStateAt(table_, chain.object, ts), ts);
  }
  const std::vector<RecordIndex>& recs = chain.records;
  if (recs.empty()) return Region();
  std::vector<Region> pieces;

  const TrackingRecord& front = table_.record(recs.front());
  const TrackingRecord& back = table_.record(recs.back());
  // Boundary handling (see header): a record chain can start with rd_pre
  // (inactive start), with rd_cov (active start), or — when no predecessor
  // exists — with a record that begins inside the window.
  const bool front_is_pre = !chain.active_at_start && front.te <= ts;
  const bool back_is_suc = !chain.active_at_end && back.ts >= te;

  // Every record whose detection span overlaps the window pins the object
  // inside that device's range for part of the interval, so the range
  // itself belongs to the UR. (The paper's Θ "complete region" covers this
  // for inner records; this also handles boundary records whose Θ gets
  // intersected with a ring, and single-record chains.)
  for (RecordIndex idx : recs) {
    const TrackingRecord& r = table_.record(idx);
    if (r.ts <= te && r.te >= ts) {
      pieces.push_back(Region::Make(RangeOf(idx)));
    }
  }

  std::vector<PieceConstraint> constraints;
  if (recs.size() > 1) {
    for (size_t i = 0; i + 1 < recs.size(); ++i) {
      const TrackingRecord& a = table_.record(recs[i]);
      const TrackingRecord& b = table_.record(recs[i + 1]);
      const double gap_travel = vmax_ * std::max(0.0, b.ts - a.te);
      Region piece = Region::Make(
          ExtendedEllipse(RangeOf(recs[i]), RangeOf(recs[i + 1]),
                          gap_travel));
      constraints.clear();
      constraints.push_back(BridgeConstraint(
          deployment_.device(a.device_id), deployment_.device(b.device_id),
          gap_travel));
      if (i == 0 && front_is_pre) {
        // Ring_s = Ring(dev_b, Vmax·(rd_b.ts − ts)) (paper Case 2/4).
        const double budget = vmax_ * (b.ts - ts);
        piece = Region::Intersect(piece,
                                  RingPiece(RangeOf(recs[i + 1]), budget));
        constraints.push_back(
            SingleConstraint(deployment_.device(b.device_id), budget));
      }
      if (i + 2 == recs.size() && back_is_suc) {
        // Ring_e = Ring(dev_b', Vmax·(te − rd_b'.te)) (paper Case 3/4).
        const double budget = vmax_ * (te - a.te);
        piece = Region::Intersect(piece, RingPiece(RangeOf(recs[i]), budget));
        constraints.push_back(
            SingleConstraint(deployment_.device(a.device_id), budget));
      }
      pieces.push_back(CheckPiece(std::move(piece), constraints));
    }
  }

  // Missing-predecessor / missing-successor boundary rings.
  if (!chain.active_at_start && front.ts > ts) {
    const double budget = vmax_ * (front.ts - ts);
    Region ring = RingPiece(RangeOf(recs.front()), budget);
    pieces.push_back(CheckPiece(
        std::move(ring),
        {SingleConstraint(deployment_.device(front.device_id), budget)}));
  }
  if (!chain.active_at_end && back.te < te) {
    const double budget = vmax_ * (te - back.te);
    Region ring = RingPiece(RangeOf(recs.back()), budget);
    pieces.push_back(CheckPiece(
        std::move(ring),
        {SingleConstraint(deployment_.device(back.device_id), budget)}));
  }

  return Region::Union(std::move(pieces));
}

void UncertaintyModel::IntervalMbrs(const IntervalChain& chain, Timestamp ts,
                                    Timestamp te, Box* mbr,
                                    std::vector<Box>* sub_mbrs) const {
  *mbr = Box{};
  if (sub_mbrs != nullptr) sub_mbrs->clear();
  // Degenerate window: same snapshot delegation as Interval.
  if (te <= ts) {
    *mbr = SnapshotMbr(ResolveSnapshotStateAt(table_, chain.object, ts), ts);
    if (sub_mbrs != nullptr && !mbr->Empty()) sub_mbrs->push_back(*mbr);
    return;
  }
  const std::vector<RecordIndex>& recs = chain.records;
  if (recs.empty()) return;

  const TrackingRecord& front = table_.record(recs.front());
  const TrackingRecord& back = table_.record(recs.back());
  const bool front_is_pre = !chain.active_at_start && front.te <= ts;
  const bool back_is_suc = !chain.active_at_end && back.ts >= te;

  auto emit = [&](const Box& box) {
    mbr->ExpandToInclude(box);
    if (sub_mbrs != nullptr) sub_mbrs->push_back(box);
  };

  // Detection-range boxes are only needed for single-record chains: every
  // Θ piece box already covers both of its end disks.
  if (recs.size() == 1) {
    const TrackingRecord& r = table_.record(recs.front());
    if (r.ts <= te && r.te >= ts) {
      emit(RangeOf(recs.front()).Bounds());
    }
  }

  if (recs.size() > 1) {
    for (size_t i = 0; i + 1 < recs.size(); ++i) {
      const TrackingRecord& a = table_.record(recs[i]);
      const TrackingRecord& b = table_.record(recs[i + 1]);
      const double gap_travel = vmax_ * std::max(0.0, b.ts - a.te);
      Box box = ExtendedEllipse(RangeOf(recs[i]), RangeOf(recs[i + 1]),
                                gap_travel)
                    .Bounds();
      if (i == 0 && front_is_pre) {
        box = Intersection(
            box, RingPieceBounds(RangeOf(recs[i + 1]), vmax_ * (b.ts - ts)));
      }
      if (i + 2 == recs.size() && back_is_suc) {
        box = Intersection(
            box, RingPieceBounds(RangeOf(recs[i]), vmax_ * (te - a.te)));
      }
      emit(box);
    }
  }

  if (!chain.active_at_start && front.ts > ts) {
    emit(RingPieceBounds(RangeOf(recs.front()), vmax_ * (front.ts - ts)));
  }
  if (!chain.active_at_end && back.te < te) {
    emit(RingPieceBounds(RangeOf(recs.back()), vmax_ * (te - back.te)));
  }

  // Long chains produce long sub-MBR lists that get scanned on every join
  // admission test; coalescing temporally adjacent (hence spatially
  // coherent) boxes caps that cost while staying conservative.
  constexpr size_t kMaxSubMbrs = 24;
  if (sub_mbrs != nullptr) {
    while (sub_mbrs->size() > kMaxSubMbrs) {
      std::vector<Box> merged;
      merged.reserve(sub_mbrs->size() / 2 + 1);
      for (size_t i = 0; i + 1 < sub_mbrs->size(); i += 2) {
        merged.push_back(Union((*sub_mbrs)[i], (*sub_mbrs)[i + 1]));
      }
      if (sub_mbrs->size() % 2 == 1) merged.push_back(sub_mbrs->back());
      *sub_mbrs = std::move(merged);
    }
  }
}

}  // namespace indoorflow
