// Operation counters for query execution.
//
// The paper's performance argument is about *work avoided*: the join
// algorithms derive uncertainty regions and evaluate presences only for
// objects/POIs that survive MBR pruning. QueryStats makes that measurable:
// pass a QueryStats to QueryEngine::SnapshotTopK / IntervalTopK and compare
// the counters across algorithms (bench_ablation prints them).

#ifndef INDOORFLOW_CORE_QUERY_STATS_H_
#define INDOORFLOW_CORE_QUERY_STATS_H_

#include <cstdint>
#include <string>

namespace indoorflow {

struct QueryStats {
  /// Objects returned by the AR-tree point/range query.
  int64_t objects_retrieved = 0;
  /// Uncertainty regions actually derived (join: only listed objects).
  int64_t regions_derived = 0;
  /// Presence integrations performed ((object, POI) pairs).
  int64_t presence_evaluations = 0;
  /// POIs whose exact flow was computed (join only; iterative computes all).
  int64_t pois_evaluated = 0;
  /// Derivations satisfied by the cross-query UR cache (src/core/ur_cache.h)
  /// instead of being derived; 0 when the engine runs without a cache.
  int64_t ur_cache_hits = 0;

  /// Per-phase wall time (nanoseconds, MonotonicNowNs deltas), filled in by
  /// the query algorithms. The phases mirror the paper's cost decomposition:
  /// retrieve (index lookup), derive (uncertainty-region construction),
  /// presence (area integrations), topk (aggregation / candidate ranking).
  int64_t retrieve_ns = 0;
  int64_t derive_ns = 0;
  int64_t presence_ns = 0;
  int64_t topk_ns = 0;

  /// Executor lanes fanned out by parallel sections of this query (0 when
  /// the query ran fully serially). When a query runs several parallel
  /// sections (e.g. multiple join batch rounds), this sums their lanes.
  int64_t parallel_tasks = 0;
  /// Wall time spent inside parallel sections (ns). Unlike derive_ns /
  /// presence_ns — which sum *per-worker* time and can exceed wall time
  /// when lanes overlap — this is measured once around each fan-out.
  int64_t parallel_ns = 0;

  /// Filter-phase candidate population seen by estimate queries (equals
  /// objects_retrieved for snapshot/interval estimates; 0 on exact-only
  /// query paths, which never consult the sampler).
  int64_t sample_population = 0;
  /// Candidates the estimate path actually evaluated: min(budget,
  /// population) when it sampled, the whole population when it ran exactly.
  int64_t sample_size = 0;

  void Reset() { *this = QueryStats{}; }

  QueryStats& operator+=(const QueryStats& o) {
    objects_retrieved += o.objects_retrieved;
    regions_derived += o.regions_derived;
    presence_evaluations += o.presence_evaluations;
    pois_evaluated += o.pois_evaluated;
    ur_cache_hits += o.ur_cache_hits;
    retrieve_ns += o.retrieve_ns;
    derive_ns += o.derive_ns;
    presence_ns += o.presence_ns;
    topk_ns += o.topk_ns;
    parallel_tasks += o.parallel_tasks;
    parallel_ns += o.parallel_ns;
    sample_population += o.sample_population;
    sample_size += o.sample_size;
    return *this;
  }

  QueryStats& operator-=(const QueryStats& o) {
    objects_retrieved -= o.objects_retrieved;
    regions_derived -= o.regions_derived;
    presence_evaluations -= o.presence_evaluations;
    pois_evaluated -= o.pois_evaluated;
    ur_cache_hits -= o.ur_cache_hits;
    retrieve_ns -= o.retrieve_ns;
    derive_ns -= o.derive_ns;
    presence_ns -= o.presence_ns;
    topk_ns -= o.topk_ns;
    parallel_tasks -= o.parallel_tasks;
    parallel_ns -= o.parallel_ns;
    sample_population -= o.sample_population;
    sample_size -= o.sample_size;
    return *this;
  }

  /// One flat JSON object over all fields, keyed by the snake_case
  /// names of kQueryStatsFields below. Shared by `indoorflow_cli` output
  /// and QueryProfile::ToJson so the two never drift.
  std::string ToJson() const;
};

/// The single source of truth for QueryStats field names across the JSON
/// serializations (json_name) and the benchmark counters published by
/// bench/bench_common.h (bench_name — CamelCase, pinned by
/// bench/baseline.json). `bench_name` is null for the phase timers, which
/// benchmarks report through their own timing instead.
struct QueryStatsField {
  const char* json_name;
  const char* bench_name;
  int64_t QueryStats::* member;
};

inline constexpr QueryStatsField kQueryStatsFields[] = {
    {"objects_retrieved", "ObjectsRetrieved", &QueryStats::objects_retrieved},
    {"regions_derived", "RegionsDerived", &QueryStats::regions_derived},
    {"presence_evaluations", "PresenceEvals",
     &QueryStats::presence_evaluations},
    {"pois_evaluated", "PoisEvaluated", &QueryStats::pois_evaluated},
    {"ur_cache_hits", "UrCacheHits", &QueryStats::ur_cache_hits},
    {"retrieve_ns", nullptr, &QueryStats::retrieve_ns},
    {"derive_ns", nullptr, &QueryStats::derive_ns},
    {"presence_ns", nullptr, &QueryStats::presence_ns},
    {"topk_ns", nullptr, &QueryStats::topk_ns},
    {"parallel_tasks", nullptr, &QueryStats::parallel_tasks},
    {"parallel_ns", nullptr, &QueryStats::parallel_ns},
    // bench_name deliberately null: the sampling benchmark publishes its
    // own quality counters, and keeping these out of the benchmark rows
    // keeps bench/baseline.json's counter set stable for exact suites.
    {"sample_population", nullptr, &QueryStats::sample_population},
    {"sample_size", nullptr, &QueryStats::sample_size},
};

inline std::string QueryStats::ToJson() const {
  std::string out = "{";
  bool first = true;
  for (const QueryStatsField& field : kQueryStatsFields) {
    if (!first) out.push_back(',');
    first = false;
    out.push_back('"');
    out.append(field.json_name);
    out.append("\":");
    out.append(std::to_string(this->*field.member));
  }
  out.push_back('}');
  return out;
}

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_QUERY_STATS_H_
