// Snapshot top-k indoor POI query processing (paper Problem 1, Section 4.2).

#ifndef INDOORFLOW_CORE_SNAPSHOT_QUERY_H_
#define INDOORFLOW_CORE_SNAPSHOT_QUERY_H_

#include <vector>

#include "src/core/approx.h"
#include "src/core/query_context.h"

namespace indoorflow {

/// Algorithm 1 (iterativeSnapshot): derive UR(o, t) for every object whose
/// augmented tracking interval covers t, accumulate presences into per-POI
/// flows, return the top-k. `poi_tree` indexes the query POI subset,
/// `subset_ids` lists it.
std::vector<PoiFlow> IterativeSnapshot(const QueryContext& ctx,
                                       const RTree& poi_tree,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp t, int k);

/// Approximate variant of Algorithm 1: when `approx` calls for sampling
/// (see ShouldSample), evaluate a deterministic uniform subsample of the
/// filter-phase states and return Horvitz–Thompson top-k estimates with
/// error bounds; otherwise evaluate every state and return exact estimates.
/// Ranking is by estimated value with TopK's tie-break contract.
std::vector<FlowEstimate> IterativeSnapshotEstimate(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, int k,
    const ApproxConfig& approx);

/// Algorithm 2 (joinSnapshot): build the aggregate object R-tree R_I from
/// cheap per-object MBRs, then run the best-first R_P x R_I join, deriving
/// uncertainty regions lazily (cached in the per-query H_U table).
std::vector<PoiFlow> JoinSnapshot(const QueryContext& ctx,
                                  const RTree& poi_tree,
                                  const std::vector<PoiId>& subset_ids,
                                  Timestamp t, int k);

/// Threshold variants (an indoorflow extension): every query POI whose
/// snapshot flow at `t` is at least `tau` (> 0), flow-descending. The join
/// variant terminates as soon as the best remaining bound drops below tau.
std::vector<PoiFlow> IterativeSnapshotThreshold(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, double tau);
std::vector<PoiFlow> JoinSnapshotThreshold(const QueryContext& ctx,
                                           const RTree& poi_tree,
                                           Timestamp t, double tau);

/// Density variants (an indoorflow extension): the k POIs with the highest
/// crowd density Φ(p)/area(p) at `t`. Returned PoiFlow.flow values are
/// densities (1/m²). The join ranks by density bounds directly (dividing
/// subtree flow bounds by the R_P min-area aggregate).
std::vector<PoiFlow> IterativeSnapshotDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp t, int k);
std::vector<PoiFlow> JoinSnapshotDensity(const QueryContext& ctx,
                                         const RTree& poi_tree,
                                         const std::vector<PoiId>& subset_ids,
                                         Timestamp t, int k);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_SNAPSHOT_QUERY_H_
