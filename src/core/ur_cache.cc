#include "src/core/ur_cache.h"

#include <cstring>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/common/trace.h"

namespace indoorflow {

namespace {

// Registry handles resolved once; the hot path touches only lock-free
// metric state (the static-struct idiom of engine.cc / streaming.cc).
struct UrCacheMetrics {
  Counter& hits = MetricsRegistry::Default().counter("urcache.hits");
  Counter& misses = MetricsRegistry::Default().counter("urcache.misses");
  Counter& inserts = MetricsRegistry::Default().counter("urcache.inserts");
  Counter& evictions =
      MetricsRegistry::Default().counter("urcache.evictions");
  Counter& stale_drops =
      MetricsRegistry::Default().counter("urcache.stale_drops");
  Counter& presence_hits =
      MetricsRegistry::Default().counter("urcache.presence_hits");
  Counter& presence_fills =
      MetricsRegistry::Default().counter("urcache.presence_fills");
  Gauge& bytes = MetricsRegistry::Default().gauge("urcache.bytes");
};

UrCacheMetrics& GetUrCacheMetrics() {
  static UrCacheMetrics* metrics = new UrCacheMetrics();
  return *metrics;
}

uint64_t TimestampBits(Timestamp t) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(t), "Timestamp must be 64-bit");
  std::memcpy(&bits, &t, sizeof(bits));
  return bits;
}

size_t RoundUpPow2(size_t n) {
  size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}

// Per-entry bookkeeping overhead on top of the region's own footprint:
// list node, index slot, key, epoch. Keeps tiny regions from accumulating
// unbounded under a byte-only budget.
constexpr size_t kEntryOverhead = 128;

// splitmix64: cheap, well-distributed mixing for the composite key.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

}  // namespace

bool UrCache::PresenceMemo::TryGet(int32_t poi, double* out) const {
  MutexLock lock(mu_);
  const auto it = values_.find(poi);
  if (it == values_.end()) return false;
  *out = it->second;
  GetUrCacheMetrics().presence_hits.Add(1);
  return true;
}

void UrCache::PresenceMemo::Put(int32_t poi, double value) {
  MutexLock lock(mu_);
  values_[poi] = value;
  GetUrCacheMetrics().presence_fills.Add(1);
}

size_t UrCache::KeyHash::operator()(const Key& k) const {
  uint64_t h = Mix64(static_cast<uint64_t>(static_cast<uint32_t>(k.object)) |
                     (static_cast<uint64_t>(k.kind) << 32));
  h = Mix64(h ^ k.ts_bits);
  h = Mix64(h ^ k.te_bits);
  return static_cast<size_t>(h);
}

UrCache::UrCache(const UrCacheConfig& config) {
  const size_t shard_count =
      RoundUpPow2(config.shards > 0 ? static_cast<size_t>(config.shards) : 1);
  shards_.reserve(shard_count);
  epoch_shards_.reserve(shard_count);
  for (size_t i = 0; i < shard_count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
    epoch_shards_.push_back(std::make_unique<EpochShard>());
  }
  shard_budget_ = config.max_bytes / shard_count;
}

UrCache::Key UrCache::MakeKey(ObjectId object, Kind kind, Timestamp ts,
                              Timestamp te) {
  Key key;
  key.object = object;
  key.kind = static_cast<uint8_t>(kind);
  key.ts_bits = TimestampBits(ts);
  key.te_bits = TimestampBits(te);
  return key;
}

UrCache::Shard& UrCache::ShardFor(const Key& key) const {
  return *shards_[KeyHash{}(key) & (shards_.size() - 1)];
}

UrCache::EpochShard& UrCache::EpochShardFor(ObjectId object) const {
  return *epoch_shards_[Mix64(static_cast<uint64_t>(
                            static_cast<uint32_t>(object))) &
                        (epoch_shards_.size() - 1)];
}

uint64_t UrCache::EpochOf(ObjectId object) const {
  EpochShard& shard = EpochShardFor(object);
  MutexLock lock(shard.mu);
  const auto it = shard.epochs.find(object);
  return it == shard.epochs.end() ? 0 : it->second;
}

void UrCache::BumpEpoch(ObjectId object) {
  EpochShard& shard = EpochShardFor(object);
  MutexLock lock(shard.mu);
  ++shard.epochs[object];
}

bool UrCache::Lookup(ObjectId object, Kind kind, Timestamp ts, Timestamp te,
                     Region* out, PresenceMemoPtr* memo, const Span* span) {
  INDOORFLOW_CHECK(out != nullptr);
  if (memo != nullptr) memo->reset();
  UrCacheMetrics& metrics = GetUrCacheMetrics();
  const uint64_t epoch = EpochOf(object);
  const Key key = MakeKey(object, kind, ts, te);
  Shard& shard = ShardFor(key);
  bool hit = false;
  {
    MutexLock lock(shard.mu);
    const auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      ++shard.counters.misses;
      metrics.misses.Add(1);
    } else if (it->second->second.epoch != epoch) {
      // The object's tracking state changed after this entry was derived;
      // drop it here rather than scanning every shard at bump time.
      shard.bytes -= it->second->second.bytes;
      metrics.bytes.Add(-static_cast<double>(it->second->second.bytes));
      shard.lru.erase(it->second);
      shard.index.erase(it);
      ++shard.counters.stale_drops;
      ++shard.counters.misses;
      metrics.stale_drops.Add(1);
      metrics.misses.Add(1);
    } else {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      *out = it->second->second.region;
      if (memo != nullptr) *memo = it->second->second.memo;
      ++shard.counters.hits;
      metrics.hits.Add(1);
      hit = true;
    }
  }
  if (span != nullptr) {
    span->AddEvent(hit ? "urcache.hit" : "urcache.miss");
  }
  return hit;
}

void UrCache::Insert(ObjectId object, Kind kind, Timestamp ts, Timestamp te,
                     const Region& region, PresenceMemoPtr* memo) {
  if (memo != nullptr) memo->reset();
  UrCacheMetrics& metrics = GetUrCacheMetrics();
  const size_t bytes = region.ApproxBytes() + kEntryOverhead;
  if (bytes > shard_budget_) return;  // would evict everything else: skip
  const uint64_t epoch = EpochOf(object);
  const Key key = MakeKey(object, kind, ts, te);
  // A fresh memo even on replacement: the replacing derivation may carry a
  // newer epoch, and integrals memoized against the old stamp must not
  // outlive it.
  PresenceMemoPtr fresh_memo = std::make_shared<PresenceMemo>();
  if (memo != nullptr) *memo = fresh_memo;
  Shard& shard = ShardFor(key);
  MutexLock lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // A racing thread derived the same region first; refresh in place so
    // the epoch stamp reflects this (possibly newer) derivation.
    shard.bytes -= it->second->second.bytes;
    metrics.bytes.Add(-static_cast<double>(it->second->second.bytes));
    it->second->second = Entry{region, std::move(fresh_memo), epoch, bytes};
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  } else {
    shard.lru.emplace_front(key,
                            Entry{region, std::move(fresh_memo), epoch,
                                  bytes});
    shard.index.emplace(key, shard.lru.begin());
  }
  shard.bytes += bytes;
  metrics.bytes.Add(static_cast<double>(bytes));
  ++shard.counters.inserts;
  metrics.inserts.Add(1);
  // The just-inserted entry sits at the LRU front and fits the budget by
  // itself (checked above), so this loop always terminates before it.
  while (shard.bytes > shard_budget_) {
    const auto& victim = shard.lru.back();
    shard.bytes -= victim.second.bytes;
    metrics.bytes.Add(-static_cast<double>(victim.second.bytes));
    shard.index.erase(victim.first);
    shard.lru.pop_back();
    ++shard.counters.evictions;
    metrics.evictions.Add(1);
  }
}

size_t UrCache::ApproxBytes() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->bytes;
  }
  return total;
}

size_t UrCache::EntryCount() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total += shard->index.size();
  }
  return total;
}

UrCache::ShardStats UrCache::ShardStatsAt(size_t index) const {
  INDOORFLOW_CHECK(index < shards_.size());
  const Shard& shard = *shards_[index];
  ShardStats stats;
  MutexLock lock(shard.mu);
  stats.bytes = shard.bytes;
  stats.entries = shard.index.size();
  stats.counters = shard.counters;
  return stats;
}

UrCache::Counters UrCache::TotalCounters() const {
  Counters total;
  for (const auto& shard : shards_) {
    MutexLock lock(shard->mu);
    total.hits += shard->counters.hits;
    total.misses += shard->counters.misses;
    total.inserts += shard->counters.inserts;
    total.evictions += shard->counters.evictions;
    total.stale_drops += shard->counters.stale_drops;
  }
  return total;
}

}  // namespace indoorflow
