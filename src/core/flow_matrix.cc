#include "src/core/flow_matrix.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "src/common/executor.h"
#include "src/common/metrics.h"
#include "src/core/flow.h"

namespace indoorflow {

FlowMatrix FlowMatrix::Build(const QueryEngine& engine, Timestamp t0,
                             Timestamp t1,
                             const FlowMatrixOptions& options) {
  INDOORFLOW_CHECK(options.bucket_seconds > 0.0);
  INDOORFLOW_CHECK(t1 >= t0);
  FlowMatrix matrix;
  const auto num_buckets = static_cast<size_t>(
      std::max(1.0, std::ceil((t1 - t0) / options.bucket_seconds)));
  // One probe per bucket center.
  for (size_t i = 0; i < num_buckets; ++i) {
    matrix.bucket_times_.push_back(
        t0 + (static_cast<double>(i) + 0.5) * options.bucket_seconds);
  }

  // Size the matrix up front (POI ids are dense), then fan the bucket
  // probes across the shared executor. Each ParallelFor index is one
  // bucket and writes only that bucket's row, so all writes are disjoint;
  // the fan-out barrier publishes them to the caller. The engine is safe
  // for concurrent const use (see src/core/engine.h); this loop is one of
  // the TSan CI stress subjects (tests/concurrency_test.cc).
  matrix.num_pois_ = engine.pois().size();
  matrix.flows_.assign(num_buckets * matrix.num_pois_, 0.0);
  Histogram& rows_per_sec =
      MetricsRegistry::Default().histogram("flow_matrix.worker_rows_per_sec");
  Counter& buckets_built =
      MetricsRegistry::Default().counter("flow_matrix.buckets_built");
  ScopedTimer build_timer(
      &MetricsRegistry::Default().histogram("flow_matrix.build_latency_us"),
      "FlowMatrix::Build");
  const int64_t build_start = MonotonicNowNs();
  Executor::Default().ParallelFor(
      num_buckets, Executor::ResolveThreads(options.threads),
      [&matrix, &engine, &options](size_t bucket) {
        // k = "all": the engine pads with zero flows, so every POI appears.
        const std::vector<PoiFlow> flows = engine.SnapshotTopK(
            matrix.bucket_times_[bucket], std::numeric_limits<int>::max(),
            options.algorithm);
        INDOORFLOW_CHECK(flows.size() == matrix.num_pois_);
        for (const PoiFlow& f : flows) {
          matrix.flows_[bucket * matrix.num_pois_ +
                        static_cast<size_t>(f.poi)] = f.flow;
        }
      });
  buckets_built.Add(static_cast<int64_t>(num_buckets));
  const double elapsed_s =
      static_cast<double>(MonotonicNowNs() - build_start) / 1e9;
  if (elapsed_s > 0.0) {
    rows_per_sec.Record(static_cast<double>(num_buckets) / elapsed_s);
  }
  return matrix;
}

double FlowMatrix::ApproxFlow(PoiId poi, Timestamp t) const {
  INDOORFLOW_CHECK(!bucket_times_.empty());
  if (t <= bucket_times_.front()) return FlowAt(0, poi);
  if (t >= bucket_times_.back()) {
    return FlowAt(bucket_times_.size() - 1, poi);
  }
  const auto it = std::upper_bound(bucket_times_.begin(),
                                   bucket_times_.end(), t);
  const size_t hi = static_cast<size_t>(it - bucket_times_.begin());
  const size_t lo = hi - 1;
  const double span = bucket_times_[hi] - bucket_times_[lo];
  const double w = span > 0.0 ? (t - bucket_times_[lo]) / span : 0.0;
  return (1.0 - w) * FlowAt(lo, poi) + w * FlowAt(hi, poi);
}

std::vector<PoiFlow> FlowMatrix::ApproxSnapshotTopK(Timestamp t,
                                                    int k) const {
  std::vector<PoiFlow> flows;
  flows.reserve(num_pois_);
  for (size_t poi = 0; poi < num_pois_; ++poi) {
    flows.push_back(
        PoiFlow{static_cast<PoiId>(poi),
                ApproxFlow(static_cast<PoiId>(poi), t)});
  }
  return TopK(std::move(flows), k);
}

std::vector<PoiFlow> FlowMatrix::AverageOccupancyTopK(Timestamp ts,
                                                      Timestamp te,
                                                      int k) const {
  INDOORFLOW_CHECK(te >= ts);
  std::vector<PoiFlow> flows;
  flows.reserve(num_pois_);
  // Trapezoidal average of the interpolated flow over [ts, te], sampled at
  // the window edges and every bucket center inside.
  std::vector<Timestamp> samples = {ts};
  for (const Timestamp t : bucket_times_) {
    if (t > ts && t < te) samples.push_back(t);
  }
  samples.push_back(te);
  for (size_t poi = 0; poi < num_pois_; ++poi) {
    const PoiId id = static_cast<PoiId>(poi);
    double area = 0.0;
    for (size_t i = 0; i + 1 < samples.size(); ++i) {
      const double dt = samples[i + 1] - samples[i];
      area += 0.5 * (ApproxFlow(id, samples[i]) +
                     ApproxFlow(id, samples[i + 1])) *
              dt;
    }
    const double span = te - ts;
    flows.push_back(PoiFlow{id, span > 0.0 ? area / span
                                           : ApproxFlow(id, ts)});
  }
  return TopK(std::move(flows), k);
}

}  // namespace indoorflow
