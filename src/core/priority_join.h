// The join-based query framework shared by Algorithms 2 and 5.
//
// Both join algorithms traverse the POI R-tree R_P and the per-query
// aggregate object R-tree R_I best-first, ordered by an upper bound on the
// flow a POI (or group of POIs) can reach: since an object's presence never
// exceeds 1 (Definition 1), the number of objects whose MBRs intersect a POI
// entry's MBR bounds its flow. Exact uncertainty regions are derived only
// for POIs that survive to the front of the queue — the algorithms' source
// of speedup over the iterative baselines.
//
// The uncertainty-region derivation differs between snapshot and interval
// queries, so it is injected as a callback; join-list admission against leaf
// object entries goes through AggregateRTree::Admits, which implements the
// interval sub-MBR improvement transparently.

#ifndef INDOORFLOW_CORE_PRIORITY_JOIN_H_
#define INDOORFLOW_CORE_PRIORITY_JOIN_H_

#include <functional>
#include <vector>

#include "src/common/deadline.h"
#include "src/core/flow.h"
#include "src/core/query_stats.h"
#include "src/geometry/region.h"
#include "src/index/aggregate_rtree.h"
#include "src/index/rtree.h"

namespace indoorflow {

struct QueryProfile;

struct PriorityJoinSpec {
  const RTree* poi_tree = nullptr;       // R_P over the query POI subset
  const AggregateRTree* objects = nullptr;  // R_I
  const std::vector<double>* poi_areas = nullptr;    // indexed by PoiId
  const std::vector<Region>* poi_regions = nullptr;  // indexed by PoiId
  const FlowConfig* flow = nullptr;
  /// Returns the (cached) uncertainty region of object slot `i` in R_I.
  std::function<const Region&(int32_t)> ur_of;
  /// Optional override for the exact presence integral of (object slot,
  /// poi id). When set, the join calls it instead of Presence(ur_of(slot),
  /// ...) and leaves presence accounting (stats->presence_evaluations) to
  /// the callback — the engine uses this to consult the cross-query cache's
  /// per-entry presence memos. Must return exactly what the direct
  /// evaluation would.
  std::function<double(int32_t, int32_t)> presence_of;
  /// Optional batch variant: when set it takes precedence, and the join
  /// hands over one leaf's whole join list (object slots, in list order)
  /// at once, then sums the returned presences in that same order — so the
  /// flow's floating-point accumulation sequence, and with it every result
  /// bit, matches the per-slot loop. The engine uses this to fan the
  /// per-object derive + integrate work across the shared executor within
  /// one bound round (round ordering, and thus early termination, is
  /// untouched). The callback fills `out` aligned with `slots` with
  /// exactly the values the per-slot path would produce and owns all
  /// presence/derivation accounting except presence_ns, which stays with
  /// the join's leaf bracket. See MakeJoinPresenceBatch
  /// (src/core/parallel_flows.h).
  std::function<void(const std::vector<int32_t>&, int32_t,
                     std::vector<double>*)>
      presence_batch;
  /// Optional operation counters (may be null).
  QueryStats* stats = nullptr;
  /// Optional EXPLAIN recorder (may be null): receives per-POI bound
  /// observations, exact-flow verdicts, and the heap-pop trace.
  QueryProfile* profile = nullptr;
  /// Tighten upper bounds with geometry (an indoorflow extension over the
  /// paper's count bounds): an object's presence in any POI below a POI
  /// entry is at most area(object MBR ∩ POI-entry box) / min POI area in
  /// that subtree — usually far below 1, letting the best-first join stop
  /// earlier. Results are unchanged (the bound remains an upper bound).
  bool area_bounds = false;
  /// Per-request deadline / cancellation (may be null = never abort). The
  /// best-first loop polls it once per heap pop and returns early — with
  /// whatever was already emitted — once it trips; the engine's caller
  /// detects the abort via control->Aborted() and discards the partial
  /// result.
  const QueryControl* control = nullptr;
  /// Rank by crowd density Φ(p) / area(p) instead of raw flow (an
  /// indoorflow extension — "the most crowded POIs"). Bounds divide by the
  /// subtree's minimum POI area (the R_P min-value aggregate), so the
  /// division preserves the upper-bound property. Emitted PoiFlow.flow
  /// values are densities (1/m²).
  bool density = false;
};

/// Runs the best-first join and returns the top-k POIs by flow. POIs whose
/// flow is zero are appended (in id order) only if fewer than k POIs have
/// positive flow; `subset_ids` lists the queried POIs for that padding.
std::vector<PoiFlow> PriorityJoinTopK(const PriorityJoinSpec& spec, int k,
                                      const std::vector<PoiId>& subset_ids);

/// Runs the best-first join and returns every POI whose flow is at least
/// `tau` (> 0 required), ordered by flow descending (ties toward lower POI
/// id). Termination is bound-driven: the traversal stops as soon as the
/// queue's best upper bound drops below `tau`, so a selective threshold
/// touches only the hottest corner of the join — the same work-avoidance
/// that makes the top-k join fast at small k.
std::vector<PoiFlow> PriorityJoinThreshold(const PriorityJoinSpec& spec,
                                           double tau);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_PRIORITY_JOIN_H_
