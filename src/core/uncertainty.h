// Uncertainty-region derivation (paper Section 3).
//
// Snapshot regions (Section 3.1.2):
//   active:   UR(o,t) = Ring(dev_pre, Vmax·(t − rd_pre.te)) ∩ dev_cov.range
//   inactive: UR(o,t) = Ring(dev_pre, Vmax·(t − rd_pre.te)) ∩
//                       Ring(dev_suc, Vmax·(rd_suc.ts − t))
//
// Interval regions (Section 3.2, Cases 1-4): the union over consecutive
// record pairs of extended ellipses Θ(dev_i, dev_j, rd_i.te, rd_j.ts), where
// the first Θ is additionally intersected with Ring(dev_b, Vmax·(rd_b.ts −
// ts)) when the object is inactive at ts, and the last Θ with Ring(dev_b',
// Vmax·(te − rd_b'.te)) when inactive at te.
//
// When a TopologyChecker is supplied, every Euclidean constraint gets its
// indoor analog intersected in per piece (Section 3.3): each Ring pairs with
// ReachableFrom and each Θ with ReachableBridge.
//
// Deviations from the paper, documented here:
//   * rd_pre == rd_cov device (an object re-detected by the device it last
//     left): the paper's active-state formula degenerates to a zero-area
//     ring∩disk; we use dev_cov.range, the physically correct region.
//   * An object first/last seen inside the interval (no rd_pre / rd_suc
//     exists — the paper assumes one does): the missing Θ collapses to the
//     corresponding Ring around the known-side device.
//   * A chain of exactly two records with the object inactive at both ends:
//     the single Θ is intersected with both rings (tighter than, and
//     contained in, the paper's union form — see DESIGN.md).
//   * A ring with zero travel budget (query time exactly at a detection
//     boundary, e.g. t == rd_pre.te): the ring formula degenerates to a
//     zero-area annulus; the derivation substitutes the detection disk,
//     where the object provably still is at that instant.
//   * A degenerate interval [t, t]: both Interval and IntervalMbrs delegate
//     to the snapshot derivation at t, so IntervalTopK(t, t) agrees
//     bit-for-bit with SnapshotTopK(t) instead of mis-classifying the
//     boundary record as both predecessor and successor.

#ifndef INDOORFLOW_CORE_UNCERTAINTY_H_
#define INDOORFLOW_CORE_UNCERTAINTY_H_

#include <vector>

#include "src/core/topology_check.h"
#include "src/core/tracking_state.h"
#include "src/geometry/region.h"
#include "src/tracking/deployment.h"

namespace indoorflow {

class UncertaintyModel {
 public:
  /// `topology` may be null (skip the indoor topology check; `mode` is then
  /// forced to kOff). All references must outlive the model and the regions
  /// it creates.
  UncertaintyModel(const ObjectTrackingTable& table,
                   const Deployment& deployment, double vmax,
                   const TopologyChecker* topology = nullptr,
                   TopologyMode mode = TopologyMode::kExact)
      : table_(table),
        deployment_(deployment),
        vmax_(vmax),
        topology_(topology),
        mode_(topology == nullptr ? TopologyMode::kOff : mode) {}

  /// UR(o, t) for a resolved snapshot state.
  Region Snapshot(const SnapshotState& state, Timestamp t) const;

  /// Conservative MBR of UR(o, t), computed without deriving the region
  /// (paper Algorithm 2, phase 1).
  Box SnapshotMbr(const SnapshotState& state, Timestamp t) const;

  /// UR(o, [ts, te]) for a relevant record chain.
  Region Interval(const IntervalChain& chain, Timestamp ts,
                  Timestamp te) const;

  /// MBRs of UR(o, [ts, te]) without deriving the region: `mbr` is the
  /// overall trajectory box; `sub_mbrs` (optional) receives one box per
  /// piece — the paper's finer-MBR improvement (Section 4.3.2).
  void IntervalMbrs(const IntervalChain& chain, Timestamp ts, Timestamp te,
                    Box* mbr, std::vector<Box>* sub_mbrs) const;

  double vmax() const { return vmax_; }

 private:
  const Circle& RangeOf(RecordIndex r) const;
  /// Applies the topology check to one UR piece.
  Region CheckPiece(Region piece,
                    const std::vector<PieceConstraint>& constraints) const;

  const ObjectTrackingTable& table_;
  const Deployment& deployment_;
  double vmax_;
  const TopologyChecker* topology_;
  TopologyMode mode_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_UNCERTAINTY_H_
