// Object presence and POI flow (paper Definitions 1 and 2).
//
//   presence  φ(o) = area(UR(o) ∩ p) / area(p)   — in [0, 1], "the
//     probability that o is in POI p";
//   flow      Φ(p) = Σ_{o ∈ O} φ(o)              — weighted visit count.

#ifndef INDOORFLOW_CORE_FLOW_H_
#define INDOORFLOW_CORE_FLOW_H_

#include <algorithm>
#include <vector>

#include "src/geometry/area_integrator.h"
#include "src/indoor/poi.h"

namespace indoorflow {

struct FlowConfig {
  /// Presence values are computed to within this absolute error (the area
  /// integrator's tolerance is presence_tolerance * area(p)).
  double presence_tolerance = 0.01;
  /// Caps for the adaptive integrator (see AreaOptions). The cell cap
  /// bounds per-pair cost on boundary-heavy regions; the flow error it
  /// introduces is certified and, at this setting, far below the ranking
  /// gaps observed in practice.
  int max_depth = 12;
  int max_cells = 10000;
  /// POI polygons with area below this (m²) are degenerate — collapsed or
  /// self-crossing shapes whose area carries no signal. Their areas are
  /// demoted to exactly 0 at load time (EffectivePoiArea), so presence,
  /// flow, and density all treat them as zero-flow POIs and the density
  /// ranking's division by the subtree min-area aggregate never sees a
  /// near-zero divisor.
  double min_poi_area = 1e-9;
};

/// Load-time clamp for degenerate POI polygons (see
/// FlowConfig::min_poi_area): areas below the threshold become exactly 0,
/// the value every downstream guard (`Presence`, density division, join
/// bounds) already short-circuits on.
inline double EffectivePoiArea(double area, const FlowConfig& config) {
  return area >= config.min_poi_area ? area : 0.0;
}

/// φ: the fraction of the POI covered by `ur`, clamped to [0, 1].
/// `poi_area` and `poi_region` are the POI polygon's precomputed area and
/// Region wrapper (callers cache both per POI).
double Presence(const Region& ur, double poi_area, const Region& poi_region,
                const FlowConfig& config);

/// One POI's flow in a query result.
struct PoiFlow {
  PoiId poi = -1;
  double flow = 0.0;
};

/// Selects the k highest-flow POIs (ties broken toward lower POI id so that
/// all algorithms return identical results). `flows` is consumed.
std::vector<PoiFlow> TopK(std::vector<PoiFlow> flows, int k);

/// Selects every POI with flow >= tau, ordered by flow descending (ties
/// toward lower POI id). `flows` is consumed.
std::vector<PoiFlow> FlowsAtLeast(std::vector<PoiFlow> flows, double tau);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_FLOW_H_
