#include "src/core/priority_join.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <unordered_set>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/status.h"
#include "src/core/query_profile.h"

namespace indoorflow {

namespace {

// A reference to one entry (node, slot) of the aggregate object tree.
struct RIRef {
  RTree::NodeId node = -1;
  int slot = 0;
};

struct QueueEntry {
  double priority = 0.0;  // upper-bound flow, or exact flow when exact
  bool exact = false;
  PoiId exact_poi = -1;  // valid when exact

  RTree::NodeId p_node = -1;  // e_P location (valid when !exact)
  int p_slot = 0;
  std::vector<RIRef> list;  // join list (entries of one R_I level)
};

struct QueueCompare {
  // Max-heap "less-than": order by priority, then exact-before-bound, then
  // POI id (ascending) so that equal exact flows pop deterministically.
  bool operator()(const QueueEntry& a, const QueueEntry& b) const {
    if (a.priority != b.priority) return a.priority < b.priority;
    if (a.exact != b.exact) return b.exact;  // exact wins ties
    return a.exact_poi > b.exact_poi;
  }
};

// A max-heap over QueueEntry that supports moving elements out (which
// std::priority_queue's const top() forbids).
class EntryHeap {
 public:
  bool empty() const { return entries_.empty(); }

  void Push(QueueEntry entry) {
    entries_.push_back(std::move(entry));
    std::push_heap(entries_.begin(), entries_.end(), QueueCompare{});
  }

  QueueEntry Pop() {
    std::pop_heap(entries_.begin(), entries_.end(), QueueCompare{});
    QueueEntry top = std::move(entries_.back());
    entries_.pop_back();
    return top;
  }

 private:
  std::vector<QueueEntry> entries_;
};

// The best-first R_P x R_I traversal shared by the top-k and threshold
// queries. Emits POIs with positive exact flow in nonincreasing flow order;
// stops when `emit` returns false or when the best remaining upper bound
// falls below `min_priority` (at which point no unseen POI can reach it).
template <typename Emit>
void RunBestFirstJoin(const PriorityJoinSpec& spec, double min_priority,
                      const Emit& emit) {
  const RTree& poi_tree = *spec.poi_tree;
  const AggregateRTree& agg = *spec.objects;
  const RTree& obj_tree = agg.tree();
  if (poi_tree.empty() || obj_tree.empty()) return;
  QueryProfile* profile = spec.profile;

  // Admission of a POI box against an R_I entry. Leaf object entries check
  // their finer sub-MBRs when available (interval improvement, Fig. 9).
  const auto admits = [&](const RIRef& ref, const Box& box) {
    if (obj_tree.IsLeaf(ref.node)) {
      return agg.Admits(obj_tree.EntryItem(ref.node, ref.slot), box);
    }
    return obj_tree.EntryBox(ref.node, ref.slot).Intersects(box);
  };

  // Upper bound on the flow an R_I entry can contribute to any POI within
  // the given POI box whose area is at least `min_poi_area`. The paper uses
  // the object count (presence <= 1, Definition 1); with area_bounds the
  // per-object presence is additionally bounded by the box-overlap ratio.
  const auto flow_bound = [&](const RIRef& ref, const Box& poi_box,
                              double min_poi_area) {
    const double count =
        static_cast<double>(obj_tree.EntryCount(ref.node, ref.slot));
    if (!spec.area_bounds || min_poi_area <= 0.0) return count;
    double overlap = 0.0;
    if (obj_tree.IsLeaf(ref.node)) {
      const AggregateRTree::ObjectEntry& entry =
          agg.entry(obj_tree.EntryItem(ref.node, ref.slot));
      if (entry.sub_mbrs.empty()) {
        overlap = Intersection(entry.mbr, poi_box).Area();
      } else {
        // Sum over sub-MBRs bounds the union's overlap from above.
        for (const Box& sub : entry.sub_mbrs) {
          overlap += Intersection(sub, poi_box).Area();
        }
      }
    } else {
      overlap =
          Intersection(obj_tree.EntryBox(ref.node, ref.slot), poi_box)
              .Area();
    }
    const double factor = std::min(1.0, overlap / min_poi_area);
    return count * factor;
  };

  // Density mode divides a subtree's flow bound by its minimum POI area:
  // flow <= bound and area >= min_area give flow/area <= bound/min_area.
  // min_poi_area is +inf for all-degenerate subtrees — bound/inf == 0, the
  // defined density of a degenerate POI — and positive otherwise (see
  // min_area_of). A zero can only come from a POI tree built without the
  // load-time area demotion; it falls back to the never-prunes bound
  // instead of silently pruning every POI sharing the subtree. The clamp
  // keeps a tiny-but-positive divisor from emitting inf upward.
  const auto densify = [&](double bound, double min_poi_area) {
    if (!spec.density) return bound;
    if (!(min_poi_area > 0.0)) {
      return bound > 0.0 ? std::numeric_limits<double>::max() : 0.0;
    }
    const double density = bound / min_poi_area;
    return std::isfinite(density) ? density
                                  : std::numeric_limits<double>::max();
  };

  EntryHeap queue;

  // Joins `box` against the children of every entry in `list` (descending
  // the object tree one level) — the paper's expandList (Algorithm 3).
  const auto expand_list = [&](const Box& box, double min_poi_area,
                               const std::vector<RIRef>& list,
                               std::vector<RIRef>* out, double* ub) {
    out->clear();
    *ub = 0.0;
    for (const RIRef& ref : list) {
      const RTree::NodeId child = obj_tree.EntryChild(ref.node, ref.slot);
      const int n = obj_tree.NumEntries(child);
      for (int s = 0; s < n; ++s) {
        const RIRef sub{child, s};
        if (admits(sub, box)) {
          out->push_back(sub);
          *ub += flow_bound(sub, box, min_poi_area);
        }
      }
    }
    *ub = densify(*ub, min_poi_area);
  };

  // Minimum POI area below a POI-tree entry (exact for leaf entries).
  // Degenerate POIs carry area 0 (EffectivePoiArea demotion); their density
  // divisor convention is +inf so the min aggregate ignores them, matching
  // the tree's values (Engine::BuildPoiTree).
  const auto min_area_of = [&](RTree::NodeId node, int slot) {
    if (poi_tree.IsLeaf(node)) {
      const double area = (*spec.poi_areas)[static_cast<size_t>(
          poi_tree.EntryItem(node, slot))];
      return area > 0.0 ? area : std::numeric_limits<double>::infinity();
    }
    return poi_tree.EntryMinValue(node, slot);
  };

  // Whether the join list sits at the leaf level of R_I. Lists are always
  // level-homogeneous by construction.
  const auto list_is_leaf = [&](const std::vector<RIRef>& list) {
    return obj_tree.IsLeaf(list.front().node);
  };

  // Phase 2 (Algorithm 2 lines 12-18): join the two roots.
  {
    const RTree::NodeId p_root = poi_tree.root();
    const RTree::NodeId o_root = obj_tree.root();
    for (int ps = 0; ps < poi_tree.NumEntries(p_root); ++ps) {
      const Box& p_box = poi_tree.EntryBox(p_root, ps);
      const double min_area = min_area_of(p_root, ps);
      QueueEntry entry;
      entry.p_node = p_root;
      entry.p_slot = ps;
      for (int os = 0; os < obj_tree.NumEntries(o_root); ++os) {
        const RIRef ref{o_root, os};
        if (admits(ref, p_box)) {
          entry.list.push_back(ref);
          entry.priority += flow_bound(ref, p_box, min_area);
        }
      }
      entry.priority = densify(entry.priority, min_area);
      if (!entry.list.empty()) {
        if (profile != nullptr && poi_tree.IsLeaf(p_root)) {
          profile->ObserveBound(poi_tree.EntryItem(p_root, ps),
                                entry.priority);
        }
        queue.Push(std::move(entry));
      }
    }
  }

  // Scratch for the presence_batch hook, reused across leaf evaluations.
  std::vector<int32_t> batch_slots;
  std::vector<double> batch_presences;

  // Phase 3 (lines 19-48): best-first processing.
  while (!queue.empty()) {
    // Cooperative abandonment: one sticky deadline/cancel poll per round
    // (src/common/deadline.h); the caller discards the partial result.
    if (spec.control != nullptr && spec.control->ShouldAbort()) return;
    QueueEntry entry = queue.Pop();
    // Heap order guarantees every remaining entry — bound or exact — is at
    // most entry.priority, so nothing left can reach min_priority.
    if (entry.priority < min_priority) {
      if (profile != nullptr) {
        profile->AddJoinEvent("cutoff", entry.priority, entry.exact_poi,
                              static_cast<int32_t>(entry.list.size()));
      }
      return;
    }

    if (entry.exact) {
      if (profile != nullptr) {
        profile->AddJoinEvent("pop_exact", entry.priority, entry.exact_poi,
                              0);
      }
      // Its exact flow beats every remaining upper bound.
      if (!emit(PoiFlow{entry.exact_poi, entry.priority})) return;
      continue;
    }

    const bool p_is_leaf = poi_tree.IsLeaf(entry.p_node);
    const Box& p_box = poi_tree.EntryBox(entry.p_node, entry.p_slot);
    if (profile != nullptr) {
      profile->AddJoinEvent(
          p_is_leaf ? "pop_poi" : "pop_group", entry.priority,
          p_is_leaf ? poi_tree.EntryItem(entry.p_node, entry.p_slot) : -1,
          static_cast<int32_t>(entry.list.size()));
    }

    if (p_is_leaf) {
      const PoiId poi_id = poi_tree.EntryItem(entry.p_node, entry.p_slot);
      if (list_is_leaf(entry.list)) {
        // Compute the exact flow from the objects in the join list.
        if (spec.stats != nullptr) ++spec.stats->pois_evaluated;
        double flow = 0.0;
        const double poi_area =
            (*spec.poi_areas)[static_cast<size_t>(poi_id)];
        const Region& poi_region =
            (*spec.poi_regions)[static_cast<size_t>(poi_id)];
        // Timed per leaf, not per object: two clock reads per Presence
        // call cost ~5% of a join query. ur_of books its own derive_ns on
        // cache misses, so subtract that delta from the loop span.
        const int64_t loop_start =
            spec.stats != nullptr ? MonotonicNowNs() : 0;
        const int64_t derive_before =
            spec.stats != nullptr ? spec.stats->derive_ns : 0;
        if (spec.presence_batch) {
          // Batch hook: hand the whole list over at once (the engine fans
          // it across the executor), then sum in list order — the same
          // accumulation sequence as the per-slot loop below, so the flow
          // double is bit-identical. The hook owns eval/derive accounting.
          batch_slots.clear();
          batch_slots.reserve(entry.list.size());
          for (const RIRef& ref : entry.list) {
            batch_slots.push_back(obj_tree.EntryItem(ref.node, ref.slot));
          }
          spec.presence_batch(batch_slots, poi_id, &batch_presences);
          for (const double presence : batch_presences) flow += presence;
        } else {
          for (const RIRef& ref : entry.list) {
            const int32_t slot = obj_tree.EntryItem(ref.node, ref.slot);
            if (spec.presence_of) {
              flow += spec.presence_of(slot, poi_id);
            } else {
              const Region& ur = spec.ur_of(slot);
              flow += Presence(ur, poi_area, poi_region, *spec.flow);
            }
          }
        }
        if (spec.stats != nullptr) {
          const int64_t span = MonotonicNowNs() - loop_start;
          const int64_t derived = spec.stats->derive_ns - derive_before;
          spec.stats->presence_ns += span > derived ? span - derived : 0;
          if (!spec.presence_of && !spec.presence_batch) {
            spec.stats->presence_evaluations +=
                static_cast<int64_t>(entry.list.size());
          }
        }
        if (profile != nullptr) {
          // Raw flow, before the density divide: comparable across modes.
          profile->MarkEvaluated(poi_id, flow,
                                 static_cast<int64_t>(entry.list.size()));
        }
        // The exact entry's priority is the ranking value itself, not a
        // bound: a degenerate POI (area 0) has defined density 0, so it
        // joins the zero-flow padding in POI-id order exactly like the
        // iterative path ranks it, instead of going through densify's
        // bound-side fallback.
        const double ranked =
            spec.density ? (poi_area > 0.0 ? flow / poi_area : 0.0) : flow;
        if (ranked > 0.0) {
          QueueEntry exact;
          exact.exact = true;
          exact.exact_poi = poi_id;
          exact.priority = ranked;
          queue.Push(std::move(exact));
        }
      } else {
        QueueEntry next;
        next.p_node = entry.p_node;
        next.p_slot = entry.p_slot;
        expand_list(p_box, min_area_of(entry.p_node, entry.p_slot),
                    entry.list, &next.list, &next.priority);
        if (!next.list.empty()) {
          if (profile != nullptr) {
            profile->ObserveBound(poi_id, next.priority);
          }
          queue.Push(std::move(next));
        }
      }
      continue;
    }

    // e_P is an internal entry: descend into its child node.
    const RTree::NodeId child = poi_tree.EntryChild(entry.p_node,
                                                    entry.p_slot);
    const int n = poi_tree.NumEntries(child);
    const bool child_is_leaf = poi_tree.IsLeaf(child);
    if (list_is_leaf(entry.list)) {
      // Join each sub-entry against the (leaf-level) list directly.
      for (int s = 0; s < n; ++s) {
        const Box& sub_box = poi_tree.EntryBox(child, s);
        const double min_area = min_area_of(child, s);
        QueueEntry next;
        next.p_node = child;
        next.p_slot = s;
        for (const RIRef& ref : entry.list) {
          if (admits(ref, sub_box)) {
            next.list.push_back(ref);
            next.priority += flow_bound(ref, sub_box, min_area);
          }
        }
        next.priority = densify(next.priority, min_area);
        if (!next.list.empty()) {
          if (profile != nullptr && child_is_leaf) {
            profile->ObserveBound(poi_tree.EntryItem(child, s),
                                  next.priority);
          }
          queue.Push(std::move(next));
        }
      }
    } else {
      for (int s = 0; s < n; ++s) {
        QueueEntry next;
        next.p_node = child;
        next.p_slot = s;
        expand_list(poi_tree.EntryBox(child, s), min_area_of(child, s),
                    entry.list, &next.list, &next.priority);
        if (!next.list.empty()) {
          if (profile != nullptr && child_is_leaf) {
            profile->ObserveBound(poi_tree.EntryItem(child, s),
                                  next.priority);
          }
          queue.Push(std::move(next));
        }
      }
    }
  }
}

}  // namespace

std::vector<PoiFlow> PriorityJoinTopK(const PriorityJoinSpec& spec, int k,
                                      const std::vector<PoiId>& subset_ids) {
  std::vector<PoiFlow> result;
  if (k <= 0) return result;

  // Priorities are never negative, so 0.0 disables the bound cutoff and the
  // traversal runs until emit stops it (or the queue drains).
  RunBestFirstJoin(spec, 0.0, [&](const PoiFlow& flow) {
    result.push_back(flow);
    return static_cast<int>(result.size()) < k;
  });

  // Pad with zero-flow POIs (in id order) when fewer than k POIs have
  // positive flow, so both algorithms return identically-shaped results.
  if (static_cast<int>(result.size()) < k) {
    std::unordered_set<PoiId> present;
    for (const PoiFlow& f : result) present.insert(f.poi);
    std::vector<PoiId> rest;
    for (PoiId id : subset_ids) {
      if (!present.contains(id)) rest.push_back(id);
    }
    std::sort(rest.begin(), rest.end());
    for (PoiId id : rest) {
      if (static_cast<int>(result.size()) >= k) break;
      result.push_back(PoiFlow{id, 0.0});
    }
  }
  return result;
}

std::vector<PoiFlow> PriorityJoinThreshold(const PriorityJoinSpec& spec,
                                           double tau) {
  INDOORFLOW_CHECK(tau > 0.0);
  std::vector<PoiFlow> result;
  RunBestFirstJoin(spec, tau, [&](const PoiFlow& flow) {
    result.push_back(flow);
    return true;
  });
  return result;
}

}  // namespace indoorflow
