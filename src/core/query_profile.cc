#include "src/core/query_profile.h"

#include <algorithm>
#include <cstdio>

#include "src/common/log.h"

namespace indoorflow {

namespace {

std::string JsonNumber(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

// "12.3 ms" / "45.6 us" — for the human-readable report.
std::string HumanNs(int64_t ns) {
  char buf[32];
  if (ns >= 1'000'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f s",
                  static_cast<double>(ns) / 1e9);
  } else if (ns >= 1'000'000) {
    std::snprintf(buf, sizeof(buf), "%.2f ms",
                  static_cast<double>(ns) / 1e6);
  } else if (ns >= 1'000) {
    std::snprintf(buf, sizeof(buf), "%.2f us",
                  static_cast<double>(ns) / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%lld ns",
                  static_cast<long long>(ns));
  }
  return buf;
}

std::string Percent(int64_t part, int64_t whole) {
  char buf[16];
  const double pct =
      whole > 0 ? 100.0 * static_cast<double>(part) /
                      static_cast<double>(whole)
                : 0.0;
  std::snprintf(buf, sizeof(buf), "%5.1f%%", pct);
  return buf;
}

}  // namespace

const char* QueryProfile::VerdictName(Verdict verdict) {
  switch (verdict) {
    case Verdict::kPrunedMbr:
      return "pruned_mbr";
    case Verdict::kPrunedBound:
      return "pruned_bound";
    case Verdict::kEvaluated:
      return "evaluated";
  }
  return "pruned_mbr";
}

void QueryProfile::BeginPois(const std::vector<PoiId>& ids) {
  pois.clear();
  index_.clear();
  pois.reserve(ids.size());
  index_.reserve(ids.size());
  for (PoiId id : ids) {
    index_.emplace(id, pois.size());
    PoiEntry entry;
    entry.poi = id;
    pois.push_back(entry);
  }
}

void QueryProfile::Finalize() {
  for (PoiEntry& entry : pois) {
    if (entry.verdict == Verdict::kEvaluated) continue;
    entry.verdict =
        entry.bound_seen ? Verdict::kPrunedBound : Verdict::kPrunedMbr;
  }
}

int64_t QueryProfile::CountVerdict(Verdict verdict) const {
  int64_t count = 0;
  for (const PoiEntry& entry : pois) {
    if (entry.verdict == verdict) ++count;
  }
  return count;
}

std::string QueryProfile::ToJson() const {
  std::string out = "{\"kind\":\"";
  AppendJsonEscaped(kind, &out);
  out.append("\",\"algorithm\":\"");
  AppendJsonEscaped(algorithm, &out);
  if (!trace_id.empty()) {
    out.append("\",\"trace_id\":\"");
    AppendJsonEscaped(trace_id, &out);
  }
  out.append("\",\"params\":{\"ts\":");
  out.append(JsonNumber(ts));
  out.append(",\"te\":");
  out.append(JsonNumber(te));
  out.append(",\"k\":");
  out.append(std::to_string(k));
  out.append(",\"tau\":");
  out.append(JsonNumber(tau));
  out.append("},\"total_ns\":");
  out.append(std::to_string(total_ns));
  if (!approx_mode.empty()) {
    out.append(",\"sampled\":{\"mode\":\"");
    AppendJsonEscaped(approx_mode, &out);
    out.append("\",\"active\":");
    out.append(sampled ? "true" : "false");
    out.append(",\"budget\":");
    out.append(std::to_string(sample_budget));
    out.append(",\"population\":");
    out.append(std::to_string(sample_population));
    out.append(",\"evaluated\":");
    out.append(std::to_string(sample_size));
    out.append(",\"max_std_err\":");
    out.append(JsonNumber(max_std_err));
    out.push_back('}');
  }
  out.append(",\"stats\":");
  out.append(stats.ToJson());
  out.append(",\"verdicts\":{\"evaluated\":");
  out.append(std::to_string(CountVerdict(Verdict::kEvaluated)));
  out.append(",\"pruned_bound\":");
  out.append(std::to_string(CountVerdict(Verdict::kPrunedBound)));
  out.append(",\"pruned_mbr\":");
  out.append(std::to_string(CountVerdict(Verdict::kPrunedMbr)));
  out.append(",\"total\":");
  out.append(std::to_string(pois.size()));
  out.append("},\"detail\":");
  out.append(detail ? "true" : "false");
  if (detail) {
    out.append(",\"pois\":[");
    bool first = true;
    for (const PoiEntry& entry : pois) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"poi\":");
      out.append(std::to_string(entry.poi));
      out.append(",\"verdict\":\"");
      out.append(VerdictName(entry.verdict));
      out.append("\",\"bound\":");
      out.append(JsonNumber(entry.bound));
      out.append(",\"flow\":");
      out.append(JsonNumber(entry.flow));
      out.append(",\"presence_evals\":");
      out.append(std::to_string(entry.presence_evals));
      out.push_back('}');
    }
    out.append("],\"object_costs\":[");
    first = true;
    for (const ObjectCost& cost : object_costs) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"object\":");
      out.append(std::to_string(cost.object));
      out.append(",\"derive_ns\":");
      out.append(std::to_string(cost.derive_ns));
      out.push_back('}');
    }
    out.append("],\"join_trace\":{\"events\":[");
    first = true;
    for (const JoinEvent& event : join_events) {
      if (!first) out.push_back(',');
      first = false;
      out.append("{\"kind\":\"");
      out.append(event.kind);
      out.append("\",\"priority\":");
      out.append(JsonNumber(event.priority));
      out.append(",\"poi\":");
      out.append(std::to_string(event.poi));
      out.append(",\"list_size\":");
      out.append(std::to_string(event.list_size));
      out.push_back('}');
    }
    out.append("],\"dropped\":");
    out.append(std::to_string(join_events_dropped));
    out.push_back('}');
  }
  out.push_back('}');
  return out;
}

std::string QueryProfile::ToText() const {
  std::string out;
  out.append("query: ");
  out.append(kind);
  out.append(" (");
  out.append(algorithm);
  out.append(")\n");
  if (!trace_id.empty()) {
    out.append("trace: ");
    out.append(trace_id);
    out.push_back('\n');
  }
  char line[160];
  if (te != ts) {
    std::snprintf(line, sizeof(line), "window: [%g, %g]\n", ts, te);
  } else {
    std::snprintf(line, sizeof(line), "time: %g\n", ts);
  }
  out.append(line);
  if (k > 0) {
    std::snprintf(line, sizeof(line), "k: %d\n", k);
    out.append(line);
  }
  if (tau > 0.0) {
    std::snprintf(line, sizeof(line), "tau: %g\n", tau);
    out.append(line);
  }
  out.append("total: ");
  out.append(HumanNs(total_ns));
  out.push_back('\n');

  // Phase breakdown against the measured total. The phases cover the
  // algorithm's inner work; the remainder is engine dispatch, R-tree
  // selection, and result assembly.
  const int64_t phases[4] = {stats.retrieve_ns, stats.derive_ns,
                             stats.presence_ns, stats.topk_ns};
  const char* phase_names[4] = {"retrieve", "derive", "presence", "topk"};
  out.append("phases:\n");
  int64_t booked = 0;
  for (int i = 0; i < 4; ++i) {
    booked += phases[i];
    std::snprintf(line, sizeof(line), "  %-9s %10s  %s\n", phase_names[i],
                  HumanNs(phases[i]).c_str(),
                  Percent(phases[i], total_ns).c_str());
    out.append(line);
  }
  std::snprintf(line, sizeof(line), "  %-9s %10s  %s\n", "other",
                HumanNs(total_ns > booked ? total_ns - booked : 0).c_str(),
                Percent(total_ns > booked ? total_ns - booked : 0,
                        total_ns)
                    .c_str());
  out.append(line);

  // Pruning funnel: how the query POI set was dispatched.
  const int64_t evaluated = CountVerdict(Verdict::kEvaluated);
  const int64_t pruned_bound = CountVerdict(Verdict::kPrunedBound);
  const int64_t pruned_mbr = CountVerdict(Verdict::kPrunedMbr);
  const int64_t total_pois = static_cast<int64_t>(pois.size());
  out.append("pois:\n");
  std::snprintf(line, sizeof(line), "  evaluated    %6lld  %s\n",
                static_cast<long long>(evaluated),
                Percent(evaluated, total_pois).c_str());
  out.append(line);
  std::snprintf(line, sizeof(line), "  pruned_bound %6lld  %s\n",
                static_cast<long long>(pruned_bound),
                Percent(pruned_bound, total_pois).c_str());
  out.append(line);
  std::snprintf(line, sizeof(line), "  pruned_mbr   %6lld  %s\n",
                static_cast<long long>(pruned_mbr),
                Percent(pruned_mbr, total_pois).c_str());
  out.append(line);

  std::snprintf(
      line, sizeof(line),
      "work: objects=%lld regions=%lld presences=%lld pois=%lld "
      "cache_hits=%lld\n",
      static_cast<long long>(stats.objects_retrieved),
      static_cast<long long>(stats.regions_derived),
      static_cast<long long>(stats.presence_evaluations),
      static_cast<long long>(stats.pois_evaluated),
      static_cast<long long>(stats.ur_cache_hits));
  out.append(line);

  // Sampling decision, on estimate queries only. `evaluated < population`
  // iff the sampler actually fired; adaptive queries that stayed exact show
  // the switch decision here too.
  if (!approx_mode.empty()) {
    std::snprintf(line, sizeof(line),
                  "sampled: mode=%s %s budget=%lld population=%lld "
                  "evaluated=%lld max_stderr=%g\n",
                  approx_mode.c_str(),
                  sampled ? "(sampling)" : "(exact: under budget/threshold)",
                  static_cast<long long>(sample_budget),
                  static_cast<long long>(sample_population),
                  static_cast<long long>(sample_size), max_std_err);
    out.append(line);
  }

  // Parallel fan-out, if the query ran any. parallel_ns is wall time of
  // the fanned sections, while the phase timers above sum per-worker time —
  // so with lanes > 1 the phases can legitimately exceed the total.
  if (stats.parallel_tasks > 0) {
    std::snprintf(line, sizeof(line),
                  "parallel: lanes=%lld wall=%s (phase times are per-worker "
                  "sums)\n",
                  static_cast<long long>(stats.parallel_tasks),
                  HumanNs(stats.parallel_ns).c_str());
    out.append(line);
  }

  if (detail && !object_costs.empty()) {
    std::vector<ObjectCost> sorted = object_costs;
    std::sort(sorted.begin(), sorted.end(),
              [](const ObjectCost& a, const ObjectCost& b) {
                return a.derive_ns > b.derive_ns;
              });
    const size_t show = std::min<size_t>(sorted.size(), 5);
    std::snprintf(line, sizeof(line),
                  "object derive costs (top %zu of %zu):\n", show,
                  sorted.size());
    out.append(line);
    for (size_t i = 0; i < show; ++i) {
      std::snprintf(line, sizeof(line), "  object %-6d %10s\n",
                    sorted[i].object, HumanNs(sorted[i].derive_ns).c_str());
      out.append(line);
    }
  }

  if (detail && !join_events.empty()) {
    std::snprintf(line, sizeof(line),
                  "join trace (%zu events%s):\n", join_events.size(),
                  join_events_dropped > 0 ? ", truncated" : "");
    out.append(line);
    // Condensed: the first and last few pops show the bound collapsing
    // toward the cutoff without pages of output.
    const size_t n = join_events.size();
    const size_t head = std::min<size_t>(n, 8);
    for (size_t i = 0; i < head; ++i) {
      const JoinEvent& e = join_events[i];
      std::snprintf(line, sizeof(line),
                    "  %-9s priority=%-12g poi=%-6d list=%d\n", e.kind,
                    e.priority, e.poi, e.list_size);
      out.append(line);
    }
    if (n > head + 4) {
      std::snprintf(line, sizeof(line), "  ... %zu more ...\n",
                    n - head - 4);
      out.append(line);
    }
    for (size_t i = std::max(head, n >= 4 ? n - 4 : 0); i < n; ++i) {
      const JoinEvent& e = join_events[i];
      std::snprintf(line, sizeof(line),
                    "  %-9s priority=%-12g poi=%-6d list=%d\n", e.kind,
                    e.priority, e.poi, e.list_size);
      out.append(line);
    }
  }
  return out;
}

void ProfileRecorder::Record(const QueryProfile& profile) {
  MutexLock lock(mu_);
  const int64_t seq = next_seq_++;
  // Age out profiles that fell off the recency window, so a burst of slow
  // queries an hour ago doesn't pin the buffer forever.
  const int64_t min_seq = seq - window_;
  slots_.erase(std::remove_if(slots_.begin(), slots_.end(),
                              [min_seq](const Slot& slot) {
                                return slot.seq < min_seq;
                              }),
               slots_.end());
  if (slots_.size() < capacity_) {
    slots_.push_back(Slot{seq, profile});
    return;
  }
  // Full: keep the N slowest — replace the fastest retained profile if the
  // new one is slower.
  auto fastest = std::min_element(
      slots_.begin(), slots_.end(), [](const Slot& a, const Slot& b) {
        return a.profile.total_ns < b.profile.total_ns;
      });
  if (profile.total_ns > fastest->profile.total_ns) {
    *fastest = Slot{seq, profile};
  }
}

std::string ProfileRecorder::ToJson() const {
  MutexLock lock(mu_);
  std::vector<const Slot*> ordered;
  ordered.reserve(slots_.size());
  for (const Slot& slot : slots_) ordered.push_back(&slot);
  std::sort(ordered.begin(), ordered.end(),
            [](const Slot* a, const Slot* b) {
              return a->profile.total_ns > b->profile.total_ns;
            });
  std::string out = "{\"capacity\":";
  out.append(std::to_string(capacity_));
  out.append(",\"window\":");
  out.append(std::to_string(window_));
  out.append(",\"recorded\":");
  out.append(std::to_string(next_seq_));
  out.append(",\"profiles\":[");
  bool first = true;
  for (const Slot* slot : ordered) {
    if (!first) out.push_back(',');
    first = false;
    out.append(slot->profile.ToJson());
  }
  out.append("]}");
  return out;
}

size_t ProfileRecorder::size() const {
  MutexLock lock(mu_);
  return slots_.size();
}

int64_t ProfileRecorder::recorded() const {
  MutexLock lock(mu_);
  return next_seq_;
}

}  // namespace indoorflow
