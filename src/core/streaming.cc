#include "src/core/streaming.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "src/common/executor.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace indoorflow {

namespace {

// Registry handles for the ingest and live-query paths, resolved once.
struct StreamingMetrics {
  Counter& readings_ingested =
      MetricsRegistry::Default().counter("streaming.readings_ingested");
  Counter& readings_rejected =
      MetricsRegistry::Default().counter("streaming.readings_rejected");
  Counter& batches_ingested =
      MetricsRegistry::Default().counter("streaming.batches_ingested");
  Counter& tracks_evicted =
      MetricsRegistry::Default().counter("streaming.tracks_evicted");
  Counter& shard_recomputes =
      MetricsRegistry::Default().counter("streaming.shard_recomputes");
  Counter& shard_reuses =
      MetricsRegistry::Default().counter("streaming.shard_reuses");
  Counter& sampled_queries =
      MetricsRegistry::Default().counter("streaming.sampled_queries");
  Counter& sampled_tracks =
      MetricsRegistry::Default().counter("streaming.sampled_tracks");
  Gauge& track_table_size =
      MetricsRegistry::Default().gauge("streaming.track_table_size");
  Gauge& shard_count =
      MetricsRegistry::Default().gauge("streaming.shard_count");
  Gauge& topk_dirty_ratio =
      MetricsRegistry::Default().gauge("streaming.topk_dirty_ratio");
  Histogram& ingest_latency_us =
      MetricsRegistry::Default().histogram("streaming.ingest_latency_us");
  Histogram& topk_latency_us =
      MetricsRegistry::Default().histogram("streaming.topk_latency_us");
};

StreamingMetrics& GetStreamingMetrics() {
  static StreamingMetrics* metrics = new StreamingMetrics();
  return *metrics;
}

}  // namespace

StreamingMonitor::StreamingMonitor(const Deployment& deployment,
                                   const PoiSet& pois,
                                   StreamingOptions options,
                                   const TopologyChecker* topology)
    : deployment_(deployment),
      pois_(pois),
      options_(options),
      topology_(topology) {
  INDOORFLOW_CHECK(options_.merger.sampling_period > 0.0);
  INDOORFLOW_CHECK(options_.vmax > 0.0);
  poi_regions_.reserve(pois_.size());
  poi_areas_.reserve(pois_.size());
  for (size_t i = 0; i < pois_.size(); ++i) {
    INDOORFLOW_CHECK(pois_[i].id == static_cast<PoiId>(i));
    // Degenerate polygons demote to area 0 so live flows treat them the
    // same way the historical engine does.
    poi_regions_.push_back(Region::Make(pois_[i].shape));
    poi_areas_.push_back(EffectivePoiArea(pois_[i].Area(), options_.flow));
  }
  if (options_.ur_cache.enabled) {
    ur_cache_ = std::make_unique<UrCache>(options_.ur_cache);
  }
  size_t shard_count = 1;
  while (shard_count < static_cast<size_t>(std::max(options_.shards, 1))) {
    shard_count <<= 1;
  }
  shards_.reserve(shard_count);
  for (size_t s = 0; s < shard_count; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = static_cast<uint32_t>(shard_count - 1);
  GetStreamingMetrics().shard_count.Set(static_cast<double>(shard_count));
  // Deployment reach: an upper bound on the distance from any device
  // center to any point of any detection disk. A hand-off ring with budget
  // vmax * gap >= reach contains every disk outright (and its inner hole
  // has vanished, since reach also bounds every radius), so by the time a
  // track is `reach / vmax` stale its `last` record can no longer
  // constrain anything — eviction past that lag is exact.
  Box centers;  // default Box is empty (inverted bounds)
  for (const Device& device : deployment_.devices()) {
    centers.ExpandToInclude(device.range.center);
  }
  const double diag =
      deployment_.size() == 0
          ? 0.0
          : std::hypot(centers.max_x - centers.min_x,
                       centers.max_y - centers.min_y);
  const double reach = diag + 2.0 * deployment_.max_radius();
  eviction_lag_seconds_ =
      std::max(options_.expiry_seconds, reach / options_.vmax);
}

Status StreamingMonitor::ApplyReadingLocked(Shard& shard,
                                            const RawReading& reading) {
  StreamingMetrics& metrics = GetStreamingMetrics();
  if (reading.device_id < 0 ||
      static_cast<size_t>(reading.device_id) >= deployment_.size()) {
    metrics.readings_rejected.Add(1);
    return Status::InvalidArgument("unknown device " +
                                   std::to_string(reading.device_id));
  }
  const auto [it, inserted] = shard.tracks.try_emplace(reading.object_id);
  ObjectTrack& track = it->second;
  const double max_gap =
      options_.merger.max_gap_factor * options_.merger.sampling_period;
  if (track.open.has_value()) {
    if (reading.t < track.open->te) {
      metrics.readings_rejected.Add(1);
      return Status::InvalidArgument(
          "out-of-order reading for object " +
          std::to_string(reading.object_id));
    }
    if (track.open->device_id == reading.device_id &&
        reading.t - track.open->te <= max_gap) {
      track.open->te = reading.t;  // extend the open record
    } else {
      track.last = track.open;  // close it and start a new one
      track.open = TrackingRecord{reading.object_id, reading.device_id,
                                  reading.t, reading.t};
    }
  } else {
    track.open = TrackingRecord{reading.object_id, reading.device_id,
                                reading.t, reading.t};
  }
  if (inserted) track_count_.fetch_add(1, std::memory_order_relaxed);
  shard.dirty = true;
  // Monotonic cross-shard max: another shard's ingest may race this CAS,
  // but each retry re-reads the larger value, so the clock never regresses.
  Timestamp seen = now_.load(std::memory_order_relaxed);
  while (reading.t > seen &&
         !now_.compare_exchange_weak(seen, reading.t,
                                     std::memory_order_relaxed)) {
  }
  // New evidence for this object: every cached live region of it is now
  // stale. The bump is per object, so other objects' entries stay warm.
  if (ur_cache_ != nullptr) ur_cache_->BumpEpoch(reading.object_id);
  metrics.readings_ingested.Add(1);
  return Status::OK();
}

size_t StreamingMonitor::EvictExpiredLocked(Shard& shard,
                                            Timestamp horizon) const {
  size_t evicted = 0;
  for (auto it = shard.tracks.begin(); it != shard.tracks.end();) {
    const ObjectTrack& track = it->second;
    if (track.open.has_value() &&
        horizon - track.open->te > eviction_lag_seconds_) {
      it = shard.tracks.erase(it);
      ++evicted;
    } else {
      ++it;
    }
  }
  if (evicted > 0) {
    StreamingMetrics& metrics = GetStreamingMetrics();
    track_count_.fetch_sub(static_cast<int64_t>(evicted),
                           std::memory_order_relaxed);
    metrics.tracks_evicted.Add(static_cast<int64_t>(evicted));
  }
  return evicted;
}

Status StreamingMonitor::Ingest(const RawReading& reading, const Span* span) {
  StreamingMetrics& metrics = GetStreamingMetrics();
  ScopedTimer timer(&metrics.ingest_latency_us);
  // Destroyed after `lock` below: the span's End() takes the kTrace mutex
  // only once the shard lock has been released (a legal rank descent
  // either way).
  Span ingest_span(span, "ingest");
  Shard& shard = ShardFor(reading.object_id);
  Status status;
  {
    MutexLock lock(shard.mu);
    status = ApplyReadingLocked(shard, reading);
    // Amortized eviction: sweep this shard at most twice per eviction-lag
    // window, so evictable entries linger at most ~1.5x the lag even on an
    // ingest-only workload (queries evict eagerly on recompute).
    if (status.ok() &&
        reading.t - shard.last_sweep >= 0.5 * eviction_lag_seconds_) {
      shard.last_sweep = reading.t;
      EvictExpiredLocked(shard, now());
    }
  }
  metrics.track_table_size.Set(static_cast<double>(TrackCount()));
  return status;
}

Status StreamingMonitor::IngestBatch(const std::vector<RawReading>& readings,
                                     const Span* span) {
  StreamingMetrics& metrics = GetStreamingMetrics();
  ScopedTimer timer(&metrics.ingest_latency_us);
  Span batch_span(span, "ingest_batch");
  // Group reading indices by shard, preserving arrival order within each
  // shard (an object maps to exactly one shard, so its per-object order
  // survives the regrouping and the batch applies identically to a
  // one-by-one replay).
  std::vector<std::vector<uint32_t>> by_shard(shards_.size());
  for (uint32_t i = 0; i < readings.size(); ++i) {
    by_shard[static_cast<uint32_t>(readings[i].object_id) & shard_mask_]
        .push_back(i);
  }
  // Readings replay shard by shard, so "first rejection" must be tracked
  // by batch index: the first failing shard is not the first failing
  // reading in arrival order.
  Status first_error = Status::OK();
  uint32_t first_error_index = static_cast<uint32_t>(readings.size());
  for (size_t s = 0; s < by_shard.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    for (uint32_t i : by_shard[s]) {
      Status status = ApplyReadingLocked(shard, readings[i]);
      if (!status.ok() && i < first_error_index) {
        first_error_index = i;
        first_error = std::move(status);
      }
    }
    const Timestamp latest = now();
    if (latest - shard.last_sweep >= 0.5 * eviction_lag_seconds_) {
      shard.last_sweep = latest;
      EvictExpiredLocked(shard, latest);
    }
  }
  metrics.batches_ingested.Add(1);
  metrics.track_table_size.Set(static_cast<double>(TrackCount()));
  return first_error;
}

Region StreamingMonitor::TrackRegion(ObjectId object,
                                     const ObjectTrack& track,
                                     Timestamp t) const {
  if (!track.open.has_value()) return Region();
  const TrackingRecord& open = *track.open;
  // Before the object's first reading there is no evidence at all: the
  // object was not yet being tracked, so its live region is empty — not
  // the (future) detection disk the active branch would report.
  const Timestamp first_ts = track.last.has_value() ? track.last->ts
                                                    : open.ts;
  if (t < first_ts) return Region();
  if (t - open.te > options_.expiry_seconds) return Region();  // presumed gone

  // Live derivations key the cache under Kind::kLive — their semantics
  // differ from the historical snapshot at the same (object, t), so the
  // namespaces must not collide. Ingest bumps the object's epoch, which
  // lazily invalidates everything cached here.
  Region cached;
  if (ur_cache_ != nullptr &&
      ur_cache_->Lookup(object, UrCache::Kind::kLive, t, t, &cached)) {
    return cached;
  }

  const double max_gap =
      options_.merger.max_gap_factor * options_.merger.sampling_period;
  const Circle& open_range =
      deployment_.device(open.device_id).range;

  Region region;
  if (t <= open.te + max_gap) {
    // Still detected: the historical "active" case against the previous
    // record (same-device re-detections keep the plain range).
    region = Region::Make(open_range);
    if (track.last.has_value() &&
        track.last->device_id != open.device_id) {
      const Circle& last_range =
          deployment_.device(track.last->device_id).range;
      const double budget = options_.vmax * (t - track.last->te);
      // Zero budget (t exactly at the hand-off instant) degenerates the
      // ring to a zero-area annulus; the detection disk is the physically
      // correct constraint then (same fix as UncertaintyModel's RingPiece).
      region = Region::Intersect(
          region, budget <= 0.0
                      ? Region::Make(last_range)
                      : Region::Make(Ring::Around(last_range, budget)));
    }
  } else {
    // Undetected right now: only the backward constraint exists (no rd_suc
    // yet) — Ring(last seen device, Vmax * elapsed).
    const double budget = options_.vmax * (t - open.te);
    region = Region::Make(Ring::Around(open_range, budget));
    if (topology_ != nullptr) {
      region = Region::Intersect(
          region, topology_->ReachableFrom(open.device_id, budget));
    }
  }
  if (ur_cache_ != nullptr) {
    ur_cache_->Insert(object, UrCache::Kind::kLive, t, t, region);
  }
  return region;
}

size_t StreamingMonitor::ActiveObjects(Timestamp t) const {
  size_t count = 0;
  for (const std::unique_ptr<Shard>& shard_ptr : shards_) {
    Shard& shard = *shard_ptr;
    MutexLock lock(shard.mu);
    for (const auto& [object, track] : shard.tracks) {
      count += (track.open.has_value() &&
                t - track.open->te <= options_.expiry_seconds)
                   ? 1
                   : 0;
    }
  }
  return count;
}

Region StreamingMonitor::LiveRegion(ObjectId object, Timestamp t,
                                    const QueryControl* control) const {
  if (control != nullptr && control->ShouldAbort()) return Region();
  Shard& shard = ShardFor(object);
  MutexLock lock(shard.mu);
  const auto it = shard.tracks.find(object);
  if (it == shard.tracks.end()) return Region();
  return TrackRegion(object, it->second, t);
}

bool StreamingMonitor::RecomputeShardTallyLocked(
    Shard& shard, Timestamp t, const QueryControl* control) const {
  // Eviction piggybacks on the full-table walk the recompute needs anyway;
  // the horizon is the stream clock (monotone), never the query's t, so a
  // query slightly ahead of the stream cannot drop still-live tracks.
  EvictExpiredLocked(shard, now());
  // Ascending object-id order: the published contributions merge across
  // shards in one global id order, making the flow accumulation
  // independent of the shard count (see the header's sharding note).
  std::vector<ObjectId> ids;
  ids.reserve(shard.tracks.size());
  for (const auto& [object, track] : shard.tracks) ids.push_back(object);
  std::sort(ids.begin(), ids.end());
  auto tally = std::make_shared<ShardTally>();
  tally->t = t;
  tally->contribs.reserve(ids.size());
  for (ObjectId object : ids) {
    // Cooperative abandonment: publish nothing and leave the shard dirty,
    // so a later query redoes the walk from scratch.
    if (control != nullptr && control->ShouldAbort()) return false;
    const ObjectTrack& track = shard.tracks.find(object)->second;
    const Region ur = TrackRegion(object, track, t);
    if (ur.IsEmpty()) continue;
    const Box bounds = ur.Bounds();
    TrackContribution contrib;
    contrib.object = object;
    for (size_t i = 0; i < pois_.size(); ++i) {
      if (!bounds.Intersects(pois_[i].shape.Bounds())) continue;
      contrib.pois.push_back(static_cast<int32_t>(i));
      contrib.presences.push_back(
          Presence(ur, poi_areas_[i], poi_regions_[i], options_.flow));
    }
    if (contrib.pois.empty()) continue;
    tally->contribs.push_back(std::move(contrib));
  }
  shard.tally = std::move(tally);
  shard.dirty = false;
  return true;
}

std::vector<PoiFlow> StreamingMonitor::CurrentTopK(
    Timestamp t, int k, const QueryControl* control) const {
  if (options_.approx.mode != ApproxMode::kExact) {
    return EstimatesToFlows(
        CurrentTopKEstimate(t, k, options_.approx, control));
  }
  return ExactCurrentTopK(t, k, control);
}

std::vector<PoiFlow> StreamingMonitor::ExactCurrentTopK(
    Timestamp t, int k, const QueryControl* control) const {
  StreamingMetrics& metrics = GetStreamingMetrics();
  ScopedTimer timer(&metrics.topk_latency_us);
  const size_t n = shards_.size();
  // Pass 1 (serial, one shard lock at a time): snapshot every shard whose
  // published tally is already valid for `t`; collect the stale rest.
  std::vector<ShardTallyPtr> snaps(n);
  std::vector<size_t> stale;
  for (size_t s = 0; s < n; ++s) {
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    if (!shard.dirty && shard.tally != nullptr && shard.tally->t == t) {
      snaps[s] = shard.tally;
    } else {
      stale.push_back(s);
    }
  }
  // Pass 2: re-derive stale shards only, fanned across the shared
  // executor. Lanes touch disjoint shards (and the internally-synchronized
  // UR cache), so the derived contributions are identical to a serial
  // walk; the order-sensitive flow accumulation happens in pass 3.
  int64_t recomputed = 0;
  if (!stale.empty()) {
    // Lanes touch disjoint slots, so plain per-lane flags suffice (same
    // pattern as snaps); summed serially after the fan-out.
    std::vector<uint8_t> lane_recomputed(stale.size(), 0);
    Executor::Default().ParallelFor(
        stale.size(), static_cast<int>(stale.size()), [&](size_t i) {
          Shard& shard = *shards_[stale[i]];
          MutexLock lock(shard.mu);
          // Double-check under the lock: a concurrent query may have
          // published a tally for this same `t` since pass 1 — that is a
          // reuse, not a recompute.
          if (shard.dirty || shard.tally == nullptr ||
              shard.tally->t != t) {
            if (!RecomputeShardTallyLocked(shard, t, control)) return;
            lane_recomputed[i] = 1;
          }
          snaps[stale[i]] = shard.tally;
        });
    recomputed = std::count(lane_recomputed.begin(), lane_recomputed.end(),
                            uint8_t{1});
    metrics.shard_recomputes.Add(recomputed);
    metrics.track_table_size.Set(static_cast<double>(TrackCount()));
  }
  // Reuses = shards that contributed a tally this query without a
  // recompute (clean in pass 1, or freshly published by a concurrent
  // query in pass 2); aborted lanes count as neither.
  const int64_t published = std::count_if(
      snaps.begin(), snaps.end(),
      [](const ShardTallyPtr& tally) { return tally != nullptr; });
  metrics.shard_reuses.Add(published - recomputed);
  metrics.topk_dirty_ratio.Set(static_cast<double>(stale.size()) /
                               static_cast<double>(n));
  // Pass 3 (serial ordered reduce): merge the immutable shard tallies in
  // ascending object-id order — the one global accumulation order every
  // shard count shares, so the summed flows are bit-identical across
  // configurations.
  std::vector<double> flows(pois_.size(), 0.0);
  std::vector<size_t> cursor(n, 0);
  for (;;) {
    if (control != nullptr && control->ShouldAbort()) break;
    const TrackContribution* next = nullptr;
    size_t next_shard = 0;
    for (size_t s = 0; s < n; ++s) {
      if (snaps[s] == nullptr) continue;
      const std::vector<TrackContribution>& contribs = snaps[s]->contribs;
      if (cursor[s] >= contribs.size()) continue;
      const TrackContribution& candidate = contribs[cursor[s]];
      if (next == nullptr || candidate.object < next->object) {
        next = &candidate;
        next_shard = s;
      }
    }
    if (next == nullptr) break;
    ++cursor[next_shard];
    for (size_t c = 0; c < next->pois.size(); ++c) {
      flows[static_cast<size_t>(next->pois[c])] += next->presences[c];
    }
  }
  std::vector<PoiFlow> all;
  all.reserve(pois_.size());
  for (size_t i = 0; i < pois_.size(); ++i) {
    all.push_back(PoiFlow{static_cast<PoiId>(i), flows[i]});
  }
  return TopK(std::move(all), k);
}

std::vector<FlowEstimate> StreamingMonitor::CurrentTopKEstimate(
    Timestamp t, int k, const ApproxConfig& approx,
    const QueryControl* control) const {
  // Pass A (serial, one shard lock at a time): evict and enumerate the
  // live track population. Ids are unique across shards, so the sorted
  // (object, shard) list is the same canonical ascending-id order the
  // exact path's merge uses.
  struct TrackRef {
    ObjectId object;
    uint32_t shard;
  };
  std::vector<TrackRef> refs;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    EvictExpiredLocked(shard, now());
    for (const auto& [object, track] : shard.tracks) {
      refs.push_back(TrackRef{object, static_cast<uint32_t>(s)});
    }
  }
  std::sort(refs.begin(), refs.end(),
            [](const TrackRef& a, const TrackRef& b) {
              return a.object < b.object;
            });
  const size_t population = refs.size();
  if (!ShouldSample(approx, population)) {
    return ExactEstimates(ExactCurrentTopK(t, k, control));
  }

  StreamingMetrics& metrics = GetStreamingMetrics();
  ScopedTimer timer(&metrics.topk_latency_us);
  const std::vector<size_t> picks =
      SampleIndices(population, static_cast<size_t>(approx.sample_budget),
                    MixSampleSeed(approx.seed, t, t));
  // Group the sampled tracks per shard so each shard locks once; the
  // per-pick slots keep the global ascending-id order for the serial
  // accumulation below, regardless of shard iteration order.
  std::vector<std::vector<size_t>> by_shard(shards_.size());
  for (size_t p = 0; p < picks.size(); ++p) {
    by_shard[refs[picks[p]].shard].push_back(p);
  }
  struct PickContribution {
    std::vector<int32_t> pois;
    std::vector<double> presences;  // aligned with pois
  };
  std::vector<PickContribution> contribs(picks.size());
  // Picks that vanish between the enumeration and evaluation passes (a
  // concurrent eviction sweep) are not zero-presence observations: they
  // must leave both the sample and the population, or the estimator and
  // its variance would be biased downward every time a query races an
  // eviction. An empty contribution from a *found* track is a real zero.
  std::vector<uint8_t> found(picks.size(), 0);
  bool aborted = false;
  for (size_t s = 0; s < shards_.size() && !aborted; ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    MutexLock lock(shard.mu);
    for (size_t p : by_shard[s]) {
      // Same cooperative abandonment as the exact path: the caller
      // discards the partial result once control->Aborted() reports it.
      if (control != nullptr && control->ShouldAbort()) {
        aborted = true;
        break;
      }
      const auto it = shard.tracks.find(refs[picks[p]].object);
      if (it == shard.tracks.end()) continue;  // raced an eviction sweep
      found[p] = 1;
      const Region ur = TrackRegion(it->first, it->second, t);
      if (ur.IsEmpty()) continue;
      const Box bounds = ur.Bounds();
      PickContribution& contrib = contribs[p];
      for (size_t i = 0; i < pois_.size(); ++i) {
        if (!bounds.Intersects(pois_[i].shape.Bounds())) continue;
        contrib.pois.push_back(static_cast<int32_t>(i));
        contrib.presences.push_back(
            Presence(ur, poi_areas_[i], poi_regions_[i], options_.flow));
      }
    }
  }
  // Serial accumulation in ascending object-id order (pick order), mirroring
  // the exact path's merge discipline so repeated runs are bit-identical.
  std::unordered_map<PoiId, double> sums;
  std::unordered_map<PoiId, double> sums_sq;
  for (const PickContribution& contrib : contribs) {
    for (size_t c = 0; c < contrib.pois.size(); ++c) {
      const PoiId poi = contrib.pois[c];
      const double presence = contrib.presences[c];
      sums[poi] += presence;
      sums_sq[poi] += presence * presence;
    }
  }
  std::vector<PoiId> all_ids;
  all_ids.reserve(pois_.size());
  for (size_t i = 0; i < pois_.size(); ++i) {
    all_ids.push_back(static_cast<PoiId>(i));
  }
  // Evaluated = picks actually found; vanished picks shrink the
  // population the same way (the track no longer exists), so the
  // remaining sample stays a uniform draw from the remaining tracks.
  // Under abort the unvisited picks land here too, but the caller
  // discards the partial result by contract.
  const size_t evaluated = static_cast<size_t>(
      std::count(found.begin(), found.end(), uint8_t{1}));
  const size_t vanished = picks.size() - evaluated;
  std::vector<FlowEstimate> estimates = EstimateFlows(
      all_ids, sums, sums_sq, population - vanished, evaluated);
  metrics.sampled_queries.Add(1);
  metrics.sampled_tracks.Add(static_cast<int64_t>(evaluated));
  return TopKEstimates(std::move(estimates), k);
}

}  // namespace indoorflow
