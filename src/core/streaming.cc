#include "src/core/streaming.h"

#include <algorithm>
#include <utility>

#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace indoorflow {

namespace {

// Registry handles for the ingest path, resolved once.
struct StreamingMetrics {
  Counter& readings_ingested =
      MetricsRegistry::Default().counter("streaming.readings_ingested");
  Counter& readings_rejected =
      MetricsRegistry::Default().counter("streaming.readings_rejected");
  Gauge& track_table_size =
      MetricsRegistry::Default().gauge("streaming.track_table_size");
  Histogram& ingest_latency_us =
      MetricsRegistry::Default().histogram("streaming.ingest_latency_us");
};

StreamingMetrics& GetStreamingMetrics() {
  static StreamingMetrics* metrics = new StreamingMetrics();
  return *metrics;
}

}  // namespace

StreamingMonitor::StreamingMonitor(const Deployment& deployment,
                                   const PoiSet& pois,
                                   StreamingOptions options,
                                   const TopologyChecker* topology)
    : deployment_(deployment),
      pois_(pois),
      options_(options),
      topology_(topology) {
  INDOORFLOW_CHECK(options_.merger.sampling_period > 0.0);
  INDOORFLOW_CHECK(options_.vmax > 0.0);
  poi_regions_.reserve(pois_.size());
  poi_areas_.reserve(pois_.size());
  for (size_t i = 0; i < pois_.size(); ++i) {
    INDOORFLOW_CHECK(pois_[i].id == static_cast<PoiId>(i));
    poi_regions_.push_back(Region::Make(pois_[i].shape));
    // Degenerate polygons demote to area 0 so live flows treat them the
    // same way the historical engine does.
    poi_areas_.push_back(EffectivePoiArea(pois_[i].Area(), options_.flow));
  }
  if (options_.ur_cache.enabled) {
    ur_cache_ = std::make_unique<UrCache>(options_.ur_cache);
  }
}

Status StreamingMonitor::Ingest(const RawReading& reading, const Span* span) {
  StreamingMetrics& metrics = GetStreamingMetrics();
  ScopedTimer timer(&metrics.ingest_latency_us);
  // Destroyed after `lock` below: the span's End() takes the kTrace mutex
  // only once mu_ has been released (a legal rank descent either way).
  Span ingest_span(span, "ingest");
  if (reading.device_id < 0 ||
      static_cast<size_t>(reading.device_id) >= deployment_.size()) {
    metrics.readings_rejected.Add(1);
    return Status::InvalidArgument("unknown device " +
                                   std::to_string(reading.device_id));
  }
  MutexLock lock(mu_);
  ObjectTrack& track = tracks_[reading.object_id];
  const double max_gap =
      options_.merger.max_gap_factor * options_.merger.sampling_period;
  if (track.open.has_value()) {
    if (reading.t < track.open->te) {
      metrics.readings_rejected.Add(1);
      return Status::InvalidArgument(
          "out-of-order reading for object " +
          std::to_string(reading.object_id));
    }
    if (track.open->device_id == reading.device_id &&
        reading.t - track.open->te <= max_gap) {
      track.open->te = reading.t;  // extend the open record
    } else {
      track.last = track.open;  // close it and start a new one
      track.open = TrackingRecord{reading.object_id, reading.device_id,
                                  reading.t, reading.t};
    }
  } else {
    track.open = TrackingRecord{reading.object_id, reading.device_id,
                                reading.t, reading.t};
  }
  now_ = std::max(now_, reading.t);
  // New evidence for this object: every cached live region of it is now
  // stale. The bump is per object, so other objects' entries stay warm.
  if (ur_cache_ != nullptr) ur_cache_->BumpEpoch(reading.object_id);
  metrics.readings_ingested.Add(1);
  metrics.track_table_size.Set(static_cast<double>(tracks_.size()));
  return Status::OK();
}

Region StreamingMonitor::TrackRegion(ObjectId object,
                                     const ObjectTrack& track,
                                     Timestamp t) const {
  if (!track.open.has_value()) return Region();
  const TrackingRecord& open = *track.open;
  if (t - open.te > options_.expiry_seconds) return Region();  // presumed gone

  // Live derivations key the cache under Kind::kLive — their semantics
  // differ from the historical snapshot at the same (object, t), so the
  // namespaces must not collide. Ingest bumps the object's epoch, which
  // lazily invalidates everything cached here.
  Region cached;
  if (ur_cache_ != nullptr &&
      ur_cache_->Lookup(object, UrCache::Kind::kLive, t, t, &cached)) {
    return cached;
  }

  const double max_gap =
      options_.merger.max_gap_factor * options_.merger.sampling_period;
  const Circle& open_range =
      deployment_.device(open.device_id).range;

  Region region;
  if (t <= open.te + max_gap) {
    // Still detected: the historical "active" case against the previous
    // record (same-device re-detections keep the plain range).
    region = Region::Make(open_range);
    if (track.last.has_value() &&
        track.last->device_id != open.device_id) {
      const Circle& last_range =
          deployment_.device(track.last->device_id).range;
      const double budget = options_.vmax * (t - track.last->te);
      // Zero budget (t exactly at the hand-off instant) degenerates the
      // ring to a zero-area annulus; the detection disk is the physically
      // correct constraint then (same fix as UncertaintyModel's RingPiece).
      region = Region::Intersect(
          region, budget <= 0.0
                      ? Region::Make(last_range)
                      : Region::Make(Ring::Around(last_range, budget)));
    }
  } else {
    // Undetected right now: only the backward constraint exists (no rd_suc
    // yet) — Ring(last seen device, Vmax * elapsed).
    const double budget = options_.vmax * (t - open.te);
    region = Region::Make(Ring::Around(open_range, budget));
    if (topology_ != nullptr) {
      region = Region::Intersect(
          region, topology_->ReachableFrom(open.device_id, budget));
    }
  }
  if (ur_cache_ != nullptr) {
    ur_cache_->Insert(object, UrCache::Kind::kLive, t, t, region);
  }
  return region;
}

size_t StreamingMonitor::ActiveObjects(Timestamp t) const {
  size_t count = 0;
  MutexLock lock(mu_);
  for (const auto& [object, track] : tracks_) {
    count += (track.open.has_value() &&
              t - track.open->te <= options_.expiry_seconds)
                 ? 1
                 : 0;
  }
  return count;
}

Region StreamingMonitor::LiveRegion(ObjectId object, Timestamp t) const {
  MutexLock lock(mu_);
  const auto it = tracks_.find(object);
  if (it == tracks_.end()) return Region();
  return TrackRegion(object, it->second, t);
}

std::vector<PoiFlow> StreamingMonitor::CurrentTopK(Timestamp t,
                                                   int k) const {
  std::vector<double> flows(pois_.size(), 0.0);
  {
    MutexLock lock(mu_);
    for (const auto& [object, track] : tracks_) {
      const Region ur = TrackRegion(object, track, t);
      if (ur.IsEmpty()) continue;
      const Box bounds = ur.Bounds();
      for (size_t i = 0; i < pois_.size(); ++i) {
        if (!bounds.Intersects(pois_[i].shape.Bounds())) continue;
        flows[i] += Presence(ur, poi_areas_[i], poi_regions_[i],
                             options_.flow);
      }
    }
  }
  std::vector<PoiFlow> all;
  all.reserve(pois_.size());
  for (size_t i = 0; i < pois_.size(); ++i) {
    all.push_back(PoiFlow{static_cast<PoiId>(i), flows[i]});
  }
  return TopK(std::move(all), k);
}

}  // namespace indoorflow
