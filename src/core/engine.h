// QueryEngine: the library's main entry point.
//
// Owns the indexes and configuration and answers the paper's two query
// types with either algorithm:
//
//   QueryEngine engine(dataset, EngineConfig{});
//   auto top = engine.SnapshotTopK(t, /*k=*/5, Algorithm::kJoin);
//   auto top2 = engine.IntervalTopK(ts, te, 5, Algorithm::kIterative);

// Thread safety: a constructed engine is safe for concurrent const use —
// any number of threads may issue queries against one instance (this is
// what SnapshotTopKBatch does internally, and what the TSan CI job
// stresses). The mutable state behind the const API is the lazily built
// full-POI-set R-tree cache, guarded by `poi_tree_mu_` and annotated for
// Clang's thread-safety analysis, and the optional cross-query
// uncertainty-region cache (src/core/ur_cache.h), which is internally
// synchronized. A `QueryStats*` out-parameter is written without
// synchronization, so pass a distinct one per thread.

#ifndef INDOORFLOW_CORE_ENGINE_H_
#define INDOORFLOW_CORE_ENGINE_H_

#include <memory>
#include <optional>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/interval_query.h"
#include "src/core/snapshot_query.h"
#include "src/core/topology_check.h"
#include "src/core/uncertainty.h"
#include "src/core/ur_cache.h"
#include "src/sim/generators.h"

namespace indoorflow {

struct QueryProfile;
class ProfileRecorder;

enum class Algorithm {
  kIterative,  // Algorithms 1 / 4
  kJoin,       // Algorithms 2 / 5
};

struct EngineConfig {
  double vmax = 1.1;
  /// Indoor topology check applied to uncertainty regions (Section 3.3).
  /// kPartition is the paper's check; kExact is the refined point-wise
  /// variant (see TopologyMode).
  TopologyMode topology = TopologyMode::kPartition;
  /// Interval joins: finer per-ellipse sub-MBRs (Section 4.3.2).
  bool interval_sub_mbrs = true;
  /// Join bounds: replace the paper's count-based flow upper bounds with
  /// geometry-aware ones (presence <= MBR-overlap / POI area). An
  /// indoorflow extension; identical results, earlier termination.
  bool join_area_bounds = false;
  FlowConfig flow;
  /// Cross-query uncertainty-region memoization (src/core/ur_cache.h).
  /// Off by default; enabling never changes query results (the cache hands
  /// back the identical shared CSG tree) but skips repeated derivations
  /// for repeated (object, time) pairs — SnapshotTopKBatch workers and
  /// fixed-timestamp pollers share one cache per engine. See
  /// docs/TUNING.md for sizing.
  UrCacheConfig ur_cache;
  /// Worker lanes for intra-query parallelism: when > 1 (or <= 0 =
  /// hardware concurrency, via Executor::ResolveThreads), the per-object
  /// UR-derivation + presence-integration loops fan across the shared
  /// process-wide executor (src/common/executor.h) once a query touches at
  /// least `parallel_threshold` candidate objects. The default of 1 keeps
  /// single queries fully serial (SnapshotTopKBatch has its own knob).
  /// Parallel and serial runs return bit-identical flows and rankings —
  /// each parallel section is a per-object map plus an ordered reduce —
  /// enforced by tests/parallel_differential_test.cc.
  int threads = 1;
  /// Minimum candidate-object count before a query section fans out;
  /// below it the scheduling overhead outweighs the win. See
  /// docs/TUNING.md for measured guidance.
  int parallel_threshold = 64;
  int poi_fanout = 8;
  int ri_fanout = 8;
  int artree_fanout = 32;
  /// Approximate evaluation (src/core/approx.h, docs/APPROXIMATION.md).
  /// The default kExact mode routes every query through the unchanged
  /// exact code — bit-identical to an engine predating the sampling layer.
  /// kSampled / kAdaptive make the top-k methods evaluate a deterministic
  /// uniform subsample of the filter-phase candidates and rank by
  /// Horvitz–Thompson estimates; use the *TopKEstimate methods to also get
  /// each value's standard error and 95% confidence interval. Threshold
  /// and density queries always run exactly (a sampled flow can straddle
  /// tau, and density division amplifies estimator noise unevenly), as
  /// does Algorithm::kJoin (its early-termination bounds assume every
  /// object is present).
  ApproxConfig approx;
};

class QueryEngine {
 public:
  /// All references must outlive the engine. `pois` must be id-dense
  /// (pois[i].id == i). Indexes are built eagerly.
  QueryEngine(const FloorPlan& plan, const DoorGraph& graph,
              const Deployment& deployment, const ObjectTrackingTable& table,
              const PoiSet& pois, EngineConfig config);

  /// Convenience: wires up a generated Dataset (vmax taken from the
  /// dataset; other config fields from `config`).
  QueryEngine(const Dataset& dataset, EngineConfig config);

  /// Problem 1: the k POIs with the highest snapshot flow at `t`.
  /// `subset` selects the query POIs (nullptr = all); `stats`, when
  /// non-null, accumulates operation counters for this query. `profile`,
  /// when non-null, receives this query's EXPLAIN profile (per-POI
  /// prune/evaluate verdicts, object derivation costs, join bound trace —
  /// see src/core/query_profile.h); like `stats`, pass a distinct one per
  /// thread. `control`, when non-null, attaches a per-request deadline /
  /// cancellation token (src/common/deadline.h): the query polls it
  /// between per-object work items and returns early once it trips —
  /// check control->Aborted() afterwards and discard the partial result.
  ///
  /// Thread safety: safe to call concurrently with any other const method.
  /// Determinism: results are a pure function of the inputs — with
  /// EngineConfig::threads > 1 the per-object work may fan across the
  /// shared executor, but flows and rankings stay bit-identical to a
  /// serial run (parallel map, ordered reduce). This holds for every
  /// query method below.
  ///
  /// Approximation: with EngineConfig::approx.mode != kExact and
  /// Algorithm::kIterative, this (and IntervalTopK) routes through the
  /// estimate path and returns the estimated values; call
  /// SnapshotTopKEstimate directly for the error bounds, or
  /// SnapshotTopKExact to bypass the routing per call.
  std::vector<PoiFlow> SnapshotTopK(
      Timestamp t, int k, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;

  /// Problem 2: the k POIs with the highest interval flow over [ts, te].
  /// Same thread-safety, determinism, and out-parameter contract as
  /// SnapshotTopK, including the config-based approximate routing
  /// (IntervalTopKExact bypasses it per call).
  std::vector<PoiFlow> IntervalTopK(
      Timestamp ts, Timestamp te, int k, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;

  /// Exact evaluation regardless of EngineConfig::approx — the per-call
  /// escape hatch for callers that must honor an explicit exact request
  /// on a sampled-default engine (the serving layer's approx=exact pin).
  /// SnapshotTopK / IntervalTopK delegate here when they do not reroute,
  /// so results, stats, and metrics are bit-identical to calling them on
  /// an exact-config engine.
  std::vector<PoiFlow> SnapshotTopKExact(
      Timestamp t, int k, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;
  std::vector<PoiFlow> IntervalTopKExact(
      Timestamp ts, Timestamp te, int k, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;

  /// Approximate Problem 1 / Problem 2: top-k FlowEstimates under an
  /// explicit per-call ApproxConfig (the serving layer passes per-request
  /// overrides; library callers usually pass config().approx). When the
  /// config calls for sampling (see ShouldSample) the estimate carries a
  /// standard error and 95% CI; otherwise it is exact with zero error.
  /// Always evaluates iteratively — the join's early-termination bounds
  /// assume the full population, so `algorithm` has no estimate analogue.
  /// Deterministic for a fixed (config, seed, inputs); same thread-safety
  /// and out-parameter contract as SnapshotTopK.
  std::vector<FlowEstimate> SnapshotTopKEstimate(
      Timestamp t, int k, const ApproxConfig& approx,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;
  std::vector<FlowEstimate> IntervalTopKEstimate(
      Timestamp ts, Timestamp te, int k, const ApproxConfig& approx,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;

  /// Threshold variants (an indoorflow extension over the paper's top-k):
  /// every query POI whose flow is at least `tau` (> 0), ordered by flow
  /// descending. With Algorithm::kJoin the best-first traversal stops as
  /// soon as its flow upper bound drops below tau, so selective thresholds
  /// cost a fraction of a full scan; both algorithms return the same set.
  /// Same thread-safety and determinism contract as SnapshotTopK.
  std::vector<PoiFlow> SnapshotThreshold(
      Timestamp t, double tau, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;
  std::vector<PoiFlow> IntervalThreshold(
      Timestamp ts, Timestamp te, double tau, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;

  /// Runs one snapshot query per entry of `times`, fanned across the
  /// shared process-wide executor (src/common/executor.h) — queries are
  /// independent and the engine is safe for concurrent const use.
  /// `threads` caps the fan-out; <= 0 resolves to the hardware concurrency
  /// (Executor::ResolveThreads). Results are ordered like `times` and
  /// bit-identical to issuing the queries serially, regardless of lane
  /// interleaving (each result slot is written by exactly one lane).
  std::vector<std::vector<PoiFlow>> SnapshotTopKBatch(
      const std::vector<Timestamp>& times, int k, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr, int threads = 0) const;

  /// Density variants (an indoorflow extension): the k POIs with the
  /// highest crowd density Φ(p)/area(p) — "the most crowded POIs", the
  /// size-normalized ranking the paper's introduction motivates. Returned
  /// PoiFlow.flow values are densities (1/m²). The join ranks by density
  /// upper bounds directly (subtree flow bound / min POI area).
  /// Same thread-safety and determinism contract as SnapshotTopK.
  std::vector<PoiFlow> SnapshotDensityTopK(
      Timestamp t, int k, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;
  std::vector<PoiFlow> IntervalDensityTopK(
      Timestamp ts, Timestamp te, int k, Algorithm algorithm,
      const std::vector<PoiId>* subset = nullptr,
      QueryStats* stats = nullptr, QueryProfile* profile = nullptr,
      const QueryControl* control = nullptr) const;

  /// Attaches a flight recorder: every subsequent query records a summary
  /// EXPLAIN profile (no per-object costs or join trace) into `recorder`
  /// when the caller didn't pass its own QueryProfile; the recorder keeps
  /// the slowest recent ones for /profiles/recent. Pass nullptr to detach.
  /// Call before issuing queries — the pointer is read without
  /// synchronization by concurrent queries, so don't flip it mid-flight.
  void AttachProfileRecorder(ProfileRecorder* recorder) {
    recorder_ = recorder;
  }

  /// UR(o, t): the uncertainty region of one object, empty when no record's
  /// augmented tracking interval covers `t` (the object is untracked then).
  /// Resolves the object's record chain directly, so it works for both
  /// disjoint and overlapping deployments. Safe for concurrent const use;
  /// deterministic (never consults the UR cache or the executor).
  Region ObjectRegionAt(ObjectId object, Timestamp t) const;

  /// The distinct objects whose augmented tracking interval covers `t`,
  /// ascending by id. Safe for concurrent const use; deterministic.
  std::vector<ObjectId> ActiveObjects(Timestamp t) const;

  const ARTree& artree() const { return artree_; }
  const EngineConfig& config() const { return config_; }
  const PoiSet& pois() const { return pois_; }
  /// Cached Region wrapper / area of one query POI.
  const Region& poi_region(PoiId id) const {
    return poi_regions_[static_cast<size_t>(id)];
  }
  double poi_area(PoiId id) const {
    return poi_areas_[static_cast<size_t>(id)];
  }
  /// The engine's UR cache, or null when EngineConfig::ur_cache.enabled is
  /// false. Exposed for introspection (tests, CLI stats); the cache is
  /// internally synchronized.
  UrCache* ur_cache() const { return ur_cache_.get(); }

 private:
  /// The query POI set of one call: the ids plus the R-tree over them —
  /// either a throwaway tree owned by this selection (subset queries) or a
  /// pointer to the engine's shared full-set tree.
  struct PoiSelection {
    std::vector<PoiId> ids;
    std::optional<RTree> owned;
    const RTree* shared = nullptr;
    const RTree& tree() const {
      return owned.has_value() ? *owned : *shared;
    }
  };

  QueryContext MakeContext() const;
  PoiSelection SelectPois(const std::vector<PoiId>* subset) const;
  RTree BuildPoiTree(const std::vector<PoiId>& subset) const;
  std::vector<PoiId> AllPoiIds() const;
  /// The R-tree over the full POI set, built on first use and shared by all
  /// subsequent full-set queries (subset queries build a throwaway tree).
  /// The returned reference stays valid for the engine's lifetime: once
  /// built under the lock the tree is never modified again, and the mutex
  /// release publishes it to every later reader.
  const RTree& AllPoiTree() const INDOORFLOW_LOCKS_EXCLUDED(poi_tree_mu_);

  const ObjectTrackingTable& table_;
  const PoiSet& pois_;
  EngineConfig config_;
  /// EngineConfig::threads resolved once at construction
  /// (Executor::ResolveThreads); 1 means queries never touch the pool.
  int resolved_threads_ = 1;
  ARTree artree_;
  std::optional<TopologyChecker> topology_;
  std::unique_ptr<UncertaintyModel> model_;
  std::unique_ptr<UrCache> ur_cache_;
  std::vector<Region> poi_regions_;
  std::vector<double> poi_areas_;
  mutable Mutex poi_tree_mu_
      INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceExpo)
          INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceEngine) =
              Mutex(LockRank::kEngine);
  mutable std::optional<RTree> all_poi_tree_
      INDOORFLOW_GUARDED_BY(poi_tree_mu_);
  ProfileRecorder* recorder_ = nullptr;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_ENGINE_H_
