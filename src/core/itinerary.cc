#include "src/core/itinerary.h"

#include <algorithm>
#include <unordered_map>

#include "src/common/status.h"

namespace indoorflow {

namespace {

// A visit being extended while consecutive samples keep qualifying.
struct OpenVisit {
  Timestamp start = 0.0;
  Timestamp last = 0.0;
  double sum = 0.0;
  double peak = 0.0;
  int samples = 0;
};

}  // namespace

Itinerary BuildItinerary(const QueryEngine& engine, ObjectId object,
                         Timestamp ts, Timestamp te,
                         const ItineraryOptions& options) {
  INDOORFLOW_CHECK(options.step > 0.0);
  INDOORFLOW_CHECK(te >= ts);
  Itinerary itinerary;
  itinerary.object = object;

  std::unordered_map<PoiId, OpenVisit> open;
  const auto close = [&](PoiId poi, const OpenVisit& visit) {
    if (visit.last - visit.start < options.min_duration) return;
    itinerary.visits.push_back(ItineraryVisit{
        poi, visit.start, visit.last, visit.sum / visit.samples,
        visit.peak});
  };

  const PoiSet& pois = engine.pois();
  const FlowConfig& flow = engine.config().flow;
  std::vector<PoiId> qualifying;
  for (Timestamp t = ts; t <= te + 1e-9; t += options.step) {
    qualifying.clear();
    const Region ur = engine.ObjectRegionAt(object, t);
    const Box bounds = ur.IsEmpty() ? Box() : ur.Bounds();
    if (!ur.IsEmpty() && bounds.Area() <= options.max_region_bounds_area) {
      for (const Poi& poi : pois) {
        if (!bounds.Intersects(poi.shape.Bounds())) continue;
        const double presence = Presence(ur, engine.poi_area(poi.id),
                                         engine.poi_region(poi.id), flow);
        if (presence >= options.min_presence) {
          qualifying.push_back(poi.id);
          auto [it, inserted] = open.try_emplace(poi.id);
          OpenVisit& visit = it->second;
          if (inserted) visit.start = t;
          visit.last = t;
          visit.sum += presence;
          visit.peak = std::max(visit.peak, presence);
          ++visit.samples;
        }
      }
    }
    // Close visits whose POI did not qualify this sample.
    for (auto it = open.begin(); it != open.end();) {
      if (std::find(qualifying.begin(), qualifying.end(), it->first) ==
          qualifying.end()) {
        close(it->first, it->second);
        it = open.erase(it);
      } else {
        ++it;
      }
    }
  }
  for (const auto& [poi, visit] : open) close(poi, visit);

  std::sort(itinerary.visits.begin(), itinerary.visits.end(),
            [](const ItineraryVisit& a, const ItineraryVisit& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.poi < b.poi;
            });
  return itinerary;
}

}  // namespace indoorflow
