// Per-query EXPLAIN profiles: the pruning decision tree behind one query.
//
// QueryStats says how much work a query did; QueryProfile says *where* and
// *why*. When a QueryProfile is attached to a QueryContext, the query
// algorithms record, per POI of the query subset, whether its exact flow
// was computed or the POI was skipped — and which mechanism skipped it:
//
//   evaluated     exact flow computed (iterative: >= 1 presence
//                 integration reached it; join: its leaf entry was popped)
//   pruned_bound  the join saw the POI's flow upper bound but the
//                 best-first cutoff fired before its exact flow was needed
//   pruned_mbr    never individually considered: its MBR intersected no
//                 uncertainty region (iterative), or its R_P subtree was
//                 pruned or cut off at group level (join)
//
// The three verdicts partition the query POI set, so their counts always
// sum to the subset size — the invariant tests/query_profile_test.cc and
// the CLI `explain` acceptance check assert. Detail mode additionally
// captures per-object UR-derivation costs and the priority join's
// bound-evolution trace (each heap pop, capped). Everything serializes to
// JSON (ToJson) or a human-readable report (ToText) — surfaced by
// `indoorflow_cli explain` and the /profiles/recent flight recorder.
//
// Overhead: recording happens only when QueryContext::profile is non-null;
// the hot paths cost one pointer test per site otherwise (same pattern as
// QueryStats). ProfileRecorder keeps the N slowest profiles of a recent
// window, behind an annotated Mutex, so it can absorb profiles from
// concurrent queries.

#ifndef INDOORFLOW_CORE_QUERY_PROFILE_H_
#define INDOORFLOW_CORE_QUERY_PROFILE_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/core/flow.h"
#include "src/core/query_stats.h"

namespace indoorflow {

struct QueryProfile {
  enum class Verdict {
    kPrunedMbr = 0,
    kPrunedBound = 1,
    kEvaluated = 2,
  };
  static const char* VerdictName(Verdict verdict);

  struct PoiEntry {
    PoiId poi = -1;
    Verdict verdict = Verdict::kPrunedMbr;
    /// Best (highest) flow upper bound observed for this POI in the join's
    /// queue; 0 when never individually enqueued (and for iterative runs).
    double bound = 0.0;
    /// Exact flow, when evaluated (density queries: raw flow, pre-divide).
    double flow = 0.0;
    /// Presence integrations charged to this POI.
    int64_t presence_evals = 0;
    bool bound_seen = false;
  };

  struct ObjectCost {
    int32_t object = -1;
    int64_t derive_ns = 0;
  };

  /// One step of the priority join's bound evolution. `kind` is a static
  /// string: "pop_group" (internal entry), "pop_poi" (leaf-POI entry),
  /// "pop_exact" (exact flow reached the front), "cutoff" (best remaining
  /// bound fell below the termination threshold).
  struct JoinEvent {
    const char* kind = "";
    double priority = 0.0;
    PoiId poi = -1;      // -1 for group-level entries
    int32_t list_size = 0;
  };

  /// Join events kept before the trace truncates (join_events_dropped
  /// counts the rest) — bounds profile memory on adversarial queries.
  static constexpr size_t kMaxJoinEvents = 4096;

  // ---- identification, filled in by the engine -------------------------
  std::string kind;       // "SnapshotTopK", "IntervalThreshold", ...
  std::string algorithm;  // "iterative" | "join"
  /// Request trace id (32 hex chars) when the query ran under a sampled
  /// request trace (src/common/trace.h); empty otherwise. The join key
  /// between /profiles/recent, /traces/recent, and the canonical query
  /// log.
  std::string trace_id;
  double ts = 0.0;
  double te = 0.0;  // == ts for snapshot queries
  int k = 0;        // 0 when not a top-k query
  double tau = 0.0;  // 0 when not a threshold query

  /// When false, per-object costs and the join trace are skipped (the
  /// per-POI verdicts are always exact). The flight recorder uses summary
  /// mode so ambient profiling stays cheap.
  bool detail = true;

  // ---- sampling (estimate queries only) --------------------------------
  /// "exact" | "sampled" | "adaptive" when the query ran through an
  /// estimate path; empty for plain exact queries, whose EXPLAIN output is
  /// unchanged.
  std::string approx_mode;
  /// Whether the estimate path actually subsampled (adaptive mode can
  /// decide not to; see the `sampled:` EXPLAIN line).
  bool sampled = false;
  int64_t sample_budget = 0;
  int64_t sample_population = 0;
  int64_t sample_size = 0;
  /// Largest per-POI standard error across the returned estimates.
  double max_std_err = 0.0;

  // ---- results ---------------------------------------------------------
  int64_t total_ns = 0;
  QueryStats stats;  // this query's own deltas (not caller accumulation)
  std::vector<PoiEntry> pois;
  std::vector<ObjectCost> object_costs;
  std::vector<JoinEvent> join_events;
  int64_t join_events_dropped = 0;

  // ---- recording hooks (called by the query algorithms) ----------------

  /// Registers the query POI subset; every id gets a PoiEntry with the
  /// default kPrunedMbr verdict. Must run before the other hooks.
  void BeginPois(const std::vector<PoiId>& ids);

  /// Join: a flow upper bound for this specific POI entered the queue.
  void ObserveBound(PoiId poi, double bound) {
    PoiEntry* entry = Find(poi);
    if (entry == nullptr) return;
    entry->bound_seen = true;
    if (bound > entry->bound) entry->bound = bound;
  }

  /// Iterative: one presence integration contributed to this POI.
  void MarkPresence(PoiId poi, double presence) {
    PoiEntry* entry = Find(poi);
    if (entry == nullptr) return;
    entry->verdict = Verdict::kEvaluated;
    entry->flow += presence;
    ++entry->presence_evals;
  }

  /// Join: this POI's exact flow was computed from `evals` listed objects.
  void MarkEvaluated(PoiId poi, double flow, int64_t evals) {
    PoiEntry* entry = Find(poi);
    if (entry == nullptr) return;
    entry->verdict = Verdict::kEvaluated;
    entry->flow = flow;
    entry->presence_evals += evals;
  }

  void AddObjectCost(int32_t object, int64_t derive_ns) {
    if (!detail) return;
    object_costs.push_back(ObjectCost{object, derive_ns});
  }

  void AddJoinEvent(const char* event_kind, double priority, PoiId poi,
                    int32_t list_size) {
    if (!detail) return;
    if (join_events.size() >= kMaxJoinEvents) {
      ++join_events_dropped;
      return;
    }
    join_events.push_back(JoinEvent{event_kind, priority, poi, list_size});
  }

  /// Settles the final verdicts: every POI not evaluated becomes
  /// kPrunedBound when a bound was observed for it, kPrunedMbr otherwise.
  /// Called by the engine when the query returns.
  void Finalize();

  /// Verdict counts over `pois` (valid after Finalize).
  int64_t CountVerdict(Verdict verdict) const;

  std::string ToJson() const;
  /// Multi-line human-readable report (the `explain` default rendering):
  /// phase breakdown, pruning funnel, top object costs, bound trace.
  std::string ToText() const;

 private:
  PoiEntry* Find(PoiId poi) {
    auto it = index_.find(poi);
    return it == index_.end() ? nullptr : &pois[it->second];
  }

  std::unordered_map<PoiId, size_t> index_;
};

/// Flight recorder: keeps the `capacity` slowest query profiles among the
/// most recent `window` recorded queries, so /profiles/recent shows what
/// was slow *lately* rather than the slowest queries since process start.
/// Thread-safe; Record() takes a copy.
class ProfileRecorder {
 public:
  explicit ProfileRecorder(size_t capacity = 16, int64_t window = 1024)
      : capacity_(capacity == 0 ? 1 : capacity), window_(window) {}

  void Record(const QueryProfile& profile);

  /// {"window":...,"capacity":...,"recorded":N,"profiles":[...]} with
  /// profiles ordered slowest-first.
  std::string ToJson() const;

  /// Profiles currently retained.
  size_t size() const;

  /// Total queries ever recorded (including evicted ones).
  int64_t recorded() const;

 private:
  struct Slot {
    int64_t seq = 0;
    QueryProfile profile;
  };

  const size_t capacity_;
  const int64_t window_;
  mutable Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceEngine)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceProfileRecorder) =
          Mutex(LockRank::kProfileRecorder);
  int64_t next_seq_ INDOORFLOW_GUARDED_BY(mu_) = 0;
  std::vector<Slot> slots_ INDOORFLOW_GUARDED_BY(mu_);
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_QUERY_PROFILE_H_
