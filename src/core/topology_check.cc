#include "src/core/topology_check.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>

namespace indoorflow {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

// Whether `box` lies entirely inside the (convex) partition polygon. For a
// convex polygon it suffices that all four corners are inside.
bool BoxWithinConvexPolygon(const Polygon& polygon, const Box& box) {
  if (polygon.IsAxisAlignedRectangle()) {
    return polygon.Bounds().Contains(box);
  }
  return polygon.Contains({box.min_x, box.min_y}) &&
         polygon.Contains({box.max_x, box.min_y}) &&
         polygon.Contains({box.max_x, box.max_y}) &&
         polygon.Contains({box.min_x, box.max_y});
}

bool BoxIntersectsPolygon(const Polygon& polygon, const Box& box) {
  if (!polygon.Bounds().Intersects(box)) return false;
  if (polygon.IsAxisAlignedRectangle()) return true;  // bounds == shape
  if (polygon.Contains(box.Center())) return true;
  const Point corners[4] = {{box.min_x, box.min_y},
                            {box.max_x, box.min_y},
                            {box.max_x, box.max_y},
                            {box.min_x, box.max_y}};
  for (Point c : corners) {
    if (polygon.Contains(c)) return true;
  }
  for (size_t i = 0; i < polygon.size(); ++i) {
    if (box.Contains(polygon.vertex(i))) return true;
  }
  const Segment box_edges[4] = {{corners[0], corners[1]},
                                {corners[1], corners[2]},
                                {corners[2], corners[3]},
                                {corners[3], corners[0]}};
  for (const Segment& e : box_edges) {
    if (polygon.EdgeIntersects(e)) return true;
  }
  return false;
}

}  // namespace

// Shared machinery for the reachability nodes: evaluates the indoor
// distance f(q) = ind(device, q) using the checker's precomputed
// device-to-door distances, and classifies boxes using (a) the Euclidean
// lower bound ind >= euclid, and (b) 1-Lipschitz continuity of f within a
// convex partition.
class ReachableNodeBase {
 protected:
  explicit ReachableNodeBase(const TopologyChecker& checker)
      : checker_(checker) {}

  double IndoorDist(DeviceId dev, Point q) const {
    return checker_.IndoorDistanceFrom(dev, q);
  }

  /// Candidate partitions from the checker's lookup grid (cell of the box
  /// center, which covers every partition whose bounds touch the box when
  /// the box is grid-cell sized or smaller; larger boxes fall back to all).
  template <typename Fn>
  void ForCandidatePartitions(const Box& box, Fn&& fn) const {
    const TopologyChecker& c = checker_;
    if (c.grid_cells_.empty() || box.Width() > c.grid_cell_ ||
        box.Height() > c.grid_cell_) {
      for (const Partition& part : c.plan_.partitions()) fn(part);
      return;
    }
    const Point center = box.Center();
    const int col = std::clamp(
        static_cast<int>((center.x - c.grid_bounds_.min_x) / c.grid_cell_),
        0, c.grid_cols_ - 1);
    const int row = std::clamp(
        static_cast<int>((center.y - c.grid_bounds_.min_y) / c.grid_cell_),
        0, c.grid_rows_ - 1);
    // The box may straddle up to 4 grid cells; visit their unions.
    for (int dr = -1; dr <= 1; ++dr) {
      for (int dc = -1; dc <= 1; ++dc) {
        const int r = row + dr;
        const int cc = col + dc;
        if (r < 0 || r >= c.grid_rows_ || cc < 0 || cc >= c.grid_cols_) {
          continue;
        }
        for (PartitionId id :
             c.grid_cells_[static_cast<size_t>(r) * c.grid_cols_ + cc]) {
          fn(c.plan_.partition(id));
        }
      }
    }
  }

  /// The single partition fully containing `box`, or kInvalidPartition.
  PartitionId PartitionOfBox(const Box& box) const {
    PartitionId found = kInvalidPartition;
    ForCandidatePartitions(box, [&](const Partition& part) {
      if (found == kInvalidPartition &&
          part.shape.Bounds().Contains(box) &&
          BoxWithinConvexPolygon(part.shape, box)) {
        found = part.id;
      }
    });
    return found;
  }

  bool BoxTouchesAnyPartition(const Box& box) const {
    bool touches = false;
    ForCandidatePartitions(box, [&](const Partition& part) {
      touches = touches || BoxIntersectsPolygon(part.shape, box);
    });
    return touches;
  }

  const TopologyChecker& checker_;
};

namespace {

// { q : ind(dev, q) <= limit } with limit = r + budget.
class ReachableNode final : public region_internal::Node,
                            public ReachableNodeBase {
 public:
  ReachableNode(const TopologyChecker& checker, const Device& dev,
                double limit)
      : ReachableNodeBase(checker), dev_(dev), limit_(limit) {}

  bool Contains(Point p) const override {
    return IndoorDist(dev_.id, p) <= limit_;
  }

  Box Bounds() const override {
    // ind >= euclid, so the Euclidean disk bounds the reachable set.
    return Circle{dev_.range.center, limit_}.Bounds();
  }

  BoxClass Classify(const Box& box) const override {
    if (MinDistance(box, dev_.range.center) > limit_) {
      return BoxClass::kOutside;
    }
    const double half_diag =
        0.5 * std::hypot(box.Width(), box.Height());
    if (PartitionOfBox(box) != kInvalidPartition) {
      const double f = IndoorDist(dev_.id, box.Center());
      if (f + half_diag <= limit_) return BoxClass::kInside;
      if (f - half_diag > limit_) return BoxClass::kOutside;
      return BoxClass::kBoundary;
    }
    if (!BoxTouchesAnyPartition(box)) return BoxClass::kOutside;
    return BoxClass::kBoundary;
  }

 private:
  Device dev_;
  double limit_;
};

// { q : ind(a, q) + ind(b, q) <= limit } with limit = r_a + r_b + L.
class ReachableBridgeNode final : public region_internal::Node,
                                  public ReachableNodeBase {
 public:
  ReachableBridgeNode(const TopologyChecker& checker, const Device& a,
                      const Device& b, double limit)
      : ReachableNodeBase(checker), a_(a), b_(b), limit_(limit) {
    // Euclidean superset: the classical ellipse with foci at the centers.
    bounds_ = ExtendedEllipse(a_.range, b_.range,
                              std::max(0.0, limit_ - a_.range.radius -
                                                b_.range.radius))
                  .Bounds();
  }

  bool Contains(Point p) const override {
    const double fa = IndoorDist(a_.id, p);
    if (fa > limit_) return false;
    return fa + IndoorDist(b_.id, p) <= limit_;
  }

  Box Bounds() const override { return bounds_; }

  BoxClass Classify(const Box& box) const override {
    // Euclidean lower bound on the indoor sum.
    if (MinDistance(box, a_.range.center) +
            MinDistance(box, b_.range.center) >
        limit_) {
      return BoxClass::kOutside;
    }
    const double half_diag =
        0.5 * std::hypot(box.Width(), box.Height());
    if (PartitionOfBox(box) != kInvalidPartition) {
      const Point c = box.Center();
      const double f = IndoorDist(a_.id, c) + IndoorDist(b_.id, c);
      // The sum of two 1-Lipschitz functions is 2-Lipschitz.
      if (f + 2.0 * half_diag <= limit_) return BoxClass::kInside;
      if (f - 2.0 * half_diag > limit_) return BoxClass::kOutside;
      return BoxClass::kBoundary;
    }
    if (!BoxTouchesAnyPartition(box)) return BoxClass::kOutside;
    return BoxClass::kBoundary;
  }

 private:
  Device a_;
  Device b_;
  double limit_;
  Box bounds_;
};

}  // namespace

TopologyChecker::TopologyChecker(const FloorPlan& plan,
                                 const DoorGraph& graph,
                                 const Deployment& deployment)
    : plan_(plan), deployment_(deployment) {
  IndoorDistance distance(plan, graph);
  const size_t num_devices = deployment.size();
  const size_t num_doors = plan.doors().size();
  to_door_.assign(num_devices, std::vector<double>(num_doors, kInf));
  device_partitions_.resize(num_devices);
  for (size_t dev = 0; dev < num_devices; ++dev) {
    const Point center = deployment.device(static_cast<DeviceId>(dev))
                             .range.center;
    device_partitions_[dev] = plan.PartitionsAt(center);
    for (size_t door = 0; door < num_doors; ++door) {
      to_door_[dev][door] =
          distance.ToDoor(center, static_cast<DoorId>(door));
    }
  }
  // Min indoor distance device -> partition: 0 when the device sits in the
  // partition; otherwise the partition is entered through one of its doors.
  min_to_partition_.assign(num_devices,
                           std::vector<double>(plan.partitions().size(),
                                               kInf));
  for (size_t dev = 0; dev < num_devices; ++dev) {
    for (PartitionId part : device_partitions_[dev]) {
      min_to_partition_[dev][static_cast<size_t>(part)] = 0.0;
    }
    for (const Partition& part : plan.partitions()) {
      double& best = min_to_partition_[dev][static_cast<size_t>(part.id)];
      for (DoorId d : plan.DoorsOf(part.id)) {
        best = std::min(best, to_door_[dev][static_cast<size_t>(d)]);
      }
    }
  }
  partition_regions_.reserve(plan.partitions().size());
  for (const Partition& part : plan.partitions()) {
    partition_regions_.push_back(Region::Make(part.shape));
  }

  // Partition lookup grid (cells sized to the typical room scale).
  grid_bounds_ = plan.Bounds();
  if (!grid_bounds_.Empty()) {
    grid_cell_ = std::max(
        2.0, std::min(grid_bounds_.Width(), grid_bounds_.Height()) / 32.0);
    grid_cols_ = std::max(
        1, static_cast<int>(std::ceil(grid_bounds_.Width() / grid_cell_)));
    grid_rows_ = std::max(
        1, static_cast<int>(std::ceil(grid_bounds_.Height() / grid_cell_)));
    grid_cells_.assign(static_cast<size_t>(grid_cols_) * grid_rows_, {});
    for (const Partition& part : plan.partitions()) {
      const Box b = part.shape.Bounds();
      const int c0 = std::clamp(
          static_cast<int>((b.min_x - grid_bounds_.min_x) / grid_cell_), 0,
          grid_cols_ - 1);
      const int c1 = std::clamp(
          static_cast<int>((b.max_x - grid_bounds_.min_x) / grid_cell_), 0,
          grid_cols_ - 1);
      const int r0 = std::clamp(
          static_cast<int>((b.min_y - grid_bounds_.min_y) / grid_cell_), 0,
          grid_rows_ - 1);
      const int r1 = std::clamp(
          static_cast<int>((b.max_y - grid_bounds_.min_y) / grid_cell_), 0,
          grid_rows_ - 1);
      for (int r = r0; r <= r1; ++r) {
        for (int c = c0; c <= c1; ++c) {
          grid_cells_[static_cast<size_t>(r) * grid_cols_ + c].push_back(
              part.id);
        }
      }
    }
  }
}

Region TopologyChecker::ApplyToPiece(
    Region piece, const std::vector<PieceConstraint>& constraints,
    TopologyMode mode) const {
  if (mode == TopologyMode::kOff || constraints.empty() ||
      piece.IsEmpty()) {
    return piece;
  }

  if (mode == TopologyMode::kExact) {
    for (const PieceConstraint& c : constraints) {
      Region reach =
          c.IsBridge()
              ? Region::FromNode(std::make_shared<ReachableBridgeNode>(
                    *this, deployment_.device(c.dev_a),
                    deployment_.device(c.dev_b), c.limit))
              : Region::FromNode(std::make_shared<ReachableNode>(
                    *this, deployment_.device(c.dev_a), c.limit));
      piece = Region::Intersect(std::move(piece), std::move(reach));
    }
    return piece;
  }

  // kPartition (the paper's check): keep only partitions whose minimum
  // indoor distance fits every constraint. The minimum of a sum is bounded
  // below by the sum of minimums, so this is conservative (never excludes
  // a reachable part).
  const Box bounds = piece.Bounds();
  std::vector<Region> admissible;
  std::vector<Region> excluded;
  for (const Partition& part : plan_.partitions()) {
    if (!part.shape.Bounds().Intersects(bounds)) continue;
    bool ok = true;
    for (const PieceConstraint& c : constraints) {
      double lower = MinIndoorToPartition(c.dev_a, part.id);
      if (c.IsBridge()) lower += MinIndoorToPartition(c.dev_b, part.id);
      if (lower > c.limit) {
        ok = false;
        break;
      }
    }
    if (ok) {
      admissible.push_back(
          partition_regions_[static_cast<size_t>(part.id)]);
    } else {
      excluded.push_back(
          partition_regions_[static_cast<size_t>(part.id)]);
    }
  }
  if (excluded.empty()) return piece;  // nothing to exclude
  if (admissible.empty()) return Region();
  // The two formulations agree on all walkable space (partitions tile it;
  // they differ only outside the building, which no POI overlaps). Pick
  // the union with fewer parts — it is classified per quadtree cell.
  if (excluded.size() <= admissible.size()) {
    return Region::Subtract(std::move(piece),
                            Region::Union(std::move(excluded)));
  }
  return Region::Intersect(std::move(piece),
                           Region::Union(std::move(admissible)));
}

void TopologyChecker::PartitionsAt(Point q,
                                   std::vector<PartitionId>* out) const {
  out->clear();
  if (grid_cells_.empty()) return;
  if (!grid_bounds_.Contains(q)) return;
  const int col = std::clamp(
      static_cast<int>((q.x - grid_bounds_.min_x) / grid_cell_), 0,
      grid_cols_ - 1);
  const int row = std::clamp(
      static_cast<int>((q.y - grid_bounds_.min_y) / grid_cell_), 0,
      grid_rows_ - 1);
  for (PartitionId id :
       grid_cells_[static_cast<size_t>(row) * grid_cols_ + col]) {
    if (plan_.partition(id).shape.Contains(q)) out->push_back(id);
  }
}

double TopologyChecker::IndoorDistanceFrom(DeviceId dev, Point q) const {
  const Point center = deployment_.device(dev).range.center;
  const std::vector<PartitionId>& anchor_parts =
      device_partitions_[static_cast<size_t>(dev)];
  thread_local std::vector<PartitionId> parts_q;
  PartitionsAt(q, &parts_q);
  if (parts_q.empty() || anchor_parts.empty()) return kInf;
  for (PartitionId a : anchor_parts) {
    for (PartitionId b : parts_q) {
      if (a == b) return Distance(center, q);
    }
  }
  double best = kInf;
  const std::vector<double>& to_door =
      to_door_[static_cast<size_t>(dev)];
  for (PartitionId part : parts_q) {
    for (DoorId d : plan_.DoorsOf(part)) {
      const double through = to_door[static_cast<size_t>(d)];
      if (through == kInf) continue;
      best = std::min(best,
                      through + Distance(plan_.door(d).position, q));
    }
  }
  return best;
}

Region TopologyChecker::ReachableFrom(DeviceId dev, double budget) const {
  const Device& device = deployment_.device(dev);
  return Region::FromNode(std::make_shared<ReachableNode>(
      *this, device, device.range.radius + std::max(budget, 0.0)));
}

Region TopologyChecker::ReachableBridge(DeviceId a, DeviceId b,
                                        double max_travel) const {
  const Device& dev_a = deployment_.device(a);
  const Device& dev_b = deployment_.device(b);
  return Region::FromNode(std::make_shared<ReachableBridgeNode>(
      *this, dev_a, dev_b,
      dev_a.range.radius + dev_b.range.radius + std::max(max_travel, 0.0)));
}

}  // namespace indoorflow
