#include "src/core/timeline.h"

namespace indoorflow {

std::vector<TimelinePoint> FlowTimeline(const QueryEngine& engine, PoiId poi,
                                        Timestamp t0, Timestamp t1,
                                        double step, Algorithm algorithm) {
  INDOORFLOW_CHECK(step > 0.0);
  INDOORFLOW_CHECK(t0 <= t1);
  const std::vector<PoiId> subset = {poi};
  std::vector<TimelinePoint> timeline;
  timeline.reserve(static_cast<size_t>((t1 - t0) / step) + 1);
  for (Timestamp t = t0; t <= t1 + 1e-9; t += step) {
    const auto result = engine.SnapshotTopK(t, 1, algorithm, &subset);
    timeline.push_back(
        TimelinePoint{t, result.empty() ? 0.0 : result.front().flow});
  }
  return timeline;
}

std::vector<TimelineTopEntry> TopPoiTimeline(
    const QueryEngine& engine, const std::vector<PoiId>& subset,
    Timestamp t0, Timestamp t1, double step, Algorithm algorithm) {
  INDOORFLOW_CHECK(step > 0.0);
  INDOORFLOW_CHECK(t0 <= t1);
  std::vector<TimelineTopEntry> timeline;
  for (Timestamp t = t0; t <= t1 + 1e-9; t += step) {
    const auto result = engine.SnapshotTopK(t, 1, algorithm, &subset);
    TimelineTopEntry entry;
    entry.t = t;
    if (!result.empty()) {
      entry.poi = result.front().poi;
      entry.flow = result.front().flow;
    }
    timeline.push_back(entry);
  }
  return timeline;
}

TimelinePoint PeakFlow(const std::vector<TimelinePoint>& timeline) {
  TimelinePoint best;
  bool first = true;
  for (const TimelinePoint& p : timeline) {
    if (first || p.flow > best.flow) {
      best = p;
      first = false;
    }
  }
  return best;
}

double AverageFlow(const std::vector<TimelinePoint>& timeline) {
  if (timeline.size() < 2) return 0.0;
  double area = 0.0;
  for (size_t i = 0; i + 1 < timeline.size(); ++i) {
    const double dt = timeline[i + 1].t - timeline[i].t;
    area += 0.5 * (timeline[i].flow + timeline[i + 1].flow) * dt;
  }
  const double span = timeline.back().t - timeline.front().t;
  return span > 0.0 ? area / span : 0.0;
}

}  // namespace indoorflow
