// Tracking-state resolution (paper Section 3.1.1).
//
// At a time point t an object is *active* (some record covers t) or
// *inactive* (t falls in a detection gap). The AR-tree point query yields,
// per object, the leaf entry whose augmented interval covers t; this module
// turns that entry into the paper's (rd_pre, rd_cov) or (rd_pre, rd_suc)
// record roles. For a time interval, RelevantChain extracts the record
// sub-chain rd_s ... rd_e of Table 3.

#ifndef INDOORFLOW_CORE_TRACKING_STATE_H_
#define INDOORFLOW_CORE_TRACKING_STATE_H_

#include <vector>

#include "src/index/artree.h"
#include "src/tracking/ott.h"

namespace indoorflow {

/// The resolved state of one object at a time point. With the paper's
/// default non-overlapping detection ranges, `covering` has at most one
/// record; overlapping deployments (Section 3 Remark) can pin an object in
/// several ranges at once.
struct SnapshotState {
  ObjectId object = -1;
  /// rd_pre: the last record ending strictly before t (kInvalidRecord when
  /// none exists).
  RecordIndex pre = kInvalidRecord;
  /// Records whose detection span covers t; empty = inactive.
  std::vector<RecordIndex> covering;
  /// rd_suc: the first record starting strictly after t; only meaningful
  /// when inactive.
  RecordIndex suc = kInvalidRecord;

  bool active() const { return !covering.empty(); }
};

/// Resolves the state at `t` from an AR-tree entry whose augmented interval
/// covers `t`. Valid only for tables without overlapping records (the entry
/// then determines the state completely).
SnapshotState ResolveSnapshotState(const ObjectTrackingTable& table,
                                   const ARTreeEntry& entry, Timestamp t);

/// Resolves the state at `t` from the object's full chain. Works for both
/// disjoint and overlapping tables (used when table.has_overlaps()).
SnapshotState ResolveSnapshotStateAt(const ObjectTrackingTable& table,
                                     ObjectId object, Timestamp t);

/// The record sub-chain relevant to [ts, te] for one object (paper Table 3):
/// starts at rd_cov(ts) (active) or rd_pre(ts) (inactive), ends at
/// rd_cov(te) or rd_suc(te), with all records in between. When the object's
/// first record starts after ts (no rd_pre exists) the chain starts at that
/// record; likewise at the end. Empty when the object has no record whose
/// augmented interval overlaps [ts, te].
struct IntervalChain {
  ObjectId object = -1;
  std::vector<RecordIndex> records;
  /// True when records.front() covers ts (active start). False means
  /// records.front() is rd_pre(ts) — or, if front().ts > ts, that no
  /// predecessor exists.
  bool active_at_start = false;
  bool active_at_end = false;
};

IntervalChain RelevantChain(const ObjectTrackingTable& table, ObjectId object,
                            Timestamp ts, Timestamp te);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_TRACKING_STATE_H_
