// Flow time-series analysis on top of the query engine.
//
// The paper's motivating applications (shop popularity over a day, airport
// bottlenecks, museum planning) all need flows *over time*, not just one
// query. This module probes snapshot flows on a time grid and provides
// simple peak/aggregate utilities.

#ifndef INDOORFLOW_CORE_TIMELINE_H_
#define INDOORFLOW_CORE_TIMELINE_H_

#include <vector>

#include "src/core/engine.h"

namespace indoorflow {

struct TimelinePoint {
  Timestamp t = 0.0;
  double flow = 0.0;
};

/// Snapshot flow of one POI sampled at t0, t0+step, ..., <= t1.
/// A POI's flow does not depend on the rest of the query set, so this
/// queries the singleton subset. Requires step > 0 and t0 <= t1.
std::vector<TimelinePoint> FlowTimeline(const QueryEngine& engine, PoiId poi,
                                        Timestamp t0, Timestamp t1,
                                        double step,
                                        Algorithm algorithm =
                                            Algorithm::kIterative);

/// The busiest POI (top-1 of `subset`) at each probe time.
struct TimelineTopEntry {
  Timestamp t = 0.0;
  PoiId poi = -1;
  double flow = 0.0;
};

std::vector<TimelineTopEntry> TopPoiTimeline(
    const QueryEngine& engine, const std::vector<PoiId>& subset,
    Timestamp t0, Timestamp t1, double step,
    Algorithm algorithm = Algorithm::kJoin);

/// The probe with the highest flow (first such probe on ties). Returns a
/// zeroed point for an empty timeline.
TimelinePoint PeakFlow(const std::vector<TimelinePoint>& timeline);

/// Time-weighted average flow over the timeline (trapezoidal rule; 0 for
/// fewer than two probes).
double AverageFlow(const std::vector<TimelinePoint>& timeline);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_TIMELINE_H_
