#include "src/core/tracking_state.h"

#include <algorithm>
#include <limits>

namespace indoorflow {

SnapshotState ResolveSnapshotState(const ObjectTrackingTable& table,
                                   const ARTreeEntry& entry, Timestamp t) {
  SnapshotState state;
  const TrackingRecord& cur = table.record(entry.cur);
  state.object = cur.object_id;
  state.pre = entry.pre;
  // The augmented interval covers t, so t is either inside cur's detection
  // span (active) or in the gap before it (inactive).
  if (cur.Covers(t)) {
    state.covering.push_back(entry.cur);
  } else {
    state.suc = entry.cur;
  }
  return state;
}

SnapshotState ResolveSnapshotStateAt(const ObjectTrackingTable& table,
                                     ObjectId object, Timestamp t) {
  SnapshotState state;
  state.object = object;
  Timestamp best_pre = -std::numeric_limits<double>::infinity();
  Timestamp best_suc = std::numeric_limits<double>::infinity();
  // Chains are short relative to query costs; a linear scan keeps this
  // correct for overlapping (even nested) records, whose end times are not
  // monotone in start order.
  for (RecordIndex idx : table.ChainOf(object)) {
    const TrackingRecord& r = table.record(idx);
    if (r.Covers(t)) {
      state.covering.push_back(idx);
    } else if (r.te < t) {
      if (r.te > best_pre) {
        best_pre = r.te;
        state.pre = idx;
      }
    } else if (r.ts > t && r.ts < best_suc) {
      best_suc = r.ts;
      state.suc = idx;
    }
  }
  return state;
}

namespace {

// Overlap-tolerant chain extraction: end times are not monotone when
// records can nest, so pre/suc are found by scanning.
IntervalChain RelevantChainOverlap(const ObjectTrackingTable& table,
                                   ObjectId object, Timestamp ts,
                                   Timestamp te) {
  IntervalChain chain;
  chain.object = object;
  RecordIndex pre = kInvalidRecord;
  RecordIndex suc = kInvalidRecord;
  Timestamp best_pre = -std::numeric_limits<double>::infinity();
  Timestamp best_suc = std::numeric_limits<double>::infinity();
  std::vector<RecordIndex> window;
  for (RecordIndex idx : table.ChainOf(object)) {
    const TrackingRecord& r = table.record(idx);
    if (r.ts <= te && r.te >= ts) {
      window.push_back(idx);
      chain.active_at_start |= r.Covers(ts);
      chain.active_at_end |= r.Covers(te);
    } else if (r.te < ts) {
      if (r.te > best_pre) {
        best_pre = r.te;
        pre = idx;
      }
    } else if (r.ts > te && r.ts < best_suc) {
      best_suc = r.ts;
      suc = idx;
    }
  }
  if (window.empty()) {
    // The window lies entirely in a gap: relevant only when bracketed.
    if (pre == kInvalidRecord || suc == kInvalidRecord) return chain;
    chain.records = {pre, suc};
    return chain;
  }
  if (!chain.active_at_start && pre != kInvalidRecord) {
    chain.records.push_back(pre);
  }
  chain.records.insert(chain.records.end(), window.begin(), window.end());
  if (!chain.active_at_end && suc != kInvalidRecord) {
    chain.records.push_back(suc);
  }
  return chain;
}

}  // namespace

IntervalChain RelevantChain(const ObjectTrackingTable& table, ObjectId object,
                            Timestamp ts, Timestamp te) {
  if (table.has_overlaps()) {
    return te < ts ? IntervalChain{object, {}, false, false}
                   : RelevantChainOverlap(table, object, ts, te);
  }
  IntervalChain chain;
  chain.object = object;
  const std::span<const RecordIndex> all = table.ChainOf(object);
  if (all.empty() || te < ts) return chain;

  // First record whose detection span could touch the window (te_r >= ts).
  const auto lo_it = std::lower_bound(
      all.begin(), all.end(), ts, [&](RecordIndex idx, Timestamp value) {
        return table.record(idx).te < value;
      });
  if (lo_it == all.end()) return chain;  // object last seen before ts
  const size_t lo = static_cast<size_t>(lo_it - all.begin());

  if (table.record(all[lo]).ts > te) {
    // The window lies entirely in the gap before record `lo`: relevant only
    // when a predecessor exists (the paper's rd_pre(ts) / rd_suc(te) pair).
    if (lo == 0) return chain;  // object first seen after te
    chain.records = {all[lo - 1], all[lo]};
  } else {
    // Records overlapping the window...
    size_t hi = lo;
    while (hi + 1 < all.size() && table.record(all[hi + 1]).ts <= te) {
      ++hi;
    }
    // ... plus rd_pre(ts) when inactive at ts and rd_suc(te) when inactive
    // at te (Table 3).
    if (table.record(all[lo]).ts > ts && lo > 0) {
      chain.records.push_back(all[lo - 1]);
    }
    for (size_t i = lo; i <= hi; ++i) chain.records.push_back(all[i]);
    if (table.record(all[hi]).te < te && hi + 1 < all.size()) {
      chain.records.push_back(all[hi + 1]);
    }
  }
  chain.active_at_start = table.record(chain.records.front()).Covers(ts);
  chain.active_at_end = table.record(chain.records.back()).Covers(te);
  return chain;
}

}  // namespace indoorflow
