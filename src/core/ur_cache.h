// Cross-query memoization of derived uncertainty regions.
//
// Deriving UR(o, t) (paper Section 3) repeats the same Ring / extended-
// ellipse construction whenever consecutive queries hit the same
// (object, time) pair — dashboards polling a fixed timestamp, the workers
// inside QueryEngine::SnapshotTopKBatch, or a StreamingMonitor answering
// CurrentTopK between ingests. UrCache memoizes those derivations
// process-wide: a sharded map from (object, kind, ts, te) to the derived
// Region. Regions are cheap to copy (shared immutable CSG nodes), so a hit
// hands back the exact same node tree the miss path would have built —
// cached and uncached query results are bit-identical
// (tests/differential_test.cc proves this across the full query matrix).
//
// Each entry also carries a presence memo: the per-POI presence integrals
// already computed over the cached region (Definition 1). Region
// construction is cheap next to the adaptive area integration behind
// Presence(), so the memo is where repeated-timestamp workloads actually
// win. The integrator is deterministic, so a memoized value is exactly the
// double a re-integration over the identical immutable region tree would
// produce — bit-identity of cached results extends to the memo. Memos only
// make sense while the POI set and FlowConfig are fixed, which holds
// because every cache is owned by one engine / monitor.
//
// Eviction is LRU per shard under a configurable byte budget, with entry
// sizes approximated by Region::ApproxBytes(). Invalidation is epoch-based:
// writers that change an object's tracking state (StreamingMonitor::Ingest)
// call BumpEpoch(object); entries carry the epoch current at insert time
// and die lazily on their next lookup — no global flush, no writer stalls.
// Historical engines over immutable tracking tables never bump, so their
// entries live until evicted.
//
// Thread safety: fully internally synchronized — any number of threads may
// call Lookup / Insert / BumpEpoch concurrently. Each shard (and each epoch
// shard) has its own annotated Mutex; no operation holds more than one lock
// at a time, and the cache never calls back into callers, so it composes
// with any caller-side locking (the streaming monitor calls it under its
// table lock).

#ifndef INDOORFLOW_CORE_UR_CACHE_H_
#define INDOORFLOW_CORE_UR_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"
#include "src/geometry/region.h"
#include "src/tracking/reading.h"

namespace indoorflow {

class Span;  // src/common/trace.h

struct UrCacheConfig {
  /// Off by default: enabling changes no query result (see the differential
  /// suite) but does change work counters (regions_derived) and warms
  /// repeated-timestamp workloads, so existing callers, tests, and the
  /// cold-path benchmarks opt in explicitly.
  bool enabled = false;
  /// Approximate total byte budget across all shards.
  size_t max_bytes = 64ull << 20;  // 64 MiB
  /// Number of independent LRU shards; rounded up to a power of two.
  /// More shards = less lock contention, coarser per-shard budgets.
  int shards = 8;
};

class UrCache {
 public:
  /// Namespaces the time key: snapshot URs are keyed (t, t), interval URs
  /// (ts, te), live (streaming) URs (t, t) in their own space — the live
  /// derivation differs from the historical snapshot one.
  enum class Kind : uint8_t { kSnapshot = 0, kInterval = 1, kLive = 2 };

  /// Monotonic operation totals, also mirrored into the process metrics
  /// registry (urcache.hits / misses / inserts / evictions / stale_drops).
  struct Counters {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t inserts = 0;
    int64_t evictions = 0;
    int64_t stale_drops = 0;
  };

  /// Per-entry memo of presence integrals over the cached region
  /// (poi id -> Presence(region, poi, ...)). Shares the entry's lifetime:
  /// eviction or a stale drop releases it, so epoch invalidation covers the
  /// memoized integrals exactly as it covers the region. Internally
  /// synchronized; racing writers store the value both computed from the
  /// same region, so last-writer-wins is benign. Memo bytes (at most
  /// poi-count map nodes per entry) are bounded by EntryCount() and are
  /// deliberately outside the shard byte budget.
  class PresenceMemo {
   public:
    /// Returns true and sets `*out` if `poi`'s integral was memoized.
    bool TryGet(int32_t poi, double* out) const;
    /// Memoizes the integral for `poi`.
    void Put(int32_t poi, double value);

   private:
    mutable Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceStreamShard)
        INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceUrCache) =
            Mutex(LockRank::kUrCache);
    std::unordered_map<int32_t, double> values_ INDOORFLOW_GUARDED_BY(mu_);
  };
  using PresenceMemoPtr = std::shared_ptr<PresenceMemo>;

  explicit UrCache(const UrCacheConfig& config);
  UrCache(const UrCache&) = delete;
  UrCache& operator=(const UrCache&) = delete;

  /// On a fresh hit, copies the cached region into `*out`, refreshes LRU
  /// position, and returns true. A stale entry (object epoch bumped since
  /// insert) is dropped and reported as a miss. When `memo` is non-null it
  /// receives the entry's presence memo on a hit (nullptr otherwise).
  /// When `span` is an active request span (src/common/trace.h) the
  /// outcome is recorded on it as a "urcache.hit" / "urcache.miss" event,
  /// outside the shard lock; null costs one pointer compare.
  bool Lookup(ObjectId object, Kind kind, Timestamp ts, Timestamp te,
              Region* out, PresenceMemoPtr* memo = nullptr,
              const Span* span = nullptr);

  /// Inserts or replaces the entry, stamped with the object's current
  /// epoch, then evicts LRU entries until the shard is back under budget.
  /// Regions larger than a whole shard's budget are not cached. When `memo`
  /// is non-null it receives the (fresh, empty) presence memo of the
  /// inserted entry, or nullptr if the region was too large to cache.
  void Insert(ObjectId object, Kind kind, Timestamp ts, Timestamp te,
              const Region& region, PresenceMemoPtr* memo = nullptr);

  /// Invalidates every cached region of `object` (lazily, on next lookup).
  /// Called by writers whenever the object's tracking state changes.
  void BumpEpoch(ObjectId object);

  /// The object's current epoch (0 until first bumped).
  uint64_t EpochOf(ObjectId object) const;

  /// Approximate bytes currently held across all shards.
  size_t ApproxBytes() const;
  /// Number of live entries across all shards (stale ones included until
  /// their lazy drop).
  size_t EntryCount() const;
  Counters TotalCounters() const;

  /// One shard's point-in-time occupancy and operation totals — the
  /// per-shard view behind ApproxBytes()/EntryCount()/TotalCounters(),
  /// for spotting skew (one hot object pinning a shard at budget while
  /// the others sit empty).
  struct ShardStats {
    size_t bytes = 0;
    size_t entries = 0;
    Counters counters;
  };

  /// Snapshot of shard `index` (< shard_count()).
  ShardStats ShardStatsAt(size_t index) const;

  size_t shard_count() const { return shards_.size(); }
  size_t shard_budget_bytes() const { return shard_budget_; }

 private:
  struct Key {
    ObjectId object = -1;
    uint8_t kind = 0;
    uint64_t ts_bits = 0;  // bit pattern of the Timestamp (exact match)
    uint64_t te_bits = 0;

    bool operator==(const Key& o) const {
      return object == o.object && kind == o.kind && ts_bits == o.ts_bits &&
             te_bits == o.te_bits;
    }
  };

  struct KeyHash {
    size_t operator()(const Key& k) const;
  };

  struct Entry {
    Region region;
    PresenceMemoPtr memo;
    uint64_t epoch = 0;
    size_t bytes = 0;
  };

  // Front of `lru` is most recently used; `index` points into it.
  struct Shard {
    mutable Mutex mu INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceStreamShard)
        INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceUrCache) =
            Mutex(LockRank::kUrCache);
    std::list<std::pair<Key, Entry>> lru INDOORFLOW_GUARDED_BY(mu);
    std::unordered_map<Key, std::list<std::pair<Key, Entry>>::iterator,
                       KeyHash>
        index INDOORFLOW_GUARDED_BY(mu);
    size_t bytes INDOORFLOW_GUARDED_BY(mu) = 0;
    Counters counters INDOORFLOW_GUARDED_BY(mu);
  };

  struct EpochShard {
    mutable Mutex mu INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceStreamShard)
        INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceUrCache) =
            Mutex(LockRank::kUrCache);
    std::unordered_map<ObjectId, uint64_t> epochs INDOORFLOW_GUARDED_BY(mu);
  };

  static Key MakeKey(ObjectId object, Kind kind, Timestamp ts, Timestamp te);
  Shard& ShardFor(const Key& key) const;
  EpochShard& EpochShardFor(ObjectId object) const;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<std::unique_ptr<EpochShard>> epoch_shards_;
  size_t shard_budget_ = 0;  // max_bytes / shards
};

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_UR_CACHE_H_
