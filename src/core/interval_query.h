// Interval top-k indoor POI query processing (paper Problem 2, Section 4.3).

#ifndef INDOORFLOW_CORE_INTERVAL_QUERY_H_
#define INDOORFLOW_CORE_INTERVAL_QUERY_H_

#include <vector>

#include "src/core/approx.h"
#include "src/core/query_context.h"

namespace indoorflow {

/// Algorithm 4 (iterativeInterval): collect each relevant object's record
/// chain via an AR-tree range query, derive UR(o, [ts, te]), accumulate
/// presences, return the top-k.
std::vector<PoiFlow> IterativeInterval(const QueryContext& ctx,
                                       const RTree& poi_tree,
                                       const std::vector<PoiId>& subset_ids,
                                       Timestamp ts, Timestamp te, int k);

/// Approximate variant of Algorithm 4 (see IterativeSnapshotEstimate):
/// top-k Horvitz–Thompson estimates with error bounds over a deterministic
/// uniform subsample of the relevant record chains when `approx` calls for
/// sampling, exact estimates otherwise.
std::vector<FlowEstimate> IterativeIntervalEstimate(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te, int k,
    const ApproxConfig& approx);

/// Algorithm 5 (joinInterval) with the finer sub-MBR improvement (Section
/// 4.3.2, toggled by ctx.interval_sub_mbrs): R_I leaf entries carry one MBR
/// per trajectory ellipse, eliminating dead-space false positives from the
/// join lists before any uncertainty region is derived.
std::vector<PoiFlow> JoinInterval(const QueryContext& ctx,
                                  const RTree& poi_tree,
                                  const std::vector<PoiId>& subset_ids,
                                  Timestamp ts, Timestamp te, int k);

/// Threshold variants (an indoorflow extension): every query POI whose
/// interval flow over [ts, te] is at least `tau` (> 0), flow-descending.
/// The join variant terminates as soon as the best remaining bound drops
/// below tau.
std::vector<PoiFlow> IterativeIntervalThreshold(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te,
    double tau);
std::vector<PoiFlow> JoinIntervalThreshold(const QueryContext& ctx,
                                           const RTree& poi_tree,
                                           Timestamp ts, Timestamp te,
                                           double tau);

/// Density variants (an indoorflow extension): the k POIs with the highest
/// interval crowd density Φ(p)/area(p) over [ts, te].
std::vector<PoiFlow> IterativeIntervalDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te, int k);
std::vector<PoiFlow> JoinIntervalDensity(
    const QueryContext& ctx, const RTree& poi_tree,
    const std::vector<PoiId>& subset_ids, Timestamp ts, Timestamp te, int k);

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_INTERVAL_QUERY_H_
