// Shared immutable state handed from the engine to the query algorithms.

#ifndef INDOORFLOW_CORE_QUERY_CONTEXT_H_
#define INDOORFLOW_CORE_QUERY_CONTEXT_H_

#include <vector>

#include "src/common/deadline.h"
#include "src/core/flow.h"
#include "src/core/query_stats.h"
#include "src/core/uncertainty.h"
#include "src/index/artree.h"
#include "src/index/rtree.h"

namespace indoorflow {

struct QueryProfile;
class UrCache;
class Executor;

/// Everything a query algorithm needs besides its own parameters. All
/// pointers are non-owning and outlive the query.
struct QueryContext {
  const ObjectTrackingTable* table = nullptr;
  const ARTree* artree = nullptr;
  const UncertaintyModel* model = nullptr;
  const PoiSet* pois = nullptr;                      // id == index
  const std::vector<Region>* poi_regions = nullptr;  // aligned with pois
  const std::vector<double>* poi_areas = nullptr;    // aligned with pois
  const FlowConfig* flow = nullptr;
  int ri_fanout = 8;
  /// Interval joins: attach per-ellipse sub-MBRs to R_I leaf entries
  /// (paper Section 4.3.2 improvement). Exposed for the ablation bench.
  bool interval_sub_mbrs = true;
  /// Optional operation counters (may be null).
  QueryStats* stats = nullptr;
  /// Optional EXPLAIN recorder (may be null; see
  /// src/core/query_profile.h). The algorithms record per-POI verdicts,
  /// object derivation costs, and join bound evolution into it.
  QueryProfile* profile = nullptr;
  /// Geometry-aware join bounds (see EngineConfig::join_area_bounds).
  bool join_area_bounds = false;
  /// Cross-query uncertainty-region cache (may be null = no caching). The
  /// cache is internally synchronized; concurrent queries share it.
  UrCache* ur_cache = nullptr;
  /// Shared work scheduler for intra-query parallelism (may be null = run
  /// serially). The engine leaves this null when the resolved thread count
  /// is 1, so algorithms can treat "executor != nullptr" as "parallelism
  /// wanted".
  Executor* executor = nullptr;
  /// Lanes to fan a parallel section across (resolved, >= 1).
  int threads = 1;
  /// Minimum number of per-object work items before a query section fans
  /// out; below it the scheduling overhead outweighs the win. See
  /// EngineConfig::parallel_threshold.
  int parallel_threshold = 64;
  /// Per-request deadline / cancellation (may be null = never abort; see
  /// src/common/deadline.h). The algorithms poll it between per-object
  /// work items via QueryAborted() and abandon the query once it trips;
  /// the caller checks control->Aborted() afterwards and discards the
  /// partial result. Null for every caller that doesn't serve requests,
  /// so the bit-identity and differential guarantees are untouched.
  const QueryControl* control = nullptr;
  /// The engine's span for this query (may be null = unsampled/untraced;
  /// see src/common/trace.h). Parallel sections parent one child span
  /// per executor lane under it and the UR cache attaches hit/miss
  /// events to it; a null span makes all of that a pointer compare.
  const Span* span = nullptr;
};

/// The kernels' abort poll: false when no control is attached (the
/// overwhelmingly common case — one pointer compare), else the sticky
/// deadline/cancel check (see QueryControl::ShouldAbort).
inline bool QueryAborted(const QueryContext& ctx) {
  return ctx.control != nullptr && ctx.control->ShouldAbort();
}

}  // namespace indoorflow

#endif  // INDOORFLOW_CORE_QUERY_CONTEXT_H_
