#include "src/viz/svg.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>

namespace indoorflow {

namespace {

std::string Num(double v) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f", v);
  return buffer;
}

}  // namespace

std::string HeatColor(double v) {
  v = std::clamp(v, 0.0, 1.0);
  // White (1,1,1) -> red (0.86, 0.08, 0.08).
  const int r = static_cast<int>(std::lround(255.0 * (1.0 - 0.14 * v)));
  const int g = static_cast<int>(std::lround(255.0 * (1.0 - 0.92 * v)));
  const int b = static_cast<int>(std::lround(255.0 * (1.0 - 0.92 * v)));
  char buffer[8];
  std::snprintf(buffer, sizeof(buffer), "#%02x%02x%02x", r, g, b);
  return buffer;
}

SvgCanvas::SvgCanvas(const Box& world, double pixels_per_meter)
    : world_(world), scale_(pixels_per_meter) {
  INDOORFLOW_CHECK(!world.Empty());
  INDOORFLOW_CHECK(pixels_per_meter > 0.0);
}

void SvgCanvas::DrawPolygon(const Polygon& polygon, const Style& style) {
  body_ += "<polygon points=\"";
  for (const Point& p : polygon.vertices()) {
    body_ += Num(X(p.x)) + "," + Num(Y(p.y)) + " ";
  }
  body_ += "\" fill=\"" + style.fill + "\" fill-opacity=\"" +
           Num(style.fill_opacity) + "\" stroke=\"" + style.stroke +
           "\" stroke-width=\"" + Num(style.stroke_width * scale_) +
           "\"/>\n";
}

void SvgCanvas::DrawCircle(const Circle& circle, const Style& style) {
  body_ += "<circle cx=\"" + Num(X(circle.center.x)) + "\" cy=\"" +
           Num(Y(circle.center.y)) + "\" r=\"" + Num(circle.radius * scale_) +
           "\" fill=\"" + style.fill + "\" fill-opacity=\"" +
           Num(style.fill_opacity) + "\" stroke=\"" + style.stroke +
           "\" stroke-width=\"" + Num(style.stroke_width * scale_) +
           "\" stroke-dasharray=\"" + Num(0.3 * scale_) + "\"/>\n";
}

void SvgCanvas::DrawSegment(Segment segment, const Style& style) {
  body_ += "<line x1=\"" + Num(X(segment.a.x)) + "\" y1=\"" +
           Num(Y(segment.a.y)) + "\" x2=\"" + Num(X(segment.b.x)) +
           "\" y2=\"" + Num(Y(segment.b.y)) + "\" stroke=\"" + style.stroke +
           "\" stroke-width=\"" + Num(style.stroke_width * scale_) +
           "\"/>\n";
}

void SvgCanvas::DrawText(Point at, const std::string& text, double size,
                         const std::string& color) {
  body_ += "<text x=\"" + Num(X(at.x)) + "\" y=\"" + Num(Y(at.y)) +
           "\" font-size=\"" + Num(size * scale_) + "\" fill=\"" + color +
           "\" font-family=\"sans-serif\">" + text + "</text>\n";
}

void SvgCanvas::DrawRegion(const Region& region, const std::string& color,
                           double opacity, double cell) {
  INDOORFLOW_CHECK(cell > 0.0);
  const Box bounds = Intersection(region.Bounds(), world_);
  if (bounds.Empty()) return;
  // One path of axis-aligned cell squares whose centers are members.
  std::string path;
  for (double y = bounds.min_y; y < bounds.max_y; y += cell) {
    for (double x = bounds.min_x; x < bounds.max_x; x += cell) {
      const Box cell_box{x, y, x + cell, y + cell};
      const BoxClass cls = region.Classify(cell_box);
      const bool in =
          cls == BoxClass::kInside ||
          (cls == BoxClass::kBoundary &&
           region.Contains({x + cell / 2.0, y + cell / 2.0}));
      if (!in) continue;
      path += "M" + Num(X(x)) + " " + Num(Y(y + cell)) + "h" +
              Num(cell * scale_) + "v" + Num(cell * scale_) + "h-" +
              Num(cell * scale_) + "z";
    }
  }
  if (path.empty()) return;
  body_ += "<path d=\"" + path + "\" fill=\"" + color +
           "\" fill-opacity=\"" + Num(opacity) + "\" stroke=\"none\"/>\n";
}

void SvgCanvas::DrawFloorPlan(const FloorPlan& plan) {
  for (const Partition& part : plan.partitions()) {
    Style style;
    style.fill = "#f7f4ee";
    style.stroke = "#444444";
    style.stroke_width = 0.12;
    DrawPolygon(part.shape, style);
  }
  for (const Door& door : plan.doors()) {
    Style style;
    style.fill = "#8a5a2b";
    style.stroke = "none";
    DrawCircle(Circle{door.position, 0.35}, style);
  }
}

void SvgCanvas::DrawDeployment(const Deployment& deployment) {
  for (const Device& device : deployment.devices()) {
    Style style;
    style.stroke = "#2060c0";
    style.stroke_width = 0.06;
    DrawCircle(device.range, style);
    DrawText(device.range.center + Point{0.2, 0.2},
             std::to_string(device.id), 0.9, "#2060c0");
  }
}

void SvgCanvas::DrawFlowHeatmap(const PoiSet& pois,
                                const std::vector<PoiFlow>& flows) {
  double max_flow = 0.0;
  for (const PoiFlow& f : flows) max_flow = std::max(max_flow, f.flow);
  for (const PoiFlow& f : flows) {
    const Poi& poi = pois[static_cast<size_t>(f.poi)];
    Style style;
    style.fill = HeatColor(max_flow > 0.0 ? f.flow / max_flow : 0.0);
    style.fill_opacity = 0.85;
    style.stroke = "#993333";
    style.stroke_width = 0.05;
    DrawPolygon(poi.shape, style);
    char label[32];
    std::snprintf(label, sizeof(label), "%.2f", f.flow);
    DrawText(poi.shape.Centroid() + Point{-0.8, -0.3}, label, 0.9,
             "#5a1010");
  }
}

std::string SvgCanvas::ToString() const {
  const double width = world_.Width() * scale_;
  const double height = world_.Height() * scale_;
  std::string out = "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"" +
                    Num(width) + "\" height=\"" + Num(height) +
                    "\" viewBox=\"0 0 " + Num(width) + " " + Num(height) +
                    "\">\n<rect width=\"100%\" height=\"100%\" "
                    "fill=\"#ffffff\"/>\n";
  out += body_;
  out += "</svg>\n";
  return out;
}

Status SvgCanvas::WriteFile(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << ToString();
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

}  // namespace indoorflow
