// SVG rendering of floor plans, deployments, uncertainty regions, and flow
// heatmaps.
//
// Understanding symbolic-tracking uncertainty is much easier with a
// picture; this module renders the library's core objects to standalone
// SVG documents (viewable in any browser). Regions are drawn by marching
// the adaptive classifier over a pixel grid, so anything with a Region CSG
// representation — including topology-checked uncertainty regions — renders
// faithfully.

#ifndef INDOORFLOW_VIZ_SVG_H_
#define INDOORFLOW_VIZ_SVG_H_

#include <string>
#include <vector>

#include "src/core/flow.h"
#include "src/geometry/region.h"
#include "src/indoor/floor_plan.h"
#include "src/indoor/poi.h"
#include "src/tracking/deployment.h"

namespace indoorflow {

/// Builds one SVG document over a fixed world-coordinate viewport.
/// Layers are painted in call order.
class SvgCanvas {
 public:
  struct Style {
    std::string fill = "none";
    std::string stroke = "#333333";
    double stroke_width = 0.08;  // world units (meters)
    double fill_opacity = 1.0;
  };

  /// `world` is the visible extent (meters); `pixels_per_meter` sets the
  /// output resolution.
  SvgCanvas(const Box& world, double pixels_per_meter = 12.0);

  // --- primitive layers --------------------------------------------------
  void DrawPolygon(const Polygon& polygon, const Style& style);
  void DrawCircle(const Circle& circle, const Style& style);
  void DrawSegment(Segment segment, const Style& style);
  void DrawText(Point at, const std::string& text, double size = 1.2,
                const std::string& color = "#222222");

  /// Rasterizes `region` at `cell` meter resolution (union of cells whose
  /// centers are inside), emitted as one path. Coarse but faithful for
  /// arbitrary CSG regions.
  void DrawRegion(const Region& region, const std::string& color,
                  double opacity = 0.5, double cell = 0.25);

  // --- composite layers --------------------------------------------------
  /// Partitions (rooms shaded, hallways lighter) and doors.
  void DrawFloorPlan(const FloorPlan& plan);
  /// Detection ranges as dashed circles with device ids.
  void DrawDeployment(const Deployment& deployment);
  /// POIs colored by flow on a white->red ramp (flows normalized to the
  /// maximum in `flows`); labels show the flow value.
  void DrawFlowHeatmap(const PoiSet& pois, const std::vector<PoiFlow>& flows);

  /// The finished document.
  std::string ToString() const;

  /// Writes ToString() to `path`.
  Status WriteFile(const std::string& path) const;

 private:
  double X(double wx) const { return (wx - world_.min_x) * scale_; }
  double Y(double wy) const { return (world_.max_y - wy) * scale_; }

  Box world_;
  double scale_;
  std::string body_;
};

/// Linear white->red heat color for v in [0, 1], as "#rrggbb".
std::string HeatColor(double v);

}  // namespace indoorflow

#endif  // INDOORFLOW_VIZ_SVG_H_
