// Merging raw readings into tracking records.

#ifndef INDOORFLOW_TRACKING_MERGER_H_
#define INDOORFLOW_TRACKING_MERGER_H_

#include <vector>

#include "src/tracking/ott.h"
#include "src/tracking/reading.h"

namespace indoorflow {

struct MergerOptions {
  /// Positioning sampling period (seconds between raw readings while an
  /// object stays in range).
  double sampling_period = 1.0;
  /// Two consecutive readings of the same (object, device) pair merge into
  /// one record when their gap is at most `max_gap_factor * sampling_period`
  /// (tolerates occasional missed samples).
  double max_gap_factor = 1.5;
  /// Group readings per (object, device) before merging and allow the
  /// resulting records to overlap in time — required for overlapping
  /// detection ranges and for noisy streams (cross-reads interleave with
  /// genuine readings).
  bool allow_overlap = false;
};

/// Merges raw readings into an OTT: consecutive readings of the same object
/// by the same device become one record [first.t, last.t] (paper Section
/// 2.1). Readings may arrive in any order. The returned table is finalized.
Result<ObjectTrackingTable> MergeReadings(std::vector<RawReading> readings,
                                          const MergerOptions& options = {});

}  // namespace indoorflow

#endif  // INDOORFLOW_TRACKING_MERGER_H_
