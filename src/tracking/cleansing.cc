#include "src/tracking/cleansing.h"

#include <algorithm>

namespace indoorflow {

std::vector<RawReading> InjectNoise(const std::vector<RawReading>& readings,
                                    const Deployment& deployment,
                                    const NoiseOptions& options) {
  INDOORFLOW_CHECK(options.miss_rate >= 0.0 && options.miss_rate < 1.0);
  INDOORFLOW_CHECK(options.ghost_rate >= 0.0);
  Rng rng(options.seed);
  std::vector<RawReading> noisy;
  noisy.reserve(readings.size());
  const size_t num_devices = deployment.size();
  for (const RawReading& r : readings) {
    if (!rng.Bernoulli(options.miss_rate)) noisy.push_back(r);
    if (num_devices > 1 && rng.Bernoulli(options.ghost_rate)) {
      // Cross-read: some other device spuriously reports the tag.
      DeviceId ghost_dev = static_cast<DeviceId>(
          rng.UniformInt(static_cast<uint64_t>(num_devices)));
      if (ghost_dev == r.device_id) {
        ghost_dev = static_cast<DeviceId>((ghost_dev + 1) %
                                          static_cast<DeviceId>(num_devices));
      }
      noisy.push_back(RawReading{r.object_id, ghost_dev, r.t});
    }
  }
  return noisy;
}

bool ReadingsFeasible(const Device& a, Timestamp ta, const Device& b,
                      Timestamp tb, const CleansingOptions& options) {
  if (a.id == b.id) return true;
  const double min_travel =
      std::max(0.0, Distance(a.range.center, b.range.center) -
                        a.range.radius - b.range.radius);
  const double budget =
      options.vmax * (std::abs(tb - ta) + options.slack_seconds);
  return min_travel <= budget;
}

std::vector<RawReading> CleanseReadings(std::vector<RawReading> readings,
                                        const Deployment& deployment,
                                        const CleansingOptions& options) {
  INDOORFLOW_CHECK(options.vmax > 0.0);
  std::sort(readings.begin(), readings.end(),
            [](const RawReading& a, const RawReading& b) {
              if (a.object_id != b.object_id) return a.object_id < b.object_id;
              if (a.t != b.t) return a.t < b.t;
              return a.device_id < b.device_id;
            });

  const auto feasible = [&](const RawReading& a, const RawReading& b) {
    return ReadingsFeasible(deployment.device(a.device_id), a.t,
                            deployment.device(b.device_id), b.t, options);
  };

  std::vector<RawReading> cleansed;
  cleansed.reserve(readings.size());
  for (size_t i = 0; i < readings.size(); ++i) {
    const RawReading& cur = readings[i];
    // Temporal neighbors within the same object's stream. The previous
    // neighbor is the last *kept* reading, so ghost bursts cannot vouch
    // for each other.
    const RawReading* prev =
        !cleansed.empty() && cleansed.back().object_id == cur.object_id
            ? &cleansed.back()
            : nullptr;
    const RawReading* next =
        i + 1 < readings.size() &&
                readings[i + 1].object_id == cur.object_id
            ? &readings[i + 1]
            : nullptr;

    bool drop = false;
    if (prev != nullptr && next != nullptr) {
      // Classic isolated-outlier rule: cur contradicts both neighbors,
      // which agree with each other.
      drop = !feasible(*prev, cur) && !feasible(cur, *next) &&
             feasible(*prev, *next);
    } else if (prev != nullptr) {
      // Stream tail: drop cur only when prev is *supported* — kept after a
      // feasible predecessor of its own. An unsupported prev (e.g. a lone
      // ambiguous head reading) cannot convict anyone.
      bool prev_supported = false;
      if (cleansed.size() >= 2) {
        const RawReading& before_prev = cleansed[cleansed.size() - 2];
        prev_supported = before_prev.object_id == prev->object_id &&
                         feasible(before_prev, *prev);
      }
      drop = prev_supported && !feasible(*prev, cur);
    } else if (next != nullptr && !feasible(cur, *next)) {
      // Stream head: cur and next disagree — drop cur only when a second
      // witness corroborates next; with no witness, keep both (cannot
      // adjudicate which one is the ghost).
      const RawReading* witness =
          i + 2 < readings.size() &&
                  readings[i + 2].object_id == cur.object_id
              ? &readings[i + 2]
              : nullptr;
      drop = witness != nullptr && feasible(*next, *witness) &&
             !feasible(cur, *witness);
    }
    if (!drop) cleansed.push_back(cur);
  }
  return cleansed;
}

}  // namespace indoorflow
