// The Object Tracking Table (OTT): historical tracking records.

#ifndef INDOORFLOW_TRACKING_OTT_H_
#define INDOORFLOW_TRACKING_OTT_H_

#include <span>
#include <unordered_map>
#include <vector>

#include "src/common/status.h"
#include "src/tracking/reading.h"

namespace indoorflow {

/// Stores tracking records grouped per object and ordered by start time,
/// like the paper's OTT (Table 2). Build with Append + Finalize; queries are
/// valid only after Finalize.
class ObjectTrackingTable {
 public:
  void Append(TrackingRecord record) { records_.push_back(record); }

  /// Sorts records into per-object chains. By default each object's records
  /// must be temporally disjoint (te_i <= ts_{i+1}) — the paper's
  /// non-overlapping detection-range assumption. With `allow_overlap`
  /// (deployments whose ranges overlap; see the paper's Section 3 Remark),
  /// records of one object may overlap in time; has_overlaps() reports
  /// whether any actually do.
  Status Finalize(bool allow_overlap = false);

  /// Whether any two records of one object overlap in time (always false
  /// without allow_overlap).
  bool has_overlaps() const { return has_overlaps_; }

  bool finalized() const { return finalized_; }
  size_t size() const { return records_.size(); }
  bool empty() const { return records_.empty(); }
  const TrackingRecord& record(RecordIndex i) const {
    return records_[static_cast<size_t>(i)];
  }

  /// Record indices of `object`'s chain, in time order (empty span for an
  /// unknown object).
  std::span<const RecordIndex> ChainOf(ObjectId object) const;

  /// The record preceding record `i` in its object's chain, or
  /// kInvalidRecord for the first record.
  RecordIndex PrevOf(RecordIndex i) const {
    return prev_[static_cast<size_t>(i)];
  }
  /// The record following record `i` in its object's chain, or
  /// kInvalidRecord for the last record.
  RecordIndex NextOf(RecordIndex i) const {
    return next_[static_cast<size_t>(i)];
  }

  /// Distinct tracked objects.
  const std::vector<ObjectId>& objects() const { return objects_; }

  /// [min ts, max te] over all records (0,0 when empty).
  Timestamp min_time() const { return min_time_; }
  Timestamp max_time() const { return max_time_; }

 private:
  std::vector<TrackingRecord> records_;
  // chain_index_ lists all record indices sorted by (object, ts); each
  // object's run is contiguous. chain_of_ maps object -> [begin, end) into
  // chain_index_.
  std::vector<RecordIndex> chain_index_;
  std::unordered_map<ObjectId, std::pair<size_t, size_t>> chain_of_;
  std::vector<RecordIndex> prev_;
  std::vector<RecordIndex> next_;
  std::vector<ObjectId> objects_;
  Timestamp min_time_ = 0.0;
  Timestamp max_time_ = 0.0;
  bool finalized_ = false;
  bool has_overlaps_ = false;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_TRACKING_OTT_H_
