#include "src/tracking/ott.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

namespace indoorflow {

Status ObjectTrackingTable::Finalize(bool allow_overlap) {
  if (finalized_) {
    return Status::FailedPrecondition("OTT already finalized");
  }
  const size_t n = records_.size();
  chain_index_.resize(n);
  std::iota(chain_index_.begin(), chain_index_.end(), RecordIndex{0});
  std::sort(chain_index_.begin(), chain_index_.end(),
            [&](RecordIndex a, RecordIndex b) {
              const TrackingRecord& ra = records_[static_cast<size_t>(a)];
              const TrackingRecord& rb = records_[static_cast<size_t>(b)];
              if (ra.object_id != rb.object_id) {
                return ra.object_id < rb.object_id;
              }
              return ra.ts < rb.ts;
            });

  prev_.assign(n, kInvalidRecord);
  next_.assign(n, kInvalidRecord);
  min_time_ = n == 0 ? 0.0 : std::numeric_limits<double>::infinity();
  max_time_ = n == 0 ? 0.0 : -std::numeric_limits<double>::infinity();

  size_t run_start = 0;
  for (size_t i = 0; i < n; ++i) {
    const TrackingRecord& cur = records_[static_cast<size_t>(chain_index_[i])];
    // Written as !(te >= ts) so NaN timestamps are rejected too (every
    // comparison against NaN is false, so `te < ts` alone lets them
    // through — the binary reader can produce any bit pattern).
    if (!(cur.te >= cur.ts) || !std::isfinite(cur.ts) ||
        !std::isfinite(cur.te)) {
      return Status::InvalidArgument(
          "tracking record with non-finite interval or te < ts");
    }
    min_time_ = std::min(min_time_, cur.ts);
    max_time_ = std::max(max_time_, cur.te);
    const bool new_object =
        i == 0 ||
        records_[static_cast<size_t>(chain_index_[i - 1])].object_id !=
            cur.object_id;
    if (new_object) {
      if (i > 0) {
        const ObjectId prev_obj =
            records_[static_cast<size_t>(chain_index_[i - 1])].object_id;
        chain_of_[prev_obj] = {run_start, i};
      }
      run_start = i;
      objects_.push_back(cur.object_id);
    } else {
      const RecordIndex prev_idx = chain_index_[i - 1];
      const TrackingRecord& prev =
          records_[static_cast<size_t>(prev_idx)];
      if (cur.ts < prev.te) {
        if (!allow_overlap) {
          return Status::InvalidArgument(
              "overlapping tracking records for object " +
              std::to_string(cur.object_id));
        }
        has_overlaps_ = true;
      }
      prev_[static_cast<size_t>(chain_index_[i])] = prev_idx;
      next_[static_cast<size_t>(prev_idx)] = chain_index_[i];
    }
  }
  if (n > 0) {
    const ObjectId last_obj =
        records_[static_cast<size_t>(chain_index_[n - 1])].object_id;
    chain_of_[last_obj] = {run_start, n};
  }
  finalized_ = true;
  return Status::OK();
}

std::span<const RecordIndex> ObjectTrackingTable::ChainOf(
    ObjectId object) const {
  const auto it = chain_of_.find(object);
  if (it == chain_of_.end()) return {};
  return std::span<const RecordIndex>(chain_index_.data() + it->second.first,
                                      it->second.second - it->second.first);
}

}  // namespace indoorflow
