#include "src/tracking/merger.h"

#include <algorithm>

namespace indoorflow {

Result<ObjectTrackingTable> MergeReadings(std::vector<RawReading> readings,
                                          const MergerOptions& options) {
  if (options.sampling_period <= 0.0) {
    return Status::InvalidArgument("sampling_period must be positive");
  }
  const double max_gap = options.max_gap_factor * options.sampling_period;

  // In overlap mode, readings are grouped per (object, device) so that
  // interleaved detections by two devices merge into two overlapping
  // records instead of fragmenting each other.
  if (options.allow_overlap) {
    std::sort(readings.begin(), readings.end(),
              [](const RawReading& a, const RawReading& b) {
                if (a.object_id != b.object_id) {
                  return a.object_id < b.object_id;
                }
                if (a.device_id != b.device_id) {
                  return a.device_id < b.device_id;
                }
                return a.t < b.t;
              });
  } else {
    std::sort(readings.begin(), readings.end(),
              [](const RawReading& a, const RawReading& b) {
                if (a.object_id != b.object_id) {
                  return a.object_id < b.object_id;
                }
                if (a.t != b.t) return a.t < b.t;
                return a.device_id < b.device_id;
              });
  }

  ObjectTrackingTable table;
  bool open = false;
  TrackingRecord current;
  for (const RawReading& r : readings) {
    const bool continues = open && current.object_id == r.object_id &&
                           current.device_id == r.device_id &&
                           r.t - current.te <= max_gap;
    if (continues) {
      current.te = r.t;
      continue;
    }
    if (open) table.Append(current);
    current = TrackingRecord{r.object_id, r.device_id, r.t, r.t};
    open = true;
  }
  if (open) table.Append(current);

  INDOORFLOW_RETURN_IF_ERROR(table.Finalize(options.allow_overlap));
  return table;
}

}  // namespace indoorflow
