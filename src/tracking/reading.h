// Symbolic indoor tracking data model: raw readings and tracking records.
//
// Raw position readings have the form (objectId, deviceId, t) — "the object
// identified by objectId is seen by the device deviceId at time t". The
// positioning works at a configured sampling frequency, so consecutive raw
// readings by the same device are merged into tracking records
// (id, objectId, deviceId, ts, te): the object is continuously seen by the
// device from ts to te (paper Section 2.1, Tables 1-2).

#ifndef INDOORFLOW_TRACKING_READING_H_
#define INDOORFLOW_TRACKING_READING_H_

#include <cstdint>

namespace indoorflow {

using ObjectId = int32_t;
using DeviceId = int32_t;
using RecordIndex = int64_t;

inline constexpr RecordIndex kInvalidRecord = -1;

/// Time is measured in seconds from the start of the observation period.
using Timestamp = double;

/// A raw proximity reading: object seen by device at time t.
struct RawReading {
  ObjectId object_id = -1;
  DeviceId device_id = -1;
  Timestamp t = 0.0;
};

/// A merged tracking record: object continuously seen by device in [ts, te].
struct TrackingRecord {
  ObjectId object_id = -1;
  DeviceId device_id = -1;
  Timestamp ts = 0.0;
  Timestamp te = 0.0;

  bool Covers(Timestamp t) const { return t >= ts && t <= te; }
};

}  // namespace indoorflow

#endif  // INDOORFLOW_TRACKING_READING_H_
