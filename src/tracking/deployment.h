// Proximity-detection device deployment.

#ifndef INDOORFLOW_TRACKING_DEPLOYMENT_H_
#define INDOORFLOW_TRACKING_DEPLOYMENT_H_

#include <vector>

#include "src/common/status.h"
#include "src/geometry/circle.h"
#include "src/tracking/reading.h"

namespace indoorflow {

/// A proximity detection device (RFID reader, Bluetooth radio) with a
/// circular detection range.
struct Device {
  DeviceId id = -1;
  Circle range;
};

/// The set of deployed devices, with a uniform grid for fast "which devices
/// can see this point" lookups during simulation and query processing.
class Deployment {
 public:
  DeviceId AddDevice(Circle range);

  const std::vector<Device>& devices() const { return devices_; }
  const Device& device(DeviceId id) const {
    return devices_[static_cast<size_t>(id)];
  }
  size_t size() const { return devices_.size(); }

  /// Builds the lookup grid; call once after all AddDevice calls.
  void BuildIndex();

  /// Devices whose range could contain a point within `margin` of `p`
  /// (superset; callers re-check exactly). Requires BuildIndex().
  void DevicesNear(Point p, double margin,
                   std::vector<DeviceId>* out) const;

  /// Largest detection radius in the deployment.
  double max_radius() const { return max_radius_; }

  /// True when no two detection ranges overlap (the paper's simplifying
  /// assumption, Section 3 Remark).
  bool RangesDisjoint() const;

 private:
  std::vector<Device> devices_;
  double max_radius_ = 0.0;

  // Uniform grid over the device bounding box.
  Box grid_bounds_;
  double cell_size_ = 1.0;
  int cols_ = 0;
  int rows_ = 0;
  std::vector<std::vector<DeviceId>> cells_;
  bool indexed_ = false;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_TRACKING_DEPLOYMENT_H_
