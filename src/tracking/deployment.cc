#include "src/tracking/deployment.h"

#include <algorithm>
#include <cmath>

namespace indoorflow {

DeviceId Deployment::AddDevice(Circle range) {
  INDOORFLOW_CHECK(range.radius > 0.0);
  const DeviceId id = static_cast<DeviceId>(devices_.size());
  devices_.push_back(Device{id, range});
  max_radius_ = std::max(max_radius_, range.radius);
  indexed_ = false;
  return id;
}

void Deployment::BuildIndex() {
  grid_bounds_ = Box{};
  for (const Device& d : devices_) {
    grid_bounds_.ExpandToInclude(d.range.Bounds());
  }
  if (grid_bounds_.Empty()) {
    cols_ = rows_ = 0;
    cells_.clear();
    indexed_ = true;
    return;
  }
  // Cells sized to the largest detection diameter keep the per-cell device
  // lists short while bounding the lookup to a 3x3 neighborhood.
  cell_size_ = std::max(2.0 * max_radius_, 1.0);
  cols_ = std::max(
      1, static_cast<int>(std::ceil(grid_bounds_.Width() / cell_size_)));
  rows_ = std::max(
      1, static_cast<int>(std::ceil(grid_bounds_.Height() / cell_size_)));
  cells_.assign(static_cast<size_t>(cols_) * rows_, {});
  for (const Device& d : devices_) {
    const Box b = d.range.Bounds();
    const int c0 = std::clamp(
        static_cast<int>((b.min_x - grid_bounds_.min_x) / cell_size_), 0,
        cols_ - 1);
    const int c1 = std::clamp(
        static_cast<int>((b.max_x - grid_bounds_.min_x) / cell_size_), 0,
        cols_ - 1);
    const int r0 = std::clamp(
        static_cast<int>((b.min_y - grid_bounds_.min_y) / cell_size_), 0,
        rows_ - 1);
    const int r1 = std::clamp(
        static_cast<int>((b.max_y - grid_bounds_.min_y) / cell_size_), 0,
        rows_ - 1);
    for (int r = r0; r <= r1; ++r) {
      for (int c = c0; c <= c1; ++c) {
        cells_[static_cast<size_t>(r) * cols_ + c].push_back(d.id);
      }
    }
  }
  indexed_ = true;
}

void Deployment::DevicesNear(Point p, double margin,
                             std::vector<DeviceId>* out) const {
  INDOORFLOW_CHECK(indexed_);
  out->clear();
  if (cells_.empty()) return;
  const int c0 = std::clamp(
      static_cast<int>((p.x - margin - grid_bounds_.min_x) / cell_size_), 0,
      cols_ - 1);
  const int c1 = std::clamp(
      static_cast<int>((p.x + margin - grid_bounds_.min_x) / cell_size_), 0,
      cols_ - 1);
  const int r0 = std::clamp(
      static_cast<int>((p.y - margin - grid_bounds_.min_y) / cell_size_), 0,
      rows_ - 1);
  const int r1 = std::clamp(
      static_cast<int>((p.y + margin - grid_bounds_.min_y) / cell_size_), 0,
      rows_ - 1);
  for (int r = r0; r <= r1; ++r) {
    for (int c = c0; c <= c1; ++c) {
      for (DeviceId id : cells_[static_cast<size_t>(r) * cols_ + c]) {
        const Device& d = devices_[static_cast<size_t>(id)];
        if (Distance(d.range.center, p) <= d.range.radius + margin) {
          out->push_back(id);
        }
      }
    }
  }
  // Devices can appear in several cells; de-duplicate.
  std::sort(out->begin(), out->end());
  out->erase(std::unique(out->begin(), out->end()), out->end());
}

bool Deployment::RangesDisjoint() const {
  for (size_t i = 0; i < devices_.size(); ++i) {
    for (size_t j = i + 1; j < devices_.size(); ++j) {
      const Circle& a = devices_[i].range;
      const Circle& b = devices_[j].range;
      if (Distance(a.center, b.center) < a.radius + b.radius) return false;
    }
  }
  return true;
}

}  // namespace indoorflow
