#include "src/tracking/io.h"

#include <bit>
#include <cerrno>
#include <cmath>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <limits>
#include <iterator>
#include <sstream>

namespace indoorflow {

namespace {

// Splits a CSV line on commas (no quoting — the schemas are numeric).
std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string field;
  std::istringstream in(line);
  while (std::getline(in, field, ',')) fields.push_back(field);
  if (!line.empty() && line.back() == ',') fields.push_back("");
  return fields;
}

Status ParseDouble(const std::string& text, int line_no, double* out) {
  errno = 0;
  char* end = nullptr;
  *out = std::strtod(text.c_str(), &end);
  // Non-finite values are rejected even though strtod accepts the "nan" /
  // "inf" spellings: a NaN timestamp or coordinate silently poisons every
  // downstream comparison (NaN compares false against everything).
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      !std::isfinite(*out)) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": bad number '" + text + "'");
  }
  return Status::OK();
}

Status ParseInt(const std::string& text, int line_no, int32_t* out) {
  errno = 0;
  char* end = nullptr;
  const long value = std::strtol(text.c_str(), &end, 10);
  if (end == text.c_str() || *end != '\0' || errno == ERANGE ||
      value < INT32_MIN || value > INT32_MAX) {
    return Status::InvalidArgument("line " + std::to_string(line_no) +
                                   ": bad integer '" + text + "'");
  }
  *out = static_cast<int32_t>(value);
  return Status::OK();
}

// Strips a trailing '\r' (files written on Windows).
void StripCr(std::string* line) {
  if (!line->empty() && line->back() == '\r') line->pop_back();
}

Status ExpectHeader(std::istream& in, const std::string& expected,
                    const std::string& path) {
  std::string header;
  if (!std::getline(in, header)) {
    return Status::InvalidArgument(path + ": empty file");
  }
  StripCr(&header);
  if (header != expected) {
    return Status::InvalidArgument(path + ": expected header '" + expected +
                                   "', got '" + header + "'");
  }
  return Status::OK();
}

}  // namespace

Status WriteReadingsCsv(const std::vector<RawReading>& readings,
                        const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << "object_id,device_id,t\n";
  out.precision(17);
  for (const RawReading& r : readings) {
    out << r.object_id << ',' << r.device_id << ',' << r.t << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<std::vector<RawReading>> ParseReadingsCsv(std::istream& in,
                                                 const std::string& path) {
  INDOORFLOW_RETURN_IF_ERROR(ExpectHeader(in, "object_id,device_id,t",
                                          path));
  std::vector<RawReading> readings;
  std::string line;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    StripCr(&line);
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 3) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 3 fields, got " +
                                     std::to_string(fields.size()));
    }
    RawReading r;
    INDOORFLOW_RETURN_IF_ERROR(ParseInt(fields[0], line_no, &r.object_id));
    INDOORFLOW_RETURN_IF_ERROR(ParseInt(fields[1], line_no, &r.device_id));
    INDOORFLOW_RETURN_IF_ERROR(ParseDouble(fields[2], line_no, &r.t));
    readings.push_back(r);
  }
  return readings;
}

Result<std::vector<RawReading>> ReadReadingsCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParseReadingsCsv(in, path);
}

Status WriteOttCsv(const ObjectTrackingTable& table,
                   const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << "object_id,device_id,ts,te\n";
  out.precision(17);
  for (ObjectId object : table.objects()) {
    for (RecordIndex idx : table.ChainOf(object)) {
      const TrackingRecord& r = table.record(idx);
      out << r.object_id << ',' << r.device_id << ',' << r.ts << ','
          << r.te << '\n';
    }
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<ObjectTrackingTable> ParseOttCsv(std::istream& in,
                                        const std::string& path) {
  INDOORFLOW_RETURN_IF_ERROR(
      ExpectHeader(in, "object_id,device_id,ts,te", path));
  ObjectTrackingTable table;
  std::string line;
  int line_no = 1;
  while (std::getline(in, line)) {
    ++line_no;
    StripCr(&line);
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 4) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 4 fields, got " +
                                     std::to_string(fields.size()));
    }
    TrackingRecord r;
    INDOORFLOW_RETURN_IF_ERROR(ParseInt(fields[0], line_no, &r.object_id));
    INDOORFLOW_RETURN_IF_ERROR(ParseInt(fields[1], line_no, &r.device_id));
    INDOORFLOW_RETURN_IF_ERROR(ParseDouble(fields[2], line_no, &r.ts));
    INDOORFLOW_RETURN_IF_ERROR(ParseDouble(fields[3], line_no, &r.te));
    table.Append(r);
  }
  INDOORFLOW_RETURN_IF_ERROR(table.Finalize());
  return table;
}

Result<ObjectTrackingTable> ReadOttCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParseOttCsv(in, path);
}

Status WriteDeploymentCsv(const Deployment& deployment,
                          const std::string& path) {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out << "device_id,x,y,radius\n";
  out.precision(17);
  for (const Device& d : deployment.devices()) {
    out << d.id << ',' << d.range.center.x << ',' << d.range.center.y << ','
        << d.range.radius << '\n';
  }
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<Deployment> ParseDeploymentCsv(std::istream& in,
                                      const std::string& path) {
  INDOORFLOW_RETURN_IF_ERROR(ExpectHeader(in, "device_id,x,y,radius",
                                          path));
  Deployment deployment;
  std::string line;
  int line_no = 1;
  DeviceId expected_id = 0;
  while (std::getline(in, line)) {
    ++line_no;
    StripCr(&line);
    if (line.empty()) continue;
    const std::vector<std::string> fields = SplitCsvLine(line);
    if (fields.size() != 4) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": expected 4 fields, got " +
                                     std::to_string(fields.size()));
    }
    int32_t id = 0;
    Circle range;
    INDOORFLOW_RETURN_IF_ERROR(ParseInt(fields[0], line_no, &id));
    INDOORFLOW_RETURN_IF_ERROR(
        ParseDouble(fields[1], line_no, &range.center.x));
    INDOORFLOW_RETURN_IF_ERROR(
        ParseDouble(fields[2], line_no, &range.center.y));
    INDOORFLOW_RETURN_IF_ERROR(
        ParseDouble(fields[3], line_no, &range.radius));
    if (id != expected_id) {
      return Status::InvalidArgument(
          "line " + std::to_string(line_no) + ": device ids must be dense "
          "and ordered (expected " + std::to_string(expected_id) + ", got " +
          std::to_string(id) + ")");
    }
    if (range.radius <= 0.0) {
      return Status::InvalidArgument("line " + std::to_string(line_no) +
                                     ": radius must be positive");
    }
    deployment.AddDevice(range);
    ++expected_id;
  }
  deployment.BuildIndex();
  return deployment;
}

Result<Deployment> ReadDeploymentCsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::NotFound("cannot open " + path);
  return ParseDeploymentCsv(in, path);
}

// ---------------------------------------------------------------------------
// Binary OTT.
//
// Layout (all integers little-endian):
//   bytes 0..3   magic "IFBO"
//   byte  4      format version (1)
//   byte  5      flags: bit 0 = table was finalized with allow_overlap
//   bytes 6..13  record count (u64)
//   then count * 24-byte records: i32 object, i32 device, f64 ts, f64 te
//   trailer      FNV-1a 64 over the record bytes (u64)

namespace {

constexpr char kOttMagic[4] = {'I', 'F', 'B', 'O'};
constexpr uint8_t kOttVersion = 1;
constexpr size_t kOttRecordBytes = 24;

void PutU32(std::string& out, uint32_t v) {
  for (int i = 0; i < 4; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

void PutU64(std::string& out, uint64_t v) {
  for (int i = 0; i < 8; ++i) out.push_back(static_cast<char>(v >> (8 * i)));
}

uint32_t GetU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* p) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(p[i])) << (8 * i);
  }
  return v;
}

uint64_t Fnv1a(const std::string& bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

}  // namespace

Status WriteOttBinary(const ObjectTrackingTable& table,
                      const std::string& path) {
  if (!table.finalized()) {
    return Status::InvalidArgument("table must be finalized before writing");
  }
  std::string body;
  body.reserve(table.size() * kOttRecordBytes);
  for (size_t i = 0; i < table.size(); ++i) {
    const TrackingRecord& r = table.record(static_cast<RecordIndex>(i));
    PutU32(body, static_cast<uint32_t>(r.object_id));
    PutU32(body, static_cast<uint32_t>(r.device_id));
    PutU64(body, std::bit_cast<uint64_t>(r.ts));
    PutU64(body, std::bit_cast<uint64_t>(r.te));
  }

  std::string header;
  header.append(kOttMagic, sizeof(kOttMagic));
  header.push_back(static_cast<char>(kOttVersion));
  header.push_back(static_cast<char>(table.has_overlaps() ? 1 : 0));
  PutU64(header, static_cast<uint64_t>(table.size()));

  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot open " + path + " for writing");
  out.write(header.data(), static_cast<std::streamsize>(header.size()));
  out.write(body.data(), static_cast<std::streamsize>(body.size()));
  std::string trailer;
  PutU64(trailer, Fnv1a(body));
  out.write(trailer.data(), static_cast<std::streamsize>(trailer.size()));
  out.flush();
  if (!out) return Status::Internal("write to " + path + " failed");
  return Status::OK();
}

Result<ObjectTrackingTable> ParseOttBinary(const std::string& data,
                                           const std::string& path) {
  constexpr size_t kHeaderBytes = 4 + 1 + 1 + 8;
  if (data.size() < kHeaderBytes + 8) {
    return Status::InvalidArgument(path + ": truncated header");
  }
  if (std::memcmp(data.data(), kOttMagic, sizeof(kOttMagic)) != 0) {
    return Status::InvalidArgument(path + ": not a binary OTT file");
  }
  const uint8_t version = static_cast<uint8_t>(data[4]);
  if (version != kOttVersion) {
    return Status::InvalidArgument(path + ": unsupported version " +
                                   std::to_string(version));
  }
  const bool allow_overlap = (static_cast<uint8_t>(data[5]) & 1) != 0;
  const uint64_t count = GetU64(data.data() + 6);
  // Bound the count before multiplying: `count * kOttRecordBytes` can wrap
  // (e.g. a count near 2^61 multiplies back around to a small value), which
  // would let a hostile header pass the size check below and send the
  // record loop reading far past the buffer. Merely-truncated files fall
  // through to the size check, which reports expected vs. actual bytes.
  const size_t overflow_limit =
      (std::numeric_limits<size_t>::max() - kHeaderBytes - 8) /
      kOttRecordBytes;
  if (count > overflow_limit) {
    return Status::InvalidArgument(
        path + ": record count " + std::to_string(count) +
        " overflows the file size");
  }
  const size_t expected =
      kHeaderBytes + static_cast<size_t>(count) * kOttRecordBytes + 8;
  if (data.size() != expected) {
    return Status::InvalidArgument(
        path + ": size mismatch (expected " + std::to_string(expected) +
        " bytes for " + std::to_string(count) + " records, got " +
        std::to_string(data.size()) + ")");
  }
  const std::string body =
      data.substr(kHeaderBytes, static_cast<size_t>(count) * kOttRecordBytes);
  const uint64_t stored_checksum =
      GetU64(data.data() + data.size() - 8);
  if (Fnv1a(body) != stored_checksum) {
    return Status::InvalidArgument(path + ": checksum mismatch");
  }

  ObjectTrackingTable table;
  const char* p = body.data();
  for (uint64_t i = 0; i < count; ++i, p += kOttRecordBytes) {
    TrackingRecord r;
    r.object_id = static_cast<ObjectId>(GetU32(p));
    r.device_id = static_cast<DeviceId>(GetU32(p + 4));
    r.ts = std::bit_cast<double>(GetU64(p + 8));
    r.te = std::bit_cast<double>(GetU64(p + 16));
    table.Append(r);
  }
  INDOORFLOW_RETURN_IF_ERROR(table.Finalize(allow_overlap));
  return table;
}

Result<ObjectTrackingTable> ReadOttBinary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::string data((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  return ParseOttBinary(data, path);
}

}  // namespace indoorflow
