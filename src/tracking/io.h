// CSV import/export for tracking data and deployments.
//
// Real deployments produce tracking data in flat files; these helpers move
// indoorflow's core relations in and out of simple CSVs so the engine can
// run on external data:
//
//   readings.csv    object_id,device_id,t
//   ott.csv         object_id,device_id,ts,te
//   deployment.csv  device_id,x,y,radius
//
// All readers validate structure and report the offending line in the
// Status message. Device ids in deployment.csv must be dense (0..n-1), as
// everywhere else in the library.

#ifndef INDOORFLOW_TRACKING_IO_H_
#define INDOORFLOW_TRACKING_IO_H_

#include <istream>
#include <string>
#include <vector>

#include "src/tracking/deployment.h"
#include "src/tracking/ott.h"
#include "src/tracking/reading.h"

namespace indoorflow {

// Each Read* file reader delegates to a Parse* overload that consumes an
// already-opened stream (or, for the binary format, a loaded buffer).
// The Parse* forms exist so adversarial-input tests and the fuzz harnesses
// in fuzz/ can drive the parsers without touching the filesystem; `path`
// only labels error messages.

Status WriteReadingsCsv(const std::vector<RawReading>& readings,
                        const std::string& path);
Result<std::vector<RawReading>> ParseReadingsCsv(
    std::istream& in, const std::string& path = "<input>");
Result<std::vector<RawReading>> ReadReadingsCsv(const std::string& path);

Status WriteOttCsv(const ObjectTrackingTable& table,
                   const std::string& path);
/// Returns a finalized table.
Result<ObjectTrackingTable> ParseOttCsv(
    std::istream& in, const std::string& path = "<input>");
Result<ObjectTrackingTable> ReadOttCsv(const std::string& path);

Status WriteDeploymentCsv(const Deployment& deployment,
                          const std::string& path);
/// Returns an indexed deployment.
Result<Deployment> ParseDeploymentCsv(
    std::istream& in, const std::string& path = "<input>");
Result<Deployment> ReadDeploymentCsv(const std::string& path);

/// Compact binary OTT: fixed 24-byte little-endian records behind a small
/// header (magic, version, overlap flag, count) and an FNV-1a checksum
/// trailer that detects truncation and corruption. Roughly 2x smaller and
/// an order of magnitude faster to parse than the CSV — use it for large
/// OTTs moved between runs; use the CSV for interchange with other tools.
Status WriteOttBinary(const ObjectTrackingTable& table,
                      const std::string& path);
/// Returns a finalized table (overlap mode restored from the header).
Result<ObjectTrackingTable> ParseOttBinary(
    const std::string& data, const std::string& path = "<input>");
Result<ObjectTrackingTable> ReadOttBinary(const std::string& path);

}  // namespace indoorflow

#endif  // INDOORFLOW_TRACKING_IO_H_
