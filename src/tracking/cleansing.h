// Raw-reading noise models and cleansing.
//
// Real RFID/Bluetooth streams are dirty: readers miss tags that are in
// range (false negatives) and occasionally report tags that are not
// (false positives / cross-reads). The paper's pipeline assumes merged,
// clean tracking records; this module provides
//   * InjectNoise    — a reading-level noise model for robustness studies,
//   * CleanseReadings — a speed-constraint outlier filter that removes
//     physically impossible readings before merging (an object cannot ping
//     device B if it could not have traveled there from its surrounding
//     readings at Vmax).
//
// Missed single samples are already tolerated downstream by
// MergerOptions::max_gap_factor.

#ifndef INDOORFLOW_TRACKING_CLEANSING_H_
#define INDOORFLOW_TRACKING_CLEANSING_H_

#include <vector>

#include "src/common/random.h"
#include "src/tracking/deployment.h"
#include "src/tracking/reading.h"

namespace indoorflow {

struct NoiseOptions {
  /// Probability of dropping a genuine reading (reader miss).
  double miss_rate = 0.0;
  /// Expected spurious readings injected per genuine reading; each ghost
  /// reports a uniformly random *other* device at the same tick.
  double ghost_rate = 0.0;
  uint64_t seed = 1;
};

/// Returns a corrupted copy of `readings`.
std::vector<RawReading> InjectNoise(const std::vector<RawReading>& readings,
                                    const Deployment& deployment,
                                    const NoiseOptions& options);

struct CleansingOptions {
  /// The object speed bound used for feasibility (the query Vmax).
  double vmax = 1.1;
  /// Slack added to each feasibility budget, in seconds of travel —
  /// absorbs sampling quantization.
  double slack_seconds = 2.0;
};

/// Whether an object seen at device `a` at `ta` can be seen at device `b`
/// at `tb` without exceeding vmax (range-to-range travel).
bool ReadingsFeasible(const Device& a, Timestamp ta, const Device& b,
                      Timestamp tb, const CleansingOptions& options);

/// Removes isolated readings that are speed-infeasible with both temporal
/// neighbors while the neighbors are feasible with each other. Returns the
/// cleansed stream (stably ordered by object, then time).
std::vector<RawReading> CleanseReadings(std::vector<RawReading> readings,
                                        const Deployment& deployment,
                                        const CleansingOptions& options);

}  // namespace indoorflow

#endif  // INDOORFLOW_TRACKING_CLEANSING_H_
