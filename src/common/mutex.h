// Annotated, rank-ordered mutex wrapper for Clang's thread-safety analysis
// and runtime deadlock-freedom checking.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability
// attributes, so locking through them is invisible to -Wthread-safety.
// This thin wrapper (the Abseil/Chromium idiom) makes acquire/release
// visible to the analysis while compiling to exactly a std::mutex under
// every compiler. All library code locks through Mutex/MutexLock; raw
// std::mutex is banned outside this file by tools/indoorflow_lint.py.
//
// Lock ranks. Every Mutex is constructed with a LockRank, and the global
// acquisition order is: a thread may acquire a mutex only while every
// mutex it already holds has a strictly HIGHER rank. Acquisition therefore
// descends the rank ladder
//
//   expo > serve > engine > profile_recorder > stream_shard > urcache
//        > rtree > executor > trace > metrics > log
//
// so the low ranks (log, metrics) are leaves that any critical section may
// enter, and the high ranks (engine, expo) are entry points that must be
// taken first. Two mutexes of the same rank must never be held together
// (the shards of the UR cache, for example, are same-ranked precisely
// because no code path nests them). Since every thread acquires along the
// same total order, no cycle of waiting threads can form: deadlock
// freedom by construction.
//
// The discipline is enforced three ways:
//   1. Statically: INDOORFLOW_ACQUIRED_BEFORE/AFTER annotations at every
//      Mutex declaration site tie it into the global order via the fence
//      objects in lock_order below (checked by Clang's analysis where
//      implemented, and self-documenting everywhere).
//   2. Dynamically: in debug and sanitizer builds, Lock() validates the
//      acquisition against a thread-local stack of held ranks and aborts
//      with a diagnostic on any out-of-order acquisition — so the test
//      suite (and the TSan CI job in particular) proves the order holds
//      on every exercised path. Release builds compile the validator out.
//   3. Lint: the `ranks` check in tools/indoorflow_lint.py rejects any
//      Mutex construction in src/ without an explicit LockRank.
//
// See docs/STATIC_ANALYSIS.md ("Lock ranks") for the rank table and how
// to add a ranked mutex.

#ifndef INDOORFLOW_COMMON_MUTEX_H_
#define INDOORFLOW_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

// The runtime rank validator runs wherever correctness matters more than
// raw speed: debug builds and every sanitizer build (the ASan/UBSan and
// TSan CI jobs compile with NDEBUG undefined, so they get it too). Release
// builds compile it out entirely — Lock()/Unlock() are exactly
// std::mutex::lock()/unlock().
#if !defined(NDEBUG)
#define INDOORFLOW_LOCK_RANK_VALIDATOR 1
#elif defined(__SANITIZE_THREAD__) || defined(__SANITIZE_ADDRESS__)
#define INDOORFLOW_LOCK_RANK_VALIDATOR 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer) || __has_feature(address_sanitizer)
#define INDOORFLOW_LOCK_RANK_VALIDATOR 1
#endif
#endif

namespace indoorflow {

/// The global lock-acquisition order, lowest rank first. A thread holding
/// a mutex of rank R may only acquire mutexes of rank strictly below R.
/// Keep this list in sync with the rank table in docs/STATIC_ANALYSIS.md
/// and the fences in lock_order below.
enum class LockRank : int {
  kLog = 0,              // src/common/log.cc sink (leaf: anything may log)
  kMetrics = 1,          // metrics registry + trace sink (src/common/metrics)
  kTrace = 2,            // per-request span trees + recent-trace ring
  kExecutor = 3,         // thread-pool queue + batch state (executor)
  kRtree = 4,            // src/index/dynamic_rtree
  kUrCache = 5,          // UR-cache shards / epoch shards / presence memos
  kStreamShard = 6,      // StreamingMonitor track-table shards
  kProfileRecorder = 7,  // query-profile flight recorder
  kEngine = 8,           // QueryEngine POI-tree cache
  kServe = 9,            // QueryService admission queue (src/serve)
  kExpo = 10,            // exposition server accept loop
};

/// "log", "metrics", ... (diagnostics; stable names for the rank table).
const char* LockRankName(LockRank rank);

namespace lock_order {

/// Phantom capabilities that pin the rank ladder into Clang's
/// acquired_before/after partial order. kFence<Rank> sits immediately
/// *after* every mutex of that rank in acquisition order, so a mutex of
/// rank R is declared ACQUIRED_BEFORE its own fence and ACQUIRED_AFTER the
/// fence of the next-higher rank. The fences chain top-down (expo fence
/// first), which makes any two differently-ranked mutexes transitively
/// ordered. The objects are empty tag types — never locked, zero runtime
/// cost; they exist purely as annotation targets.
class INDOORFLOW_CAPABILITY("lock_rank_fence") RankFence {};

inline RankFence kFenceExpo;
inline RankFence kFenceServe INDOORFLOW_ACQUIRED_AFTER(kFenceExpo);
inline RankFence kFenceEngine INDOORFLOW_ACQUIRED_AFTER(kFenceServe);
inline RankFence kFenceProfileRecorder
    INDOORFLOW_ACQUIRED_AFTER(kFenceEngine);
inline RankFence kFenceStreamShard
    INDOORFLOW_ACQUIRED_AFTER(kFenceProfileRecorder);
inline RankFence kFenceUrCache
    INDOORFLOW_ACQUIRED_AFTER(kFenceStreamShard);
inline RankFence kFenceRtree INDOORFLOW_ACQUIRED_AFTER(kFenceUrCache);
inline RankFence kFenceExecutor INDOORFLOW_ACQUIRED_AFTER(kFenceRtree);
inline RankFence kFenceTrace INDOORFLOW_ACQUIRED_AFTER(kFenceExecutor);
inline RankFence kFenceMetrics INDOORFLOW_ACQUIRED_AFTER(kFenceTrace);
inline RankFence kFenceLog INDOORFLOW_ACQUIRED_AFTER(kFenceMetrics);

}  // namespace lock_order

namespace lock_rank_internal {

/// Whether the runtime validator is compiled into this build (debug or
/// sanitizer builds). Tests use this to skip rank death tests in Release.
bool ValidatorEnabled();

/// Validates that acquiring a mutex of `rank` respects the descending
/// order against the calling thread's held stack, then records the hold.
/// Aborts with a diagnostic naming both ranks on violation.
void PushHeld(const void* mu, LockRank rank);

/// Removes `mu` from the calling thread's held stack.
void PopHeld(const void* mu);

}  // namespace lock_rank_internal

class CondVar;

class INDOORFLOW_CAPABILITY("mutex") Mutex {
 public:
  /// Every mutex names its place in the global acquisition order; there is
  /// deliberately no default — an unranked mutex cannot be proven
  /// deadlock-free (and is rejected by the `ranks` lint check anyway).
  explicit Mutex(LockRank rank) : rank_(rank) {}
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  LockRank rank() const { return rank_; }

  void Lock() INDOORFLOW_ACQUIRE() {
#if defined(INDOORFLOW_LOCK_RANK_VALIDATOR)
    lock_rank_internal::PushHeld(this, rank_);
#endif
    mu_.lock();
  }

  void Unlock() INDOORFLOW_RELEASE() {
#if defined(INDOORFLOW_LOCK_RANK_VALIDATOR)
    lock_rank_internal::PopHeld(this);
#endif
    mu_.unlock();
  }

 private:
  friend class CondVar;  // Wait() needs the underlying handle.
  std::mutex mu_;
  // Not const only so containing types stay usable as benchmark
  // DoNotOptimize outputs; nothing mutates it after construction.
  LockRank rank_;
};

/// RAII holder: locks for the enclosing scope, like std::lock_guard.
class INDOORFLOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) INDOORFLOW_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() INDOORFLOW_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with the annotated Mutex (the Abseil idiom:
/// Wait() is annotated as *requiring* the mutex because it reacquires it
/// before returning, so the caller's critical section is unbroken as far
/// as the static analysis is concerned). Spurious wakeups are possible;
/// always wait in a loop over the guarded predicate.
///
/// Rank note: Wait() releases and reacquires the underlying handle
/// directly, so the mutex stays on the waiter's held-rank stack for the
/// duration — conservative, and exactly right: code between Wait() calls
/// still runs inside the critical section as far as ordering goes.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (or spuriously);
  /// `mu` is reacquired before returning.
  void Wait(Mutex& mu) INDOORFLOW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership returns to the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_MUTEX_H_
