// Annotated mutex wrapper for Clang's thread-safety analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability
// attributes, so locking through them is invisible to -Wthread-safety.
// This thin wrapper (the Abseil/Chromium idiom) makes acquire/release
// visible to the analysis while compiling to exactly a std::mutex under
// every compiler. All library code locks through Mutex/MutexLock; raw
// std::mutex is banned outside this file by tools/indoorflow_lint.py.

#ifndef INDOORFLOW_COMMON_MUTEX_H_
#define INDOORFLOW_COMMON_MUTEX_H_

#include <mutex>

#include "src/common/thread_annotations.h"

namespace indoorflow {

class INDOORFLOW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() INDOORFLOW_ACQUIRE() { mu_.lock(); }
  void Unlock() INDOORFLOW_RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// RAII holder: locks for the enclosing scope, like std::lock_guard.
class INDOORFLOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) INDOORFLOW_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() INDOORFLOW_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_MUTEX_H_
