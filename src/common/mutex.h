// Annotated mutex wrapper for Clang's thread-safety analysis.
//
// libstdc++'s std::mutex and std::lock_guard carry no capability
// attributes, so locking through them is invisible to -Wthread-safety.
// This thin wrapper (the Abseil/Chromium idiom) makes acquire/release
// visible to the analysis while compiling to exactly a std::mutex under
// every compiler. All library code locks through Mutex/MutexLock; raw
// std::mutex is banned outside this file by tools/indoorflow_lint.py.

#ifndef INDOORFLOW_COMMON_MUTEX_H_
#define INDOORFLOW_COMMON_MUTEX_H_

#include <condition_variable>
#include <mutex>

#include "src/common/thread_annotations.h"

namespace indoorflow {

class CondVar;

class INDOORFLOW_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() INDOORFLOW_ACQUIRE() { mu_.lock(); }
  void Unlock() INDOORFLOW_RELEASE() { mu_.unlock(); }

 private:
  friend class CondVar;  // Wait() needs the underlying handle.
  std::mutex mu_;
};

/// RAII holder: locks for the enclosing scope, like std::lock_guard.
class INDOORFLOW_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) INDOORFLOW_ACQUIRE(mu) : mu_(mu) {
    mu_.Lock();
  }
  ~MutexLock() INDOORFLOW_RELEASE() { mu_.Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable paired with the annotated Mutex (the Abseil idiom:
/// Wait() is annotated as *requiring* the mutex because it reacquires it
/// before returning, so the caller's critical section is unbroken as far
/// as the static analysis is concerned). Spurious wakeups are possible;
/// always wait in a loop over the guarded predicate.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Atomically releases `mu` and blocks until notified (or spuriously);
  /// `mu` is reacquired before returning.
  void Wait(Mutex& mu) INDOORFLOW_REQUIRES(mu) {
    std::unique_lock<std::mutex> lock(mu.mu_, std::adopt_lock);
    cv_.wait(lock);
    lock.release();  // ownership returns to the caller's MutexLock
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_MUTEX_H_
