#include "src/common/mutex.h"

#include <cstdio>
#include <cstdlib>

namespace indoorflow {

const char* LockRankName(LockRank rank) {
  switch (rank) {
    case LockRank::kLog:
      return "log";
    case LockRank::kMetrics:
      return "metrics";
    case LockRank::kTrace:
      return "trace";
    case LockRank::kExecutor:
      return "executor";
    case LockRank::kRtree:
      return "rtree";
    case LockRank::kUrCache:
      return "urcache";
    case LockRank::kStreamShard:
      return "stream_shard";
    case LockRank::kProfileRecorder:
      return "profile_recorder";
    case LockRank::kEngine:
      return "engine";
    case LockRank::kServe:
      return "serve";
    case LockRank::kExpo:
      return "expo";
  }
  return "unknown";
}

namespace lock_rank_internal {

bool ValidatorEnabled() {
#if defined(INDOORFLOW_LOCK_RANK_VALIDATOR)
  return true;
#else
  return false;
#endif
}

#if defined(INDOORFLOW_LOCK_RANK_VALIDATOR)

namespace {

// Per-thread stack of held mutexes. Fixed capacity: the deepest sanctioned
// chain is expo -> ... -> log (11 ranks), so 16 leaves slack for transient
// same-thread re-entry bugs to still be reported rather than smash memory.
constexpr int kMaxHeld = 16;

struct HeldEntry {
  const void* mu;
  LockRank rank;
};

struct HeldStack {
  HeldEntry entries[kMaxHeld];
  int depth = 0;
};

thread_local HeldStack g_held;

// The abort path must not allocate or take any lock — in particular it
// must not go through the structured-log sink (rank log could itself be
// involved in the violation). Raw stderr + abort is the only safe exit.
[[noreturn]] void RankFail(const char* what, LockRank acquiring,
                           LockRank held) {
  std::fprintf(
      stderr,
      "indoorflow lock-rank violation: %s: acquiring rank %d (%s) while "
      "holding rank %d (%s); acquisition must descend the rank ladder "
      "(see src/common/mutex.h)\n",
      what, static_cast<int>(acquiring), LockRankName(acquiring),
      static_cast<int>(held), LockRankName(held));
  std::abort();
}

}  // namespace

void PushHeld(const void* mu, LockRank rank) {
  HeldStack& s = g_held;
  if (s.depth > 0) {
    const HeldEntry& top = s.entries[s.depth - 1];
    if (top.mu == mu) {
      RankFail("recursive acquisition of the same mutex", rank, top.rank);
    }
    // Descending-rank rule: every held mutex must outrank the new one.
    // Checking the top suffices because the stack is itself descending.
    if (static_cast<int>(rank) >= static_cast<int>(top.rank)) {
      RankFail("out-of-order acquisition", rank, top.rank);
    }
  }
  if (s.depth >= kMaxHeld) {
    std::fprintf(stderr,
                 "indoorflow lock-rank violation: more than %d mutexes "
                 "held by one thread\n",
                 kMaxHeld);
    std::abort();
  }
  s.entries[s.depth].mu = mu;
  s.entries[s.depth].rank = rank;
  ++s.depth;
}

void PopHeld(const void* mu) {
  HeldStack& s = g_held;
  // Unlock is normally LIFO (MutexLock), but tolerate out-of-order release
  // of a held mutex: ordering is constrained at acquisition time only.
  for (int i = s.depth - 1; i >= 0; --i) {
    if (s.entries[i].mu != mu) continue;
    for (int j = i; j + 1 < s.depth; ++j) s.entries[j] = s.entries[j + 1];
    --s.depth;
    return;
  }
  std::fprintf(stderr,
               "indoorflow lock-rank violation: unlocking a mutex this "
               "thread does not hold\n");
  std::abort();
}

#else  // !INDOORFLOW_LOCK_RANK_VALIDATOR

void PushHeld(const void*, LockRank) {}
void PopHeld(const void*) {}

#endif  // INDOORFLOW_LOCK_RANK_VALIDATOR

}  // namespace lock_rank_internal
}  // namespace indoorflow
