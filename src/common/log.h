// Structured, leveled logging for indoorflow.
//
// Library and tool code emits diagnostics through LogRecord instead of raw
// fprintf(stderr, ...): every record carries a level, a component tag, a
// message, and typed key/value fields, and the process-wide sink renders it
// either as one human-readable text line or as one JSON object per line
// (JSONL) — machine-parseable the way the metrics registry's DumpJson is.
// Raw stderr writes outside this file are banned by the `stderr` check in
// tools/indoorflow_lint.py (src/common/status.h's abort paths excepted).
//
// Usage (the record emits on destruction, at the end of the statement):
//
//   Log(LogLevel::kWarn, "streaming", "reading rejected")
//       .Field("object", reading.object_id)
//       .Field("reason", status.ToString());
//
// Configuration is environment-driven, mirroring INDOORFLOW_TRACE:
//
//   INDOORFLOW_LOG_LEVEL   debug|info|warn|error   (default: info)
//   INDOORFLOW_LOG_FORMAT  text|json               (default: text)
//   INDOORFLOW_LOG_FILE    path                    (default: stderr)
//
// Thread safety: the level gate is one relaxed atomic load; record assembly
// is thread-local by construction, and the sink serializes whole lines
// under the annotated Mutex, so concurrent records never interleave
// (tests/log_test.cc stresses this under the TSan CI job).

#ifndef INDOORFLOW_COMMON_LOG_H_
#define INDOORFLOW_COMMON_LOG_H_

#include <cstdint>
#include <string>
#include <utility>

#include "src/common/status.h"

namespace indoorflow {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

/// "debug", "info", "warn", "error".
const char* LogLevelName(LogLevel level);

/// Parses a level name (case-insensitive); InvalidArgument otherwise.
Result<LogLevel> ParseLogLevel(const std::string& name);

/// Whether records at `level` currently pass the sink's threshold. One
/// relaxed atomic load — cheap enough to gate hot-path logging.
bool LogEnabled(LogLevel level);

/// Sets the minimum emitted level (records below it are dropped).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

enum class LogFormat : int {
  kText = 0,  // "2026-08-05T12:00:00Z WARN [component] message k=v ..."
  kJson = 1,  // {"ts":"...","level":"warn","component":"...","msg":...}
};

void SetLogFormat(LogFormat format);
LogFormat GetLogFormat();

/// Redirects log output from stderr to `path` (append). NotFound when the
/// file cannot be opened; the previous sink stays active on failure.
Status SetLogFile(const std::string& path);

/// Applies INDOORFLOW_LOG_LEVEL / INDOORFLOW_LOG_FORMAT /
/// INDOORFLOW_LOG_FILE. Unset variables leave the current configuration
/// untouched; malformed values are ignored. Tools and examples call this at
/// startup, making the sink a runtime flag.
void InitLoggingFromEnv();

/// One structured log record. Build it through Log() below; fields append
/// in call order and the record is rendered and written exactly once, when
/// the temporary dies at the end of the full expression.
class LogRecord {
 public:
  LogRecord(LogLevel level, const char* component, std::string message);
  LogRecord(LogRecord&& other) noexcept;
  LogRecord(const LogRecord&) = delete;
  LogRecord& operator=(const LogRecord&) = delete;
  LogRecord& operator=(LogRecord&&) = delete;
  ~LogRecord();

  LogRecord& Field(const char* key, const std::string& value) &;
  LogRecord& Field(const char* key, const char* value) &;
  LogRecord& Field(const char* key, int64_t value) &;
  LogRecord& Field(const char* key, double value) &;
  LogRecord& Field(const char* key, bool value) &;

  // rvalue overloads so Log(...).Field(...) chains compile.
  template <typename T>
  LogRecord&& Field(const char* key, T&& value) && {
    Field(key, std::forward<T>(value));
    return std::move(*this);
  }

 private:
  void AddField(const char* key, std::string json_value,
                std::string text_value);

  bool enabled_;
  LogLevel level_;
  const char* component_;
  std::string message_;
  // Pre-rendered field fragments (",\"k\":v" / " k=v"), so emission under
  // the sink lock is a single concatenation + write.
  std::string json_fields_;
  std::string text_fields_;
};

/// Entry point: Log(level, component, message).Field(...).Field(...);
inline LogRecord Log(LogLevel level, const char* component,
                     std::string message) {
  return LogRecord(level, component, std::move(message));
}

/// Appends `value` to `out` with JSON string escaping applied (quotes,
/// backslashes, control characters). Shared by the log sink and the
/// profile/metrics JSON writers.
void AppendJsonEscaped(const std::string& value, std::string* out);

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_LOG_H_
