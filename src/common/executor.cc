#include "src/common/executor.h"

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <memory>
#include <utility>

#include "src/common/log.h"
#include "src/common/metrics.h"
#include "src/common/trace.h"

namespace indoorflow {
namespace {

// Registry handles, resolved once (function-local static) so the hot path
// never takes the registry lock.
struct PoolMetrics {
  Counter& tasks;
  Gauge& queue_depth;
  Histogram& task_wait_us;
};

PoolMetrics& Metrics() {
  auto& reg = MetricsRegistry::Default();
  static PoolMetrics m{reg.counter("executor.tasks"),
                       reg.gauge("executor.queue_depth"),
                       reg.histogram("executor.task_wait_us")};
  return m;
}

int DefaultPoolSize() {
  return Executor::ThreadsFromEnv(std::getenv("INDOORFLOW_THREADS"));
}

// One ParallelFor invocation's shared bookkeeping. Lives in a shared_ptr
// because helper tasks may still sit in the pool queue after the batch
// completes (they claim no lane and exit, but must find valid memory).
struct BatchState {
  Mutex mu INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceRtree)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceExecutor) =
          Mutex(LockRank::kExecutor);
  CondVar done_cv;
  size_t n = 0;
  size_t lanes = 0;
  size_t next_lane INDOORFLOW_GUARDED_BY(mu) = 0;
  size_t pending INDOORFLOW_GUARDED_BY(mu) = 0;
  std::function<void(size_t)> fn;
  // Request span the lanes parent under (null = untraced). Set before
  // the helpers are enqueued and read-only afterwards; the caller's
  // ParallelFor blocks until every lane finishes, so it outlives them.
  const Span* span_parent = nullptr;
};

// Claims strided lanes off `state` until none remain. Runs on the calling
// thread *and* on pool workers; the caller's participation is what makes
// nested ParallelFor deadlock-free (progress never depends on a free
// worker).
void RunLanes(BatchState& state) {
  for (;;) {
    size_t lane;
    {
      MutexLock lock(state.mu);
      if (state.next_lane >= state.lanes) return;
      lane = state.next_lane++;
    }
    if (state.span_parent != nullptr) {
      // One child span per lane; recording happens outside the batch
      // lock (trace rank sits below executor, but the strided loop runs
      // unlocked anyway).
      Span lane_span(state.span_parent, "lane " + std::to_string(lane));
      for (size_t i = lane; i < state.n; i += state.lanes) state.fn(i);
    } else {
      for (size_t i = lane; i < state.n; i += state.lanes) state.fn(i);
    }
    MutexLock lock(state.mu);
    if (--state.pending == 0) state.done_cv.NotifyAll();
  }
}

}  // namespace

Executor& Executor::Default() {
  // Function-local static: constructed on first use, destroyed (workers
  // joined) at static teardown, so sanitizers see no leaked threads.
  static Executor pool(DefaultPoolSize());
  return pool;
}

int Executor::ResolveThreads(int threads) {
  if (threads > 0) return std::min(threads, kMaxThreads);
  unsigned hw = std::thread::hardware_concurrency();
  int resolved = hw == 0 ? 1 : static_cast<int>(hw);
  return std::min(resolved, kMaxThreads);
}

int Executor::ThreadsFromEnv(const char* value) {
  if (value == nullptr || *value == '\0') return ResolveThreads(0);
  errno = 0;
  char* end = nullptr;
  long parsed = std::strtol(value, &end, 10);
  // Strict parse: the whole string must be one base-10 integer. "8x",
  // "abc", "2.5", negatives, and out-of-long values all fall back to the
  // hardware default — loudly, since a mistyped env var that silently
  // changes the pool size is exactly the bug this guards against.
  if (end == value || *end != '\0' || errno == ERANGE || parsed < 0) {
    Log(LogLevel::kWarn, "executor",
        "ignoring invalid INDOORFLOW_THREADS; using hardware concurrency")
        .Field("value", value);
    return ResolveThreads(0);
  }
  // "0" is an explicit request for hardware concurrency; positive values
  // clamp to kMaxThreads like every other threads knob.
  return ResolveThreads(static_cast<int>(
      std::min(parsed, static_cast<long>(kMaxThreads))));
}

Executor::Executor(int threads) : worker_count_(ResolveThreads(threads)) {
  workers_.reserve(static_cast<size_t>(worker_count_));
  for (int i = 0; i < worker_count_; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

Executor::~Executor() {
  {
    MutexLock lock(mu_);
    shutdown_ = true;
  }
  work_cv_.NotifyAll();
  for (std::thread& t : workers_) t.join();
}

void Executor::Submit(std::function<void()> fn) {
  Enqueue(std::move(fn));
}

void Executor::Enqueue(std::function<void()> fn) {
  {
    MutexLock lock(mu_);
    queue_.push_back(Task{std::move(fn), MonotonicNowNs()});
    Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
  }
  work_cv_.NotifyOne();
}

void Executor::WorkerLoop() {
  for (;;) {
    Task task;
    {
      MutexLock lock(mu_);
      while (queue_.empty() && !shutdown_) work_cv_.Wait(mu_);
      if (queue_.empty()) return;  // shutdown with a drained queue
      task = std::move(queue_.front());
      queue_.pop_front();
      Metrics().queue_depth.Set(static_cast<double>(queue_.size()));
    }
    const int64_t start_ns = MonotonicNowNs();
    Metrics().task_wait_us.Record(
        static_cast<double>(start_ns - task.enqueue_ns) / 1000.0);
    task.fn();
    Metrics().tasks.Add(1);
    if (TracingEnabled()) {
      const int64_t end_ns = MonotonicNowNs();
      EmitTraceEvent("executor.task", start_ns / 1000,
                     (end_ns - start_ns) / 1000);
    }
  }
}

int Executor::ParallelFor(size_t n, int parallelism,
                          const std::function<void(size_t)>& fn,
                          const Span* span_parent) {
  const size_t want =
      parallelism > 0 ? static_cast<size_t>(parallelism) : size_t{1};
  const size_t lanes = std::min(want, n);
  if (lanes <= 1) {
    if (span_parent != nullptr && n > 0) {
      Span lane_span(span_parent, "lane 0");
      for (size_t i = 0; i < n; ++i) fn(i);
    } else {
      for (size_t i = 0; i < n; ++i) fn(i);
    }
    return 1;
  }
  auto state = std::make_shared<BatchState>();
  state->n = n;
  state->lanes = lanes;
  state->fn = fn;
  state->span_parent = span_parent;
  {
    MutexLock lock(state->mu);
    state->pending = lanes;
  }
  // The caller covers one lane itself, so at most lanes - 1 helpers are
  // useful; beyond worker_count_ they would only queue up behind each
  // other.
  const int helpers =
      std::min(static_cast<int>(lanes) - 1, worker_count_);
  for (int i = 0; i < helpers; ++i) {
    Enqueue([state] { RunLanes(*state); });
  }
  RunLanes(*state);
  MutexLock lock(state->mu);
  while (state->pending > 0) state->done_cv.Wait(state->mu);
  return static_cast<int>(lanes);
}

}  // namespace indoorflow
