// Request-scoped tracing: propagated span trees behind a ranked Mutex.
//
// Where the Chrome-trace sink in src/common/metrics.h is process-global
// (every event from every thread lands in one file), this subsystem is
// *per request*: a TraceContext (W3C trace-context identifiers plus a
// head-sampling decision) rides the existing QueryControl/QueryContext
// plumbing from the HTTP boundary through the engine's query methods,
// executor lanes, and the UR cache, and the RAII Span recorder builds a
// span tree for exactly that request. Completed traces land in a bounded
// ring (TraceRing) served as JSON on /traces/recent, and are optionally
// replayed into the Chrome-trace JSONL sink so a single request can be
// inspected in chrome://tracing next to the ambient process events.
//
// Sampling: the head decision is made once, at trace creation. Unsampled
// requests still get identifiers (so responses and the canonical query
// log carry a join key), but no Trace object is allocated — every Span
// operation on the null trace is an inert pointer check, which keeps the
// disabled path near-free (BM_TraceOverhead pins this down).
//
// Thread safety: a Trace's span list is guarded by a Mutex of rank
// LockRank::kTrace, which sits below the executor rank so lanes and
// engine code may record spans while holding their own locks. The
// TraceRing uses its own kTrace mutex; the two are never held together
// (ring serialization snapshots shared_ptrs first, then locks each trace
// in turn). All recording outside src/common/trace.* must go through the
// Span/Trace API — raw emission elsewhere is flagged by the `spans`
// check in tools/indoorflow_lint.py.

#ifndef INDOORFLOW_COMMON_TRACE_H_
#define INDOORFLOW_COMMON_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace indoorflow {

/// W3C trace-context identifiers plus the head-sampling decision.
/// trace id is 128 bits (high/low halves); ids of zero are invalid per
/// the spec.
struct TraceContext {
  uint64_t trace_id_high = 0;
  uint64_t trace_id_low = 0;
  uint64_t span_id = 0;
  bool sampled = false;

  bool valid() const {
    return (trace_id_high | trace_id_low) != 0 && span_id != 0;
  }

  /// 32 lowercase hex characters (the W3C trace-id field).
  std::string trace_id_hex() const;
  /// 16 lowercase hex characters (the W3C parent-id field).
  std::string span_id_hex() const;

  /// "00-<trace_id_hex>-<span_id_hex>-<flags>"; flags bit 0 is sampled.
  std::string ToTraceparent() const;

  /// Parses a W3C `traceparent` header value. Returns false (leaving
  /// *out untouched) unless the value is exactly the version-"00"
  /// layout: 2-16-8-1 bytes as lowercase hex joined by '-', with a
  /// non-zero trace id and parent id.
  static bool FromTraceparent(const std::string& header, TraceContext* out);
};

/// Fresh identifiers + the head-sampling decision: sampled when the low
/// 64 bits of the (uniformly random) trace id fall below sample * 2^64,
/// so the decision is deterministic in the id and honored by any
/// downstream holder of the same context.
TraceContext NewTraceContext(double sample);

/// A fresh non-zero span id (thread-local splitmix64; no locks).
uint64_t NextSpanId();

class Trace;

/// RAII span recorder. A Span constructed from a null parent (or default
/// constructed) is inert: every operation is a pointer check and nothing
/// is recorded, which is the unsampled fast path. The handle is
/// non-copyable and non-movable; pass it by pointer (`Span*`), the same
/// way QueryControl and QueryContext carry it.
class Span {
 public:
  Span() = default;

  /// Opens the trace's root span (id = context().span_id, parented to
  /// the remote span when the context was propagated in).
  Span(Trace* trace, std::string name);

  /// Opens a child of `parent`; inert when `parent` is null or inert.
  Span(const Span* parent, std::string name);

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span();

  /// Closes the span (idempotent; the destructor calls it).
  void End();

  /// Appends a timestamped event to this span (e.g. "urcache.hit").
  void AddEvent(const char* name) const;

  /// Records an already-measured child span, for phases timed outside
  /// the RAII scope (queue wait, QueryStats phase deltas).
  void RecordChild(std::string name, int64_t start_ns, int64_t dur_ns) const;

  bool active() const { return trace_ != nullptr; }
  Trace* trace() const { return trace_; }
  uint64_t id() const { return id_; }

  /// The owning trace's id as 32 hex chars; "" when inert.
  std::string trace_id_hex() const;

 private:
  Trace* trace_ = nullptr;
  uint64_t id_ = 0;
  bool ended_ = false;
};

/// One request's span tree. Create on the heap (shared_ptr) when the
/// head-sampling decision is positive; hand `Push` the pointer once the
/// request completes.
class Trace {
 public:
  /// Bounds keep a hostile or pathological request from growing a trace
  /// without limit; overflow increments drop counters that ToJson
  /// reports.
  static constexpr size_t kMaxSpans = 256;
  static constexpr size_t kMaxEvents = 1024;

  /// `remote_parent_id` is the span id from an injected traceparent
  /// header (0 when the trace originated here); the root span is
  /// parented to it.
  explicit Trace(const TraceContext& context, uint64_t remote_parent_id = 0);
  Trace(const Trace&) = delete;
  Trace& operator=(const Trace&) = delete;

  const TraceContext& context() const { return context_; }
  uint64_t remote_parent_id() const { return remote_parent_id_; }
  int64_t start_ns() const { return start_ns_; }

  /// Marks the trace complete and, when the Chrome-trace sink is active
  /// (StartTracing / INDOORFLOW_TRACE), replays every span into it so
  /// per-request trees appear alongside the ambient process events.
  void Finish() INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// {"trace_id":..., "duration_us":..., "spans":[<nested tree>], ...}.
  /// Spans nest under their parents; events attach to their span.
  std::string ToJson() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// Number of recorded spans (tests).
  size_t span_count() const INDOORFLOW_LOCKS_EXCLUDED(mu_);
  int64_t dropped_spans() const INDOORFLOW_LOCKS_EXCLUDED(mu_);
  int64_t dropped_events() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

  // Recording entry points used by Span. `id` 0 means "allocate one".
  // Returns the span id actually used, or 0 when the span was dropped.
  uint64_t StartSpan(uint64_t id, uint64_t parent_id, std::string name,
                     int64_t start_ns) INDOORFLOW_LOCKS_EXCLUDED(mu_);
  void EndSpan(uint64_t id, int64_t end_ns) INDOORFLOW_LOCKS_EXCLUDED(mu_);
  void RecordSpan(uint64_t parent_id, std::string name, int64_t start_ns,
                  int64_t dur_ns) INDOORFLOW_LOCKS_EXCLUDED(mu_);
  void AddEvent(uint64_t span_id, const char* name)
      INDOORFLOW_LOCKS_EXCLUDED(mu_);

 private:
  struct SpanRecord {
    uint64_t id = 0;
    uint64_t parent_id = 0;
    std::string name;
    int64_t start_ns = 0;
    int64_t dur_ns = -1;  // -1 while open
  };
  struct EventRecord {
    uint64_t span_id = 0;
    const char* name = nullptr;  // string literals only (API contract)
    int64_t ts_ns = 0;
  };

  const TraceContext context_;
  const uint64_t remote_parent_id_;
  const int64_t start_ns_;

  mutable Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceExecutor)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceTrace) =
          Mutex(LockRank::kTrace);
  std::vector<SpanRecord> spans_ INDOORFLOW_GUARDED_BY(mu_);
  std::vector<EventRecord> events_ INDOORFLOW_GUARDED_BY(mu_);
  int64_t dropped_spans_ INDOORFLOW_GUARDED_BY(mu_) = 0;
  int64_t dropped_events_ INDOORFLOW_GUARDED_BY(mu_) = 0;
  int64_t finish_ns_ INDOORFLOW_GUARDED_BY(mu_) = 0;
};

/// Bounded ring of recently completed traces; the /traces/recent
/// endpoint serializes it. Push is O(1) and drops the oldest trace once
/// `capacity` is reached.
class TraceRing {
 public:
  static constexpr size_t kDefaultCapacity = 32;

  /// The process-wide ring (never destroyed).
  static TraceRing& Default();

  explicit TraceRing(size_t capacity = kDefaultCapacity);
  TraceRing(const TraceRing&) = delete;
  TraceRing& operator=(const TraceRing&) = delete;

  void Push(std::shared_ptr<const Trace> trace)
      INDOORFLOW_LOCKS_EXCLUDED(mu_);

  /// {"capacity":N,"total":N,"traces":[<newest first>]}.
  std::string ToJson() const INDOORFLOW_LOCKS_EXCLUDED(mu_);

  size_t size() const INDOORFLOW_LOCKS_EXCLUDED(mu_);
  /// Drops every held trace (tests isolate themselves with this).
  void Clear() INDOORFLOW_LOCKS_EXCLUDED(mu_);

 private:
  const size_t capacity_;
  mutable Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceExecutor)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceTrace) =
          Mutex(LockRank::kTrace);
  std::vector<std::shared_ptr<const Trace>> ring_ INDOORFLOW_GUARDED_BY(mu_);
  size_t next_ INDOORFLOW_GUARDED_BY(mu_) = 0;
  int64_t total_ INDOORFLOW_GUARDED_BY(mu_) = 0;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_TRACE_H_
