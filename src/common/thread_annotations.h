// Clang thread-safety analysis annotations.
//
// These macros attach lock invariants to shared state so that Clang's
// -Wthread-safety analysis (enabled as -Werror=thread-safety by the top-level
// CMakeLists under Clang) proves at compile time that every access happens
// under the right mutex. Under GCC and other compilers they expand to
// nothing; the dynamic check is the ThreadSanitizer CI job.
//
// Usage:
//
//   class Monitor {
//    public:
//     void Ingest(Reading r) INDOORFLOW_LOCKS_EXCLUDED(mu_);
//    private:
//     void RebuildLocked() INDOORFLOW_REQUIRES(mu_);
//     mutable Mutex mu_;  // src/common/mutex.h
//     std::unordered_map<ObjectId, Track> tracks_ INDOORFLOW_GUARDED_BY(mu_);
//   };
//
// The vocabulary mirrors absl/base/thread_annotations.h so the idiom is
// recognizable; only the spellings the codebase needs are defined.

#ifndef INDOORFLOW_COMMON_THREAD_ANNOTATIONS_H_
#define INDOORFLOW_COMMON_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define INDOORFLOW_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define INDOORFLOW_THREAD_ANNOTATION_(x)
#endif

/// The annotated lock class. Raw std::mutex carries no capability
/// attribute under libstdc++, so the repo locks through the annotated
/// wrapper in src/common/mutex.h instead.
#define INDOORFLOW_CAPABILITY(name) \
  INDOORFLOW_THREAD_ANNOTATION_(capability(name))

/// RAII lock holder (the wrapper's MutexLock): acquires in the
/// constructor, releases in the destructor.
#define INDOORFLOW_SCOPED_CAPABILITY \
  INDOORFLOW_THREAD_ANNOTATION_(scoped_lockable)

/// Data member that may only be read or written while holding `mu`.
#define INDOORFLOW_GUARDED_BY(mu) \
  INDOORFLOW_THREAD_ANNOTATION_(guarded_by(mu))

/// Pointer member whose *pointee* is guarded by `mu` (the pointer itself is
/// not).
#define INDOORFLOW_PT_GUARDED_BY(mu) \
  INDOORFLOW_THREAD_ANNOTATION_(pt_guarded_by(mu))

/// Function that must be called with `mu` held (private "…Locked" helpers).
#define INDOORFLOW_REQUIRES(...) \
  INDOORFLOW_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function that must NOT be called with `mu` held (public entry points that
/// take the lock themselves; catches self-deadlock).
#define INDOORFLOW_LOCKS_EXCLUDED(...) \
  INDOORFLOW_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// Function that acquires / releases `mu` and returns with it held / free.
#define INDOORFLOW_ACQUIRE(...) \
  INDOORFLOW_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))
#define INDOORFLOW_RELEASE(...) \
  INDOORFLOW_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// Lock-order edges: this capability is always acquired before / after the
/// named ones. Clang checks these under -Wthread-safety-beta; everywhere
/// else they document the lock-rank ladder (src/common/mutex.h) at the
/// declaration site, and the debug-build runtime validator enforces it.
#define INDOORFLOW_ACQUIRED_BEFORE(...) \
  INDOORFLOW_THREAD_ANNOTATION_(acquired_before(__VA_ARGS__))
#define INDOORFLOW_ACQUIRED_AFTER(...) \
  INDOORFLOW_THREAD_ANNOTATION_(acquired_after(__VA_ARGS__))

/// Escape hatch: turns the analysis off for one function. Every use must
/// carry a comment explaining why the invariant holds anyway.
#define INDOORFLOW_NO_THREAD_SAFETY_ANALYSIS \
  INDOORFLOW_THREAD_ANNOTATION_(no_thread_safety_analysis)

#endif  // INDOORFLOW_COMMON_THREAD_ANNOTATIONS_H_
