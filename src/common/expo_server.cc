#include "src/common/expo_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "src/common/log.h"

namespace indoorflow {

namespace {

constexpr int kPollTimeoutMs = 200;
// Caps: the header block is tiny for every legitimate client, and request
// bodies are small JSON documents (the /query/* schema); anything larger
// is rejected with 400 rather than buffered.
constexpr size_t kMaxHeaderBytes = 8192;
constexpr size_t kMaxBodyBytes = 65536;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 400:
      return "HTTP/1.1 400 Bad Request\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed\r\n";
    case 503:
      return "HTTP/1.1 503 Service Unavailable\r\n";
    case 504:
      return "HTTP/1.1 504 Gateway Timeout\r\n";
    default:
      return "HTTP/1.1 500 Internal Server Error\r\n";
  }
}

std::string BuildResponse(int code, const std::string& content_type,
                          const std::string& body) {
  std::string response = StatusLine(code);
  response.append("Content-Type: ");
  response.append(content_type);
  response.append("\r\nContent-Length: ");
  response.append(std::to_string(body.size()));
  response.append("\r\nConnection: close\r\n\r\n");
  response.append(body);
  return response;
}

// Writes the whole response, resuming across partial writes and EINTR.
// MSG_NOSIGNAL keeps a disconnecting peer from raising SIGPIPE; every
// other error (EPIPE, ECONNRESET, the send-timeout's EAGAIN) means the
// response can't be completed, so the connection is abandoned rather than
// spun on; returns false then (best-effort callers may ignore it).
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not failed: resume
      return false;                  // peer gone or stalled past timeout
    }
    if (n == 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

// The value of header `name` (lowercase) in a raw header block, trimmed of
// surrounding whitespace, or "" when absent. Field names are
// case-insensitive (RFC 9110).
std::string HeaderValue(const std::string& headers, const std::string& name) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string::npos) eol = headers.size();
    const std::string line = headers.substr(pos, eol - pos);
    const size_t colon = line.find(':');
    if (colon != std::string::npos) {
      std::string field = line.substr(0, colon);
      for (char& c : field) {
        c = static_cast<char>(
            std::tolower(static_cast<unsigned char>(c)));
      }
      if (field == name) {
        size_t begin = colon + 1;
        size_t end = line.size();
        while (begin < end &&
               std::isspace(static_cast<unsigned char>(line[begin]))) {
          ++begin;
        }
        while (end > begin &&
               std::isspace(static_cast<unsigned char>(line[end - 1]))) {
          --end;
        }
        return line.substr(begin, end - begin);
      }
    }
    pos = eol + 2;
  }
  return std::string();
}

// The Content-Length value from a raw header block, or -1 when absent or
// malformed.
long ContentLength(const std::string& headers) {
  const std::string value = HeaderValue(headers, "content-length");
  if (value.empty()) return 0;  // no body
  errno = 0;
  char* end = nullptr;
  const long parsed = std::strtol(value.c_str(), &end, 10);
  if (errno != 0 || end == value.c_str() || parsed < 0) return -1;
  return parsed;
}

}  // namespace

ExpoServer::Exchange::~Exchange() {
  if (!responded_) {
    // A handler dropped the exchange without answering (a bug or a shed
    // path that forgot): close the conversation cleanly instead of
    // leaving the client to its timeout.
    SendAll(fd_, BuildResponse(
                     500, "application/json",
                     "{\"status\":\"error\",\"message\":"
                     "\"handler sent no response\"}\n"));
  }
  close(fd_);
}

void ExpoServer::Exchange::Respond(const HttpResponse& response) {
  if (responded_) return;
  responded_ = true;
  SendAll(fd_, BuildResponse(response.code, response.content_type,
                             response.body));
}

ExpoServer::~ExpoServer() { Stop(); }

void ExpoServer::Handle(std::string path, std::string content_type,
                        std::function<std::string()> producer) {
  if (listen_fd_ >= 0) return;  // running: route table is read-only
  Route route;
  route.path = std::move(path);
  route.content_type = std::move(content_type);
  route.producer = std::move(producer);
  routes_.push_back(std::move(route));
}

void ExpoServer::HandleRequest(std::string path, RequestHandler handler) {
  if (listen_fd_ >= 0) return;  // running: route table is read-only
  Route route;
  route.path = std::move(path);
  route.handler = std::move(handler);
  routes_.push_back(std::move(route));
}

Status ExpoServer::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("expo server already running");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") +
                            std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  if (listen(fd, 64) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("getsockname(): " + err);
  }

  {
    MutexLock lock(mu_);
    stopping_ = false;
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  thread_ = std::thread(&ExpoServer::AcceptLoop, this);
  Log(LogLevel::kInfo, "expo", "exposition server listening")
      .Field("port", static_cast<int64_t>(port_))
      .Field("routes", static_cast<int64_t>(routes_.size()));
  return Status::OK();
}

void ExpoServer::Stop() {
  if (listen_fd_ < 0) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void ExpoServer::AcceptLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
    }
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound both directions so one slow or stalled client can't wedge the
    // single-threaded accept loop: recv/send past the deadline fail with
    // EAGAIN and the connection is dropped. (For dispatched requests the
    // send timeout bounds each send() block, not the time until the
    // worker responds — that is the request deadline's job.)
    timeval io_timeout{};
    io_timeout.tv_sec = 5;
    setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
               sizeof(io_timeout));
    setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
               sizeof(io_timeout));
    // The Exchange owns `conn` from here: every exit path below responds
    // (or drops silently for non-HTTP garbage) and the destructor closes.
    ServeConnection(conn);
  }
}

void ExpoServer::ServeConnection(int fd) {
  ExchangePtr exchange(new Exchange(fd));
  // Read until the end of the request headers (or the size cap). Scrape
  // clients send the whole GET in one segment, so this is rarely >1 read.
  std::string data;
  char buf[2048];
  size_t header_end = std::string::npos;
  while (data.size() < kMaxHeaderBytes + kMaxBodyBytes) {
    header_end = data.find("\r\n\r\n");
    if (header_end != std::string::npos) break;
    if (data.size() >= kMaxHeaderBytes) break;
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;  // interrupted read: resume
    if (n <= 0) break;  // peer closed, errored, or timed out
    data.append(buf, static_cast<size_t>(n));
  }
  if (header_end == std::string::npos) {
    // Not HTTP (or oversized headers); drop without a response, as a
    // scrape endpoint always has. The Exchange still closes the fd —
    // marking it responded suppresses the destructor's 500.
    exchange->responded_ = true;
    return;
  }
  const size_t line_end = data.find("\r\n");
  // Request line: METHOD SP PATH SP VERSION.
  const std::string line = data.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    exchange->responded_ = true;
    return;
  }
  HttpRequest request;
  request.method = line.substr(0, sp1);
  request.path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t qmark = request.path.find('?');
  if (qmark != std::string::npos) {
    request.query = request.path.substr(qmark + 1);
    request.path.resize(qmark);
  }

  const std::string headers =
      data.substr(line_end + 2, header_end - line_end - 2);
  request.traceparent = HeaderValue(headers, "traceparent");

  // Body (POST): bounded by Content-Length, which must be sane.
  const long want_body = ContentLength(headers);
  if (want_body < 0 || want_body > static_cast<long>(kMaxBodyBytes)) {
    exchange->Respond(HttpResponse{
        400, "application/json",
        "{\"status\":\"error\",\"message\":\"bad content-length\"}\n"});
    return;
  }
  const size_t body_start = header_end + 4;
  while (data.size() - body_start < static_cast<size_t>(want_body)) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    data.append(buf, static_cast<size_t>(n));
  }
  if (data.size() - body_start < static_cast<size_t>(want_body)) {
    exchange->responded_ = true;  // truncated body: drop like non-HTTP
    return;
  }
  request.body = data.substr(body_start, static_cast<size_t>(want_body));

  for (const Route& route : routes_) {
    if (route.path != request.path) continue;
    if (route.handler) {
      if (request.method != "GET" && request.method != "POST") {
        exchange->Respond(HttpResponse{
            405, "application/json",
            "{\"status\":\"error\",\"message\":\"method not allowed\"}"
            "\n"});
        return;
      }
      route.handler(request, std::move(exchange));
      return;
    }
    if (request.method != "GET") {
      exchange->Respond(HttpResponse{405, "text/plain; charset=utf-8",
                                     "method not allowed\n"});
      return;
    }
    exchange->Respond(
        HttpResponse{200, route.content_type, route.producer()});
    return;
  }
  exchange->Respond(HttpResponse{404, "text/plain; charset=utf-8",
                                 "not found\n"});
}

}  // namespace indoorflow
