#include "src/common/expo_server.h"

#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "src/common/log.h"

namespace indoorflow {

namespace {

constexpr int kPollTimeoutMs = 200;
constexpr size_t kMaxRequestBytes = 8192;

std::string StatusLine(int code) {
  switch (code) {
    case 200:
      return "HTTP/1.1 200 OK\r\n";
    case 404:
      return "HTTP/1.1 404 Not Found\r\n";
    case 405:
      return "HTTP/1.1 405 Method Not Allowed\r\n";
    default:
      return "HTTP/1.1 500 Internal Server Error\r\n";
  }
}

std::string BuildResponse(int code, const std::string& content_type,
                          const std::string& body) {
  std::string response = StatusLine(code);
  response.append("Content-Type: ");
  response.append(content_type);
  response.append("\r\nContent-Length: ");
  response.append(std::to_string(body.size()));
  response.append("\r\nConnection: close\r\n\r\n");
  response.append(body);
  return response;
}

// Writes the whole response, resuming across partial writes and EINTR.
// MSG_NOSIGNAL keeps a disconnecting peer from raising SIGPIPE; every
// other error (EPIPE, ECONNRESET, the send-timeout's EAGAIN) means the
// response can't be completed, so the connection is abandoned rather than
// spun on; returns false then (best-effort callers may ignore it).
bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = send(fd, data.data() + sent, data.size() - sent,
                           MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;  // interrupted, not failed: resume
      return false;                  // peer gone or stalled past timeout
    }
    if (n == 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

}  // namespace

ExpoServer::~ExpoServer() { Stop(); }

void ExpoServer::Handle(std::string path, std::string content_type,
                        std::function<std::string()> producer) {
  if (listen_fd_ >= 0) return;  // running: route table is read-only
  routes_.push_back(Route{std::move(path), std::move(content_type),
                          std::move(producer)});
}

Status ExpoServer::Start(int port) {
  if (listen_fd_ >= 0) {
    return Status::FailedPrecondition("expo server already running");
  }
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket(): ") +
                            std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("bind(127.0.0.1:" + std::to_string(port) +
                            "): " + err);
  }
  if (listen(fd, 8) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("listen(): " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const std::string err = std::strerror(errno);
    close(fd);
    return Status::Internal("getsockname(): " + err);
  }

  {
    MutexLock lock(mu_);
    stopping_ = false;
  }
  listen_fd_ = fd;
  port_ = static_cast<int>(ntohs(bound.sin_port));
  thread_ = std::thread(&ExpoServer::AcceptLoop, this);
  Log(LogLevel::kInfo, "expo", "exposition server listening")
      .Field("port", static_cast<int64_t>(port_))
      .Field("routes", static_cast<int64_t>(routes_.size()));
  return Status::OK();
}

void ExpoServer::Stop() {
  if (listen_fd_ < 0) return;
  {
    MutexLock lock(mu_);
    stopping_ = true;
  }
  if (thread_.joinable()) thread_.join();
  close(listen_fd_);
  listen_fd_ = -1;
  port_ = 0;
}

void ExpoServer::AcceptLoop() {
  for (;;) {
    {
      MutexLock lock(mu_);
      if (stopping_) return;
    }
    pollfd pfd{};
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    const int ready = poll(&pfd, 1, kPollTimeoutMs);
    if (ready <= 0) continue;  // timeout or EINTR: re-check stopping_
    const int conn = accept(listen_fd_, nullptr, nullptr);
    if (conn < 0) continue;
    // Bound both directions so one slow or stalled scrape client can't
    // wedge the single-threaded accept loop: recv/send past the deadline
    // fail with EAGAIN and the connection is dropped.
    timeval io_timeout{};
    io_timeout.tv_sec = 5;
    setsockopt(conn, SOL_SOCKET, SO_RCVTIMEO, &io_timeout,
               sizeof(io_timeout));
    setsockopt(conn, SOL_SOCKET, SO_SNDTIMEO, &io_timeout,
               sizeof(io_timeout));
    ServeConnection(conn);
    close(conn);
  }
}

void ExpoServer::ServeConnection(int fd) {
  // Read until the end of the request headers (or the size cap). Scrape
  // clients send the whole GET in one segment, so this is rarely >1 read.
  std::string request;
  char buf[2048];
  while (request.size() < kMaxRequestBytes &&
         request.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;  // interrupted read: resume
    if (n <= 0) break;  // peer closed, errored, or timed out
    request.append(buf, static_cast<size_t>(n));
  }
  const size_t line_end = request.find("\r\n");
  if (line_end == std::string::npos) return;  // not HTTP; drop silently

  // Request line: METHOD SP PATH SP VERSION.
  const std::string line = request.substr(0, line_end);
  const size_t sp1 = line.find(' ');
  const size_t sp2 = sp1 == std::string::npos ? std::string::npos
                                              : line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) return;
  const std::string method = line.substr(0, sp1);
  std::string path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);

  if (method != "GET") {
    SendAll(fd, BuildResponse(405, "text/plain; charset=utf-8",
                              "method not allowed\n"));
    return;
  }
  for (const Route& route : routes_) {
    if (route.path == path) {
      SendAll(fd,
              BuildResponse(200, route.content_type, route.producer()));
      return;
    }
  }
  SendAll(fd,
          BuildResponse(404, "text/plain; charset=utf-8", "not found\n"));
}

}  // namespace indoorflow
