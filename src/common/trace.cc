#include "src/common/trace.h"

#include <algorithm>
#include <utility>

#include "src/common/log.h"
#include "src/common/metrics.h"

namespace indoorflow {

namespace {

// splitmix64: full-period 64-bit mixer. Thread-local state seeded from
// the monotonic clock and the slot's own address keeps id generation
// lock-free and collision-resistant without touching std::atomic (which
// the lint restricts to the metrics/log/deadline leaves).
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t* ThreadRngState() {
  thread_local uint64_t state =
      static_cast<uint64_t>(MonotonicNowNs()) ^
      (static_cast<uint64_t>(reinterpret_cast<uintptr_t>(&state)) << 16);
  return &state;
}

void AppendHex64(uint64_t value, std::string* out) {
  static const char kDigits[] = "0123456789abcdef";
  for (int shift = 60; shift >= 0; shift -= 4) {
    out->push_back(kDigits[(value >> shift) & 0xF]);
  }
}

// Parses exactly `len` lowercase hex digits at `pos`; false on any other
// character (uppercase included — W3C traceparent is lowercase-only).
bool ParseHex(const std::string& s, size_t pos, size_t len, uint64_t* out) {
  uint64_t value = 0;
  for (size_t i = 0; i < len; ++i) {
    const char c = s[pos + i];
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    value = (value << 4) | static_cast<uint64_t>(digit);
  }
  *out = value;
  return true;
}

}  // namespace

std::string TraceContext::trace_id_hex() const {
  std::string out;
  out.reserve(32);
  AppendHex64(trace_id_high, &out);
  AppendHex64(trace_id_low, &out);
  return out;
}

std::string TraceContext::span_id_hex() const {
  std::string out;
  out.reserve(16);
  AppendHex64(span_id, &out);
  return out;
}

std::string TraceContext::ToTraceparent() const {
  std::string out = "00-";
  out.reserve(55);
  AppendHex64(trace_id_high, &out);
  AppendHex64(trace_id_low, &out);
  out.push_back('-');
  AppendHex64(span_id, &out);
  out += sampled ? "-01" : "-00";
  return out;
}

bool TraceContext::FromTraceparent(const std::string& header,
                                   TraceContext* out) {
  // version(2) '-' trace-id(32) '-' parent-id(16) '-' flags(2) == 55.
  if (header.size() != 55) return false;
  if (header[2] != '-' || header[35] != '-' || header[52] != '-') {
    return false;
  }
  // Only the version-00 layout is understood; "ff" is forbidden by the
  // spec and anything else may carry fields this parser cannot see.
  if (header[0] != '0' || header[1] != '0') return false;
  TraceContext parsed;
  uint64_t flags = 0;
  if (!ParseHex(header, 3, 16, &parsed.trace_id_high) ||
      !ParseHex(header, 19, 16, &parsed.trace_id_low) ||
      !ParseHex(header, 36, 16, &parsed.span_id) ||
      !ParseHex(header, 53, 2, &flags)) {
    return false;
  }
  if (!parsed.valid()) return false;
  parsed.sampled = (flags & 0x1) != 0;
  *out = parsed;
  return true;
}

TraceContext NewTraceContext(double sample) {
  uint64_t* state = ThreadRngState();
  TraceContext ctx;
  do {
    ctx.trace_id_high = SplitMix64(state);
    ctx.trace_id_low = SplitMix64(state);
  } while ((ctx.trace_id_high | ctx.trace_id_low) == 0);
  ctx.span_id = NextSpanId();
  if (sample >= 1.0) {
    ctx.sampled = true;
  } else if (sample <= 0.0) {
    ctx.sampled = false;
  } else {
    // Deterministic in the id: compare the top 53 bits of the low half
    // against sample * 2^53 (exact in double), so any holder of the same
    // trace id reaches the same decision.
    const uint64_t threshold =
        static_cast<uint64_t>(sample * 9007199254740992.0);  // 2^53
    ctx.sampled = (ctx.trace_id_low >> 11) < threshold;
  }
  return ctx;
}

uint64_t NextSpanId() {
  uint64_t* state = ThreadRngState();
  uint64_t id;
  do {
    id = SplitMix64(state);
  } while (id == 0);
  return id;
}

// ---------------------------------------------------------------------------
// Span

Span::Span(Trace* trace, std::string name) {
  if (trace == nullptr) return;
  const uint64_t id =
      trace->StartSpan(trace->context().span_id, trace->remote_parent_id(),
                       std::move(name), MonotonicNowNs());
  if (id == 0) return;  // dropped at the span cap: stay inert
  trace_ = trace;
  id_ = id;
}

Span::Span(const Span* parent, std::string name) {
  if (parent == nullptr || parent->trace_ == nullptr) return;
  const uint64_t id = parent->trace_->StartSpan(
      0, parent->id_, std::move(name), MonotonicNowNs());
  if (id == 0) return;
  trace_ = parent->trace_;
  id_ = id;
}

Span::~Span() { End(); }

void Span::End() {
  if (trace_ == nullptr || ended_) return;
  ended_ = true;
  trace_->EndSpan(id_, MonotonicNowNs());
}

void Span::AddEvent(const char* name) const {
  if (trace_ == nullptr) return;
  trace_->AddEvent(id_, name);
}

void Span::RecordChild(std::string name, int64_t start_ns,
                       int64_t dur_ns) const {
  if (trace_ == nullptr) return;
  trace_->RecordSpan(id_, std::move(name), start_ns, dur_ns);
}

std::string Span::trace_id_hex() const {
  return trace_ != nullptr ? trace_->context().trace_id_hex() : std::string();
}

// ---------------------------------------------------------------------------
// Trace

Trace::Trace(const TraceContext& context, uint64_t remote_parent_id)
    : context_(context),
      remote_parent_id_(remote_parent_id),
      start_ns_(MonotonicNowNs()) {}

uint64_t Trace::StartSpan(uint64_t id, uint64_t parent_id, std::string name,
                          int64_t start_ns) {
  MutexLock lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_spans_;
    return 0;
  }
  SpanRecord record;
  record.id = id != 0 ? id : NextSpanId();
  record.parent_id = parent_id;
  record.name = std::move(name);
  record.start_ns = start_ns;
  spans_.push_back(std::move(record));
  return spans_.back().id;
}

void Trace::EndSpan(uint64_t id, int64_t end_ns) {
  MutexLock lock(mu_);
  // Search from the back: spans end in roughly reverse start order.
  for (size_t i = spans_.size(); i-- > 0;) {
    if (spans_[i].id != id) continue;
    spans_[i].dur_ns = end_ns - spans_[i].start_ns;
    return;
  }
}

void Trace::RecordSpan(uint64_t parent_id, std::string name, int64_t start_ns,
                       int64_t dur_ns) {
  MutexLock lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_spans_;
    return;
  }
  SpanRecord record;
  record.id = NextSpanId();
  record.parent_id = parent_id;
  record.name = std::move(name);
  record.start_ns = start_ns;
  record.dur_ns = dur_ns >= 0 ? dur_ns : 0;
  spans_.push_back(std::move(record));
}

void Trace::AddEvent(uint64_t span_id, const char* name) {
  MutexLock lock(mu_);
  if (events_.size() >= kMaxEvents) {
    ++dropped_events_;
    return;
  }
  events_.push_back(EventRecord{span_id, name, MonotonicNowNs()});
}

void Trace::Finish() {
  MutexLock lock(mu_);
  if (finish_ns_ != 0) return;
  finish_ns_ = MonotonicNowNs();
  for (SpanRecord& span : spans_) {
    if (span.dur_ns < 0) span.dur_ns = finish_ns_ - span.start_ns;
  }
  if (TracingEnabled()) {
    // Replay into the Chrome-trace sink (rank metrics, below trace — a
    // sanctioned descent) so per-request trees land next to the ambient
    // process events.
    for (const SpanRecord& span : spans_) {
      EmitTraceEvent(span.name.c_str(), span.start_ns / 1000,
                     span.dur_ns / 1000);
    }
  }
}

size_t Trace::span_count() const {
  MutexLock lock(mu_);
  return spans_.size();
}

int64_t Trace::dropped_spans() const {
  MutexLock lock(mu_);
  return dropped_spans_;
}

int64_t Trace::dropped_events() const {
  MutexLock lock(mu_);
  return dropped_events_;
}

std::string Trace::ToJson() const {
  std::vector<SpanRecord> spans;
  std::vector<EventRecord> events;
  int64_t dropped_spans = 0;
  int64_t dropped_events = 0;
  int64_t finish_ns = 0;
  {
    MutexLock lock(mu_);
    spans = spans_;
    events = events_;
    dropped_spans = dropped_spans_;
    dropped_events = dropped_events_;
    finish_ns = finish_ns_;
  }
  const int64_t end_ns = finish_ns != 0 ? finish_ns : MonotonicNowNs();

  // Index children / events by position so the tree serializes without
  // repeated scans.
  std::vector<std::vector<size_t>> children(spans.size());
  std::vector<bool> is_child(spans.size(), false);
  for (size_t i = 0; i < spans.size(); ++i) {
    for (size_t j = 0; j < spans.size(); ++j) {
      if (j != i && spans[j].parent_id == spans[i].id) {
        children[i].push_back(j);
        is_child[j] = true;
      }
    }
  }

  std::string out = "{\"trace_id\":\"";
  out += context_.trace_id_hex();
  out += "\",\"root_span_id\":\"";
  out += context_.span_id_hex();
  out += "\",\"sampled\":";
  out += context_.sampled ? "true" : "false";
  out += ",\"duration_us\":";
  out += std::to_string((end_ns - start_ns_) / 1000);
  out += ",\"dropped_spans\":";
  out += std::to_string(dropped_spans);
  out += ",\"dropped_events\":";
  out += std::to_string(dropped_events);
  out += ",\"spans\":[";

  // Recursive tree emission; depth is bounded by kMaxSpans.
  struct Emitter {
    const std::vector<SpanRecord>& spans;
    const std::vector<EventRecord>& events;
    const std::vector<std::vector<size_t>>& children;
    int64_t trace_start_ns;
    int64_t end_ns;

    void Emit(size_t i, std::string* out) const {
      const SpanRecord& span = spans[i];
      *out += "{\"name\":\"";
      AppendJsonEscaped(span.name, out);
      *out += "\",\"span_id\":\"";
      AppendHex64(span.id, out);
      *out += "\",\"parent_id\":\"";
      AppendHex64(span.parent_id, out);
      *out += "\",\"start_us\":";
      *out += std::to_string((span.start_ns - trace_start_ns) / 1000);
      *out += ",\"dur_us\":";
      const int64_t dur_ns =
          span.dur_ns >= 0 ? span.dur_ns : end_ns - span.start_ns;
      *out += std::to_string(dur_ns / 1000);
      *out += ",\"events\":[";
      bool first = true;
      for (const EventRecord& event : events) {
        if (event.span_id != span.id) continue;
        if (!first) *out += ",";
        first = false;
        *out += "{\"name\":\"";
        AppendJsonEscaped(event.name, out);
        *out += "\",\"ts_us\":";
        *out += std::to_string((event.ts_ns - trace_start_ns) / 1000);
        *out += "}";
      }
      *out += "],\"children\":[";
      first = true;
      for (size_t child : children[i]) {
        if (!first) *out += ",";
        first = false;
        Emit(child, out);
      }
      *out += "]}";
    }
  };
  const Emitter emitter{spans, events, children, start_ns_, end_ns};
  bool first = true;
  for (size_t i = 0; i < spans.size(); ++i) {
    if (is_child[i]) continue;
    if (!first) out += ",";
    first = false;
    emitter.Emit(i, &out);
  }
  out += "]}";
  return out;
}

// ---------------------------------------------------------------------------
// TraceRing

TraceRing& TraceRing::Default() {
  static TraceRing* ring = new TraceRing();
  return *ring;
}

TraceRing::TraceRing(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {}

void TraceRing::Push(std::shared_ptr<const Trace> trace) {
  if (trace == nullptr) return;
  MutexLock lock(mu_);
  ++total_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(trace));
    return;
  }
  ring_[next_] = std::move(trace);
  next_ = (next_ + 1) % capacity_;
}

std::string TraceRing::ToJson() const {
  // Snapshot newest-first, then serialize outside the ring lock: each
  // Trace::ToJson takes that trace's own kTrace mutex, and two
  // same-ranked mutexes must never be held together.
  std::vector<std::shared_ptr<const Trace>> snapshot;
  int64_t total = 0;
  {
    MutexLock lock(mu_);
    total = total_;
    snapshot.reserve(ring_.size());
    const size_t n = ring_.size();
    for (size_t i = 0; i < n; ++i) {
      // Newest is the slot just before next_ (or the vector tail while
      // still filling).
      const size_t idx =
          n < capacity_ ? n - 1 - i : (next_ + n - 1 - i) % n;
      snapshot.push_back(ring_[idx]);
    }
  }
  std::string out = "{\"capacity\":";
  out += std::to_string(capacity_);
  out += ",\"total\":";
  out += std::to_string(total);
  out += ",\"traces\":[";
  bool first = true;
  for (const std::shared_ptr<const Trace>& trace : snapshot) {
    if (!first) out += ",";
    first = false;
    out += trace->ToJson();
  }
  out += "]}";
  return out;
}

size_t TraceRing::size() const {
  MutexLock lock(mu_);
  return ring_.size();
}

void TraceRing::Clear() {
  MutexLock lock(mu_);
  ring_.clear();
  next_ = 0;
}

}  // namespace indoorflow
