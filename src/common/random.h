// Deterministic pseudo-random number generation for simulation and tests.
//
// All randomness in indoorflow flows through Rng so that dataset generation,
// tests, and benchmarks are reproducible across runs and platforms. The
// engine is xoshiro256**, seeded via SplitMix64 (public-domain algorithms by
// Blackman & Vigna).

#ifndef INDOORFLOW_COMMON_RANDOM_H_
#define INDOORFLOW_COMMON_RANDOM_H_

#include <cmath>
#include <cstdint>

#include "src/common/status.h"

namespace indoorflow {

/// A small, fast, deterministic PRNG (xoshiro256**).
class Rng {
 public:
  explicit Rng(uint64_t seed) {
    // SplitMix64 seeding: decorrelates nearby seeds.
    uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = Rotl(state_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n) {
    INDOORFLOW_CHECK(n > 0);
    // Lemire's nearly-divisionless method would be faster; modulo bias is
    // negligible for the n << 2^64 values used here, but we reject anyway
    // for exactness.
    const uint64_t threshold = (0 - n) % n;
    for (;;) {
      const uint64_t r = Next();
      if (r >= threshold) return r % n;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    INDOORFLOW_CHECK(lo <= hi);
    return lo + static_cast<int64_t>(
                    UniformInt(static_cast<uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Exponentially distributed value with the given mean (> 0).
  double Exponential(double mean) {
    INDOORFLOW_CHECK(mean > 0);
    // Avoid log(0): NextDouble() is in [0, 1), so 1 - u is in (0, 1].
    return -mean * std::log(1.0 - NextDouble());
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t state_[4];
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_RANDOM_H_
