// Status / Result error model for indoorflow.
//
// The library does not throw exceptions across its public API. Operations
// that can fail return a Status (or a Result<T> when they also produce a
// value). This mirrors the error-handling idiom of production database
// engines (RocksDB, LevelDB, Arrow).

#ifndef INDOORFLOW_COMMON_STATUS_H_
#define INDOORFLOW_COMMON_STATUS_H_

#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string>
#include <utility>

namespace indoorflow {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
};

/// Returns a human-readable name for `code` ("OK", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

/// A lightweight success/error result. Cheap to copy on the OK path (no
/// allocation); error statuses carry a message.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Holds either a value of type T or an error Status. Accessing the value of
/// an errored Result aborts the process (programming error).
template <typename T>
class Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): mirrors absl::StatusOr.
  Result(T value) : value_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor)
  Result(Status status) : status_(std::move(status)) {
    if (status_.ok()) {
      std::fprintf(stderr, "Result constructed from OK status\n");
      std::abort();
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return *std::move(value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  void CheckOk() const {
    if (!value_.has_value()) {
      std::fprintf(stderr, "Result::value() on error: %s\n",
                   status_.ToString().c_str());
      std::abort();
    }
  }

  std::optional<T> value_;
  Status status_;
};

}  // namespace indoorflow

/// Propagates a non-OK Status from an expression to the caller.
#define INDOORFLOW_RETURN_IF_ERROR(expr)                  \
  do {                                                    \
    ::indoorflow::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                            \
  } while (0)

/// Aborts with a message if `cond` is false. Used for internal invariants
/// whose violation indicates a bug, never for user input validation.
#define INDOORFLOW_CHECK(cond)                                              \
  do {                                                                      \
    if (!(cond)) {                                                          \
      std::fprintf(stderr, "INDOORFLOW_CHECK failed at %s:%d: %s\n",        \
                   __FILE__, __LINE__, #cond);                              \
      std::abort();                                                         \
    }                                                                       \
  } while (0)

#endif  // INDOORFLOW_COMMON_STATUS_H_
