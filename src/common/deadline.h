// Per-request execution control: deadlines and cooperative cancellation.
//
// The serving path (src/serve/query_service.cc) attaches a QueryControl to
// each admitted request; the query kernels poll it between per-object work
// items and abandon the query once the deadline passes or the caller
// cancels. Abandonment is cooperative and best-effort — a check costs one
// monotonic clock read, so kernels check per object / per join round, not
// per arithmetic step — and the partial result of an aborted query is
// discarded by the caller (QueryControl::Aborted() reports the fact).
//
// Concurrency: QueryControl is polled from every executor lane of a
// parallel fan-out while the serving thread owns the deadline, and
// CancelToken is flipped by a different thread than the one it stops, so
// both keep their state in std::atomic rather than behind a Mutex — a
// ranked lock in the per-object hot loop would serialize the fan-out it
// is supposed to bound. Lock-free state is allowlisted in
// tools/indoorflow_lint.py (ATOMICS_ALLOWLIST) and raced deliberately by
// tests/serve_test.cc's ServeConcurrencyTest under the TSan CI job.
//
// The abort flag is sticky: once a poll observes expiry or cancellation,
// every later poll returns true without reading the clock, and the first
// cause wins (deadline vs. cancel) so the server can map it to 504 vs.
// 503 deterministically.

#ifndef INDOORFLOW_COMMON_DEADLINE_H_
#define INDOORFLOW_COMMON_DEADLINE_H_

#include <atomic>
#include <cstdint>
#include <limits>

#include "src/common/metrics.h"  // MonotonicNowNs

namespace indoorflow {

class Span;  // src/common/trace.h (carried by pointer; never dereferenced here)

/// A point on the monotonic clock after which work should be abandoned.
/// Default-constructed deadlines are infinite (never expire), so plumbing
/// a Deadline through a path that mostly doesn't use one costs nothing.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` milliseconds from now (<= 0 is already expired).
  static Deadline AfterMillis(int64_t ms) {
    return AtNanos(MonotonicNowNs() + ms * 1'000'000);
  }

  /// Expires at absolute monotonic time `ns` (MonotonicNowNs units).
  /// Useful when the deadline should start at request *arrival*, not at
  /// the moment the worker got around to it.
  static Deadline AtNanos(int64_t ns) {
    Deadline d;
    d.deadline_ns_ = ns;
    return d;
  }

  bool is_infinite() const { return deadline_ns_ == kInfiniteNs; }

  bool Expired() const {
    return !is_infinite() && MonotonicNowNs() >= deadline_ns_;
  }

  /// Nanoseconds until expiry, clamped at 0; kInfiniteNs when infinite.
  int64_t RemainingNanos() const {
    if (is_infinite()) return kInfiniteNs;
    const int64_t left = deadline_ns_ - MonotonicNowNs();
    return left > 0 ? left : 0;
  }

  static constexpr int64_t kInfiniteNs =
      std::numeric_limits<int64_t>::max();

 private:
  int64_t deadline_ns_ = kInfiniteNs;
};

/// A flag one thread sets to ask another to stop. Shared by address; the
/// canceller keeps the token alive until the cancelled work has finished.
class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  void Cancel() { cancelled_.store(true, std::memory_order_release); }
  bool Cancelled() const {
    return cancelled_.load(std::memory_order_acquire);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// Why a query was abandoned (QueryControl::reason()).
enum class AbortReason : int {
  kNone = 0,
  kDeadline = 1,   // the deadline passed mid-query
  kCancelled = 2,  // the attached CancelToken fired
};

/// One query's abandonment state: a deadline, an optional cancellation
/// token, and the sticky record of whether (and why) the query aborted.
/// The engine threads a `const QueryControl*` through QueryContext; a null
/// pointer (every pre-existing caller) short-circuits to "never abort".
class QueryControl {
 public:
  QueryControl() = default;
  explicit QueryControl(Deadline deadline,
                        const CancelToken* cancel = nullptr)
      : deadline_(deadline), cancel_(cancel) {}
  QueryControl(const QueryControl&) = delete;
  QueryControl& operator=(const QueryControl&) = delete;

  /// The hot-loop poll: true once the query should stop. Sticky — after
  /// the first true, later calls are one relaxed load. Safe to call
  /// concurrently from every lane of a parallel fan-out.
  bool ShouldAbort() const {
    if (aborted_.load(std::memory_order_relaxed) !=
        static_cast<int>(AbortReason::kNone)) {
      return true;
    }
    if (cancel_ != nullptr && cancel_->Cancelled()) {
      MarkAborted(AbortReason::kCancelled);
      return true;
    }
    if (deadline_.Expired()) {
      MarkAborted(AbortReason::kDeadline);
      return true;
    }
    return false;
  }

  /// Whether any poll observed an abort condition. The caller that ran the
  /// query checks this afterwards to discard the partial result.
  bool Aborted() const {
    return aborted_.load(std::memory_order_acquire) !=
           static_cast<int>(AbortReason::kNone);
  }

  AbortReason reason() const {
    return static_cast<AbortReason>(
        aborted_.load(std::memory_order_acquire));
  }

  const Deadline& deadline() const { return deadline_; }

  /// Optional request span (see src/common/trace.h): the serving layer
  /// attaches it before the query runs and the engine parents its own
  /// spans under it, so the trace rides the same pointer the deadline
  /// does. Null (the default) means "unsampled / untraced" and costs one
  /// pointer compare downstream. Set-before-run, read-only during — no
  /// synchronization needed.
  void set_span(Span* span) { span_ = span; }
  Span* span() const { return span_; }

 private:
  // First observed cause wins; a concurrent lane losing the CAS adopts the
  // winner's reason, so reason() never flickers between causes.
  void MarkAborted(AbortReason reason) const {
    int expected = static_cast<int>(AbortReason::kNone);
    aborted_.compare_exchange_strong(expected, static_cast<int>(reason),
                                     std::memory_order_acq_rel,
                                     std::memory_order_acquire);
  }

  Deadline deadline_;
  const CancelToken* cancel_ = nullptr;
  Span* span_ = nullptr;
  mutable std::atomic<int> aborted_{static_cast<int>(AbortReason::kNone)};
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_DEADLINE_H_
