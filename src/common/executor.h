// Shared work scheduler: a process-wide, lazily started thread pool.
//
// Every parallel call site in the library — batch snapshot queries,
// FlowMatrix materialization, and the intra-query object fan-out in
// snapshot_query.cc / interval_query.cc — schedules onto one shared pool
// instead of spawning per-call std::threads. That bounds process-wide
// concurrency under multi-tenant load (one pool-size cap instead of one
// thread herd per call) and amortizes thread creation across queries.
//
// Determinism contract: ParallelFor partitions [0, n) into `lanes`
// deterministic strided lanes (lane w handles w, w + lanes, w + 2*lanes,
// ...). Which OS thread executes a lane is scheduling-dependent, but the
// index set per lane is not — so callers that write per-index slots and
// reduce them in index order afterwards produce bit-identical results to
// a serial run (the pattern the query paths use; enforced by
// tests/parallel_differential_test.cc).
//
// Deadlock freedom under nesting: the caller of ParallelFor participates —
// it claims and runs lanes itself while pool workers help — so a lane that
// itself calls ParallelFor (e.g. a batch query whose per-timestamp queries
// fan out again) always makes progress even when every pool worker is
// busy. Waiting happens only on lane *completion*, never on queue space.
//
// Observability: the pool exports `executor.*` registry metrics (queue
// depth gauge, task counter, task wait-time histogram) and emits one
// Chrome-trace span per executed task when tracing is on (INDOORFLOW_TRACE).

#ifndef INDOORFLOW_COMMON_EXECUTOR_H_
#define INDOORFLOW_COMMON_EXECUTOR_H_

#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/thread_annotations.h"

namespace indoorflow {

class Span;  // src/common/trace.h

class Executor {
 public:
  /// Hard cap on any pool's size; requests beyond it are clamped.
  static constexpr int kMaxThreads = 256;

  /// The process-wide pool, started lazily on first use and sized by the
  /// INDOORFLOW_THREADS environment variable when set (clamped to
  /// [1, kMaxThreads]), else by the hardware concurrency. Thread-safe;
  /// the returned reference is valid for the process lifetime.
  static Executor& Default();

  /// Resolves a user-facing `threads` knob the one canonical way:
  /// `threads > 0` means itself (clamped to kMaxThreads); `threads <= 0`
  /// means the hardware concurrency (at least 1). Every call site that
  /// accepts a threads option (EngineConfig::threads,
  /// FlowMatrixOptions::threads, SnapshotTopKBatch) resolves through
  /// here, so the fallback cannot drift between them.
  static int ResolveThreads(int threads);

  /// Resolves an `INDOORFLOW_THREADS` environment value the strict way:
  /// a positive integer means itself (clamped to kMaxThreads), "0" means
  /// hardware concurrency, and anything else — non-numeric, negative,
  /// trailing garbage, overflow — logs a structured warning and falls
  /// back to hardware concurrency instead of being silently ignored.
  /// `value` may be null or empty (no warning, hardware fallback).
  static int ThreadsFromEnv(const char* value);

  /// A pool with `threads` workers (resolved via ResolveThreads).
  /// Destruction drains nothing: queued tasks are completed, then the
  /// workers join. Prefer Default() outside tests.
  explicit Executor(int threads = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int worker_count() const { return worker_count_; }

  /// Runs fn(i) for every i in [0, n), fanning across up to `parallelism`
  /// concurrent lanes (the caller's thread plus pool workers). Blocks
  /// until every index has run. `parallelism <= 1` (or n <= 1) executes
  /// serially on the caller with no scheduling overhead at all.
  ///
  /// Thread safety: safe to call from any thread, including from inside a
  /// lane of another ParallelFor on the same pool (see the deadlock note
  /// above). `fn` must be safe to invoke concurrently from multiple
  /// threads for distinct indices; each index runs exactly once.
  ///
  /// Returns the number of lanes actually used (>= 1); 1 means the loop
  /// ran serially.
  ///
  /// When `span_parent` is an active request span (src/common/trace.h),
  /// every lane — including the serial fallback — records one child span
  /// ("lane <w>") covering its strided index set, so a request trace
  /// attributes time to the parallel fan-out. Null (the default, and
  /// every unsampled request) costs one pointer compare per lane.
  int ParallelFor(size_t n, int parallelism,
                  const std::function<void(size_t)>& fn,
                  const Span* span_parent = nullptr);

  /// Schedules `fn` to run exactly once on a pool worker, FIFO behind
  /// whatever is already queued (including ParallelFor helper tasks).
  /// Never blocks and never drops: tasks submitted before destruction are
  /// completed during it. Unlike ParallelFor there is no completion wait —
  /// callers needing one arrange it themselves (the serving layer counts
  /// in-flight requests; see src/serve/query_service.cc). `fn` must not
  /// block indefinitely: a worker stuck in one task is a worker the whole
  /// process loses.
  void Submit(std::function<void()> fn) INDOORFLOW_LOCKS_EXCLUDED(mu_);

 private:
  struct Task {
    std::function<void()> fn;
    int64_t enqueue_ns = 0;
  };

  void Enqueue(std::function<void()> fn) INDOORFLOW_LOCKS_EXCLUDED(mu_);
  void WorkerLoop() INDOORFLOW_LOCKS_EXCLUDED(mu_);

  int worker_count_ = 0;
  Mutex mu_ INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceRtree)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceExecutor) =
          Mutex(LockRank::kExecutor);
  CondVar work_cv_;
  std::deque<Task> queue_ INDOORFLOW_GUARDED_BY(mu_);
  bool shutdown_ INDOORFLOW_GUARDED_BY(mu_) = false;
  std::vector<std::thread> workers_;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_EXECUTOR_H_
