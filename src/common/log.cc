#include "src/common/log.h"

#include <atomic>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#include "src/common/mutex.h"

namespace indoorflow {

namespace {

// The process-wide sink. Level and format are relaxed atomics so the
// LogEnabled gate stays a single load on hot paths; the FILE* swaps and the
// actual writes serialize under the Mutex, which keeps concurrent records
// line-atomic.
struct LogSink {
  std::atomic<int> level{static_cast<int>(LogLevel::kInfo)};
  std::atomic<int> format{static_cast<int>(LogFormat::kText)};
  Mutex mu INDOORFLOW_ACQUIRED_AFTER(lock_order::kFenceMetrics)
      INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceLog) =
          Mutex(LockRank::kLog);
  FILE* stream INDOORFLOW_GUARDED_BY(mu) = nullptr;  // nullptr = stderr
  bool owns_stream INDOORFLOW_GUARDED_BY(mu) = false;

  void Write(const std::string& line) {
    MutexLock lock(mu);
    FILE* out = stream != nullptr ? stream : stderr;
    std::fwrite(line.data(), 1, line.size(), out);
    std::fflush(out);
  }
};

LogSink& Sink() {
  static LogSink* sink = new LogSink;
  return *sink;
}

// UTC wall-clock timestamp, second resolution: "2026-08-05T12:00:00Z".
void AppendTimestamp(std::string* out) {
  std::time_t now = std::time(nullptr);
  std::tm utc{};
  gmtime_r(&now, &utc);
  char buf[32];
  const size_t n = std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ",
                                 &utc);
  out->append(buf, n);
}

std::string FormatDouble(double value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", value);
  return buf;
}

}  // namespace

void AppendJsonEscaped(const std::string& value, std::string* out) {
  for (char c : value) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\r':
        out->append("\\r");
        break;
      case '\t':
        out->append("\\t");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
}

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

Result<LogLevel> ParseLogLevel(const std::string& name) {
  std::string lower;
  lower.reserve(name.size());
  for (char c : name) {
    lower.push_back(
        static_cast<char>(std::tolower(static_cast<unsigned char>(c))));
  }
  if (lower == "debug") return LogLevel::kDebug;
  if (lower == "info") return LogLevel::kInfo;
  if (lower == "warn" || lower == "warning") return LogLevel::kWarn;
  if (lower == "error") return LogLevel::kError;
  return Status::InvalidArgument("unknown log level: " + name);
}

bool LogEnabled(LogLevel level) {
  return static_cast<int>(level) >=
         Sink().level.load(std::memory_order_relaxed);
}

void SetLogLevel(LogLevel level) {
  Sink().level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(Sink().level.load(std::memory_order_relaxed));
}

void SetLogFormat(LogFormat format) {
  Sink().format.store(static_cast<int>(format), std::memory_order_relaxed);
}

LogFormat GetLogFormat() {
  return static_cast<LogFormat>(
      Sink().format.load(std::memory_order_relaxed));
}

Status SetLogFile(const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "a");
  if (f == nullptr) {
    return Status::NotFound("cannot open log file: " + path);
  }
  LogSink& sink = Sink();
  MutexLock lock(sink.mu);
  if (sink.owns_stream && sink.stream != nullptr) std::fclose(sink.stream);
  sink.stream = f;
  sink.owns_stream = true;
  return Status::OK();
}

void InitLoggingFromEnv() {
  if (const char* level = std::getenv("INDOORFLOW_LOG_LEVEL")) {
    Result<LogLevel> parsed = ParseLogLevel(level);
    if (parsed.ok()) SetLogLevel(parsed.value());
  }
  if (const char* format = std::getenv("INDOORFLOW_LOG_FORMAT")) {
    const std::string name = format;
    if (name == "json") {
      SetLogFormat(LogFormat::kJson);
    } else if (name == "text") {
      SetLogFormat(LogFormat::kText);
    }
  }
  if (const char* path = std::getenv("INDOORFLOW_LOG_FILE")) {
    // A bad path falls back to the current sink (stderr) silently rather
    // than aborting startup.
    if (path[0] != '\0') static_cast<void>(SetLogFile(path));
  }
}

LogRecord::LogRecord(LogLevel level, const char* component,
                     std::string message)
    : enabled_(LogEnabled(level)),
      level_(level),
      component_(component),
      message_(std::move(message)) {}

LogRecord::LogRecord(LogRecord&& other) noexcept
    : enabled_(other.enabled_),
      level_(other.level_),
      component_(other.component_),
      message_(std::move(other.message_)),
      json_fields_(std::move(other.json_fields_)),
      text_fields_(std::move(other.text_fields_)) {
  other.enabled_ = false;
}

LogRecord::~LogRecord() {
  if (!enabled_) return;
  std::string line;
  line.reserve(96 + message_.size() + json_fields_.size());
  if (GetLogFormat() == LogFormat::kJson) {
    line.append("{\"ts\":\"");
    AppendTimestamp(&line);
    line.append("\",\"level\":\"");
    line.append(LogLevelName(level_));
    line.append("\",\"component\":\"");
    AppendJsonEscaped(component_, &line);
    line.append("\",\"msg\":\"");
    AppendJsonEscaped(message_, &line);
    line.push_back('"');
    line.append(json_fields_);
    line.append("}\n");
  } else {
    AppendTimestamp(&line);
    const char* name = LogLevelName(level_);
    line.push_back(' ');
    for (const char* c = name; *c != '\0'; ++c) {
      line.push_back(
          static_cast<char>(std::toupper(static_cast<unsigned char>(*c))));
    }
    line.append(" [");
    line.append(component_);
    line.append("] ");
    line.append(message_);
    line.append(text_fields_);
    line.push_back('\n');
  }
  Sink().Write(line);
}

void LogRecord::AddField(const char* key, std::string json_value,
                         std::string text_value) {
  json_fields_.append(",\"");
  AppendJsonEscaped(key, &json_fields_);
  json_fields_.append("\":");
  json_fields_.append(json_value);
  text_fields_.push_back(' ');
  text_fields_.append(key);
  text_fields_.push_back('=');
  text_fields_.append(text_value);
}

LogRecord& LogRecord::Field(const char* key, const std::string& value) & {
  if (!enabled_) return *this;
  std::string json = "\"";
  AppendJsonEscaped(value, &json);
  json.push_back('"');
  AddField(key, std::move(json), value);
  return *this;
}

LogRecord& LogRecord::Field(const char* key, const char* value) & {
  return Field(key, std::string(value));
}

LogRecord& LogRecord::Field(const char* key, int64_t value) & {
  if (!enabled_) return *this;
  const std::string text = std::to_string(value);
  AddField(key, text, text);
  return *this;
}

LogRecord& LogRecord::Field(const char* key, double value) & {
  if (!enabled_) return *this;
  const std::string text = FormatDouble(value);
  AddField(key, text, text);
  return *this;
}

LogRecord& LogRecord::Field(const char* key, bool value) & {
  if (!enabled_) return *this;
  const char* text = value ? "true" : "false";
  AddField(key, text, text);
  return *this;
}

}  // namespace indoorflow
