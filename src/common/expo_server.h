// Minimal dependency-free HTTP/1.1 exposition server.
//
// Serves process introspection — Prometheus text metrics, health, and the
// query-profile flight recorder — over plain POSIX sockets on 127.0.0.1.
// The server knows nothing about what it serves: callers register exact
// paths with a content type and a producer callback, and each GET invokes
// the producer to render the current state. This keeps the common layer
// free of core dependencies; tools/indoorflow_cli.cc wires /metrics,
// /healthz, and /profiles/recent.
//
// Intentionally not a web framework: GET only (anything else is 405),
// exact-path matching after the query string is stripped (no routing
// trees), one connection serviced at a time on a single background accept
// thread, Connection: close on every response. That is all a scrape
// endpoint needs, and it keeps the attack/review surface one file.
//
// Thread safety: handler registration must finish before Start(); after
// that the route table is read-only. The accept loop's shutdown flag is
// Mutex-guarded and polled between accepts, so Stop() joins within one
// poll interval (~200 ms). Producers run on the server thread and must be
// thread-safe themselves (the registry and recorder both are).

#ifndef INDOORFLOW_COMMON_EXPO_SERVER_H_
#define INDOORFLOW_COMMON_EXPO_SERVER_H_

#include <functional>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"

namespace indoorflow {

class ExpoServer {
 public:
  ExpoServer() = default;
  ~ExpoServer();
  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;

  /// Registers `producer` for GET `path` (exact match, e.g. "/metrics").
  /// Must be called before Start(); later registrations are ignored once
  /// the server is running.
  void Handle(std::string path, std::string content_type,
              std::function<std::string()> producer);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()) and
  /// launches the accept thread. FailedPrecondition if already running;
  /// Internal on socket errors (port in use, ...).
  Status Start(int port);

  /// Stops the accept thread and closes the listening socket. Idempotent.
  void Stop();

  /// The bound port, or 0 when not running.
  int port() const { return port_; }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    std::function<std::string()> producer;
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  std::vector<Route> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  Mutex mu_ INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceExpo) =
      Mutex(LockRank::kExpo);
  bool stopping_ INDOORFLOW_GUARDED_BY(mu_) = false;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_EXPO_SERVER_H_
