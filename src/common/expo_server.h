// Minimal dependency-free HTTP/1.1 server for exposition and serving.
//
// Serves process introspection — Prometheus text metrics, health, and the
// query-profile flight recorder — over plain POSIX sockets on 127.0.0.1,
// plus registered request routes (the query-serving path). The server
// knows nothing about what it serves: callers register exact paths either
// with a producer callback (GET-only exposition: each GET renders the
// current state) or with a request handler (GET/POST with bodies) that
// receives the parsed request and an Exchange owning the connection. This
// keeps the common layer free of core dependencies; tools/indoorflow_cli.cc
// wires /metrics, /healthz, /profiles/recent, and src/serve/query_service.cc
// wires /query/*.
//
// Intentionally not a web framework: exact-path matching after the query
// string is stripped (no routing trees), producer routes are GET-only
// (anything else is 405), request routes accept GET and POST, request
// bodies are capped, Connection: close on every response. One connection
// is *parsed* at a time on the single background accept thread; a request
// handler may move its Exchange to another thread (the serving layer
// dispatches onto the shared executor) so responses can complete
// concurrently with later accepts — handlers themselves must return
// quickly (admission decisions, not query work).
//
// Thread safety: handler registration must finish before Start(); after
// that the route table is read-only. The accept loop's shutdown flag is
// Mutex-guarded and polled between accepts, so Stop() joins within one
// poll interval (~200 ms). Producers and handlers run on the server
// thread and must be thread-safe themselves (the registry, recorder, and
// QueryService all are). An Exchange is owned by one thread at a time
// (accept thread, then whoever the handler hands it to); it is not
// internally synchronized.

#ifndef INDOORFLOW_COMMON_EXPO_SERVER_H_
#define INDOORFLOW_COMMON_EXPO_SERVER_H_

#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/common/mutex.h"
#include "src/common/status.h"

namespace indoorflow {

/// One parsed HTTP request as a request handler sees it.
struct HttpRequest {
  std::string method;  // "GET" or "POST" (anything else is rejected)
  std::string path;    // query string stripped
  std::string query;   // raw query string after '?' (may be empty)
  std::string body;    // raw body bytes (empty for GET)
  /// The W3C `traceparent` header verbatim when the client sent one (the
  /// only request header surfaced — the serving layer joins the caller's
  /// distributed trace with it, src/common/trace.h). Empty otherwise.
  std::string traceparent;
};

/// One response a request handler sends back.
struct HttpResponse {
  int code = 200;  // 200/400/404/405/500/503/504 (else rendered as 500)
  std::string content_type = "application/json";
  std::string body;
};

class ExpoServer {
 public:
  /// Owns one accepted connection until the response is sent. Handlers
  /// either Respond() inline on the accept thread or move the shared
  /// pointer into a task that responds later; if the last reference drops
  /// without a response, the destructor sends a 500 so the client never
  /// hangs until its timeout. Not internally synchronized: one thread at
  /// a time.
  class Exchange {
   public:
    ~Exchange();
    Exchange(const Exchange&) = delete;
    Exchange& operator=(const Exchange&) = delete;

    /// Sends the response and closes the connection. Only the first call
    /// sends; repeats are no-ops.
    void Respond(const HttpResponse& response);

   private:
    friend class ExpoServer;
    explicit Exchange(int fd) : fd_(fd) {}
    int fd_;
    bool responded_ = false;
  };
  using ExchangePtr = std::shared_ptr<Exchange>;
  using RequestHandler =
      std::function<void(const HttpRequest&, ExchangePtr)>;

  ExpoServer() = default;
  ~ExpoServer();
  ExpoServer(const ExpoServer&) = delete;
  ExpoServer& operator=(const ExpoServer&) = delete;

  /// Registers `producer` for GET `path` (exact match, e.g. "/metrics").
  /// Must be called before Start(); later registrations are ignored once
  /// the server is running.
  void Handle(std::string path, std::string content_type,
              std::function<std::string()> producer);

  /// Registers `handler` for GET/POST `path` (exact match, query string
  /// stripped into HttpRequest::query). The handler runs on the accept
  /// thread and must be quick; it may respond inline or move the Exchange
  /// elsewhere. Same registration window as Handle().
  void HandleRequest(std::string path, RequestHandler handler);

  /// Binds 127.0.0.1:`port` (0 picks an ephemeral port — see port()) and
  /// launches the accept thread. FailedPrecondition if already running;
  /// Internal on socket errors (port in use, ...).
  Status Start(int port);

  /// Stops the accept thread and closes the listening socket. Idempotent.
  /// Exchanges already handed to other threads stay valid and may still
  /// respond after Stop() returns (they own their connection fds).
  void Stop();

  /// The bound port, or 0 when not running.
  int port() const { return port_; }

 private:
  struct Route {
    std::string path;
    std::string content_type;
    std::function<std::string()> producer;  // exposition route when set
    RequestHandler handler;                 // request route when set
  };

  void AcceptLoop();
  void ServeConnection(int fd);

  std::vector<Route> routes_;
  int listen_fd_ = -1;
  int port_ = 0;
  std::thread thread_;
  Mutex mu_ INDOORFLOW_ACQUIRED_BEFORE(lock_order::kFenceExpo) =
      Mutex(LockRank::kExpo);
  bool stopping_ INDOORFLOW_GUARDED_BY(mu_) = false;
};

}  // namespace indoorflow

#endif  // INDOORFLOW_COMMON_EXPO_SERVER_H_
